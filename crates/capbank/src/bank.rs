//! Banks: parallel stacks of one part reaching a target capacitance.

use culpeo_units::{Amps, CubicMillimetres, Farads, Ohms};

use crate::{CapacitorPart, Technology};

/// A bank built by paralleling `count` copies of a single part until the
/// target capacitance is reached — the construction of Figure 3 ("e.g. a
/// stack of 45 1 mF capacitors").
///
/// Parallel composition gives the bank `count × C` capacitance,
/// `ESR / count` resistance, `count ×` leakage, and `count ×` volume.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitorBank {
    part: CapacitorPart,
    count: usize,
}

impl CapacitorBank {
    /// Builds the smallest bank of `part` reaching at least `target`
    /// capacitance.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not strictly positive.
    #[must_use]
    pub fn reaching(part: CapacitorPart, target: Farads) -> Self {
        assert!(target.get() > 0.0, "target capacitance must be positive");
        let count = (target.get() / part.capacitance().get()).ceil().max(1.0) as usize;
        Self { part, count }
    }

    /// The constituent part.
    #[must_use]
    pub fn part(&self) -> &CapacitorPart {
        &self.part
    }

    /// Number of parts in the bank.
    #[must_use]
    pub fn part_count(&self) -> usize {
        self.count
    }

    /// The part's technology family.
    #[must_use]
    pub fn technology(&self) -> Technology {
        self.part.technology()
    }

    /// Total bank capacitance.
    #[must_use]
    pub fn capacitance(&self) -> Farads {
        self.part.capacitance() * self.count as f64
    }

    /// Total bank volume.
    #[must_use]
    pub fn volume(&self) -> CubicMillimetres {
        self.part.volume() * self.count as f64
    }

    /// Bank ESR (parallel resistance).
    #[must_use]
    pub fn esr(&self) -> Ohms {
        self.part.esr() / self.count as f64
    }

    /// Total bank leakage.
    #[must_use]
    pub fn leakage(&self) -> Amps {
        self.part.leakage() * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_units::Volts;

    fn supercap_part() -> CapacitorPart {
        CapacitorPart::new(
            "SC-7500",
            Technology::Supercapacitor,
            Farads::from_milli(7.5),
            CubicMillimetres::new(7.2),
            Ohms::new(20.0),
            Amps::new(3.3e-9),
            Volts::new(2.7),
        )
    }

    #[test]
    fn six_supercaps_make_the_papers_bank() {
        let bank = CapacitorBank::reaching(supercap_part(), Farads::from_milli(45.0));
        assert_eq!(bank.part_count(), 6);
        assert!(bank.capacitance().approx_eq(Farads::from_milli(45.0), 1e-9));
        assert!(bank.esr().approx_eq(Ohms::new(20.0 / 6.0), 1e-12));
        // ~20 nA total DCL, the paper's headline number.
        assert!(bank.leakage().approx_eq(Amps::new(19.8e-9), 1e-10));
        assert!(bank.volume().get() < 50.0);
    }

    #[test]
    fn bank_rounds_up() {
        let part = CapacitorPart::new(
            "CC-22",
            Technology::Ceramic,
            Farads::from_micro(22.0),
            CubicMillimetres::new(20.0),
            Ohms::new(0.010),
            Amps::ZERO,
            Volts::new(6.3),
        );
        let bank = CapacitorBank::reaching(part, Farads::from_milli(45.0));
        // 45 mF / 22 µF = 2045.45… → 2046 parts, matching the paper's
        // "> 2,000 parts" complaint.
        assert_eq!(bank.part_count(), 2046);
        assert!(bank.capacitance().get() >= 45e-3);
        assert!(bank.esr().get() < 1e-5); // µΩ class
    }

    #[test]
    fn single_part_bank_when_part_exceeds_target() {
        let bank = CapacitorBank::reaching(supercap_part(), Farads::from_milli(5.0));
        assert_eq!(bank.part_count(), 1);
    }
}

//! An individual catalog part.

use culpeo_units::{Amps, CubicMillimetres, Farads, Ohms, Volts};

use crate::Technology;

/// One capacitor part, as a catalog would describe it.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitorPart {
    part_number: String,
    technology: Technology,
    capacitance: Farads,
    volume: CubicMillimetres,
    esr: Ohms,
    leakage: Amps,
    rated_voltage: Volts,
}

impl CapacitorPart {
    /// Creates a part.
    ///
    /// # Panics
    ///
    /// Panics if capacitance, volume, ESR, or rated voltage is not strictly
    /// positive, or leakage is negative.
    #[must_use]
    pub fn new(
        part_number: impl Into<String>,
        technology: Technology,
        capacitance: Farads,
        volume: CubicMillimetres,
        esr: Ohms,
        leakage: Amps,
        rated_voltage: Volts,
    ) -> Self {
        assert!(capacitance.get() > 0.0, "capacitance must be positive");
        assert!(volume.get() > 0.0, "volume must be positive");
        assert!(esr.get() > 0.0, "ESR must be positive");
        assert!(leakage.get() >= 0.0, "leakage cannot be negative");
        assert!(rated_voltage.get() > 0.0, "rated voltage must be positive");
        Self {
            part_number: part_number.into(),
            technology,
            capacitance,
            volume,
            esr,
            leakage,
            rated_voltage,
        }
    }

    /// The part number.
    #[must_use]
    pub fn part_number(&self) -> &str {
        &self.part_number
    }

    /// The technology family.
    #[must_use]
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// Nominal capacitance.
    #[must_use]
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// Physical volume.
    #[must_use]
    pub fn volume(&self) -> CubicMillimetres {
        self.volume
    }

    /// Equivalent series resistance.
    #[must_use]
    pub fn esr(&self) -> Ohms {
        self.esr
    }

    /// Intrinsic leakage (DCL).
    #[must_use]
    pub fn leakage(&self) -> Amps {
        self.leakage
    }

    /// Rated working voltage.
    #[must_use]
    pub fn rated_voltage(&self) -> Volts {
        self.rated_voltage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = CapacitorPart::new(
            "SC-0001",
            Technology::Supercapacitor,
            Farads::from_milli(7.5),
            CubicMillimetres::new(7.2),
            Ohms::new(20.0),
            Amps::new(3.3e-9),
            Volts::new(2.7),
        );
        assert_eq!(p.part_number(), "SC-0001");
        assert_eq!(p.technology(), Technology::Supercapacitor);
        assert!(p.capacitance().approx_eq(Farads::from_milli(7.5), 1e-12));
        assert_eq!(p.volume().get(), 7.2);
    }

    #[test]
    #[should_panic(expected = "ESR must be positive")]
    fn rejects_zero_esr() {
        let _ = CapacitorPart::new(
            "X",
            Technology::Ceramic,
            Farads::from_micro(1.0),
            CubicMillimetres::new(1.0),
            Ohms::ZERO,
            Amps::ZERO,
            Volts::new(6.3),
        );
    }
}

//! Capacitor technologies and their scaling laws.

use culpeo_units::{Amps, CubicMillimetres, Farads, Ohms};

/// The four capacitor technologies compared by Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// Aluminium electrolytic capacitors — bulky, moderate ESR.
    Electrolytic,
    /// Multilayer ceramic capacitors — tiny, µΩ-class ESR, but capped at
    /// tens of µF per part.
    Ceramic,
    /// Tantalum capacitors — dense, but the densest parts leak heavily.
    Tantalum,
    /// Electric double-layer supercapacitors — the densest energy storage
    /// by far, with the highest ESR.
    Supercapacitor,
}

impl Technology {
    /// Every technology, in the paper's legend order.
    pub const ALL: [Technology; 4] = [
        Technology::Electrolytic,
        Technology::Ceramic,
        Technology::Tantalum,
        Technology::Supercapacitor,
    ];

    /// The per-part capacitance range this technology ships in, within the
    /// paper's search window of 1 µF to 45 mF.
    #[must_use]
    pub fn capacitance_range(self) -> (Farads, Farads) {
        match self {
            // Electrolytics span µF to tens of mF.
            Technology::Electrolytic => (Farads::from_micro(10.0), Farads::from_milli(45.0)),
            // MLCCs top out around 22 µF for low-profile packages.
            Technology::Ceramic => (Farads::from_micro(1.0), Farads::from_micro(22.0)),
            // Tantalums reach roughly 1.5 mF.
            Technology::Tantalum => (Farads::from_micro(10.0), Farads::from_milli(1.5)),
            // Compact supercapacitors: single mF to tens of mF.
            Technology::Supercapacitor => (Farads::from_milli(1.0), Farads::from_milli(45.0)),
        }
    }

    /// Nominal part volume for capacitance `c`, before per-part variation.
    ///
    /// The scaling constants are anchored to the paper: a 7.5 mF
    /// supercapacitor is rice-grain sized (~7 mm³); a low-ESR 45 mF
    /// electrolytic bank exceeds a pint glass (~475 000 mm³); a 22 µF MLCC
    /// is a ~20 mm³ 1210 package; a 680 µF tantalum D-case is ~90 mm³.
    #[must_use]
    pub fn nominal_volume(self, c: Farads) -> CubicMillimetres {
        let f = c.get();
        let mm3 = match self {
            // Moderately super-linear: big low-ESR cans waste volume.
            Technology::Electrolytic => 2.0e6 * f + 5.0,
            Technology::Ceramic => 0.9e6 * f + 0.5,
            Technology::Tantalum => 0.13e6 * f + 2.0,
            Technology::Supercapacitor => 1.0e3 * f + 0.5,
        };
        CubicMillimetres::new(mm3)
    }

    /// Nominal part ESR for capacitance `c`.
    ///
    /// ESR falls with part size within a technology (`R·C` roughly
    /// constant), with per-technology constants: ceramics are effectively
    /// 10 mΩ flat (the paper's assumption), supercapacitors carry
    /// ohm-class ESR even when large.
    #[must_use]
    pub fn nominal_esr(self, c: Farads) -> Ohms {
        let f = c.get();
        let ohms = match self {
            Technology::Electrolytic => (3.0e-4 / f).clamp(0.01, 2.0),
            Technology::Ceramic => 0.010,
            Technology::Tantalum => (8.0e-5 / f).clamp(0.04, 3.0),
            Technology::Supercapacitor => (0.15 / f).clamp(1.0, 200.0),
        };
        Ohms::new(ohms)
    }

    /// Nominal intrinsic leakage (DCL) for capacitance `c` at a 2.5 V
    /// working voltage.
    ///
    /// Tantalum DCL follows the classic `0.01·C·V` datasheet rule with a
    /// density penalty for the smallest-volume (highest CV/cc) parts —
    /// which is how the paper's smallest tantalum banks reach ~26 mA.
    /// Supercapacitor DCL is in single nanoamps per part.
    #[must_use]
    pub fn nominal_leakage(self, c: Farads) -> Amps {
        let f = c.get();
        const V_WORK: f64 = 2.5;
        let amps = match self {
            Technology::Electrolytic => 0.01 * f * V_WORK * 0.2,
            // MLCC leakage via insulation resistance (R·C ≈ 500 s).
            Technology::Ceramic => f * V_WORK / 500.0,
            // Dense tantalum: 0.05·C·V for the high-CV parts this search
            // window selects.
            Technology::Tantalum => 0.05 * f * V_WORK,
            Technology::Supercapacitor => 0.44e-9 * (f / 1e-3),
        };
        Amps::new(amps)
    }

    /// The legend label used in figure output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Technology::Electrolytic => "Electrolytic",
            Technology::Ceramic => "Ceramic",
            Technology::Tantalum => "Tantalum",
            Technology::Supercapacitor => "Supercapacitors",
        }
    }

    /// The part-number prefix used for synthetic parts.
    pub(crate) fn prefix(self) -> &'static str {
        match self {
            Technology::Electrolytic => "EL",
            Technology::Ceramic => "CC",
            Technology::Tantalum => "TA",
            Technology::Supercapacitor => "SC",
        }
    }
}

impl core::fmt::Display for Technology {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supercap_is_densest() {
        // For the same capacitance, a supercapacitor part is orders of
        // magnitude smaller than any alternative that can reach it.
        let c = Farads::from_milli(1.5);
        let sc = Technology::Supercapacitor.nominal_volume(c);
        let ta = Technology::Tantalum.nominal_volume(c);
        let el = Technology::Electrolytic.nominal_volume(c);
        assert!(sc.get() * 50.0 < ta.get());
        assert!(sc.get() * 100.0 < el.get());
    }

    #[test]
    fn supercap_esr_dominates() {
        let c = Farads::from_milli(1.5);
        let sc = Technology::Supercapacitor.nominal_esr(c);
        for t in [
            Technology::Electrolytic,
            Technology::Ceramic,
            Technology::Tantalum,
        ] {
            assert!(sc.get() > t.nominal_esr(c).get() * 10.0, "{t}");
        }
    }

    #[test]
    fn rice_grain_anchor() {
        // A 7.5 mF supercapacitor should be roughly rice-grain sized.
        let v = Technology::Supercapacitor.nominal_volume(Farads::from_milli(7.5));
        assert!(v.get() > 3.0 && v.get() < 20.0, "volume = {v}");
    }

    #[test]
    fn tantalum_leaks_heavily_ceramic_and_supercap_do_not() {
        let c = Farads::from_milli(1.0);
        let ta = Technology::Tantalum.nominal_leakage(c);
        let sc = Technology::Supercapacitor.nominal_leakage(c);
        assert!(ta.get() > 1e-4); // sub-mA per dense mF part
        assert!(sc.get() < 1e-8); // nanoamps
    }

    #[test]
    fn ceramic_cannot_reach_large_capacitance() {
        let (_, max) = Technology::Ceramic.capacitance_range();
        assert!(max.get() < 100e-6);
    }

    #[test]
    fn ranges_are_ordered() {
        for t in Technology::ALL {
            let (lo, hi) = t.capacitance_range();
            assert!(lo.get() > 0.0 && lo.get() < hi.get(), "{t}");
        }
    }
}

//! The synthetic parts catalog.

use culpeo_units::{Amps, CubicMillimetres, Farads, Ohms, Volts};

use crate::{CapacitorBank, CapacitorPart, Technology};

/// A catalog of capacitor parts across technologies.
///
/// [`Catalog::synthetic`] mirrors the paper's data acquisition: for each
/// technology it enumerates parts across the 1 µF – 45 mF search window
/// (the paper downloaded metadata for the 500 shortest parts per category)
/// with volume, ESR, and leakage following the technology's scaling laws
/// plus deterministic part-to-part spread.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    parts: Vec<CapacitorPart>,
}

impl Catalog {
    /// Builds a catalog from explicit parts.
    #[must_use]
    pub fn new(parts: Vec<CapacitorPart>) -> Self {
        Self { parts }
    }

    /// The synthetic catalog: 125 parts per technology, log-spaced across
    /// each technology's capacitance range, with ±30 % deterministic
    /// spread in volume/ESR/leakage (vendors differ; the spread is seeded
    /// by part index so the catalog is reproducible).
    #[must_use]
    pub fn synthetic() -> Self {
        const PARTS_PER_TECH: usize = 125;
        let mut parts = Vec::with_capacity(4 * PARTS_PER_TECH);
        for tech in Technology::ALL {
            let (lo, hi) = tech.capacitance_range();
            let (ln_lo, ln_hi) = (lo.get().ln(), hi.get().ln());
            for k in 0..PARTS_PER_TECH {
                let t = k as f64 / (PARTS_PER_TECH - 1) as f64;
                let c = Farads::new((ln_lo + (ln_hi - ln_lo) * t).exp());
                // Three independent spread factors per part.
                let sv = spread(tech, k, 0);
                let sr = spread(tech, k, 1);
                let sl = spread(tech, k, 2);
                let rated = match tech {
                    Technology::Supercapacitor => Volts::new(2.7),
                    Technology::Tantalum => Volts::new(6.3),
                    _ => Volts::new(6.3),
                };
                parts.push(CapacitorPart::new(
                    format!("{}-{:04}", tech.prefix(), k),
                    tech,
                    c,
                    CubicMillimetres::new(tech.nominal_volume(c).get() * sv),
                    Ohms::new(tech.nominal_esr(c).get() * sr),
                    Amps::new(tech.nominal_leakage(c).get() * sl),
                    rated,
                ));
            }
        }
        Self { parts }
    }

    /// All parts.
    #[must_use]
    pub fn parts(&self) -> &[CapacitorPart] {
        &self.parts
    }

    /// Parts of one technology.
    pub fn parts_of(&self, tech: Technology) -> impl Iterator<Item = &CapacitorPart> {
        self.parts.iter().filter(move |p| p.technology() == tech)
    }

    /// Builds one bank per catalog part, each reaching `target`
    /// capacitance — the full Figure 3 point cloud.
    #[must_use]
    pub fn bank_sweep(&self, target: Farads) -> Vec<CapacitorBank> {
        self.parts
            .iter()
            .cloned()
            .map(|p| CapacitorBank::reaching(p, target))
            .collect()
    }

    /// The smallest-volume bank of each technology for `target`
    /// capacitance — the design points a volume-constrained EHD would
    /// shortlist.
    #[must_use]
    pub fn smallest_per_technology(&self, target: Farads) -> Vec<CapacitorBank> {
        Technology::ALL
            .iter()
            .filter_map(|&tech| {
                self.parts_of(tech)
                    .cloned()
                    .map(|p| CapacitorBank::reaching(p, target))
                    .min_by(|a, b| a.volume().get().total_cmp(&b.volume().get()))
            })
            .collect()
    }
}

/// Deterministic multiplicative spread in `[0.7, 1.3]`, varying by
/// technology, part index, and attribute — a cheap reproducible stand-in
/// for vendor-to-vendor variation.
fn spread(tech: Technology, index: usize, attribute: u64) -> f64 {
    let mut x = (index as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(attribute.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(tech.prefix().as_bytes()[0] as u64);
    // SplitMix64 finaliser.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
    0.7 + 0.6 * unit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_reproducible() {
        assert_eq!(Catalog::synthetic(), Catalog::synthetic());
    }

    #[test]
    fn catalog_covers_all_technologies() {
        let c = Catalog::synthetic();
        for tech in Technology::ALL {
            assert!(c.parts_of(tech).count() >= 100, "{tech}");
        }
    }

    #[test]
    fn fig3_supercap_corner() {
        // The smallest 45 mF supercap bank: few parts, tiny volume,
        // nanoamp leakage, ohm-class ESR.
        let c = Catalog::synthetic();
        let target = Farads::from_milli(45.0);
        let best = c
            .smallest_per_technology(target)
            .into_iter()
            .find(|b| b.technology() == Technology::Supercapacitor)
            .unwrap();
        assert!(best.part_count() <= 10, "count = {}", best.part_count());
        assert!(best.volume().get() < 100.0, "volume = {}", best.volume());
        assert!(best.leakage().get() < 1e-7, "DCL = {}", best.leakage());
        assert!(best.esr().get() > 0.5, "ESR = {}", best.esr());
    }

    #[test]
    fn fig3_tantalum_leaks_milliamps() {
        let c = Catalog::synthetic();
        let best = c
            .smallest_per_technology(Farads::from_milli(45.0))
            .into_iter()
            .find(|b| b.technology() == Technology::Tantalum)
            .unwrap();
        // The paper reports ~26 mA for the smallest tantalum banks.
        assert!(
            best.leakage().get() > 1e-3,
            "DCL = {} should be mA-class",
            best.leakage()
        );
    }

    #[test]
    fn fig3_ceramic_needs_thousands_of_parts() {
        let c = Catalog::synthetic();
        let best = c
            .smallest_per_technology(Farads::from_milli(45.0))
            .into_iter()
            .find(|b| b.technology() == Technology::Ceramic)
            .unwrap();
        assert!(best.part_count() > 2000, "count = {}", best.part_count());
        assert!(best.esr().get() < 1e-4);
    }

    #[test]
    fn fig3_electrolytic_low_esr_is_huge() {
        let c = Catalog::synthetic();
        let target = Farads::from_milli(45.0);
        // The lowest-ESR electrolytic bank is pint-glass sized or worse.
        let banks = c.bank_sweep(target);
        let lowest_esr_electrolytic = banks
            .iter()
            .filter(|b| b.technology() == Technology::Electrolytic)
            .min_by(|a, b| a.esr().get().total_cmp(&b.esr().get()))
            .unwrap();
        assert!(
            lowest_esr_electrolytic.volume().get() > 4.0e4,
            "volume = {}",
            lowest_esr_electrolytic.volume()
        );
    }

    #[test]
    fn supercap_dominates_volume_overall() {
        let c = Catalog::synthetic();
        let best = c.smallest_per_technology(Farads::from_milli(45.0));
        let sc = best
            .iter()
            .find(|b| b.technology() == Technology::Supercapacitor)
            .unwrap();
        for other in best
            .iter()
            .filter(|b| b.technology() != Technology::Supercapacitor)
        {
            assert!(
                sc.volume().get() < other.volume().get(),
                "{} bank is smaller than the supercap bank",
                other.technology()
            );
        }
    }

    #[test]
    fn bank_sweep_covers_every_part() {
        let c = Catalog::synthetic();
        assert_eq!(
            c.bank_sweep(Farads::from_milli(45.0)).len(),
            c.parts().len()
        );
    }

    #[test]
    fn spread_is_bounded() {
        for tech in Technology::ALL {
            for k in 0..200 {
                for a in 0..3 {
                    let s = spread(tech, k, a);
                    assert!((0.7..=1.3).contains(&s));
                }
            }
        }
    }
}

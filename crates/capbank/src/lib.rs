//! Capacitor technology catalog and bank construction.
//!
//! Figure 3 of the paper plots volume against ESR for 45 mF banks built
//! from four capacitor technologies, sourced from Digikey part metadata.
//! That catalog is not available offline, so this crate synthesises one
//! from per-technology scaling laws anchored to the paper's cited data
//! points:
//!
//! * **supercapacitors** reach 45 mF in six rice-grain parts with ~20 nA
//!   total leakage but several ohms of bank ESR;
//! * the smallest **tantalum** banks leak on the order of 26 mA;
//! * **ceramic** banks need thousands of parts (> 2,000) but have µΩ ESR;
//! * low-ESR **electrolytic** banks are larger than a US pint glass.
//!
//! The trends — who occupies which corner of the volume/ESR/leakage/part-
//! count space — are the reproduction target, not individual part numbers.
//!
//! ```
//! use culpeo_capbank::{Catalog, Technology};
//! use culpeo_units::Farads;
//!
//! let catalog = Catalog::synthetic();
//! let banks = catalog.bank_sweep(Farads::from_milli(45.0));
//! let best_supercap = banks
//!     .iter()
//!     .filter(|b| b.technology() == Technology::Supercapacitor)
//!     .min_by(|a, b| a.volume().get().total_cmp(&b.volume().get()))
//!     .unwrap();
//! assert!(best_supercap.part_count() <= 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod catalog;
mod part;
mod technology;

pub use bank::CapacitorBank;
pub use catalog::Catalog;
pub use part::CapacitorPart;
pub use technology::Technology;

//! Event sources and event classes.

use culpeo::TaskId;
use culpeo_units::Seconds;
use rand::Rng;

/// How a high-priority event class fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventSource {
    /// Fires every `period` (PS's sensing interval, NMR's microphone).
    Periodic {
        /// The fixed inter-event interval.
        period: Seconds,
    },
    /// Fires with exponentially distributed interarrival times of the
    /// given mean (RR's GPIO interrupt, NMR's report trigger — the
    /// paper's Poisson arrivals with λ = 45 s and λ = 30 s).
    Poisson {
        /// Mean interarrival time (1/rate).
        mean_interarrival: Seconds,
    },
}

impl EventSource {
    /// Scales the (mean) interarrival time by `factor` — the Figure 13
    /// slow/achievable/too-fast sweep.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        match self {
            EventSource::Periodic { period } => EventSource::Periodic {
                period: period * factor,
            },
            EventSource::Poisson { mean_interarrival } => EventSource::Poisson {
                mean_interarrival: mean_interarrival * factor,
            },
        }
    }

    /// Generates all arrival times in `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if the period/mean is not strictly positive.
    #[must_use]
    pub fn arrivals(&self, horizon: Seconds, rng: &mut impl Rng) -> Vec<Seconds> {
        let mut out = Vec::new();
        match *self {
            EventSource::Periodic { period } => {
                assert!(period.get() > 0.0, "period must be positive");
                let mut t = period.get();
                while t < horizon.get() {
                    out.push(Seconds::new(t));
                    t += period.get();
                }
            }
            EventSource::Poisson { mean_interarrival } => {
                assert!(
                    mean_interarrival.get() > 0.0,
                    "mean interarrival must be positive"
                );
                let mut t = 0.0;
                loop {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += -u.ln() * mean_interarrival.get();
                    if t >= horizon.get() {
                        break;
                    }
                    out.push(Seconds::new(t));
                }
            }
        }
        out
    }
}

/// A class of high-priority events: its arrival process, response
/// deadline, and the task sequence a response runs.
#[derive(Debug, Clone, PartialEq)]
pub struct EventClass {
    /// Name for reporting (e.g. `"NMR-BLE"`).
    pub name: String,
    /// The arrival process.
    pub source: EventSource,
    /// An event is *captured* iff its deadline-critical sequence completes
    /// within this long of its arrival.
    pub deadline: Seconds,
    /// The deadline-critical task sequence (run in order).
    pub sequence: Vec<TaskId>,
    /// Tasks run after the critical sequence (e.g. a response listen
    /// window); they consume energy but do not gate capture.
    pub followup: Vec<TaskId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn periodic_arrivals_are_regular() {
        let mut rng = StdRng::seed_from_u64(1);
        let src = EventSource::Periodic {
            period: Seconds::new(4.5),
        };
        let a = src.arrivals(Seconds::new(300.0), &mut rng);
        // 300 / 4.5 = 66.7 → arrivals at 4.5, 9.0, …, 297.0 → 66 events.
        assert_eq!(a.len(), 66);
        assert!(a[0].approx_eq(Seconds::new(4.5), 1e-9));
        for w in a.windows(2) {
            assert!((w[1] - w[0]).approx_eq(Seconds::new(4.5), 1e-9));
        }
    }

    #[test]
    fn poisson_arrivals_have_roughly_the_right_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let src = EventSource::Poisson {
            mean_interarrival: Seconds::new(30.0),
        };
        // Expect ~100 events over 3000 s; allow generous slack.
        let a = src.arrivals(Seconds::new(3000.0), &mut rng);
        assert!((70..=130).contains(&a.len()), "got {} arrivals", a.len());
        // Strictly increasing.
        for w in a.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn poisson_is_seed_deterministic() {
        let src = EventSource::Poisson {
            mean_interarrival: Seconds::new(45.0),
        };
        let a = src.arrivals(Seconds::new(300.0), &mut StdRng::seed_from_u64(3));
        let b = src.arrivals(Seconds::new(300.0), &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn scaling_changes_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let src = EventSource::Periodic {
            period: Seconds::new(4.5),
        };
        let slow = src.scaled(2.0).arrivals(Seconds::new(300.0), &mut rng);
        assert_eq!(slow.len(), 33);
    }

    #[test]
    fn empty_horizon_no_arrivals() {
        let mut rng = StdRng::seed_from_u64(1);
        let src = EventSource::Periodic {
            period: Seconds::new(4.5),
        };
        assert!(src.arrivals(Seconds::new(1.0), &mut rng).is_empty());
    }
}

//! Tasks and application specifications.

use culpeo::TaskId;
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::Harvester;
use culpeo_units::{Farads, Ohms};

use crate::EventClass;

/// One schedulable unit of work: an atomic task with a known load profile.
///
/// Atomicity is the intermittent-computing contract — if power fails
/// mid-task, all of its progress is lost and it must rerun from the start.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Identifier used across Culpeo's tables and event sequences.
    pub id: TaskId,
    /// Human-readable name for reporting.
    pub name: String,
    /// The task's load on the regulated output rail.
    pub load: LoadProfile,
}

impl Task {
    /// Creates a task.
    #[must_use]
    pub fn new(id: TaskId, name: impl Into<String>, load: LoadProfile) -> Self {
        Self {
            id,
            name: name.into(),
            load,
        }
    }
}

/// A complete application: its tasks, event classes, optional background
/// work, and the power-system configuration it deploys on.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Application name (e.g. `"periodic-sensing"`).
    pub name: String,
    /// All tasks, high and low priority.
    pub tasks: Vec<Task>,
    /// Event classes triggering high-priority sequences.
    pub classes: Vec<EventClass>,
    /// The low-priority background task run when energy is to spare.
    pub background: Option<TaskId>,
    /// Energy-buffer capacitance for this deployment.
    pub capacitance: Farads,
    /// Energy-buffer effective ESR.
    pub esr: Ohms,
    /// Harvesting conditions during the trial.
    pub harvester: Harvester,
}

impl AppSpec {
    /// Looks up a task by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not exist in this app — a malformed spec is a
    /// programming error.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        self.tasks
            .iter()
            .find(|t| t.id == id)
            .unwrap_or_else(|| panic!("app {} has no task {id:?}", self.name))
    }

    /// Returns a copy with every event class's arrival period scaled by
    /// `factor` (> 1 slows events down, < 1 speeds them up) — the
    /// Figure 13 interarrival sweep.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[must_use]
    pub fn with_rate_scaled(&self, factor: f64) -> AppSpec {
        assert!(factor > 0.0, "rate scale must be positive");
        let mut app = self.clone();
        for class in &mut app.classes {
            class.source = class.source.scaled(factor);
        }
        app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventSource;
    use culpeo_units::{Amps, Seconds};

    fn spec() -> AppSpec {
        AppSpec {
            name: "t".into(),
            tasks: vec![Task::new(
                TaskId(1),
                "sense",
                LoadProfile::constant("sense", Amps::from_milli(3.0), Seconds::from_milli(10.0)),
            )],
            classes: vec![EventClass {
                name: "sense".into(),
                source: EventSource::Periodic {
                    period: Seconds::new(4.5),
                },
                deadline: Seconds::new(4.5),
                sequence: vec![TaskId(1)],
                followup: vec![],
            }],
            background: None,
            capacitance: Farads::from_milli(15.0),
            esr: Ohms::new(3.3),
            harvester: Harvester::weak_solar(),
        }
    }

    #[test]
    fn task_lookup() {
        let s = spec();
        assert_eq!(s.task(TaskId(1)).name, "sense");
    }

    #[test]
    #[should_panic(expected = "has no task")]
    fn missing_task_panics() {
        let s = spec();
        let _ = s.task(TaskId(99));
    }

    #[test]
    fn rate_scaling_stretches_periods() {
        let s = spec().with_rate_scaled(2.0);
        match s.classes[0].source {
            EventSource::Periodic { period } => {
                assert!(period.approx_eq(Seconds::new(9.0), 1e-12));
            }
            _ => panic!("expected periodic"),
        }
    }
}

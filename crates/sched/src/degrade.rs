//! Event-rate degradation: finding the fastest sustainable rate.
//!
//! §VI-B: "To guarantee that each application is feasible, we degraded the
//! event frequency until the application successfully meets its
//! requirements." That manual tuning step is automatable once capture
//! rates are measurable: sweep the interarrival scale until the capture
//! rate clears a target, and report the fastest scale that does.
//!
//! This is also where the two policies diverge most visibly in Figure 13:
//! with Culpeo's thresholds the achievable rate is a property of the
//! *energy budget*, while with CatNap's it is dominated by brownout
//! losses that slowing down does not fix.

use culpeo_units::Seconds;

use crate::{run_trial, AppSpec, ChargePolicy};

/// The result of a degradation search.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeResult {
    /// The interarrival scale found (1.0 = the app's nominal rate;
    /// larger = slower events).
    pub scale: f64,
    /// Capture rate measured at that scale, in `[0, 1]`.
    pub capture_rate: f64,
    /// Scales probed, useful for reporting.
    pub probed: Vec<(f64, f64)>,
}

/// Finds the smallest interarrival scale (fastest event rate) at which
/// `class` is captured at `target_rate` or better, probing
/// geometrically across `scale_bounds = (min, max)` and then refining
/// by bisection.
///
/// Returns `None` if even the maximum scale (the slowest rate) misses
/// the target — the application is infeasible for this policy regardless
/// of rate, which is precisely CatNap's Figure 13 pathology.
///
/// # Panics
///
/// Panics if the scales are not ordered and positive or the target is
/// outside `(0, 1]`.
#[must_use]
pub fn fastest_sustainable_rate(
    app: &AppSpec,
    policy: ChargePolicy,
    class: &str,
    target_rate: f64,
    scale_bounds: (f64, f64),
    trial: Seconds,
    seed: u64,
) -> Option<DegradeResult> {
    let (min_scale, max_scale) = scale_bounds;
    assert!(
        0.0 < min_scale && min_scale < max_scale,
        "scales must satisfy 0 < min < max"
    );
    assert!(
        0.0 < target_rate && target_rate <= 1.0,
        "target rate must be in (0, 1]"
    );

    let measure = |scale: f64| {
        run_trial(&app.with_rate_scaled(scale), policy, trial, seed)
            .class(class)
            .capture_rate()
    };

    let mut probed = Vec::new();
    let top = measure(max_scale);
    probed.push((max_scale, top));
    if top < target_rate {
        return None;
    }
    let bottom = measure(min_scale);
    probed.push((min_scale, bottom));
    if bottom >= target_rate {
        return Some(DegradeResult {
            scale: min_scale,
            capture_rate: bottom,
            probed,
        });
    }

    // Bisection on the (noisy, but with shared seeds reproducible)
    // capture-vs-scale curve.
    let mut lo = min_scale; // fails
    let mut hi = max_scale; // passes
    let mut hi_rate = top;
    for _ in 0..8 {
        let mid = (lo * hi).sqrt(); // geometric: rates live on a log axis
        let rate = measure(mid);
        probed.push((mid, rate));
        if rate >= target_rate {
            hi = mid;
            hi_rate = rate;
        } else {
            lo = mid;
        }
    }
    Some(DegradeResult {
        scale: hi,
        capture_rate: hi_rate,
        probed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn culpeo_sustains_a_faster_rate_than_catnap_on_rr() {
        let app = apps::responsive_reporting();
        let trial = Seconds::new(120.0);
        let culpeo = fastest_sustainable_rate(
            &app,
            ChargePolicy::Culpeo,
            "report",
            0.9,
            (0.25, 4.0),
            trial,
            5,
        );
        let catnap = fastest_sustainable_rate(
            &app,
            ChargePolicy::Catnap,
            "report",
            0.9,
            (0.25, 4.0),
            trial,
            5,
        );
        let culpeo = culpeo.expect("culpeo must sustain some rate");
        match catnap {
            // The Figure 13 pathology: CatNap can be unable to hit 90 %
            // at *any* rate in the window…
            None => {}
            // …or only at a much slower one.
            Some(c) => assert!(
                culpeo.scale < c.scale,
                "culpeo {} should sustain a faster rate than catnap {}",
                culpeo.scale,
                c.scale
            ),
        }
        assert!(culpeo.capture_rate >= 0.9);
    }

    #[test]
    fn result_scale_is_within_bounds_and_probed_recorded() {
        let app = apps::periodic_sensing();
        let r = fastest_sustainable_rate(
            &app,
            ChargePolicy::Culpeo,
            "PS",
            0.9,
            (0.5, 2.0),
            Seconds::new(60.0),
            3,
        )
        .expect("PS under culpeo is feasible");
        assert!((0.5..=2.0).contains(&r.scale));
        assert!(r.probed.len() >= 2);
    }

    #[test]
    #[should_panic(expected = "target rate must be in")]
    fn rejects_bad_target() {
        let app = apps::periodic_sensing();
        let _ = fastest_sustainable_rate(
            &app,
            ChargePolicy::Culpeo,
            "PS",
            1.5,
            (0.5, 2.0),
            Seconds::new(30.0),
            1,
        );
    }
}

//! Feasibility tests: CatNap's energy-only test and the Theorem 1
//! voltage-aware correction (§VI-B, Figure 5).
//!
//! CatNap accepts a schedule when the buffer never runs out of *energy*:
//! `∀t, e_cap(t) > 0`. Theorem 1 adds the voltage constraint the paper
//! proves necessary: before each task `ε_t` starts, the buffer voltage
//! must also clear that task's `V_safe`:
//! `∀t, V_t ≥ V_safe_t ∧ e_cap(t) > 0`.
//!
//! The functions here evaluate both tests against a *planned* schedule —
//! a list of task launches with recharge gaps — using each system's own
//! per-task estimates. The harness then executes the same plan on the
//! plant to show which verdicts were right.

use culpeo::compose::TaskRequirement;
#[cfg(test)]
use culpeo_units::Joules;
use culpeo_units::{Farads, Seconds, Volts, Watts};

/// One planned task launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedLaunch {
    /// When the task starts, relative to the schedule's origin.
    pub start: Seconds,
    /// The task's buffer-energy cost and ESR drop, per the estimator
    /// producing the plan.
    pub requirement: TaskRequirement,
    /// The task's `V_safe` per the estimator (CatNap's is energy-only).
    pub v_safe: Volts,
}

/// The planning context: buffer and charging assumptions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanContext {
    /// Buffer capacitance.
    pub capacitance: Farads,
    /// Power-off threshold.
    pub v_off: Volts,
    /// Maximum buffer voltage.
    pub v_high: Volts,
    /// Assumed constant harvested power while recharging/idle.
    pub recharge_power: Watts,
    /// Voltage at the schedule's origin.
    pub v_start: Volts,
}

/// The predicted buffer voltage immediately before each launch, assuming
/// each task consumes exactly its planned energy and idle gaps recharge
/// at the context's constant power (capped at `V_high`).
#[must_use]
pub fn predicted_voltages(plan: &[PlannedLaunch], ctx: &PlanContext) -> Vec<Volts> {
    let c = ctx.capacitance.get();
    let mut v = ctx.v_start;
    let mut t_prev = Seconds::ZERO;
    let mut out = Vec::with_capacity(plan.len());
    for launch in plan {
        // Recharge during the gap before this launch.
        let gap = (launch.start.get() - t_prev.get()).max(0.0);
        let e_in = ctx.recharge_power.get() * gap;
        v = Volts::from_squared(v.squared() + 2.0 * e_in / c).min(ctx.v_high);
        out.push(v);
        // Consume the task's energy.
        let e = launch.requirement.buffer_energy.get();
        v = Volts::from_squared((v.squared() - 2.0 * e / c).max(0.0));
        t_prev = launch.start;
    }
    out
}

/// CatNap's feasibility test: at every launch, the buffer holds positive
/// usable energy (voltage above `V_off`) after accounting for planned
/// consumption. ESR does not appear anywhere.
#[must_use]
pub fn catnap_feasible(plan: &[PlannedLaunch], ctx: &PlanContext) -> bool {
    let voltages = predicted_voltages(plan, ctx);
    plan.iter().zip(&voltages).all(|(launch, &v)| {
        // Energy after running the task remains positive:
        let c = ctx.capacitance.get();
        let v_after = Volts::from_squared(
            (v.squared() - 2.0 * launch.requirement.buffer_energy.get() / c).max(0.0),
        );
        v_after > ctx.v_off
    })
}

/// The Theorem 1 test: every launch must *also* clear the task's
/// `V_safe`. With Culpeo's ESR-aware `V_safe` values, passing this test
/// guarantees no task-killing brownout (for loads within the profiled
/// envelope).
#[must_use]
pub fn culpeo_feasible(plan: &[PlannedLaunch], ctx: &PlanContext) -> bool {
    if !catnap_feasible(plan, ctx) {
        return false; // Theorem 1 includes the energy conjunct
    }
    let voltages = predicted_voltages(plan, ctx);
    plan.iter()
        .zip(&voltages)
        .all(|(launch, &v)| v >= launch.v_safe)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> PlanContext {
        PlanContext {
            capacitance: Farads::from_milli(45.0),
            v_off: Volts::new(1.6),
            v_high: Volts::new(2.56),
            recharge_power: Watts::from_milli(8.0),
            v_start: Volts::new(2.56),
        }
    }

    fn launch(start_s: f64, e_mj: f64, v_delta: f64, v_safe: f64) -> PlannedLaunch {
        PlannedLaunch {
            start: Seconds::new(start_s),
            requirement: TaskRequirement {
                buffer_energy: Joules::new(e_mj * 1e-3),
                v_delta: Volts::new(v_delta),
            },
            v_safe: Volts::new(v_safe),
        }
    }

    #[test]
    fn empty_plan_is_feasible_for_both() {
        assert!(catnap_feasible(&[], &ctx()));
        assert!(culpeo_feasible(&[], &ctx()));
    }

    #[test]
    fn energy_rich_plan_passes_both() {
        let plan = [launch(0.0, 2.0, 0.05, 1.7), launch(10.0, 2.0, 0.05, 1.7)];
        assert!(catnap_feasible(&plan, &ctx()));
        assert!(culpeo_feasible(&plan, &ctx()));
    }

    #[test]
    fn catnap_accepts_what_theorem1_rejects() {
        // The Figure 5 discrepancy: enough energy for both tasks on one
        // discharge, but the second launches below its ESR-aware V_safe.
        let plan = [
            launch(0.0, 60.0, 0.05, 1.7), // big sense burn: 2.56 V → ~1.97 V
            launch(0.5, 3.0, 0.35, 2.1),  // radio: needs 2.1 V to survive ESR
        ];
        let c = ctx();
        assert!(catnap_feasible(&plan, &c), "catnap should accept");
        assert!(!culpeo_feasible(&plan, &c), "theorem 1 must reject");
    }

    #[test]
    fn recharge_gaps_restore_feasibility() {
        // Same workload, but the radio waits long enough to recharge
        // above its V_safe: now both accept.
        let plan = [launch(0.0, 30.0, 0.05, 1.7), launch(60.0, 3.0, 0.35, 2.1)];
        let c = ctx();
        assert!(catnap_feasible(&plan, &c));
        assert!(
            culpeo_feasible(&plan, &c),
            "{:?}",
            predicted_voltages(&plan, &c)
        );
    }

    #[test]
    fn energy_exhaustion_fails_both() {
        // Back-to-back launches draining far more than the buffer holds.
        let plan = [
            launch(0.0, 60.0, 0.0, 1.6),
            launch(0.1, 60.0, 0.0, 1.6),
            launch(0.2, 60.0, 0.0, 1.6),
        ];
        let c = ctx();
        assert!(!catnap_feasible(&plan, &c));
        assert!(!culpeo_feasible(&plan, &c));
    }

    #[test]
    fn predicted_voltage_caps_at_v_high() {
        let plan = [launch(1000.0, 1.0, 0.0, 1.7)];
        let v = predicted_voltages(&plan, &ctx());
        assert!(v[0] <= ctx().v_high);
    }
}

//! The paper's three evaluation applications (§VI-B).
//!
//! All three are event-driven, span a range of load characteristics, and
//! run on harvested solar power. Event rates default to the paper's
//! "achievable" settings; [`AppSpec::with_rate_scaled`] produces the
//! Figure 13 slow / too-fast variants.

use culpeo::PowerSystemModel;
use culpeo_loadgen::peripheral::{
    AesEncrypt, BleRadio, FftCompute, ImuRead, MicrophoneRead, PhotoresistorRead,
};
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{EfficiencyCurve, Harvester};
use culpeo_units::{Amps, Farads, Ohms, Seconds, Volts, Watts};

use crate::{AppSpec, EventClass, EventSource, Task};

/// The photoresistor background chunk: a short divider read followed by
/// MCU-active averaging. Background work intentionally outpaces the weak
/// harvest — the scheduler's low-priority threshold is what stops it from
/// draining the buffer too far, and an energy-only threshold stops it too
/// late (§VII-C).
fn photo_average_chunk() -> LoadProfile {
    let read = PhotoresistorRead::default();
    LoadProfile::builder("photo-avg")
        .hold(read.active_current, read.duration)
        .hold(Amps::from_milli(3.0), Seconds::from_milli(60.0))
        // Low-power logging tail: by the time CatNap samples the "end"
        // voltage, the averaging phase's ESR drop has rebounded, so its
        // energy account under-charges the chunk.
        .hold(Amps::from_milli(0.3), Seconds::from_milli(20.0))
        .build()
}

/// Task identifiers shared by the applications.
pub mod ids {
    use culpeo::TaskId;

    /// IMU batch read (PS, RR).
    pub const IMU: TaskId = TaskId(1);
    /// Photoresistor background read (PS, RR).
    pub const PHOTO: TaskId = TaskId(2);
    /// AES encryption of the sample batch (RR).
    pub const AES: TaskId = TaskId(3);
    /// BLE transmission (RR, NMR).
    pub const BLE_TX: TaskId = TaskId(4);
    /// BLE low-power listen window (RR, NMR).
    pub const BLE_LISTEN: TaskId = TaskId(5);
    /// Microphone batch capture (NMR).
    pub const MIC: TaskId = TaskId(6);
    /// FFT background compute (NMR).
    pub const FFT: TaskId = TaskId(7);
}

/// The Culpeo power-system model matching an app's deployment (datasheet
/// capacitance, flat measured ESR, Capybara booster and monitor).
#[must_use]
pub fn model_for(app: &AppSpec) -> PowerSystemModel {
    PowerSystemModel::with_flat_esr(
        app.capacitance,
        app.esr,
        Volts::new(2.55),
        EfficiencyCurve::tps61200_like(),
        Volts::new(1.6),
        Volts::new(2.56),
    )
}

/// **Periodic Sensing (PS)**: read 32 IMU samples every 4.5 s; a
/// background task reads a photoresistor when energy is spare. Runs on a
/// deliberately small 15 mF buffer. An event is lost if the inter-sample
/// deadline is missed.
#[must_use]
pub fn periodic_sensing() -> AppSpec {
    AppSpec {
        name: "periodic-sensing".into(),
        tasks: vec![
            Task::new(ids::IMU, "imu-read", ImuRead::default().profile()),
            Task::new(ids::PHOTO, "photo-avg", photo_average_chunk()),
        ],
        classes: vec![EventClass {
            name: "PS".into(),
            source: EventSource::Periodic {
                period: Seconds::new(4.5),
            },
            deadline: Seconds::new(4.5),
            sequence: vec![ids::IMU],
            followup: vec![],
        }],
        background: Some(ids::PHOTO),
        // 15 mF from the same supercap family: two 7.5 mF parts in
        // parallel → half the ~20 Ω per-part ESR.
        capacitance: Farads::from_milli(15.0),
        esr: Ohms::new(10.0),
        harvester: Harvester::ConstantPower(Watts::from_milli(5.0)),
    }
}

/// **Responsive Reporting (RR)**: a GPIO interrupt arrives with Poisson
/// interarrivals (mean 45 s); the response reads the IMU, encrypts the
/// batch, and transmits it over BLE — all within a 3 s deadline — then
/// listens 2 s for a reply. A photoresistor background task runs on spare
/// energy.
#[must_use]
pub fn responsive_reporting() -> AppSpec {
    let ble = BleRadio::default();
    AppSpec {
        name: "responsive-reporting".into(),
        tasks: vec![
            Task::new(ids::IMU, "imu-read", ImuRead::default().profile()),
            Task::new(ids::AES, "encrypt", AesEncrypt::default().profile()),
            Task::new(ids::BLE_TX, "ble-send", ble.profile()),
            Task::new(
                ids::BLE_LISTEN,
                "ble-listen",
                ble.listen_profile(Seconds::new(2.0)),
            ),
            Task::new(ids::PHOTO, "photo-avg", photo_average_chunk()),
        ],
        classes: vec![EventClass {
            name: "report".into(),
            source: EventSource::Poisson {
                mean_interarrival: Seconds::new(45.0),
            },
            deadline: Seconds::new(3.0),
            sequence: vec![ids::IMU, ids::AES, ids::BLE_TX],
            followup: vec![ids::BLE_LISTEN],
        }],
        background: Some(ids::PHOTO),
        capacitance: Farads::from_milli(45.0),
        esr: Ohms::new(3.3),
        harvester: Harvester::ConstantPower(Watts::from_milli(3.0)),
    }
}

/// **Noise Monitoring & Reporting (NMR)**: capture 256 microphone samples
/// at 12 kHz every 7 s while an FFT crunches the previous batch in the
/// background; reporting interrupts arrive with Poisson interarrivals
/// (mean 30 s) and must be answered with a BLE transmission (then a
/// listen) within 15 s.
#[must_use]
pub fn noise_monitoring() -> AppSpec {
    let ble = BleRadio::default();
    AppSpec {
        name: "noise-monitoring".into(),
        tasks: vec![
            Task::new(ids::MIC, "mic-read", MicrophoneRead::default().profile()),
            Task::new(ids::FFT, "fft", FftCompute::default().profile()),
            Task::new(ids::BLE_TX, "ble-send", ble.profile()),
            Task::new(
                ids::BLE_LISTEN,
                "ble-listen",
                ble.listen_profile(Seconds::new(2.0)),
            ),
        ],
        classes: vec![
            EventClass {
                name: "NMR-mic".into(),
                source: EventSource::Periodic {
                    period: Seconds::new(7.0),
                },
                deadline: Seconds::new(7.0),
                sequence: vec![ids::MIC],
                followup: vec![],
            },
            EventClass {
                name: "NMR-BLE".into(),
                source: EventSource::Poisson {
                    mean_interarrival: Seconds::new(30.0),
                },
                deadline: Seconds::new(15.0),
                sequence: vec![ids::BLE_TX],
                followup: vec![ids::BLE_LISTEN],
            },
        ],
        background: Some(ids::FFT),
        capacitance: Farads::from_milli(45.0),
        esr: Ohms::new(3.3),
        harvester: Harvester::ConstantPower(Watts::from_milli(4.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_are_well_formed() {
        for app in [
            periodic_sensing(),
            responsive_reporting(),
            noise_monitoring(),
        ] {
            assert!(!app.tasks.is_empty());
            assert!(!app.classes.is_empty());
            // Every referenced task exists.
            for class in &app.classes {
                for id in class.sequence.iter().chain(&class.followup) {
                    let _ = app.task(*id);
                }
            }
            if let Some(bg) = app.background {
                let _ = app.task(bg);
            }
        }
    }

    #[test]
    fn ps_uses_small_buffer() {
        let ps = periodic_sensing();
        assert!(ps.capacitance.approx_eq(Farads::from_milli(15.0), 1e-12));
        assert!(ps.esr.get() > 3.3); // fewer parallel parts ⇒ higher ESR
    }

    #[test]
    fn rr_sequence_matches_paper() {
        let rr = responsive_reporting();
        let class = &rr.classes[0];
        assert_eq!(class.sequence, vec![ids::IMU, ids::AES, ids::BLE_TX]);
        assert_eq!(class.followup, vec![ids::BLE_LISTEN]);
        assert!(class.deadline.approx_eq(Seconds::new(3.0), 1e-12));
    }

    #[test]
    fn nmr_has_two_event_classes() {
        let nmr = noise_monitoring();
        assert_eq!(nmr.classes.len(), 2);
        assert_eq!(nmr.classes[0].name, "NMR-mic");
        assert_eq!(nmr.classes[1].name, "NMR-BLE");
    }

    #[test]
    fn model_for_matches_deployment() {
        let ps = periodic_sensing();
        let m = model_for(&ps);
        assert!(m.capacitance().approx_eq(ps.capacitance, 1e-12));
        assert_eq!(m.esr_at(culpeo_units::Hertz::new(100.0)), ps.esr);
    }
}

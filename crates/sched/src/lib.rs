//! Event-driven scheduling for intermittently powered devices: the CatNap
//! baseline and its Culpeo-corrected variant (§VI-B).
//!
//! The paper's end-to-end claim is that a state-of-the-art scheduler whose
//! dispatch decisions rest on *energy* estimates misses events that the
//! same scheduler captures once its per-task thresholds come from Culpeo's
//! ESR-aware `V_safe`. This crate reproduces that comparison:
//!
//! * [`Task`] / [`EventClass`] / [`AppSpec`] — the workload model:
//!   high-priority event-triggered task sequences with deadlines, plus a
//!   low-priority background task;
//! * [`ChargePolicy`] — where the dispatch thresholds come from:
//!   CatNap's voltage-as-energy profiling or Culpeo-R's ESR-aware
//!   profiling (both run on the simulated device, §V-C style);
//! * [`run_trial`] — a full closed-loop trial on the simulated plant,
//!   reporting per-event-class capture rates (Figures 12 and 13);
//! * [`apps`] — the paper's three applications: Periodic Sensing (PS),
//!   Responsive Reporting (RR), and Noise Monitoring & Reporting (NMR);
//! * [`feasibility`] — CatNap's energy-only feasibility test and the
//!   Theorem 1 voltage-aware test that corrects it (Figure 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod admission;
pub mod apps;
pub mod degrade;
pub mod feasibility;

mod event;
mod policy;
mod task;
mod trial;

pub use admission::{
    admit_plan, AdmissionConfig, AdmissionDecision, AdmissionReport, ArenaPolicy, WcecAdmission,
};
pub use event::{EventClass, EventSource};
pub use policy::{derive_thresholds, ChargePolicy, PolicyThresholds};
pub use task::{AppSpec, Task};
pub use trial::{mean_capture_rate, run_trial, ClassStats, TrialResult};

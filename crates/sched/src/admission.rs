//! ETAP-style worst-case-energy admission: the first arena policy hook.
//!
//! The ROADMAP's scheduler arena wants pluggable policies competing on
//! the same plans. This module lands the hook and its first citizen: an
//! admission test that gates a schedule on *analyzed* worst-case energy
//! (`culpeo-wcec` certificates) against a conservative harvest-credit
//! envelope, in the spirit of ETAP's energy-adequacy check.
//!
//! The test walks the plan launch by launch, comparing two running sums:
//!
//! * **demand** — each certified launch charges its worst-case buffer
//!   draw `E_hi / η(V_off)` (the certificate meters the output rail; the
//!   buffer pays the booster's worst-case efficiency on top). Launches
//!   without a certificate charge their declared energy the same way.
//! * **credit** — the starting buffer swing `½·C·(V_start² − V_floor²)`
//!   — where the floor `V_off + V_δ·r_max/r_min` also has to clear the
//!   worst certified ESR dip — plus, per idle gap, the harvest *floor*
//!   `P·max(0, duty_min·gap − outage)` the verifier's envelope uses.
//!
//! `admit` iff demand never overtakes credit; a rejection names the
//! first launch where it does, which is the launch to replay for a
//! brownout witness. The test is deliberately one-sided: it can reject
//! plans the full interval interpreter would prove (it ignores voltage
//! caps and recovery detail), but a plan it admits never exhausts the
//! credit envelope its certificates define.

use culpeo::PowerSystemModel;
use culpeo_api::{CertificateDto, PlanSpec};
use culpeo_units::{Volts, Watts};

/// Envelope parameters for the harvest-credit floor; the defaults match
/// `culpeo-verify`'s `VerifyConfig` so both surfaces assume the same
/// worst-case harvester.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Minimum fraction of any idle gap the harvester is actually on.
    pub duty_min: f64,
    /// Longest contiguous harvester outage, seconds.
    pub outage_s: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            duty_min: 0.3,
            outage_s: 3.0,
        }
    }
}

/// The admission verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Worst-case demand stays inside the credit envelope everywhere.
    Admit,
    /// Demand overtakes credit at some launch.
    Reject,
}

/// What the admission walk found.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionReport {
    /// Admit or reject.
    pub decision: AdmissionDecision,
    /// Total worst-case buffer demand over one period, millijoules.
    pub demand_mj: f64,
    /// Total credit (initial swing + harvest floor), millijoules.
    pub credit_mj: f64,
    /// `credit − demand` at the tightest point, millijoules (negative
    /// exactly when rejected).
    pub margin_mj: f64,
    /// Index of the first launch where demand overtakes credit.
    pub failing_launch: Option<usize>,
    /// How many launches charged certificate energies (the rest charged
    /// their declared figures).
    pub certified_launches: usize,
}

impl AdmissionReport {
    /// Whether the plan was admitted.
    #[must_use]
    pub fn admitted(&self) -> bool {
        self.decision == AdmissionDecision::Admit
    }
}

/// An arena policy: anything that can gate a plan on a model plus
/// certificates. The arena's tournament driver will grow around this
/// hook; [`WcecAdmission`] is its first implementation.
pub trait ArenaPolicy {
    /// Stable policy name for arena rosters and reports.
    fn name(&self) -> &'static str;
    /// Gate `plan` on `model`, charging `certs` where they apply.
    fn admit(
        &self,
        model: &PowerSystemModel,
        plan: &PlanSpec,
        certs: &[CertificateDto],
    ) -> AdmissionReport;
}

/// The ETAP-style worst-case-energy admission policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct WcecAdmission {
    /// Harvest-envelope parameters.
    pub cfg: AdmissionConfig,
}

impl ArenaPolicy for WcecAdmission {
    fn name(&self) -> &'static str {
        "wcec-admission"
    }

    fn admit(
        &self,
        model: &PowerSystemModel,
        plan: &PlanSpec,
        certs: &[CertificateDto],
    ) -> AdmissionReport {
        admit_plan(model, plan, certs, &self.cfg)
    }
}

/// Runs the admission walk; see the module docs for the accounting.
#[must_use]
pub fn admit_plan(
    model: &PowerSystemModel,
    plan: &PlanSpec,
    certs: &[CertificateDto],
    cfg: &AdmissionConfig,
) -> AdmissionReport {
    let c = model.capacitance().get();
    let eta_off = model.efficiency_at(model.v_off()).clamp(0.05, 1.0);
    let esr_points = model.esr_curve().points();
    let r_max = esr_points.iter().map(|&(_, r)| r.get()).fold(0.0, f64::max);
    let r_min = esr_points
        .iter()
        .map(|&(_, r)| r.get())
        .fold(f64::INFINITY, f64::min);
    let esr_ratio = if r_min > 0.0 {
        (r_max / r_min).max(1.0)
    } else {
        1.0
    };

    // The buffer floor must clear the worst ESR dip any launch can cause
    // — certified peak current where a certificate exists, declared V_δ
    // otherwise — scaled to the top of the measured ESR curve.
    let v_delta_worst = plan
        .launches
        .iter()
        .map(|l| {
            certs
                .iter()
                .find(|cert| cert.task == l.task)
                .and_then(|cert| cert.v_delta_v)
                .unwrap_or(l.v_delta)
        })
        .fold(0.0, f64::max);
    let v_floor = model.v_off().get() + v_delta_worst * esr_ratio;
    let v_start = plan
        .v_start
        .map_or(model.v_high(), Volts::new)
        .get()
        .max(v_floor);
    let initial_mj = 0.5 * c * (v_start * v_start - v_floor * v_floor) * 1e3;

    let power = Watts::from_milli(plan.recharge_power_mw).get();
    let mut credit_mj = initial_mj;
    let mut demand_mj = 0.0;
    let mut margin_mj = f64::INFINITY;
    let mut failing = None;
    let mut certified_launches = 0usize;
    let mut t_prev = 0.0f64;
    for (i, launch) in plan.launches.iter().enumerate() {
        let gap = (launch.start_s - t_prev).max(0.0);
        t_prev = launch.start_s;
        credit_mj += power * (cfg.duty_min * gap - cfg.outage_s).max(0.0) * 1e3;
        let e_mj = match certs.iter().find(|cert| cert.task == launch.task) {
            Some(cert) => {
                certified_launches += 1;
                cert.energy_mj_hi
            }
            None => launch.energy_mj,
        };
        demand_mj += e_mj / eta_off;
        let margin_here = credit_mj - demand_mj;
        if margin_here < margin_mj {
            margin_mj = margin_here;
        }
        if margin_here < 0.0 && failing.is_none() {
            failing = Some(i);
        }
    }
    if plan.launches.is_empty() {
        margin_mj = credit_mj;
    }
    AdmissionReport {
        decision: if failing.is_none() {
            AdmissionDecision::Admit
        } else {
            AdmissionDecision::Reject
        },
        demand_mj,
        credit_mj,
        margin_mj,
        failing_launch: failing,
        certified_launches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cert(task: &str, e_hi_mj: f64, v_delta: f64) -> CertificateDto {
        CertificateDto {
            task: task.to_string(),
            energy_mj_lo: e_hi_mj * 0.8,
            energy_mj_hi: e_hi_mj,
            time_s_lo: 0.01,
            time_s_hi: 0.02,
            peak_ma: 25.0,
            v_delta_v: Some(v_delta),
            paths: 1,
            loops: 0,
        }
    }

    #[test]
    fn declared_feasible_plan_is_admitted_without_certs() {
        let model = PowerSystemModel::capybara();
        let plan = PlanSpec::verified_example();
        let report = admit_plan(&model, &plan, &[], &AdmissionConfig::default());
        assert!(report.admitted(), "{report:?}");
        assert_eq!(report.certified_launches, 0);
        assert!(report.margin_mj > 0.0);
    }

    #[test]
    fn inflated_certificate_flips_the_decision() {
        let model = PowerSystemModel::capybara();
        let plan = PlanSpec::verified_example();
        let certs = vec![cert("sense", 500.0, 0.05)];
        let report = admit_plan(&model, &plan, &certs, &AdmissionConfig::default());
        assert!(!report.admitted());
        assert_eq!(report.failing_launch, Some(0));
        assert!(report.margin_mj < 0.0);
        assert!(report.certified_launches >= 1);
    }

    #[test]
    fn policy_hook_reports_a_stable_name() {
        let policy = WcecAdmission::default();
        assert_eq!(policy.name(), "wcec-admission");
        let model = PowerSystemModel::capybara();
        let report = policy.admit(&model, &PlanSpec::verified_example(), &[]);
        assert!(report.admitted());
    }

    #[test]
    fn empty_plan_is_admitted_with_full_credit() {
        let model = PowerSystemModel::capybara();
        let plan = PlanSpec {
            recharge_power_mw: 5.0,
            v_start: None,
            period_s: None,
            launches: Vec::new(),
        };
        let report = admit_plan(&model, &plan, &[], &AdmissionConfig::default());
        assert!(report.admitted());
        assert!(report.margin_mj > 0.0);
    }
}

//! Adaptive re-profiling under changing harvest (§V-B).
//!
//! Culpeo-R's estimates bake in the harvesting conditions at profiling
//! time (§IV-D), so the paper pairs it "with scheduler policies that
//! re-profile as harvestable power changes": a charge-rate change beyond a
//! threshold triggers re-collection of `V_safe` and `V_δ`. This module
//! implements that trigger and a beacon workload that exercises it under
//! a fading sun, comparing a static profile against the adaptive policy.
//!
//! Re-profiling is not free — it executes the real task once from a full
//! buffer — which is exactly why it should run only when the measured
//! charge rate moves, not on a timer.

use culpeo::{runtime, PowerSystemModel};
use culpeo_device::{profile_task, Profiler, UArchProfiler};
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{Harvester, PowerSystem, RunConfig};
use culpeo_units::{Amps, Seconds, Volts, Watts};

/// The adaptive policy's knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Re-profile when the measured charge rate differs from the
    /// profiling-time rate by more than this fraction.
    pub rate_change_threshold: f64,
    /// How long the idle charge-rate measurement observes the buffer.
    pub rate_window: Seconds,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            rate_change_threshold: 0.3,
            rate_window: Seconds::new(1.0),
        }
    }
}

/// Statistics from one beacon run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaconStats {
    /// Beacon slots that arrived.
    pub slots: u32,
    /// Beacons transmitted successfully.
    pub sent: u32,
    /// Brownouts suffered mid-transmission.
    pub brownouts: u32,
    /// Times the adaptive policy re-profiled.
    pub reprofiles: u32,
}

/// A piecewise-constant harvest schedule: `(start_time, power)` entries,
/// ascending by time; the last entry holds to the end.
pub type HarvestSchedule = [(Seconds, Watts)];

fn harvest_at(schedule: &HarvestSchedule, t: Seconds) -> Watts {
    let mut level = schedule.first().map_or(Watts::ZERO, |&(_, w)| w);
    for &(start, w) in schedule {
        if t >= start {
            level = w;
        }
    }
    level
}

/// Runs a periodic beacon (one `task` transmission every `period`) for
/// `duration` under the given harvest schedule.
///
/// With `adaptive = None` the estimate from the initial profiling run is
/// used for the whole trial (the §IV-D pitfall). With
/// `adaptive = Some(cfg)`, the scheduler measures the charge rate before
/// each slot and re-profiles when it has drifted beyond the threshold.
#[must_use]
pub fn run_beacon(
    task: &LoadProfile,
    model: &PowerSystemModel,
    schedule: &HarvestSchedule,
    period: Seconds,
    duration: Seconds,
    adaptive: Option<AdaptiveConfig>,
) -> BeaconStats {
    let dt = Seconds::from_micro(100.0);
    let mut sys = PowerSystem::builder().build();
    let pad = Volts::from_milli(5.0);

    // Initial profiling from a full buffer under the schedule's first level.
    sys.set_harvester(Harvester::ConstantPower(harvest_at(
        schedule,
        Seconds::ZERO,
    )));
    let mut v_safe = profile_now(&mut sys, task, model);
    let mut profiled_rate = measure_rate(&mut sys, dt, Seconds::new(1.0));
    let mut reprofiles = 0u32;

    let mut stats = BeaconStats {
        slots: 0,
        sent: 0,
        brownouts: 0,
        reprofiles: 0,
    };

    let mut next_slot = period;
    while sys.time() < duration {
        // Track the harvest schedule.
        sys.set_harvester(Harvester::ConstantPower(harvest_at(schedule, sys.time())));
        if sys.time() >= next_slot {
            stats.slots += 1;
            next_slot += period;

            if let Some(cfg) = adaptive {
                // §V-B trigger: has the charge rate drifted? The rate is
                // only observable while the charger is actually running —
                // near V_high the input booster cuts off and dV/dt says
                // nothing about the harvest. (A full buffer also means
                // maximum dispatch margin, so skipping the check there is
                // safe.)
                let charging_observable = sys.v_node() < model.v_high() - Volts::from_milli(20.0);
                if charging_observable {
                    let rate = measure_rate(&mut sys, dt, cfg.rate_window);
                    let drift = (rate - profiled_rate).abs();
                    let threshold = profiled_rate.abs().max(1e-6) * cfg.rate_change_threshold;
                    if drift > threshold {
                        v_safe = profile_now(&mut sys, task, model);
                        profiled_rate = measure_rate(&mut sys, dt, cfg.rate_window);
                        reprofiles += 1;
                    }
                }
            }

            // Wait (bounded by the slot period) for the gate, then send.
            // The monitor must be delivering too — after a brownout the
            // device cannot run anything until fully recharged.
            let deadline = sys.time() + period * 0.9;
            while (sys.v_node() < v_safe + pad || !sys.monitor().output_enabled())
                && sys.time() < deadline
            {
                sys.step(Amps::ZERO, dt);
            }
            if sys.v_node() >= v_safe + pad && sys.monitor().output_enabled() {
                let out = sys.run_profile(task, RunConfig::coarse());
                if out.completed() {
                    stats.sent += 1;
                } else {
                    stats.brownouts += 1;
                }
            }
        } else {
            sys.step(Amps::ZERO, dt);
        }
    }
    stats.reprofiles = reprofiles;
    stats
}

/// Charges to full and profiles the task once (the §V-C procedure),
/// returning the fresh `V_safe`.
fn profile_now(sys: &mut PowerSystem, task: &LoadProfile, model: &PowerSystemModel) -> Volts {
    // Top the buffer up first: profiling must start from a known-safe
    // state. A dead harvester bounds the wait.
    let dt = Seconds::from_micro(100.0);
    let give_up = sys.time() + Seconds::new(120.0);
    while sys.v_node() < model.v_high() - Volts::from_milli(5.0) && sys.time() < give_up {
        sys.step(Amps::ZERO, dt);
    }
    profile_task(sys, task, &Profiler::UArch(UArchProfiler::default()))
        .map(|run| runtime::compute_vsafe(&run.observation, model).v_safe)
        .unwrap_or_else(|| model.v_high())
}

/// Measures the idle charge rate (volts/second) over `window`.
fn measure_rate(sys: &mut PowerSystem, dt: Seconds, window: Seconds) -> f64 {
    let v0 = sys.v_node();
    let steps = window.steps(dt).max(1);
    for _ in 0..steps {
        sys.step(Amps::ZERO, dt);
    }
    (sys.v_node() - v0).get() / window.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_loadgen::peripheral::LoRaRadio;

    fn fading_sun() -> Vec<(Seconds, Watts)> {
        vec![
            (Seconds::ZERO, Watts::from_milli(20.0)),
            (Seconds::new(60.0), Watts::from_milli(8.0)),
            // The final era is energy-deficient for the 8 s beacon
            // cadence (~1.9 mW duty), so the buffer grinds down to the
            // dispatch gate instead of hovering near full.
            (Seconds::new(120.0), Watts::from_milli(1.5)),
        ]
    }

    fn beacon_task() -> LoadProfile {
        LoRaRadio::default().profile()
    }

    #[test]
    fn static_profile_browns_out_as_the_sun_fades() {
        let model = PowerSystemModel::capybara();
        let stats = run_beacon(
            &beacon_task(),
            &model,
            &fading_sun(),
            Seconds::new(8.0),
            Seconds::new(240.0),
            None,
        );
        assert!(stats.slots >= 20, "{stats:?}");
        assert!(
            stats.brownouts > 0,
            "the 20 mW-era estimate must fail in the 2 mW era: {stats:?}"
        );
    }

    #[test]
    fn adaptive_reprofiling_stays_safe() {
        let model = PowerSystemModel::capybara();
        let stats = run_beacon(
            &beacon_task(),
            &model,
            &fading_sun(),
            Seconds::new(8.0),
            Seconds::new(240.0),
            Some(AdaptiveConfig::default()),
        );
        assert_eq!(stats.brownouts, 0, "{stats:?}");
        assert!(
            stats.reprofiles >= 1 && stats.reprofiles <= 4,
            "re-profiling should fire per harvest change, not per slot: {stats:?}"
        );
        assert!(stats.sent > 0);
    }

    #[test]
    fn stable_harvest_never_reprofiles() {
        let model = PowerSystemModel::capybara();
        let steady = vec![(Seconds::ZERO, Watts::from_milli(10.0))];
        let stats = run_beacon(
            &beacon_task(),
            &model,
            &steady,
            Seconds::new(8.0),
            Seconds::new(120.0),
            Some(AdaptiveConfig::default()),
        );
        assert_eq!(stats.reprofiles, 0, "{stats:?}");
        assert_eq!(stats.brownouts, 0);
    }

    #[test]
    fn harvest_schedule_lookup() {
        let s = fading_sun();
        assert_eq!(harvest_at(&s, Seconds::ZERO), Watts::from_milli(20.0));
        assert_eq!(harvest_at(&s, Seconds::new(59.0)), Watts::from_milli(20.0));
        assert_eq!(harvest_at(&s, Seconds::new(60.0)), Watts::from_milli(8.0));
        assert_eq!(harvest_at(&s, Seconds::new(500.0)), Watts::from_milli(1.5));
    }
}

//! Charge policies: where the scheduler's dispatch thresholds come from.
//!
//! Both policies profile every task once, before the application starts,
//! from a full buffer (the paper's setup: harvested power is stable, so
//! Culpeo-R-ISR profiles one time). They differ in what they *conclude*
//! from the profiling run:
//!
//! * **CatNap** converts the start/end voltage pair into an energy and
//!   assumes energy is the whole story (voltage-as-energy);
//! * **Culpeo** runs the Culpeo-R estimator on the start/min/final
//!   observation, separating the recoverable ESR dip from consumed energy
//!   and scaling both to the power-off threshold.

use std::collections::HashMap;

use culpeo::baseline::{vsafe_from_voltage_pair, CatnapEstimator};
use culpeo::compose::{vsafe_multi, TaskRequirement};
use culpeo::{PowerSystemModel, TaskId, VsafeEstimate};
use culpeo_device::{measure_for_catnap, profile_task, IsrProfiler, Profiler};
use culpeo_powersim::PowerSystem;
use culpeo_units::{Joules, Volts};

use crate::AppSpec;

/// Which charge-management system drives dispatch decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargePolicy {
    /// The energy-only baseline (voltage-as-energy profiling, published
    /// CatNap measurement timing).
    Catnap,
    /// CatNap's scheduling structure with thresholds from Culpeo-R-ISR.
    Culpeo,
}

impl ChargePolicy {
    /// Display label used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ChargePolicy::Catnap => "Catnap",
            ChargePolicy::Culpeo => "Culpeo",
        }
    }
}

/// The per-app thresholds a policy derives during its profiling phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyThresholds {
    /// Per-task safe starting voltage.
    pub task_vsafe: HashMap<TaskId, Volts>,
    /// Per-event-class safe voltage for the whole critical sequence
    /// (`V_safe_multi` for Culpeo, energy-bucket sum for CatNap).
    pub class_vsafe: HashMap<String, Volts>,
    /// Voltage above which low-priority background work may run.
    pub lp_threshold: Volts,
}

/// Profiles every task of `app` on a fresh plant and derives the policy's
/// thresholds.
///
/// Profiling runs from a full buffer with charging disabled, matching the
/// paper's setup; the plant used here is a *copy* — the trial runs on its
/// own instance.
#[must_use]
pub fn derive_thresholds(
    app: &AppSpec,
    policy: ChargePolicy,
    model: &PowerSystemModel,
) -> PolicyThresholds {
    // Per-task estimates: (vsafe, requirement for composition).
    let mut task_vsafe = HashMap::new();
    let mut requirements: HashMap<TaskId, TaskRequirement> = HashMap::new();

    for task in &app.tasks {
        let (vsafe, req) = match policy {
            ChargePolicy::Catnap => profile_catnap(app, task.id, model),
            ChargePolicy::Culpeo => profile_culpeo(app, task.id, model),
        };
        task_vsafe.insert(task.id, vsafe);
        requirements.insert(task.id, req);
    }

    // Per-class sequence thresholds.
    let mut class_vsafe = HashMap::new();
    for class in &app.classes {
        let seq: Vec<TaskRequirement> = class.sequence.iter().map(|id| requirements[id]).collect();
        let v = match policy {
            // CatNap's "energy bucket": energies add, ESR ignored.
            ChargePolicy::Catnap => {
                let total: f64 = seq.iter().map(|r| r.buffer_energy.get()).sum();
                vsafe_from_voltage_pair(
                    Volts::from_squared(
                        model.v_off().squared() + 2.0 * total / app.capacitance.get(),
                    ),
                    model.v_off(),
                    model,
                )
            }
            ChargePolicy::Culpeo => vsafe_multi(&seq, app.capacitance, model.v_off()),
        };
        class_vsafe.insert(class.name.clone(), v);
    }

    // Low-priority threshold: background work may run only if, after one
    // background chunk, the buffer still satisfies the most demanding
    // event class. Both policies use their own numbers — CatNap's
    // underestimates make it drain the buffer too far (§VII-C).
    let worst_class = class_vsafe
        .values()
        .fold(model.v_off(), |acc, &v| acc.max(v));
    let lp_threshold = match app.background {
        None => worst_class,
        Some(bg) => {
            let bg_req = requirements[&bg];
            match policy {
                ChargePolicy::Catnap => Volts::from_squared(
                    worst_class.squared()
                        + 2.0 * bg_req.buffer_energy.get() / app.capacitance.get(),
                ),
                ChargePolicy::Culpeo => {
                    // Compose the background chunk before a pseudo-task
                    // standing for the worst event class.
                    let worst_req = TaskRequirement {
                        buffer_energy: Joules::new(
                            0.5 * app.capacitance.get()
                                * (worst_class.squared() - model.v_off().squared()).max(0.0),
                        ),
                        v_delta: Volts::ZERO,
                    };
                    vsafe_multi(&[bg_req, worst_req], app.capacitance, model.v_off())
                }
            }
        }
    };

    PolicyThresholds {
        task_vsafe,
        class_vsafe,
        lp_threshold,
    }
}

/// A fresh, full, isolated plant for one profiling run.
fn profiling_plant(app: &AppSpec) -> PowerSystem {
    PowerSystem::capybara_with_bank(app.capacitance, app.esr)
}

fn profile_culpeo(app: &AppSpec, id: TaskId, model: &PowerSystemModel) -> (Volts, TaskRequirement) {
    let task = app.task(id);
    let mut sys = profiling_plant(app);
    let est = profile_task(&mut sys, &task.load, &Profiler::Isr(IsrProfiler::msp430()))
        .map(|run| culpeo::runtime::compute_vsafe(&run.observation, model))
        // A task too hungry to profile even from V_high gets the paper's
        // default: dispatch only from a full buffer.
        .unwrap_or(VsafeEstimate {
            v_safe: model.v_high(),
            v_delta: Volts::ZERO,
            buffer_energy: Joules::ZERO,
        });
    (est.v_safe, TaskRequirement::from_estimate(&est))
}

fn profile_catnap(app: &AppSpec, id: TaskId, model: &PowerSystemModel) -> (Volts, TaskRequirement) {
    let task = app.task(id);
    let mut sys = profiling_plant(app);
    let estimator = CatnapEstimator::published();
    match measure_for_catnap(&mut sys, &task.load, estimator.measurement_delay) {
        Some(m) => {
            let vsafe = estimator.vsafe(m.v_start, m.v_end, model);
            // CatNap's energy account: everything it saw is "energy".
            let energy = Joules::new(
                0.5 * app.capacitance.get() * (m.v_start.squared() - m.v_end.squared()),
            );
            (
                vsafe,
                TaskRequirement {
                    buffer_energy: energy,
                    v_delta: Volts::ZERO, // ESR does not exist in CatNap's model
                },
            )
        }
        None => (
            model.v_high(),
            TaskRequirement {
                buffer_energy: Joules::ZERO,
                v_delta: Volts::ZERO,
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn culpeo_thresholds_exceed_catnap_for_radio_heavy_app() {
        let app = apps::responsive_reporting();
        let model = apps::model_for(&app);
        let cat = derive_thresholds(&app, ChargePolicy::Catnap, &model);
        let cul = derive_thresholds(&app, ChargePolicy::Culpeo, &model);
        // The report sequence ends in a BLE transmission whose ESR drop
        // CatNap cannot see: its class threshold must be lower.
        let class = "report";
        assert!(
            cul.class_vsafe[class] > cat.class_vsafe[class],
            "culpeo {} vs catnap {}",
            cul.class_vsafe[class],
            cat.class_vsafe[class]
        );
        // Same story for the LP threshold.
        assert!(cul.lp_threshold > cat.lp_threshold);
    }

    #[test]
    fn thresholds_are_within_the_operating_window() {
        for app in [
            apps::periodic_sensing(),
            apps::responsive_reporting(),
            apps::noise_monitoring(),
        ] {
            let model = apps::model_for(&app);
            for policy in [ChargePolicy::Catnap, ChargePolicy::Culpeo] {
                let th = derive_thresholds(&app, policy, &model);
                for (&id, &v) in &th.task_vsafe {
                    assert!(
                        v >= model.v_off() && v <= model.v_high() + Volts::from_milli(1.0),
                        "{} {:?} task {:?}: vsafe {v}",
                        app.name,
                        policy,
                        id
                    );
                }
            }
        }
    }

    #[test]
    fn class_threshold_at_least_max_member_for_culpeo() {
        let app = apps::responsive_reporting();
        let model = apps::model_for(&app);
        let th = derive_thresholds(&app, ChargePolicy::Culpeo, &model);
        for class in &app.classes {
            let max_task = class
                .sequence
                .iter()
                .map(|id| th.task_vsafe[id])
                .fold(Volts::ZERO, Volts::max);
            assert!(
                th.class_vsafe[&class.name] >= max_task - Volts::from_milli(20.0),
                "class {} threshold {} vs max member {}",
                class.name,
                th.class_vsafe[&class.name],
                max_task
            );
        }
    }

    #[test]
    fn policy_labels() {
        assert_eq!(ChargePolicy::Catnap.label(), "Catnap");
        assert_eq!(ChargePolicy::Culpeo.label(), "Culpeo");
    }
}

//! Property tests on the scheduler layer: across random seeds and rates,
//! the Culpeo policy's guarantees hold relative to CatNap's.

use culpeo_sched::{apps, derive_thresholds, run_trial, ChargePolicy};
use culpeo_units::Seconds;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Across seeds, Culpeo's RR capture is never worse than CatNap's,
    /// and Culpeo suffers no brownouts.
    #[test]
    fn culpeo_dominates_catnap_on_rr(seed in 0u64..64) {
        let app = apps::responsive_reporting();
        let duration = Seconds::new(120.0);
        let cul = run_trial(&app, ChargePolicy::Culpeo, duration, seed);
        let cat = run_trial(&app, ChargePolicy::Catnap, duration, seed);
        prop_assert_eq!(cul.brownouts, 0, "culpeo browned out");
        prop_assert!(
            cul.class("report").capture_rate() >= cat.class("report").capture_rate(),
            "culpeo {:?} vs catnap {:?}",
            cul.class("report"),
            cat.class("report")
        );
    }

    /// Rate scaling preserves the zero-brownout property for Culpeo on PS.
    #[test]
    fn culpeo_ps_never_browns_out_across_rates(
        seed in 0u64..32,
        scale in 0.7..2.0f64,
    ) {
        let app = apps::periodic_sensing().with_rate_scaled(scale);
        let r = run_trial(&app, ChargePolicy::Culpeo, Seconds::new(90.0), seed);
        prop_assert_eq!(r.brownouts, 0);
    }

    /// Both policies generate identical event timelines for the same
    /// seed: differences in capture are attributable to dispatch policy
    /// alone.
    #[test]
    fn seeded_arrivals_are_policy_independent(seed in 0u64..64) {
        let app = apps::noise_monitoring();
        let duration = Seconds::new(60.0);
        let a = run_trial(&app, ChargePolicy::Culpeo, duration, seed);
        let b = run_trial(&app, ChargePolicy::Catnap, duration, seed);
        for (class_a, class_b) in a.per_class.iter().zip(&b.per_class) {
            prop_assert_eq!(&class_a.0, &class_b.0);
            prop_assert_eq!(class_a.1.generated, class_b.1.generated);
        }
    }
}

/// Thresholds are deterministic: deriving twice gives identical tables.
#[test]
fn threshold_derivation_is_deterministic() {
    let app = apps::responsive_reporting();
    let model = apps::model_for(&app);
    for policy in [ChargePolicy::Catnap, ChargePolicy::Culpeo] {
        let a = derive_thresholds(&app, policy, &model);
        let b = derive_thresholds(&app, policy, &model);
        assert_eq!(a, b);
    }
}

/// Culpeo's per-class thresholds always sit inside the operating window.
#[test]
fn thresholds_inside_operating_window() {
    for app in [
        apps::periodic_sensing(),
        apps::responsive_reporting(),
        apps::noise_monitoring(),
    ] {
        let model = apps::model_for(&app);
        let th = derive_thresholds(&app, ChargePolicy::Culpeo, &model);
        for (name, &v) in &th.class_vsafe {
            assert!(
                v > model.v_off() && v <= model.v_high(),
                "{}: class {} threshold {} outside ({}, {}]",
                app.name,
                name,
                v,
                model.v_off(),
                model.v_high()
            );
        }
        assert!(
            th.lp_threshold
                >= *th
                    .class_vsafe
                    .values()
                    .max_by(|a, b| a.get().total_cmp(&b.get()))
                    .unwrap()
        );
    }
}

//! The inputs a lint battery runs over.
//!
//! [`TraceInput`] is a *lenient* view of a current trace: raw `f64`
//! samples that may be non-finite or negative, exactly as a corrupted
//! capture would arrive, plus the file's own timestamps when it came from
//! CSV. [`PlanSpec`] — the JSON schedule description the plan lints
//! check against Theorem 1 — is a wire type owned by `culpeo-api` and
//! re-exported here unchanged. [`AnalysisInput`] bundles everything one
//! battery run sees.

use culpeo_loadgen::io::RawTraceFile;
use culpeo_loadgen::CurrentTrace;
use culpeo_units::{Amps, Seconds};

pub use culpeo_api::plan::{LaunchSpec, PlanSpec};

use crate::spec::SystemSpec;

/// One trace, pre-validation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInput {
    /// Where the trace came from (path or in-memory label); used as the
    /// diagnostic locus.
    pub locus: String,
    /// The trace's own label.
    pub label: String,
    /// Sample period in seconds.
    pub dt_s: f64,
    /// Raw current samples in amps; may contain NaN, ±inf, negatives.
    pub samples: Vec<f64>,
    /// Per-sample timestamps as written in the file, when known. In-memory
    /// traces have none (their timebase is `dt` by construction).
    pub timestamps: Option<Vec<f64>>,
}

impl TraceInput {
    /// Wraps a structurally parsed CSV file.
    #[must_use]
    pub fn from_raw_file(locus: impl Into<String>, raw: &RawTraceFile) -> Self {
        Self {
            locus: locus.into(),
            label: raw.label.clone(),
            dt_s: raw.dt.get(),
            samples: raw.currents(),
            timestamps: Some(raw.timestamps()),
        }
    }

    /// Wraps an in-memory trace (harness pre-flight path).
    #[must_use]
    pub fn from_trace(locus: impl Into<String>, trace: &CurrentTrace) -> Self {
        Self {
            locus: locus.into(),
            label: trace.label().to_string(),
            dt_s: trace.dt().get(),
            samples: trace.samples().iter().map(|a| a.get()).collect(),
            timestamps: None,
        }
    }

    /// Rebuilds a [`CurrentTrace`] — only possible once the samples are
    /// known clean (finite, non-negative, non-empty, positive dt).
    #[must_use]
    pub fn to_current_trace(&self) -> Option<CurrentTrace> {
        let clean = !self.samples.is_empty()
            && self.dt_s.is_finite()
            && self.dt_s > 0.0
            && self.samples.iter().all(|&s| s.is_finite() && s >= 0.0);
        clean.then(|| {
            CurrentTrace::new(
                self.label.clone(),
                Seconds::new(self.dt_s),
                self.samples.iter().map(|&s| Amps::new(s)).collect(),
            )
        })
    }
}

/// Everything one battery run sees.
#[derive(Debug, Clone)]
pub struct AnalysisInput<'a> {
    /// The system spec under analysis.
    pub spec: &'a SystemSpec,
    /// Locus prefix for spec diagnostics (usually the file path).
    pub spec_locus: &'a str,
    /// Zero or more traces to lint against the spec.
    pub traces: &'a [TraceInput],
    /// An optional schedule to lint against the spec.
    pub plan: Option<&'a PlanSpec>,
    /// Locus prefix for plan diagnostics.
    pub plan_locus: &'a str,
}

impl<'a> AnalysisInput<'a> {
    /// A spec-only input.
    #[must_use]
    pub fn spec_only(spec: &'a SystemSpec, spec_locus: &'a str) -> Self {
        Self {
            spec,
            spec_locus,
            traces: &[],
            plan: None,
            plan_locus: "plan",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_loadgen::io;

    #[test]
    fn raw_file_view_preserves_corruption() {
        let text = "# label: dirty\n# dt_us: 100\n0.0,NaN\n0.0001,-0.002\n";
        let raw = io::parse_raw(text).unwrap();
        let input = TraceInput::from_raw_file("dirty.csv", &raw);
        assert_eq!(input.label, "dirty");
        assert!(input.samples[0].is_nan());
        assert_eq!(input.samples[1], -0.002);
        assert!(input.to_current_trace().is_none());
    }

    #[test]
    fn clean_input_rebuilds_a_trace() {
        let text = "# dt_us: 100\n0.0,0.001\n0.0001,0.002\n";
        let raw = io::parse_raw(text).unwrap();
        let input = TraceInput::from_raw_file("ok.csv", &raw);
        let trace = input.to_current_trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert!(trace.dt().approx_eq(Seconds::from_micro(100.0), 1e-15));
    }

    #[test]
    fn plan_reexport_is_the_api_type() {
        // The shape itself is tested in `culpeo-api`; this pins the
        // re-export so `culpeo_analyze::PlanSpec` stays the same type.
        let plan: culpeo_api::PlanSpec = PlanSpec::figure5_example();
        assert_eq!(plan.launches.len(), 2);
    }
}

//! The inputs a lint battery runs over.
//!
//! [`TraceInput`] is a *lenient* view of a current trace: raw `f64`
//! samples that may be non-finite or negative, exactly as a corrupted
//! capture would arrive, plus the file's own timestamps when it came from
//! CSV. [`PlanSpec`] is the JSON schedule description the plan lints
//! check against Theorem 1. [`AnalysisInput`] bundles everything one
//! battery run sees.

use culpeo_loadgen::io::RawTraceFile;
use culpeo_loadgen::CurrentTrace;
use culpeo_units::{Amps, Seconds};
use serde::{Deserialize, Serialize};

use crate::spec::SystemSpec;

/// One trace, pre-validation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInput {
    /// Where the trace came from (path or in-memory label); used as the
    /// diagnostic locus.
    pub locus: String,
    /// The trace's own label.
    pub label: String,
    /// Sample period in seconds.
    pub dt_s: f64,
    /// Raw current samples in amps; may contain NaN, ±inf, negatives.
    pub samples: Vec<f64>,
    /// Per-sample timestamps as written in the file, when known. In-memory
    /// traces have none (their timebase is `dt` by construction).
    pub timestamps: Option<Vec<f64>>,
}

impl TraceInput {
    /// Wraps a structurally parsed CSV file.
    #[must_use]
    pub fn from_raw_file(locus: impl Into<String>, raw: &RawTraceFile) -> Self {
        Self {
            locus: locus.into(),
            label: raw.label.clone(),
            dt_s: raw.dt.get(),
            samples: raw.currents(),
            timestamps: Some(raw.timestamps()),
        }
    }

    /// Wraps an in-memory trace (harness pre-flight path).
    #[must_use]
    pub fn from_trace(locus: impl Into<String>, trace: &CurrentTrace) -> Self {
        Self {
            locus: locus.into(),
            label: trace.label().to_string(),
            dt_s: trace.dt().get(),
            samples: trace.samples().iter().map(|a| a.get()).collect(),
            timestamps: None,
        }
    }

    /// Rebuilds a [`CurrentTrace`] — only possible once the samples are
    /// known clean (finite, non-negative, non-empty, positive dt).
    #[must_use]
    pub fn to_current_trace(&self) -> Option<CurrentTrace> {
        let clean = !self.samples.is_empty()
            && self.dt_s.is_finite()
            && self.dt_s > 0.0
            && self.samples.iter().all(|&s| s.is_finite() && s >= 0.0);
        clean.then(|| {
            CurrentTrace::new(
                self.label.clone(),
                Seconds::new(self.dt_s),
                self.samples.iter().map(|&s| Amps::new(s)).collect(),
            )
        })
    }
}

/// A planned schedule, as JSON:
///
/// ```json
/// {
///   "recharge_power_mw": 8.0,
///   "v_start": 2.56,
///   "launches": [
///     { "task": "sense", "start_s": 0.0, "energy_mj": 60.0,
///       "v_delta": 0.05, "v_safe": 1.7 },
///     { "task": "radio", "start_s": 0.5, "energy_mj": 3.0,
///       "v_delta": 0.35, "v_safe": 2.1 }
///   ]
/// }
/// ```
///
/// The buffer parameters (`C`, `V_off`, `V_high`) come from the system
/// spec the plan is analyzed against, not from the plan file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSpec {
    /// Assumed constant harvested power while idle, in milliwatts.
    pub recharge_power_mw: f64,
    /// Buffer voltage at the schedule origin; defaults to `V_high`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub v_start: Option<f64>,
    /// The task launches, in start order.
    pub launches: Vec<LaunchSpec>,
}

/// One planned task launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchSpec {
    /// Task name, used in diagnostics.
    pub task: String,
    /// Start time relative to the schedule origin, in seconds.
    pub start_s: f64,
    /// Worst-case buffer energy the task draws, in millijoules.
    pub energy_mj: f64,
    /// Worst-case ESR-induced voltage dip `V_δ`, in volts.
    pub v_delta: f64,
    /// The task's registered `V_safe` estimate, in volts. Theorem 1
    /// cannot be evaluated for a task without one (lint C022).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub v_safe: Option<f64>,
}

impl PlanSpec {
    /// A plan reproducing the paper's Figure 5 discrepancy: energy enough
    /// for both tasks, but the radio launches below its ESR-aware
    /// `V_safe`. Useful as a documented example and in tests.
    #[must_use]
    pub fn figure5_example() -> Self {
        Self {
            recharge_power_mw: 8.0,
            v_start: Some(2.56),
            launches: vec![
                LaunchSpec {
                    task: "sense".to_string(),
                    start_s: 0.0,
                    energy_mj: 60.0,
                    v_delta: 0.05,
                    v_safe: Some(1.7),
                },
                LaunchSpec {
                    task: "radio".to_string(),
                    start_s: 0.5,
                    energy_mj: 3.0,
                    v_delta: 0.35,
                    v_safe: Some(2.1),
                },
            ],
        }
    }
}

/// Everything one battery run sees.
#[derive(Debug, Clone)]
pub struct AnalysisInput<'a> {
    /// The system spec under analysis.
    pub spec: &'a SystemSpec,
    /// Locus prefix for spec diagnostics (usually the file path).
    pub spec_locus: &'a str,
    /// Zero or more traces to lint against the spec.
    pub traces: &'a [TraceInput],
    /// An optional schedule to lint against the spec.
    pub plan: Option<&'a PlanSpec>,
    /// Locus prefix for plan diagnostics.
    pub plan_locus: &'a str,
}

impl<'a> AnalysisInput<'a> {
    /// A spec-only input.
    #[must_use]
    pub fn spec_only(spec: &'a SystemSpec, spec_locus: &'a str) -> Self {
        Self {
            spec,
            spec_locus,
            traces: &[],
            plan: None,
            plan_locus: "plan",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_loadgen::io;

    #[test]
    fn raw_file_view_preserves_corruption() {
        let text = "# label: dirty\n# dt_us: 100\n0.0,NaN\n0.0001,-0.002\n";
        let raw = io::parse_raw(text).unwrap();
        let input = TraceInput::from_raw_file("dirty.csv", &raw);
        assert_eq!(input.label, "dirty");
        assert!(input.samples[0].is_nan());
        assert_eq!(input.samples[1], -0.002);
        assert!(input.to_current_trace().is_none());
    }

    #[test]
    fn clean_input_rebuilds_a_trace() {
        let text = "# dt_us: 100\n0.0,0.001\n0.0001,0.002\n";
        let raw = io::parse_raw(text).unwrap();
        let input = TraceInput::from_raw_file("ok.csv", &raw);
        let trace = input.to_current_trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert!(trace.dt().approx_eq(Seconds::from_micro(100.0), 1e-15));
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = PlanSpec::figure5_example();
        let json = serde_json::to_string(&plan).unwrap();
        let back: PlanSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.launches[1].v_safe, Some(2.1));
    }

    #[test]
    fn missing_v_safe_deserialises_as_none() {
        let json = r#"{
            "recharge_power_mw": 8.0,
            "launches": [
                { "task": "x", "start_s": 0.0, "energy_mj": 1.0, "v_delta": 0.1 }
            ]
        }"#;
        let plan: PlanSpec = serde_json::from_str(json).unwrap();
        assert_eq!(plan.v_start, None);
        assert_eq!(plan.launches[0].v_safe, None);
    }
}

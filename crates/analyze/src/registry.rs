//! The pass registry: the full battery, named and enumerable.

use crate::diag::Report;
use crate::input::AnalysisInput;
use crate::lints;

/// One registered lint pass.
pub struct Pass {
    /// Stable pass name (kebab-case, shown by `--list-passes`-style UIs).
    pub name: &'static str,
    /// The diagnostic codes this pass can emit.
    pub codes: &'static [&'static str],
    /// The pass body.
    pub run: fn(&AnalysisInput<'_>, &mut Report),
}

/// An ordered collection of lint passes.
pub struct Registry {
    passes: Vec<Pass>,
}

impl Registry {
    /// The full battery, in reporting order: spec lints first (everything
    /// downstream interprets inputs through the spec), then traces, then
    /// the plan.
    #[must_use]
    pub fn default_battery() -> Self {
        Self {
            passes: vec![
                Pass {
                    name: "spec-esr-exclusivity",
                    codes: &["C001"],
                    run: lints::spec::esr_exclusivity,
                },
                Pass {
                    name: "spec-esr-curve-shape",
                    codes: &["C002"],
                    run: lints::spec::esr_curve_shape,
                },
                Pass {
                    name: "spec-esr-monotone",
                    codes: &["C003"],
                    run: lints::spec::esr_monotone,
                },
                Pass {
                    name: "spec-efficiency",
                    codes: &["C004"],
                    run: lints::spec::efficiency_shape,
                },
                Pass {
                    name: "spec-thresholds",
                    codes: &["C005"],
                    run: lints::spec::thresholds,
                },
                Pass {
                    name: "spec-plausibility",
                    codes: &["C006"],
                    run: lints::spec::plausibility,
                },
                Pass {
                    name: "trace-finiteness",
                    codes: &["C010"],
                    run: lints::trace::finiteness,
                },
                Pass {
                    name: "trace-sampling",
                    codes: &["C011"],
                    run: lints::trace::sampling,
                },
                Pass {
                    name: "trace-negative-current",
                    codes: &["C012"],
                    run: lints::trace::negative_runs,
                },
                Pass {
                    name: "trace-esr-support",
                    codes: &["C013"],
                    run: lints::trace::esr_support,
                },
                Pass {
                    name: "trace-empty",
                    codes: &["C014"],
                    run: lints::trace::empty_trace,
                },
                Pass {
                    name: "plan-shape",
                    codes: &["C023"],
                    run: lints::plan::plan_shape,
                },
                Pass {
                    name: "plan-vsafe-registered",
                    codes: &["C022"],
                    run: lints::plan::vsafe_registered,
                },
                Pass {
                    name: "plan-brownout-reachability",
                    codes: &["C020", "C021"],
                    run: lints::plan::brownout_reachability,
                },
                Pass {
                    name: "schedule-verification",
                    codes: &["C040", "C041", "C042", "C043", "C044", "C045", "C046"],
                    run: lints::verify::schedule_verification,
                },
                Pass {
                    name: "wcec-certificate-drift",
                    codes: &["C050", "C051", "C052", "C053", "C054"],
                    run: lints::wcec::certificate_drift,
                },
            ],
        }
    }

    /// The registered passes, in run order.
    #[must_use]
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// Runs every pass over `input` and aggregates the findings.
    #[must_use]
    pub fn run(&self, input: &AnalysisInput<'_>) -> Report {
        let mut report = Report::new();
        for pass in &self.passes {
            (pass.run)(input, &mut report);
        }
        report
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::default_battery()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SystemSpec;

    #[test]
    fn battery_covers_every_documented_code() {
        let registry = Registry::default_battery();
        let mut codes: Vec<&str> = registry
            .passes()
            .iter()
            .flat_map(|p| p.codes)
            .copied()
            .collect();
        codes.sort_unstable();
        assert_eq!(
            codes,
            [
                "C001", "C002", "C003", "C004", "C005", "C006", "C010", "C011", "C012", "C013",
                "C014", "C020", "C021", "C022", "C023", "C040", "C041", "C042", "C043", "C044",
                "C045", "C046", "C050", "C051", "C052", "C053", "C054"
            ]
        );
    }

    #[test]
    fn pass_names_are_unique() {
        let registry = Registry::default_battery();
        let mut names: Vec<&str> = registry.passes().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry.passes().len());
    }

    #[test]
    fn reference_spec_passes_the_full_battery() {
        let spec = SystemSpec::capybara();
        let input = crate::input::AnalysisInput::spec_only(&spec, "reference");
        let report = Registry::default_battery().run(&input);
        assert!(report.is_clean(), "{}", report.render_human(false));
    }
}

//! Spec lints C001–C006: physics sanity for the power-system description.

use culpeo_capbank::Catalog;
use culpeo_units::Farads;

use crate::diag::{Diagnostic, Report};
use crate::input::AnalysisInput;
use crate::spec::{validate_esr_curve, SpecError};

/// C001: exactly one ESR description must be present.
pub fn esr_exclusivity(input: &AnalysisInput<'_>, report: &mut Report) {
    let locus = format!("{}: esr_ohms/esr_curve", input.spec_locus);
    match (input.spec.esr_ohms.is_some(), input.spec.esr_curve.is_some()) {
        (false, false) => report.push(
            Diagnostic::error("C001", locus, "no ESR given: specify esr_ohms or esr_curve")
                .with_help("a flat datasheet value (esr_ohms) is enough to start; a measured esr_curve is more accurate"),
        ),
        (true, true) => report.push(
            Diagnostic::error("C001", locus, "both esr_ohms and esr_curve given; they are mutually exclusive")
                .with_help("keep the measured esr_curve and delete esr_ohms"),
        ),
        _ => {}
    }
}

/// C002: the ESR curve must be structurally valid — non-empty, physical
/// points, strictly ascending frequencies with no duplicates.
pub fn esr_curve_shape(input: &AnalysisInput<'_>, report: &mut Report) {
    let Some(points) = &input.spec.esr_curve else {
        return;
    };
    match validate_esr_curve(points) {
        Ok(()) => {}
        Err(e) => {
            let index = match e {
                SpecError::EsrCurveUnsorted { index }
                | SpecError::EsrCurveDuplicate { index }
                | SpecError::EsrCurvePoint { index } => Some(index),
                _ => None,
            };
            let locus = match index {
                Some(i) => format!("{}: esr_curve[{i}]", input.spec_locus),
                None => format!("{}: esr_curve", input.spec_locus),
            };
            report.push(Diagnostic::error("C002", locus, e.to_string()).with_help(
                "list [hz, ohms] pairs with finite positive values, sorted by ascending frequency",
            ));
        }
    }
}

/// C003: a measured ESR curve must descend (weakly) with frequency.
///
/// Supercapacitor ESR falls as frequency rises — the slow ion-diffusion
/// resistance stops contributing (§II-C). A curve that *rises* with
/// frequency contradicts the device physics Culpeo-PG's ESR selection
/// rests on, and almost always means swapped columns or a corrupted
/// measurement, so this is an error, not a style nit.
pub fn esr_monotone(input: &AnalysisInput<'_>, report: &mut Report) {
    let Some(points) = &input.spec.esr_curve else {
        return;
    };
    if validate_esr_curve(points).is_err() {
        return; // C002 already fired; order is unreliable here
    }
    // Tolerate rounding-level rises (0.1 % of the local value).
    for (i, w) in points.windows(2).enumerate() {
        let (r_lo, r_hi) = (w[0].1, w[1].1);
        if r_hi > r_lo * (1.0 + 1e-3) {
            report.push(
                Diagnostic::error(
                    "C003",
                    format!("{}: esr_curve[{}]", input.spec_locus, i + 1),
                    format!(
                        "ESR rises with frequency ({r_lo} Ω @ {} Hz → {r_hi} Ω @ {} Hz); measured curves descend",
                        w[0].0, w[1].0
                    ),
                )
                .with_help("check for swapped frequency/resistance columns or a corrupted measurement"),
            );
        }
    }
}

/// C004: booster efficiency must be a real efficiency — two points with
/// distinct voltages, each in (0, 1], and not decreasing with voltage.
pub fn efficiency_shape(input: &AnalysisInput<'_>, report: &mut Report) {
    let locus = format!("{}: efficiency.points", input.spec_locus);
    let points = &input.spec.efficiency.points;
    if points.len() != 2 {
        report.push(
            Diagnostic::error(
                "C004",
                locus,
                format!("efficiency.points holds {} pairs; exactly two are required", points.len()),
            )
            .with_help("give the booster's efficiency at two buffer voltages, e.g. [[1.6, 0.78], [2.5, 0.87]]"),
        );
        return;
    }
    let (p1, p2) = (points[0], points[1]);
    for (i, p) in [p1, p2].iter().enumerate() {
        if !(p.0.is_finite() && p.1.is_finite() && 0.0 < p.1 && p.1 <= 1.0) {
            report.push(
                Diagnostic::error(
                    "C004",
                    format!("{locus}[{i}]"),
                    format!("efficiency must lie in (0, 1]; got {} at {} V", p.1, p.0),
                )
                .with_help("efficiencies are fractions, not percentages"),
            );
        }
    }
    if (p1.0 - p2.0).abs() < 1e-9 {
        report.push(Diagnostic::error(
            "C004",
            locus,
            "the two efficiency points share a voltage; a line cannot be fit",
        ));
        return;
    }
    // Boost converters get *more* efficient as the input voltage rises
    // toward V_out (less boosting work); a falling line is suspicious but
    // representable, so it warns rather than errors.
    let (lo, hi) = if p1.0 < p2.0 { (p1, p2) } else { (p2, p1) };
    if hi.1 < lo.1 {
        report.push(
            Diagnostic::warning(
                "C004",
                locus,
                format!(
                    "efficiency falls as voltage rises ({} @ {} V → {} @ {} V); boost converters usually improve with input voltage",
                    lo.1, lo.0, hi.1, hi.0
                ),
            )
            .with_help("double-check the measurement; a falling line inflates V_safe estimates"),
        );
    }
}

/// C005: monitor thresholds must be ordered, and the regulated output
/// should sit inside the monitor window: `0 < V_off < V_out ≤ V_high`.
pub fn thresholds(input: &AnalysisInput<'_>, report: &mut Report) {
    let s = input.spec;
    let locus = format!("{}: v_off/v_out/v_high", input.spec_locus);
    if !(s.v_off.is_finite() && s.v_high.is_finite() && 0.0 < s.v_off && s.v_off < s.v_high) {
        report.push(
            Diagnostic::error(
                "C005",
                locus,
                format!(
                    "monitor thresholds must satisfy 0 < V_off < V_high; got V_off = {}, V_high = {}",
                    s.v_off, s.v_high
                ),
            )
            .with_help("V_off is where the monitor cuts power; V_high is the recharge target above it"),
        );
        return;
    }
    if !(s.v_out.is_finite() && s.v_out > 0.0) {
        report.push(Diagnostic::error(
            "C005",
            locus,
            format!(
                "regulated output voltage must be positive and finite; got {}",
                s.v_out
            ),
        ));
        return;
    }
    // V_out outside (V_off, V_high] is constructible but suspicious: the
    // booster would always (or never) be boosting across the whole
    // software operating range.
    if !(s.v_off < s.v_out && s.v_out <= s.v_high) {
        report.push(
            Diagnostic::warning(
                "C005",
                locus,
                format!(
                    "V_out = {} lies outside the monitor window (V_off = {}, V_high = {}]; expected V_off < V_out ≤ V_high",
                    s.v_out, s.v_off, s.v_high
                ),
            )
            .with_help("Culpeo's booster model assumes the output is regulated within the buffer's software range"),
        );
    }
}

/// C006: capacitance and ESR should be buildable from real capacitor
/// technology — checked against the `culpeo-capbank` catalog envelopes.
pub fn plausibility(input: &AnalysisInput<'_>, report: &mut Report) {
    let s = input.spec;
    if !(s.capacitance_mf.is_finite() && s.capacitance_mf > 0.0) {
        report.push(
            Diagnostic::error(
                "C006",
                format!("{}: capacitance_mf", input.spec_locus),
                format!(
                    "capacitance must be positive and finite; got {} mF",
                    s.capacitance_mf
                ),
            )
            .with_help("the paper's design-space search spans 1 µF to 45 mF"),
        );
        return;
    }
    // The catalog's per-part window is 1 µF to 45 mF; banks compose parts
    // upward, so only the lower bound is hard. Far outside the window in
    // either direction is worth a look.
    if !(1e-3..=1000.0).contains(&s.capacitance_mf) {
        report.push(
            Diagnostic::warning(
                "C006",
                format!("{}: capacitance_mf", input.spec_locus),
                format!(
                    "{} mF is outside the catalogued 0.001–1000 mF range of buildable banks",
                    s.capacitance_mf
                ),
            )
            .with_help("compare with `culpeo catalog` for banks near your target"),
        );
        return;
    }
    // A representative ESR: the flat value, or the curve's DC-end (the
    // highest, since measured curves descend with frequency).
    let esr = match (s.esr_ohms, &s.esr_curve) {
        (Some(r), None) if r.is_finite() && r > 0.0 => r,
        (None, Some(points)) if validate_esr_curve(points).is_ok() => {
            points.iter().map(|&(_, r)| r).fold(0.0f64, f64::max)
        }
        _ => return, // C001/C002 already cover malformed ESR
    };
    let banks = Catalog::synthetic().bank_sweep(Farads::from_milli(s.capacitance_mf));
    let Some(max_bank) = banks
        .iter()
        .map(|b| b.esr().get())
        .fold(None::<f64>, |acc, r| Some(acc.map_or(r, |m| m.max(r))))
    else {
        return;
    };
    // ×3 headroom: wiring, aging, and temperature raise real bank ESR
    // above nominal, but an order of magnitude means a transcription slip.
    if esr > max_bank * 3.0 {
        report.push(
            Diagnostic::warning(
                "C006",
                format!("{}: esr", input.spec_locus),
                format!(
                    "{esr} Ω is implausibly high for a {} mF bank; the highest catalogued technology (supercapacitor) reaches about {max_bank:.1} Ω",
                    s.capacitance_mf
                ),
            )
            .with_help("milliohm/ohm confusion is the usual cause; see `culpeo catalog`"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SystemSpec;

    fn run_all(spec: &SystemSpec) -> Report {
        let input = AnalysisInput::spec_only(spec, "spec.json");
        let mut report = Report::new();
        esr_exclusivity(&input, &mut report);
        esr_curve_shape(&input, &mut report);
        esr_monotone(&input, &mut report);
        efficiency_shape(&input, &mut report);
        thresholds(&input, &mut report);
        plausibility(&input, &mut report);
        report
    }

    #[test]
    fn capybara_is_clean() {
        assert!(run_all(&SystemSpec::capybara()).is_clean());
    }

    #[test]
    fn descending_measured_curve_is_clean() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        spec.esr_curve = Some(vec![(10.0, 4.2), (100.0, 3.6), (1000.0, 3.1)]);
        let report = run_all(&spec);
        assert!(report.is_clean(), "{}", report.render_human(false));
    }

    #[test]
    fn c001_fires_on_both_and_neither() {
        let mut spec = SystemSpec::capybara();
        spec.esr_curve = Some(vec![(10.0, 4.0)]);
        let report = run_all(&spec);
        assert_eq!(report.diagnostics()[0].code, "C001");

        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        let report = run_all(&spec);
        assert_eq!(report.diagnostics()[0].code, "C001");
        assert!(report.has_errors());
    }

    #[test]
    fn c002_names_the_unsorted_index() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        spec.esr_curve = Some(vec![(100.0, 4.0), (10.0, 5.0)]);
        let report = run_all(&spec);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, "C002");
        assert!(d.locus.contains("esr_curve[1]"), "{}", d.locus);
        assert!(report.has_errors());
    }

    #[test]
    fn c003_fires_on_rising_esr() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        spec.esr_curve = Some(vec![(10.0, 3.1), (100.0, 3.6), (1000.0, 4.2)]);
        let report = run_all(&spec);
        assert!(report.has_errors());
        assert!(report.diagnostics().iter().all(|d| d.code == "C003"));
        assert_eq!(report.error_count(), 2);
    }

    #[test]
    fn c004_catches_percentages_and_vertical_lines() {
        let mut spec = SystemSpec::capybara();
        spec.efficiency.points = vec![(1.6, 78.0), (2.5, 87.0)];
        let report = run_all(&spec);
        assert!(report.diagnostics().iter().any(|d| d.code == "C004"));
        assert!(report.has_errors());

        let mut spec = SystemSpec::capybara();
        spec.efficiency.points = vec![(2.0, 0.8), (2.0, 0.9)];
        assert!(run_all(&spec).has_errors());
    }

    #[test]
    fn c004_warns_on_falling_efficiency() {
        let mut spec = SystemSpec::capybara();
        spec.efficiency.points = vec![(1.6, 0.87), (2.5, 0.78)];
        let report = run_all(&spec);
        assert!(!report.has_errors());
        assert_eq!(report.warning_count(), 1);
    }

    #[test]
    fn c005_catches_inverted_thresholds_and_stray_v_out() {
        let mut spec = SystemSpec::capybara();
        spec.v_off = 2.6;
        let report = run_all(&spec);
        assert!(report.diagnostics().iter().any(|d| d.code == "C005"));
        assert!(report.has_errors());

        let mut spec = SystemSpec::capybara();
        spec.v_out = 5.0;
        let report = run_all(&spec);
        assert!(!report.has_errors());
        assert!(report.diagnostics().iter().any(|d| d.code == "C005"));
    }

    #[test]
    fn c006_warns_on_implausible_esr() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = Some(3300.0); // mΩ typed as Ω
        let report = run_all(&spec);
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "C006")
            .expect("C006 expected");
        assert!(d.message.contains("implausibly high"));
        assert!(!report.has_errors());
    }

    #[test]
    fn c006_warns_on_out_of_catalog_capacitance() {
        let mut spec = SystemSpec::capybara();
        spec.capacitance_mf = 5000.0;
        let report = run_all(&spec);
        assert!(report.diagnostics().iter().any(|d| d.code == "C006"));
    }
}

//! Plan lints C020–C023: static Theorem 1 checking for schedules.
//!
//! These passes evaluate `culpeo_sched::feasibility` over the plan's
//! worst-case task requirements *before* anything runs: brownout
//! reachability (a launch below its `V_safe`), energy exhaustion (the
//! CatNap conjunct), the Theorem 1 precondition that every task carries a
//! registered `V_safe` estimate, and structural sanity of the plan file.

use culpeo::compose::TaskRequirement;
use culpeo_sched::feasibility::{predicted_voltages, PlanContext, PlannedLaunch};
use culpeo_units::{Joules, Seconds, Volts, Watts};

use crate::diag::{Diagnostic, Report};
use crate::input::{AnalysisInput, PlanSpec};

/// C023: the plan file itself must be well-formed — finite, non-negative
/// numbers and launches sorted by start time.
pub fn plan_shape(input: &AnalysisInput<'_>, report: &mut Report) {
    let Some(plan) = input.plan else {
        return;
    };
    let locus = input.plan_locus;
    if !(plan.recharge_power_mw.is_finite() && plan.recharge_power_mw >= 0.0) {
        report.push(Diagnostic::error(
            "C023",
            format!("{locus}: recharge_power_mw"),
            format!(
                "recharge power must be finite and non-negative; got {} mW",
                plan.recharge_power_mw
            ),
        ));
    }
    if let Some(v) = plan.v_start {
        if !(v.is_finite() && v > 0.0) {
            report.push(Diagnostic::error(
                "C023",
                format!("{locus}: v_start"),
                format!("start voltage must be positive and finite; got {v} V"),
            ));
        }
    }
    for (i, launch) in plan.launches.iter().enumerate() {
        let at = |field: &str| format!("{locus}: launches[{i}].{field}");
        if !(launch.start_s.is_finite() && launch.start_s >= 0.0) {
            report.push(Diagnostic::error(
                "C023",
                at("start_s"),
                format!(
                    "start time must be finite and non-negative; got {} s",
                    launch.start_s
                ),
            ));
        }
        if !(launch.energy_mj.is_finite() && launch.energy_mj >= 0.0) {
            report.push(Diagnostic::error(
                "C023",
                at("energy_mj"),
                format!(
                    "task energy must be finite and non-negative; got {} mJ",
                    launch.energy_mj
                ),
            ));
        }
        if !(launch.v_delta.is_finite() && launch.v_delta >= 0.0) {
            report.push(Diagnostic::error(
                "C023",
                at("v_delta"),
                format!(
                    "V_δ must be finite and non-negative; got {} V",
                    launch.v_delta
                ),
            ));
        }
        if let Some(v) = launch.v_safe {
            if !v.is_finite() {
                report.push(Diagnostic::error(
                    "C023",
                    at("v_safe"),
                    "a registered V_safe must be finite",
                ));
            }
        }
        if i > 0 && launch.start_s < plan.launches[i - 1].start_s {
            report.push(
                Diagnostic::error(
                    "C023",
                    at("start_s"),
                    format!(
                        "launches must be sorted by start time; {} s follows {} s",
                        launch.start_s,
                        plan.launches[i - 1].start_s
                    ),
                )
                .with_help("the voltage predictor walks launches in order"),
            );
        }
    }
}

/// C022: Theorem 1's precondition — every task needs a registered
/// `VsafeEstimate` before the feasibility test means anything.
pub fn vsafe_registered(input: &AnalysisInput<'_>, report: &mut Report) {
    let Some(plan) = input.plan else {
        return;
    };
    for (i, launch) in plan.launches.iter().enumerate() {
        if launch.v_safe.is_none() {
            report.push(
                Diagnostic::error(
                    "C022",
                    format!("{}: launches[{i}].v_safe", input.plan_locus),
                    format!(
                        "task '{}' has no registered V_safe estimate; Theorem 1 cannot be evaluated",
                        launch.task
                    ),
                )
                .with_help("run `culpeo analyze --trace <task trace>` and record the reported V_safe"),
            );
        }
    }
}

/// C020 + C021: static brownout reachability.
///
/// Walks `predicted_voltages` over the plan's worst-case requirements.
/// A launch whose predicted pre-start voltage undercuts its `V_safe`
/// violates Theorem 1's voltage conjunct (C020); a launch whose planned
/// energy drains the buffer to `V_off` fails even CatNap's energy-only
/// test (C021). Both are errors: executing such a plan browns out.
pub fn brownout_reachability(input: &AnalysisInput<'_>, report: &mut Report) {
    let Some(plan) = input.plan else {
        return;
    };
    // The voltage walk needs a valid buffer description and clean plan
    // numbers; those failures are already reported by C002/C005/C023.
    let Ok(model) = input.spec.clone().into_model() else {
        return;
    };
    if !plan_numbers_clean(plan) {
        return;
    }
    let ctx = PlanContext {
        capacitance: model.capacitance(),
        v_off: model.v_off(),
        v_high: model.v_high(),
        recharge_power: Watts::from_milli(plan.recharge_power_mw),
        v_start: plan.v_start.map_or(model.v_high(), Volts::new),
    };
    let launches: Vec<PlannedLaunch> = plan
        .launches
        .iter()
        .map(|l| PlannedLaunch {
            start: Seconds::new(l.start_s),
            requirement: TaskRequirement {
                buffer_energy: Joules::new(l.energy_mj * 1e-3),
                v_delta: Volts::new(l.v_delta),
            },
            // C022 reports missing estimates; V_off here keeps the energy
            // walk going without inventing a voltage constraint.
            v_safe: l.v_safe.map_or(ctx.v_off, Volts::new),
        })
        .collect();
    let voltages = predicted_voltages(&launches, &ctx);
    let c = ctx.capacitance.get();
    for ((spec_launch, launch), &v) in plan.launches.iter().zip(&launches).zip(&voltages) {
        if spec_launch.v_safe.is_some() && v < launch.v_safe {
            report.push(
                Diagnostic::error(
                    "C020",
                    format!("{}: launch '{}'", input.plan_locus, spec_launch.task),
                    format!(
                        "predicted voltage {v} at start undercuts the task's V_safe = {}; the launch browns out",
                        launch.v_safe
                    ),
                )
                .with_help("delay the launch to recharge, or lower the task's requirement"),
            );
        }
        let v_after = Volts::from_squared(
            (v.squared() - 2.0 * launch.requirement.buffer_energy.get() / c).max(0.0),
        );
        if v_after <= ctx.v_off {
            report.push(
                Diagnostic::error(
                    "C021",
                    format!("{}: launch '{}'", input.plan_locus, spec_launch.task),
                    format!(
                        "planned energy ({} mJ) drains the buffer from {v} to {v_after}, at or below V_off = {}",
                        spec_launch.energy_mj, ctx.v_off
                    ),
                )
                .with_help("even CatNap's energy-only test rejects this plan"),
            );
        }
    }
}

/// Whether every number the voltage walk consumes is usable.
fn plan_numbers_clean(plan: &PlanSpec) -> bool {
    let clean_f = |v: f64| v.is_finite() && v >= 0.0;
    clean_f(plan.recharge_power_mw)
        && plan.v_start.is_none_or(|v| v.is_finite() && v > 0.0)
        && plan.launches.iter().all(|l| {
            clean_f(l.start_s)
                && clean_f(l.energy_mj)
                && clean_f(l.v_delta)
                && l.v_safe.is_none_or(f64::is_finite)
        })
        && plan
            .launches
            .windows(2)
            .all(|w| w[0].start_s <= w[1].start_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::LaunchSpec;
    use crate::spec::SystemSpec;

    fn run_plan(plan: &PlanSpec) -> Report {
        let spec = SystemSpec::capybara();
        let input = AnalysisInput {
            spec: &spec,
            spec_locus: "spec.json",
            traces: &[],
            plan: Some(plan),
            plan_locus: "plan.json",
        };
        let mut report = Report::new();
        plan_shape(&input, &mut report);
        vsafe_registered(&input, &mut report);
        brownout_reachability(&input, &mut report);
        report
    }

    #[test]
    fn figure5_plan_triggers_c020() {
        let report = run_plan(&PlanSpec::figure5_example());
        assert!(report.has_errors());
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "C020")
            .unwrap();
        assert!(d.locus.contains("radio"), "{}", d.locus);
        assert!(
            !report.diagnostics().iter().any(|d| d.code == "C021"),
            "figure 5's point is that the energy test passes"
        );
    }

    #[test]
    fn recharged_plan_is_clean() {
        let mut plan = PlanSpec::figure5_example();
        plan.launches[0].energy_mj = 30.0;
        plan.launches[1].start_s = 60.0; // long recharge before the radio
        let report = run_plan(&plan);
        assert!(report.is_clean(), "{}", report.render_human(false));
    }

    #[test]
    fn exhaustion_triggers_c021() {
        let mut plan = PlanSpec::figure5_example();
        plan.launches[0].energy_mj = 200.0; // more than ½C(V_high²−V_off²)
        let report = run_plan(&plan);
        assert!(report.diagnostics().iter().any(|d| d.code == "C021"));
    }

    #[test]
    fn missing_v_safe_triggers_c022() {
        let mut plan = PlanSpec::figure5_example();
        plan.launches[1].v_safe = None;
        let report = run_plan(&plan);
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "C022")
            .unwrap();
        assert!(d.message.contains("radio"));
        assert!(report.has_errors());
    }

    #[test]
    fn unsorted_launches_trigger_c023_and_skip_the_walk() {
        let mut plan = PlanSpec::figure5_example();
        plan.launches.swap(0, 1);
        let report = run_plan(&plan);
        assert!(report.diagnostics().iter().any(|d| d.code == "C023"));
        assert!(
            !report.diagnostics().iter().any(|d| d.code == "C020"),
            "the voltage walk is meaningless on an unsorted plan"
        );
    }

    #[test]
    fn unphysical_numbers_trigger_c023() {
        let mut plan = PlanSpec::figure5_example();
        plan.recharge_power_mw = f64::NAN;
        plan.launches.push(LaunchSpec {
            task: "bad".to_string(),
            start_s: -1.0,
            energy_mj: f64::INFINITY,
            v_delta: -0.1,
            v_safe: Some(f64::NAN),
        });
        let report = run_plan(&plan);
        let c023 = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "C023")
            .count();
        assert!(c023 >= 4, "one per bad field, got {c023}");
    }

    #[test]
    fn empty_plan_is_clean() {
        let plan = PlanSpec {
            recharge_power_mw: 8.0,
            v_start: None,
            period_s: None,
            launches: vec![],
        };
        assert!(run_plan(&plan).is_clean());
    }
}

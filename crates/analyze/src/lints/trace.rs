//! Trace lints C010–C014: is a captured current trace trustworthy input
//! for Algorithm 1?

use culpeo_units::Hertz;

use crate::diag::{Diagnostic, Report};
use crate::input::{AnalysisInput, TraceInput};

/// C010: every sample and the timebase must be finite.
///
/// Algorithm 1 walks the samples arithmetically; one NaN poisons the
/// whole `V_safe` and a silent ±inf saturates it. Hard error.
pub fn finiteness(input: &AnalysisInput<'_>, report: &mut Report) {
    for trace in input.traces {
        if !(trace.dt_s.is_finite() && trace.dt_s > 0.0) {
            report.push(Diagnostic::error(
                "C010",
                format!("{}: dt", trace.locus),
                format!(
                    "sample period must be positive and finite; got {} s",
                    trace.dt_s
                ),
            ));
        }
        let bad: Vec<usize> = trace
            .samples
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_finite())
            .map(|(i, _)| i)
            .collect();
        if let (Some(&first), n) = (bad.first(), bad.len()) {
            report.push(
                Diagnostic::error(
                    "C010",
                    format!("{}: sample {first}", trace.locus),
                    format!(
                        "{n} non-finite sample{} (first at index {first})",
                        plural(n)
                    ),
                )
                .with_help("recapture the trace; NaN/inf samples mean the instrument dropped data"),
            );
        }
    }
}

/// C011: the timebase must actually resolve the load.
///
/// Two independent checks, both warnings: file timestamps jittering
/// against the declared `dt_us` (corrupted or resampled capture), and a
/// dominant pulse so short it spans under four samples (the pulse-width
/// detector Culpeo-PG keys ESR selection on becomes unreliable).
pub fn sampling(input: &AnalysisInput<'_>, report: &mut Report) {
    for trace in input.traces {
        if !(trace.dt_s.is_finite() && trace.dt_s > 0.0) {
            continue; // C010 already fired
        }
        if let Some(stamps) = &trace.timestamps {
            let jittered = stamps
                .iter()
                .enumerate()
                .filter(|&(i, &t)| {
                    #[allow(clippy::cast_precision_loss)]
                    let expected = i as f64 * trace.dt_s;
                    // NaN-safe: a NaN timestamp compares false ⇒ jittered.
                    let agrees = (t - expected).abs() <= trace.dt_s * 0.5;
                    !agrees
                })
                .count();
            if jittered > 0 {
                report.push(
                    Diagnostic::warning(
                        "C011",
                        format!("{}: time_s column", trace.locus),
                        format!(
                            "{jittered} timestamp{} disagree with dt_us by more than half a period",
                            plural(jittered)
                        ),
                    )
                    .with_help("the time_s column is redundant with dt_us; disagreement means a resampled or corrupted capture"),
                );
            }
        }
        if let Some(t) = trace.to_current_trace() {
            if let Some(width) = t.dominant_pulse_width() {
                if width.get() < 4.0 * trace.dt_s {
                    report.push(
                        Diagnostic::warning(
                            "C011",
                            format!("{}: dt", trace.locus),
                            format!(
                                "dominant pulse ({width}) spans under four samples at dt = {} s",
                                trace.dt_s
                            ),
                        )
                        .with_help(
                            "capture at a higher rate; the paper's instrument sampled at 125 kHz",
                        ),
                    );
                }
            }
        }
    }
}

/// C012: current into the load cannot be negative.
///
/// A sustained negative run means swapped probe polarity or a back-fed
/// supply — error. An isolated single-sample blip is measurement noise
/// the median filter already absorbs — warning.
pub fn negative_runs(input: &AnalysisInput<'_>, report: &mut Report) {
    for trace in input.traces {
        let mut runs: Vec<(usize, usize)> = Vec::new(); // (start, len)
        let mut current: Option<(usize, usize)> = None;
        for (i, &s) in trace.samples.iter().enumerate() {
            if s < 0.0 {
                current = Some(current.map_or((i, 1), |(start, len)| (start, len + 1)));
            } else if let Some(run) = current.take() {
                runs.push(run);
            }
        }
        if let Some(run) = current {
            runs.push(run);
        }
        if runs.is_empty() {
            continue;
        }
        let longest = runs
            .iter()
            .max_by_key(|&&(_, len)| len)
            .copied()
            .unwrap_or((0, 0));
        let total: usize = runs.iter().map(|&(_, len)| len).sum();
        if longest.1 >= 2 {
            report.push(
                Diagnostic::error(
                    "C012",
                    format!("{}: sample {}", trace.locus, longest.0),
                    format!(
                        "sustained negative current ({} consecutive samples from index {}; {total} negative in all)",
                        longest.1, longest.0
                    ),
                )
                .with_help("check probe polarity; a load trace cannot back-feed the supply"),
            );
        } else {
            report.push(
                Diagnostic::warning(
                    "C012",
                    format!("{}: sample {}", trace.locus, runs[0].0),
                    format!(
                        "{} isolated negative sample{} (noise-level; the median filter will absorb them)",
                        runs.len(),
                        plural(runs.len())
                    ),
                )
                .with_help("clamp to zero on import if the instrument's zero offset drifts"),
            );
        }
    }
}

/// C013: the trace's dominant frequency must lie inside the measured ESR
/// curve's support.
///
/// `pg::compute_vsafe` picks its ESR operating point at the dominant
/// pulse frequency — and `EsrCurve::at` silently *clamps* outside the
/// measured band, so the returned `V_safe` rests on an extrapolated
/// resistance. Warning, because the clamp is conservative at the
/// low-frequency end but not provably so at the high end.
pub fn esr_support(input: &AnalysisInput<'_>, report: &mut Report) {
    let Ok(model) = input.spec.clone().into_model() else {
        return; // spec lints already cover this
    };
    let points = model.esr_curve().points();
    if points.len() < 2 {
        return; // a flat ESR has no measured band to leave
    }
    let (f_lo, f_hi) = (points[0].0, points[points.len() - 1].0);
    for trace in input.traces {
        let Some(t) = trace.to_current_trace() else {
            continue;
        };
        let Some(f) = t.dominant_frequency() else {
            continue;
        };
        if f < f_lo || f > f_hi {
            report.push(
                Diagnostic::warning(
                    "C013",
                    format!("{}: dominant frequency", trace.locus),
                    format!(
                        "dominant frequency {f} lies outside the measured ESR support [{f_lo}, {f_hi}]; the model will clamp to the nearest endpoint",
                    ),
                )
                .with_help("extend the ESR measurement to cover the workload's pulse frequency"),
            );
        }
    }
}

/// C014: an empty or all-idle trace imposes no requirement.
///
/// `V_safe` degenerates to `V_off`, which is *correct* but almost never
/// what the user meant to feed the analyzer. Warning.
pub fn empty_trace(input: &AnalysisInput<'_>, report: &mut Report) {
    for trace in input.traces {
        if trace.samples.is_empty() {
            report.push(Diagnostic::warning(
                "C014",
                trace.locus.clone(),
                "trace holds no samples; V_safe degenerates to V_off",
            ));
        } else if trace.samples.iter().all(|&s| s == 0.0) {
            report.push(
                Diagnostic::warning(
                    "C014",
                    trace.locus.clone(),
                    "every sample is zero; V_safe degenerates to V_off",
                )
                .with_help("did the capture start before the device woke?"),
            );
        }
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// The dominant frequency of a clean trace, for callers that want to
/// cross-check C013 manually.
#[must_use]
pub fn dominant_frequency(trace: &TraceInput) -> Option<Hertz> {
    trace
        .to_current_trace()
        .and_then(|t| t.dominant_frequency())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SystemSpec;
    use culpeo_loadgen::LoadProfile;
    use culpeo_units::{Amps, Seconds};

    fn run_traces(spec: &SystemSpec, traces: &[TraceInput]) -> Report {
        let input = AnalysisInput {
            spec,
            spec_locus: "spec.json",
            traces,
            plan: None,
            plan_locus: "plan",
        };
        let mut report = Report::new();
        finiteness(&input, &mut report);
        sampling(&input, &mut report);
        negative_runs(&input, &mut report);
        esr_support(&input, &mut report);
        empty_trace(&input, &mut report);
        report
    }

    fn ble_like() -> TraceInput {
        let trace = LoadProfile::builder("ble")
            .hold(Amps::from_milli(1.5), Seconds::from_milli(2.0))
            .hold(Amps::from_milli(25.0), Seconds::from_milli(3.0))
            .hold(Amps::from_milli(1.5), Seconds::from_milli(2.0))
            .build()
            .sample(culpeo_units::Hertz::new(125_000.0));
        TraceInput::from_trace("ble.csv", &trace)
    }

    #[test]
    fn clean_trace_is_clean() {
        let report = run_traces(&SystemSpec::capybara(), &[ble_like()]);
        assert!(report.is_clean(), "{}", report.render_human(false));
    }

    #[test]
    fn c010_counts_nan_samples() {
        let mut t = ble_like();
        t.samples[10] = f64::NAN;
        t.samples[20] = f64::INFINITY;
        let report = run_traces(&SystemSpec::capybara(), &[t]);
        assert!(report.has_errors());
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "C010")
            .unwrap();
        assert!(d.message.contains("2 non-finite"));
        assert!(d.locus.contains("sample 10"));
    }

    #[test]
    fn c011_flags_jittered_timestamps() {
        let mut t = ble_like();
        let n = t.samples.len();
        let mut stamps: Vec<f64> = (0..n).map(|i| i as f64 * t.dt_s).collect();
        stamps[5] += t.dt_s * 2.0;
        t.timestamps = Some(stamps);
        let report = run_traces(&SystemSpec::capybara(), &[t]);
        assert!(!report.has_errors());
        assert!(report.diagnostics().iter().any(|d| d.code == "C011"));
    }

    #[test]
    fn c011_flags_under_resolved_pulses() {
        // A 3 ms pulse sampled at 1 kHz spans 3 samples — under four.
        let trace = LoadProfile::builder("coarse")
            .hold(Amps::from_milli(1.0), Seconds::from_milli(5.0))
            .hold(Amps::from_milli(25.0), Seconds::from_milli(3.0))
            .hold(Amps::from_milli(1.0), Seconds::from_milli(5.0))
            .build()
            .sample(culpeo_units::Hertz::new(1_000.0));
        let t = TraceInput::from_trace("coarse.csv", &trace);
        let report = run_traces(&SystemSpec::capybara(), &[t]);
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == "C011" && d.message.contains("four samples")));
    }

    #[test]
    fn c012_distinguishes_runs_from_blips() {
        let mut t = ble_like();
        t.samples[100] = -1e-5;
        let report = run_traces(&SystemSpec::capybara(), &[t]);
        assert!(!report.has_errors(), "single blip is a warning");
        assert!(report.diagnostics().iter().any(|d| d.code == "C012"));

        let mut t = ble_like();
        for s in &mut t.samples[100..150] {
            *s = -0.002;
        }
        let report = run_traces(&SystemSpec::capybara(), &[t]);
        assert!(report.has_errors(), "sustained run is an error");
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "C012")
            .unwrap();
        assert!(d.message.contains("50 consecutive"));
    }

    #[test]
    fn c013_fires_outside_measured_support() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        // Measured band 1–10 Hz; the BLE pulse is ~160 Hz dominant.
        spec.esr_curve = Some(vec![(1.0, 4.2), (10.0, 3.6)]);
        let report = run_traces(&spec, &[ble_like()]);
        assert!(report.diagnostics().iter().any(|d| d.code == "C013"));
        assert!(!report.has_errors());
    }

    #[test]
    fn c013_silent_for_flat_esr() {
        let report = run_traces(&SystemSpec::capybara(), &[ble_like()]);
        assert!(!report.diagnostics().iter().any(|d| d.code == "C013"));
    }

    #[test]
    fn c014_flags_empty_and_idle() {
        let t = TraceInput {
            locus: "empty.csv".to_string(),
            label: "empty".to_string(),
            dt_s: 8e-6,
            samples: vec![],
            timestamps: None,
        };
        let report = run_traces(&SystemSpec::capybara(), &[t]);
        assert!(report.diagnostics().iter().any(|d| d.code == "C014"));

        let t = TraceInput {
            locus: "idle.csv".to_string(),
            label: "idle".to_string(),
            dt_s: 8e-6,
            samples: vec![0.0; 1000],
            timestamps: None,
        };
        let report = run_traces(&SystemSpec::capybara(), &[t]);
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == "C014" && d.message.contains("every sample is zero")));
    }
}

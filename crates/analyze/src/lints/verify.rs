//! C040–C046: the static verifier's verdicts, surfaced as diagnostics.
//!
//! The heavy lifting lives in `culpeo-verify` (interval abstract
//! interpretation to a fixpoint over the whole schedule); this pass just
//! runs it when the input carries a plan and maps its [`Finding`]s onto
//! the diagnostic vocabulary:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | C040 | error    | refuted: certain exhaustion, replayable witness |
//! | C041 | error    | the whole envelope undercuts a launch requirement |
//! | C042 | error    | unknown: launch envelope straddles the requirement |
//! | C043 | error    | unknown: post-task envelope reaches `V_off` |
//! | C044 | warning  | widening applied at the period fixpoint |
//! | C045 | warning  | model-derived Theorem 1 floor exceeds declared `V_safe` |
//! | C046 | error    | verification inapplicable (unusable spec/plan) |

use culpeo_verify::{verify_plan, Finding};

use crate::diag::{Diagnostic, Report};
use crate::input::AnalysisInput;

/// Runs `culpeo-verify` over the plan (no-op without one) and promotes
/// its findings into diagnostics.
pub fn schedule_verification(input: &AnalysisInput<'_>, report: &mut Report) {
    let Some(plan) = input.plan else {
        return;
    };
    let outcome = verify_plan(input.spec, plan);
    for finding in &outcome.findings {
        report.push(promote(finding, input.plan_locus));
    }
}

/// Maps one verifier finding to a diagnostic, prefixing the plan locus.
fn promote(finding: &Finding, plan_locus: &str) -> Diagnostic {
    let locus = format!("{plan_locus}: {}", finding.locus);
    let d = if finding.error {
        Diagnostic::error(finding.code, locus, finding.message.clone())
    } else {
        Diagnostic::warning(finding.code, locus, finding.message.clone())
    };
    match &finding.help {
        Some(help) => d.with_help(help.clone()),
        None => d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PlanSpec;
    use crate::spec::SystemSpec;

    fn run(plan: &PlanSpec) -> Report {
        let spec = SystemSpec::capybara();
        let input = AnalysisInput {
            spec: &spec,
            spec_locus: "spec.json",
            traces: &[],
            plan: Some(plan),
            plan_locus: "plan.json",
        };
        let mut report = Report::new();
        schedule_verification(&input, &mut report);
        report
    }

    #[test]
    fn proved_plan_stays_clean() {
        let report = run(&PlanSpec::verified_example());
        assert!(report.is_clean(), "{}", report.render_human(false));
    }

    #[test]
    fn figure5_reports_straddle_and_floor_warning() {
        let report = run(&PlanSpec::figure5_example());
        let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
        assert!(codes.contains(&"C042"), "{codes:?}");
        assert!(codes.contains(&"C045"), "{codes:?}");
        assert!(report.has_errors());
        let straddle = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "C042")
            .unwrap();
        assert!(
            straddle.locus.starts_with("plan.json: launch 'radio'"),
            "{}",
            straddle.locus
        );
    }

    #[test]
    fn certain_exhaustion_reports_c040_with_a_witness() {
        let mut plan = PlanSpec::figure5_example();
        plan.launches[0].energy_mj = 200.0;
        plan.launches[0].v_delta = 0.3;
        let report = run(&plan);
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "C040")
            .unwrap();
        assert!(d.message.contains("counterexample"), "{}", d.message);
        assert!(d.message.contains("V_start"), "{}", d.message);
    }

    #[test]
    fn no_plan_means_no_verification_diagnostics() {
        let spec = SystemSpec::capybara();
        let input = AnalysisInput::spec_only(&spec, "spec.json");
        let mut report = Report::new();
        schedule_verification(&input, &mut report);
        assert!(report.is_clean());
    }
}

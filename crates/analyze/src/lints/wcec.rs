//! C050–C054: derived-vs-declared `(E, V_δ)` drift, surfaced as
//! diagnostics.
//!
//! The verifier (C040–C046) trusts a launch's declared energy and ESR
//! dip. This pass closes that loophole for every launch whose task name
//! maps to a `culpeo-wcec` workload model: the analyzer derives a
//! worst-case certificate from the task's own structure and compares it
//! with what the plan declares. Certificate substitution is opt-in by
//! exact task name (see `culpeo_wcec::workloads::named`), so
//! hand-declared tasks are never second-guessed.
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | C050 | error    | declared energy below the certified worst case |
//! | C051 | warning  | declared energy over-provisioned (> 4× certificate) |
//! | C052 | error    | declared `V_δ` below the certified worst-case dip |
//! | C053 | warning  | task model exists but is not certifiable (unbounded loop) |
//! | C054 | error    | certified worst-case latency overlaps the next launch |

use culpeo_wcec::{analyze, esr_max_ohms, workloads, WcecVerdict};

use crate::diag::{Diagnostic, Report};
use crate::input::AnalysisInput;

/// Declared energy above this multiple of the certified worst case is
/// flagged as over-provisioned (C051).
const OVERPROVISION_FACTOR: f64 = 4.0;

/// Relative slack on derived-vs-declared comparisons, so calibration
/// noise at the last ulp never flips a verdict.
const REL_EPS: f64 = 1e-9;

/// Derives worst-case certificates for recognizably modelled tasks and
/// lints the plan's declared figures against them (no-op without a plan
/// or a usable model).
pub fn certificate_drift(input: &AnalysisInput<'_>, report: &mut Report) {
    let Some(plan) = input.plan else {
        return;
    };
    let Ok(model) = input.spec.clone().into_model() else {
        // C046 (inapplicable spec) is the verification pass's finding.
        return;
    };
    let v_out = model.v_out();
    let r_max = esr_max_ohms(&model);
    for (i, launch) in plan.launches.iter().enumerate() {
        let Some(graph) = workloads::named(&launch.task, v_out) else {
            continue;
        };
        let locus = format!("{}: launch {i} ({})", input.plan_locus, launch.task);
        let verdict = match analyze(&graph) {
            Ok(v) => v,
            Err(e) => {
                report.push(Diagnostic::warning(
                    "C053",
                    locus,
                    format!("workload model failed structural validation: {e}"),
                ));
                continue;
            }
        };
        let cert = match verdict {
            WcecVerdict::Certified(cert) => cert,
            WcecVerdict::Unknown(blocked) => {
                report.push(
                    Diagnostic::warning(
                        "C053",
                        locus,
                        format!("task is not statically certifiable: {blocked}"),
                    )
                    .with_help(
                        "declare an iteration bound on the blocking loop so the analyzer \
                         can derive a worst-case energy",
                    ),
                );
                continue;
            }
        };
        let derived_mj = cert.energy_mj_hi();
        if launch.energy_mj < derived_mj * (1.0 - REL_EPS) {
            report.push(
                Diagnostic::error(
                    "C050",
                    locus.clone(),
                    format!(
                        "declared energy {:.3} mJ is below the certified worst case \
                         {derived_mj:.3} mJ — any proof resting on the declaration is void",
                        launch.energy_mj
                    ),
                )
                .with_help(format!(
                    "declare at least {derived_mj:.3} mJ or verify with the certificate \
                     substituted (culpeo-verify::verify_certified)"
                )),
            );
        } else if launch.energy_mj > derived_mj * OVERPROVISION_FACTOR {
            report.push(
                Diagnostic::warning(
                    "C051",
                    locus.clone(),
                    format!(
                        "declared energy {:.3} mJ over-provisions the certified worst case \
                         {derived_mj:.3} mJ more than {OVERPROVISION_FACTOR:.0}×",
                        launch.energy_mj
                    ),
                )
                .with_help(
                    "tighten the declaration; slack here inflates V_safe and starves \
                            lower-priority work",
                ),
            );
        }
        let derived_dip = cert.v_delta_at(r_max);
        if launch.v_delta < derived_dip * (1.0 - REL_EPS) {
            report.push(
                Diagnostic::error(
                    "C052",
                    locus.clone(),
                    format!(
                        "declared V_δ {:.3} V is below the certified worst-case ESR dip \
                         {derived_dip:.3} V (peak {:.1} mA across {:.1} Ω)",
                        launch.v_delta, cert.peak_ma, r_max
                    ),
                )
                .with_help(format!("declare V_δ ≥ {derived_dip:.3} V")),
            );
        }
        // The certified latency must fit the gap to the next launch —
        // wrapping through the period for the last one.
        let next_start = if i + 1 < plan.launches.len() {
            Some(plan.launches[i + 1].start_s)
        } else {
            plan.period_s
                .map(|p| p + plan.launches.first().map_or(0.0, |l| l.start_s))
        };
        if let Some(next_start) = next_start {
            let gap = next_start - launch.start_s;
            if cert.time_s.1 > gap {
                report.push(
                    Diagnostic::error(
                        "C054",
                        locus,
                        format!(
                            "certified worst-case latency {:.3} s overlaps the next launch \
                             {:.3} s away",
                            cert.time_s.1, gap
                        ),
                    )
                    .with_help("space the launches at least the certified latency apart"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::PlanSpec;
    use crate::spec::SystemSpec;

    fn run(plan: &PlanSpec) -> Report {
        let spec = SystemSpec::capybara();
        let input = AnalysisInput {
            spec: &spec,
            spec_locus: "spec.json",
            traces: &[],
            plan: Some(plan),
            plan_locus: "plan.json",
        };
        let mut report = Report::new();
        certificate_drift(&input, &mut report);
        report
    }

    fn codes(report: &Report) -> Vec<&str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    /// The certified worst case for a task on the capybara model.
    fn certified(task: &str) -> culpeo_wcec::Certificate {
        let model = SystemSpec::capybara().into_model().unwrap();
        let graph = workloads::named(task, model.v_out()).unwrap();
        match analyze(&graph).unwrap() {
            WcecVerdict::Certified(c) => c,
            WcecVerdict::Unknown(b) => panic!("{b}"),
        }
    }

    #[test]
    fn unrecognized_tasks_stay_unjudged() {
        let report = run(&PlanSpec::verified_example());
        assert!(report.is_clean(), "{}", report.render_human(false));
    }

    #[test]
    fn under_declared_energy_is_c050() {
        let cert = certified("gesture");
        let mut plan = PlanSpec::verified_example();
        plan.launches[0].task = "gesture".to_string();
        plan.launches[0].energy_mj = cert.energy_mj_hi() * 0.5;
        plan.launches[0].v_delta = 1.0; // dip generously declared
        let report = run(&plan);
        assert!(codes(&report).contains(&"C050"), "{:?}", codes(&report));
        assert!(!codes(&report).contains(&"C052"));
    }

    #[test]
    fn honest_declaration_is_clean() {
        let cert = certified("gesture");
        let model = SystemSpec::capybara().into_model().unwrap();
        let mut plan = PlanSpec::verified_example();
        plan.launches[0].task = "gesture".to_string();
        plan.launches[0].energy_mj = cert.energy_mj_hi() * 1.05;
        plan.launches[0].v_delta = cert.v_delta_at(esr_max_ohms(&model)) * 1.05;
        let report = run(&plan);
        assert!(report.is_clean(), "{}", report.render_human(false));
    }

    #[test]
    fn overprovisioned_energy_is_c051() {
        let cert = certified("gesture");
        let model = SystemSpec::capybara().into_model().unwrap();
        let mut plan = PlanSpec::verified_example();
        plan.launches[0].task = "gesture".to_string();
        plan.launches[0].energy_mj = cert.energy_mj_hi() * (OVERPROVISION_FACTOR + 1.0);
        plan.launches[0].v_delta = cert.v_delta_at(esr_max_ohms(&model)) * 1.05;
        let report = run(&plan);
        assert_eq!(codes(&report), vec!["C051"]);
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn under_declared_dip_is_c052() {
        let cert = certified("ble-report");
        let mut plan = PlanSpec::verified_example();
        plan.launches[1].task = "ble-report".to_string();
        plan.launches[1].energy_mj = cert.energy_mj_hi() * 1.1;
        plan.launches[1].v_delta = 0.0;
        let report = run(&plan);
        assert!(codes(&report).contains(&"C052"), "{:?}", codes(&report));
    }

    #[test]
    fn latency_overlap_is_c054() {
        let cert = certified("mnist");
        let model = SystemSpec::capybara().into_model().unwrap();
        let mut plan = PlanSpec::verified_example();
        // mnist runs > 4 s worst-case; squeeze the next launch into 1 s.
        plan.launches[0].task = "mnist".to_string();
        plan.launches[0].energy_mj = cert.energy_mj_hi() * 1.1;
        plan.launches[0].v_delta = cert.v_delta_at(esr_max_ohms(&model)) * 1.05;
        plan.launches[1].start_s = plan.launches[0].start_s + 1.0;
        let report = run(&plan);
        assert!(codes(&report).contains(&"C054"), "{:?}", codes(&report));
        assert!(cert.time_s.1 > 1.0, "mnist model should outlast 1 s");
    }
}

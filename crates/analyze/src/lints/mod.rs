//! The lint passes, grouped by the input they interrogate.

pub mod plan;
pub mod spec;
pub mod trace;
pub mod verify;
pub mod wcec;

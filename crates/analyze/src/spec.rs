//! The JSON power-system specification the analyzers consume.
//!
//! The types and validation moved again — `culpeo-cli` → here →
//! `culpeo-api` — so the CLI, the daemon, the lint battery, and the
//! harness pre-flight all share exactly one spec parser/validator. This
//! module re-exports them under their historical home; the contract
//! tests live next to the types in `culpeo-api`.

pub use culpeo_api::spec::{validate_esr_curve, EfficiencySpec, SpecError, SystemSpec};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_spec_still_validates() {
        let model = SystemSpec::capybara().into_model().unwrap();
        assert!(model
            .capacitance()
            .approx_eq(culpeo_units::Farads::from_milli(45.0), 1e-12));
        let mut spec = SystemSpec::capybara();
        spec.esr_curve = Some(vec![(10.0, 4.0)]);
        assert_eq!(spec.into_model(), Err(SpecError::EsrAmbiguous));
    }
}

//! Promotion of runtime audit findings into the diagnostic vocabulary.
//!
//! `culpeo_powersim::Auditor` checks the *simulated plant's*
//! invariants while it runs; its [`Violation`]s are the dynamic cousins of
//! the static lints in this crate. Promoting them into [`Diagnostic`]s
//! gives the harness one reporting pipeline for both: C030 energy-ledger
//! imbalance, C031 delivery while recharging, C032 unphysical values.

use culpeo_powersim::Violation;

use crate::diag::{Diagnostic, Report};

/// The codes [`promote`] can emit, one per [`Violation`] variant. These
/// live outside the [`crate::Registry`] battery (they are promoted from
/// simulation, not linted from inputs), so doc-drift checks enumerate
/// them here.
pub const PROMOTED_CODES: &[&str] = &["C030", "C031", "C032"];

/// Maps one audit violation to its diagnostic.
#[must_use]
pub fn promote(violation: &Violation, locus: &str) -> Diagnostic {
    match violation {
        Violation::EnergyImbalance {
            t,
            actual,
            expected,
        } => Diagnostic::error(
            "C030",
            format!("{locus}: energy ledger, t = {t}"),
            format!("stored-energy change {actual} disagrees with the ledger's {expected}"),
        )
        .with_help("a conservation bug in the plant model, never in the workload"),
        Violation::DeliveryWhileRecharging { t } => Diagnostic::error(
            "C031",
            format!("{locus}: t = {t}"),
            "the plant delivered power while the monitor demanded recharge".to_string(),
        )
        .with_help("monitor hysteresis must keep the output off until V_high"),
        Violation::UnphysicalValue { t, what } => Diagnostic::error(
            "C032",
            format!("{locus}: t = {t}"),
            format!("unphysical {what} appeared during simulation"),
        ),
    }
}

/// Promotes a full audit outcome into a [`Report`].
#[must_use]
pub fn promote_all(violations: &[Violation], locus: &str) -> Report {
    let mut report = Report::new();
    report.extend(violations.iter().map(|v| promote(v, locus)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_units::{Joules, Seconds};

    #[test]
    fn each_violation_kind_maps_to_its_code() {
        let vs = [
            Violation::EnergyImbalance {
                t: Seconds::new(0.3),
                actual: Joules::new(1.0e-3),
                expected: Joules::new(2.0e-3),
            },
            Violation::DeliveryWhileRecharging {
                t: Seconds::new(0.5),
            },
            Violation::UnphysicalValue {
                t: Seconds::new(0.7),
                what: "node voltage",
            },
        ];
        let report = promote_all(&vs, "fig10 run");
        let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, ["C030", "C031", "C032"]);
        assert_eq!(report.error_count(), 3);
        // Every promoted locus carries the simulation timestamp — C030's
        // energy-ledger rendering used to drop it.
        for (d, t) in report.diagnostics().iter().zip([
            Seconds::new(0.3),
            Seconds::new(0.5),
            Seconds::new(0.7),
        ]) {
            assert!(
                d.locus.contains(&format!("t = {t}")),
                "{}: {}",
                d.code,
                d.locus
            );
        }
    }

    #[test]
    fn clean_audit_promotes_to_clean_report() {
        assert!(promote_all(&[], "anywhere").is_clean());
    }
}

//! `culpeo-analyze` — static feasibility and physics lints for Culpeo
//! inputs: system specs, captured current traces, and planned schedules.
//!
//! The paper's correctness story (Theorem 1, §VI-B) only holds when its
//! inputs are physically sensible: the measured ESR curve must actually
//! look like a supercapacitor's, the trace must be finite and resolved,
//! and every scheduled task must carry a registered `V_safe`. This crate
//! checks all of that *statically* — before any simulation runs — through
//! a rustc-style diagnostics engine:
//!
//! * [`Diagnostic`] / [`Report`] — stable `C0xx` codes, error/warning
//!   severities, human and JSON renderers;
//! * [`Registry`] — the ordered battery of lint passes (spec C001–C006,
//!   trace C010–C014, plan C020–C023);
//! * [`promote`] — lifts `culpeo_powersim::Violation`s (the
//!   *dynamic* invariant checks) into the same vocabulary (C030–C032).
//!
//! ```
//! use culpeo_analyze::{AnalysisInput, Registry, SystemSpec};
//!
//! let mut spec = SystemSpec::capybara();
//! spec.esr_ohms = None;
//! spec.esr_curve = Some(vec![(10.0, 3.1), (100.0, 4.2)]); // rises!
//! let report = Registry::default_battery().run(&AnalysisInput::spec_only(&spec, "spec.json"));
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics()[0].code, "C003");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod input;
pub mod lints;
pub mod promote;
pub mod registry;
pub mod spec;

pub use diag::{Diagnostic, Report, Severity};
pub use input::{AnalysisInput, LaunchSpec, PlanSpec, TraceInput};
pub use registry::{Pass, Registry};
pub use spec::{EfficiencySpec, SpecError, SystemSpec};

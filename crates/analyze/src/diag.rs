//! The diagnostic vocabulary: codes, severities, and renderers.
//!
//! Every lint pass reports through [`Diagnostic`], a rustc-flavoured
//! record — a stable `C0xx` code, a severity, a *locus* (which input, and
//! where inside it), a one-line message, and optional help text. A
//! [`Report`] aggregates them and renders either for humans (colour
//! optional) or machines (a versioned JSON document).

use std::fmt::Write as _;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not disqualifying; the pipeline may proceed.
    Warning,
    /// The input is unusable or would produce untrustworthy results;
    /// harness pre-flight and the CLI refuse it.
    Error,
}

impl Severity {
    /// The lowercase label used by both renderers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding from one lint pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code, `C001`–`C032`; see DESIGN.md for the full table.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Which input, and where inside it (for example
    /// `spec.json: esr_curve[2]` or `packet.csv: sample 1041`).
    pub locus: String,
    /// One-line statement of the problem.
    pub message: String,
    /// Optional remediation hint.
    pub help: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    #[must_use]
    pub fn error(code: &'static str, locus: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Error,
            locus: locus.into(),
            message: message.into(),
            help: None,
        }
    }

    /// A warning-severity diagnostic.
    #[must_use]
    pub fn warning(
        code: &'static str,
        locus: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            severity: Severity::Warning,
            ..Self::error(code, locus, message)
        }
    }

    /// Attaches a remediation hint.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

/// The aggregated outcome of a lint battery.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Adds many diagnostics.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Every finding, in pass order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether any finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the battery found nothing at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders rustc-style text, optionally with ANSI colour:
    ///
    /// ```text
    /// error[C002]: esr_curve frequencies must be strictly ascending
    ///   --> spec.json: esr_curve[1]
    ///   = help: sort the [hz, ohms] pairs by frequency
    /// ```
    #[must_use]
    pub fn render_human(&self, color: bool) -> String {
        let (bold, red, yellow, reset) = if color {
            ("\u{1b}[1m", "\u{1b}[31m", "\u{1b}[33m", "\u{1b}[0m")
        } else {
            ("", "", "", "")
        };
        let mut out = String::new();
        for d in &self.diagnostics {
            let tint = match d.severity {
                Severity::Error => red,
                Severity::Warning => yellow,
            };
            let _ = writeln!(
                out,
                "{bold}{tint}{}[{}]{reset}{bold}: {}{reset}",
                d.severity.label(),
                d.code,
                d.message
            );
            let _ = writeln!(out, "  --> {}", d.locus);
            if let Some(help) = &d.help {
                let _ = writeln!(out, "  = help: {help}");
            }
        }
        let _ = writeln!(
            out,
            "{} error{}, {} warning{}",
            self.error_count(),
            if self.error_count() == 1 { "" } else { "s" },
            self.warning_count(),
            if self.warning_count() == 1 { "" } else { "s" },
        );
        out
    }

    /// Renders the stable machine-readable report (schema version 1):
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "errors": 1,
    ///   "warnings": 0,
    ///   "diagnostics": [
    ///     { "code": "C002", "severity": "error",
    ///       "locus": "spec.json: esr_curve[1]",
    ///       "message": "...", "help": "..." }
    ///   ]
    /// }
    /// ```
    #[must_use]
    pub fn render_json(&self) -> String {
        use serde::Value;
        let diags: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                let mut fields = vec![
                    ("code".to_string(), Value::String(d.code.to_string())),
                    (
                        "severity".to_string(),
                        Value::String(d.severity.label().to_string()),
                    ),
                    ("locus".to_string(), Value::String(d.locus.clone())),
                    ("message".to_string(), Value::String(d.message.clone())),
                ];
                if let Some(help) = &d.help {
                    fields.push(("help".to_string(), Value::String(help.clone())));
                }
                Value::Object(fields)
            })
            .collect();
        #[allow(clippy::cast_precision_loss)]
        let doc = Value::Object(vec![
            ("version".to_string(), Value::Number(1.0)),
            (
                "errors".to_string(),
                Value::Number(self.error_count() as f64),
            ),
            (
                "warnings".to_string(),
                Value::Number(self.warning_count() as f64),
            ),
            ("diagnostics".to_string(), Value::Array(diags)),
        ]);
        serde_json::to_string_pretty(&doc).expect("report serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new();
        r.push(
            Diagnostic::error("C002", "spec.json: esr_curve[1]", "frequencies must ascend")
                .with_help("sort the [hz, ohms] pairs by frequency"),
        );
        r.push(Diagnostic::warning(
            "C013",
            "packet.csv",
            "dominant frequency outside measured ESR support",
        ));
        r
    }

    #[test]
    fn counting_and_cleanliness() {
        let r = sample_report();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert!(Report::new().is_clean());
        assert!(!Report::new().has_errors());
    }

    #[test]
    fn human_rendering_is_rustc_shaped() {
        let text = sample_report().render_human(false);
        assert!(text.contains("error[C002]: frequencies must ascend"));
        assert!(text.contains("--> spec.json: esr_curve[1]"));
        assert!(text.contains("= help: sort the [hz, ohms] pairs"));
        assert!(text.contains("warning[C013]"));
        assert!(text.contains("1 error, 1 warning"));
        assert!(!text.contains('\u{1b}'), "no ANSI without color");
    }

    #[test]
    fn colored_rendering_wraps_with_ansi() {
        let text = sample_report().render_human(true);
        assert!(text.contains("\u{1b}[31m"));
        assert!(text.contains("\u{1b}[0m"));
    }

    #[test]
    fn json_rendering_round_trips() {
        let json = sample_report().render_json();
        let doc = serde_json::parse_value_str(&json).unwrap();
        assert_eq!(doc.get("version").and_then(serde::Value::as_f64), Some(1.0));
        assert_eq!(doc.get("errors").and_then(serde::Value::as_f64), Some(1.0));
        let diags = doc.get("diagnostics").unwrap().as_array().unwrap();
        assert_eq!(diags.len(), 2);
        assert_eq!(
            diags[0].get("code").and_then(serde::Value::as_str),
            Some("C002")
        );
    }
}

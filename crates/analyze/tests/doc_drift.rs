//! Doc-drift gate: the diagnostic codes the code can emit and the codes
//! DESIGN.md documents must be the *same set*, checked in both
//! directions.
//!
//! The registered side is enumerated from `Registry::default_battery()`
//! (every pass declares its codes) plus `promote::PROMOTED_CODES` (the
//! simulation-violation promotions, which live outside the battery).
//! The documented side is parsed from the diagnostics table in
//! DESIGN.md §7: rows shaped `| C0xx | … |` or `| C0xx–C0yy | … |`
//! (en-dash ranges are expanded). A new diagnostic without a table row
//! fails here, and so does a table row whose code was deleted.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;

/// Every code the crate can emit, from the machine-readable rosters.
fn registered_codes() -> BTreeSet<String> {
    let mut codes: BTreeSet<String> = culpeo_analyze::Registry::default_battery()
        .passes()
        .iter()
        .flat_map(|pass| pass.codes.iter().map(ToString::to_string))
        .collect();
    codes.extend(
        culpeo_analyze::promote::PROMOTED_CODES
            .iter()
            .map(ToString::to_string),
    );
    codes
}

/// Every code DESIGN.md's diagnostics table documents.
fn documented_codes() -> BTreeSet<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let text = std::fs::read_to_string(path).expect("DESIGN.md sits at the workspace root");
    let mut codes = BTreeSet::new();
    for line in text.lines() {
        // Table rows only: `| C0xx … | severity | … |`. Prose mentions
        // of codes (examples, cross-references) are not documentation
        // rows and must not satisfy the gate.
        let Some(rest) = line.strip_prefix("| C") else {
            continue;
        };
        let Some(cell) = rest.split('|').next() else {
            continue;
        };
        let cell = format!("C{}", cell.trim());
        // Other tables have rows starting with a capital C too
        // ("| Capybara … |"); only C-followed-by-a-digit is a code row.
        if !cell[1..].starts_with(|c: char| c.is_ascii_digit()) {
            continue;
        }
        match parse_row_codes(&cell) {
            Some(row) => codes.extend(row),
            None => panic!("unparseable diagnostics-table row in DESIGN.md: {line:?}"),
        }
    }
    assert!(
        !codes.is_empty(),
        "DESIGN.md no longer contains a recognisable diagnostics table"
    );
    codes
}

/// Parses one table cell: a single `C0xx` or an en-dash range
/// `C0xx–C0yy`, expanded inclusively. Degenerate ranges (`C050–C050`)
/// expand to the single code; inverted ranges are unparseable. Codes
/// are exactly three digits, zero-padded on expansion, so a range may
/// cross the hundreds boundary (`C099–C101`) without losing padding.
fn parse_row_codes(cell: &str) -> Option<Vec<String>> {
    let parse_one = |s: &str| -> Option<u32> {
        let digits = s.strip_prefix('C')?;
        (digits.len() == 3).then(|| digits.parse::<u32>().ok())?
    };
    if let Some((lo, hi)) = cell.split_once('–') {
        let (lo, hi) = (parse_one(lo.trim())?, parse_one(hi.trim())?);
        (lo <= hi).then(|| (lo..=hi).map(|n| format!("C{n:03}")).collect())
    } else {
        parse_one(cell).map(|n| vec![format!("C{n:03}")])
    }
}

#[test]
fn every_registered_code_is_documented() {
    let undocumented: Vec<String> = registered_codes()
        .difference(&documented_codes())
        .cloned()
        .collect();
    assert!(
        undocumented.is_empty(),
        "codes emitted by culpeo-analyze but missing from the DESIGN.md \
         diagnostics table: {undocumented:?} — add a table row for each"
    );
}

#[test]
fn every_documented_code_is_registered() {
    let stale: Vec<String> = documented_codes()
        .difference(&registered_codes())
        .cloned()
        .collect();
    assert!(
        stale.is_empty(),
        "codes documented in the DESIGN.md diagnostics table but no longer \
         emitted by any pass or promotion: {stale:?} — delete the rows or \
         restore the diagnostics"
    );
}

#[test]
fn range_rows_expand_inclusively() {
    assert_eq!(
        parse_row_codes("C030–C032").unwrap(),
        vec!["C030", "C031", "C032"]
    );
    assert_eq!(
        parse_row_codes("C050–C054").unwrap(),
        vec!["C050", "C051", "C052", "C053", "C054"]
    );
    assert_eq!(parse_row_codes("C001").unwrap(), vec!["C001"]);
    assert!(parse_row_codes("C9").is_none(), "codes are three digits");
}

#[test]
fn range_edge_cases_keep_three_digit_padding() {
    // Degenerate ranges are a single code, not a parse failure.
    assert_eq!(parse_row_codes("C050–C050").unwrap(), vec!["C050"]);
    // Inverted ranges stay unparseable (the caller panics loudly).
    assert!(parse_row_codes("C054–C050").is_none());
    // Crossing the hundreds boundary keeps zero-padded three-digit codes.
    assert_eq!(
        parse_row_codes("C099–C101").unwrap(),
        vec!["C099", "C100", "C101"]
    );
    // Two-digit endpoints never silently widen into a range.
    assert!(parse_row_codes("C050–C54").is_none());
}

#[test]
fn new_wcec_rows_are_documented_as_a_range() {
    // The §7 table documents C050–C054 as one range row; this pins the
    // expansion end-to-end through the DESIGN.md parse.
    let docs = documented_codes();
    for code in ["C050", "C051", "C052", "C053", "C054"] {
        assert!(docs.contains(code), "{code} missing from DESIGN.md §7");
    }
}

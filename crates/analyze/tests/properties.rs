//! Property tests tying the static lint battery to the model
//! constructor: the battery's verdict must agree with what
//! `SystemSpec::into_model` will actually accept.
//!
//! * battery-clean (no error diagnostics) ⇒ `into_model` succeeds and
//!   the resulting `PowerSystemModel` is usable without panicking;
//! * structurally corrupted specs ⇒ the battery reports errors AND
//!   construction fails — the linter never waves through a spec that the
//!   constructor would reject.

use culpeo_analyze::{AnalysisInput, Registry, SystemSpec, TraceInput};
use culpeo_units::Hertz;
use proptest::prelude::*;

/// Builds a physically plausible spec from generated knobs: ordered
/// thresholds, a descending two-point ESR curve, ascending efficiency.
fn plausible_spec(
    capacitance_mf: f64,
    esr: f64,
    v_off: f64,
    headroom: f64,
    eff_low: f64,
) -> SystemSpec {
    let v_high = v_off + headroom;
    let mut spec = SystemSpec::capybara();
    spec.capacitance_mf = capacitance_mf;
    spec.esr_ohms = None;
    // Supercap-shaped: ESR falls with frequency.
    spec.esr_curve = Some(vec![(10.0, esr), (1000.0, esr * 0.7)]);
    spec.v_off = v_off;
    spec.v_high = v_high;
    spec.v_out = v_off + headroom * 0.95;
    spec.efficiency.points = vec![(v_off, eff_low), (v_high, (eff_low + 0.08).min(1.0))];
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Battery-clean specs construct, and the model answers queries
    /// across its operating range without panicking.
    #[test]
    fn battery_clean_specs_construct_a_usable_model(
        capacitance_mf in 1.0..500.0f64,
        esr in 0.05..8.0f64,
        v_off in 1.0..2.0f64,
        headroom in 0.2..1.5f64,
        eff_low in 0.5..0.9f64,
    ) {
        let spec = plausible_spec(capacitance_mf, esr, v_off, headroom, eff_low);
        let report =
            Registry::default_battery().run(&AnalysisInput::spec_only(&spec, "generated"));
        prop_assume!(!report.has_errors());
        let model = spec.clone().into_model();
        prop_assert!(
            model.is_ok(),
            "battery passed but construction failed: {:?}\nspec: {:?}",
            model.err(),
            spec
        );
        let model = model.unwrap();
        // Exercise the model across its domain; all queries must stay finite.
        for f in [1.0, 10.0, 100.0, 10_000.0] {
            prop_assert!(model.esr_at(Hertz::new(f)).is_finite());
        }
        for v in [model.v_off(), model.v_out(), model.v_high()] {
            let eff = model.efficiency_at(v);
            prop_assert!(eff.is_finite() && eff > 0.0 && eff <= 1.0);
        }
    }

    /// Structural corruption is caught twice over: the battery errors,
    /// and the constructor refuses the spec.
    #[test]
    fn corrupted_specs_error_and_fail_construction(
        kind in 0usize..6,
        capacitance_mf in 1.0..500.0f64,
        esr in 0.05..8.0f64,
    ) {
        let mut spec = plausible_spec(capacitance_mf, esr, 1.6, 0.9, 0.78);
        match kind {
            // Unsorted ESR curve.
            0 => spec.esr_curve = Some(vec![(1000.0, esr * 0.7), (10.0, esr)]),
            // Duplicate frequency.
            1 => spec.esr_curve = Some(vec![(10.0, esr), (10.0, esr * 0.9)]),
            // Non-finite curve point.
            2 => spec.esr_curve = Some(vec![(10.0, f64::NAN), (1000.0, esr)]),
            // Both ESR forms at once.
            3 => spec.esr_ohms = Some(esr),
            // Neither ESR form.
            4 => spec.esr_curve = None,
            // Collapsed thresholds.
            _ => {
                spec.v_off = 2.5;
                spec.v_high = 1.6;
            }
        }
        let report =
            Registry::default_battery().run(&AnalysisInput::spec_only(&spec, "corrupted"));
        prop_assert!(
            report.has_errors(),
            "corruption kind {kind} slipped past the battery: {:?}",
            spec
        );
        prop_assert!(
            spec.into_model().is_err(),
            "corruption kind {kind} slipped past the constructor"
        );
    }

    /// The battery itself never panics, whatever finite samples a trace
    /// carries — including negative currents and pathological dt.
    #[test]
    fn battery_is_total_over_finite_traces(
        dt_us in 1.0..1000.0f64,
        amplitude_ma in -50.0..50.0f64,
        n in 1usize..200,
    ) {
        let spec = SystemSpec::capybara();
        let samples: Vec<f64> = (0..n)
            .map(|i| amplitude_ma * 1e-3 * if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let trace = TraceInput {
            locus: "generated trace".to_string(),
            label: "generated".to_string(),
            dt_s: dt_us * 1e-6,
            samples,
            timestamps: None,
        };
        let traces = vec![trace];
        let input = AnalysisInput {
            spec: &spec,
            spec_locus: "capybara",
            traces: &traces,
            plan: None,
            plan_locus: "",
        };
        let report = Registry::default_battery().run(&input);
        // Verdict is unconstrained; totality is the property.
        let _ = report.render_json();
        let _ = report.render_human(false);
    }
}

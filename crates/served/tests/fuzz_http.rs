//! Fuzzing the HTTP boundary: arbitrary garbage, oversized heads, and
//! lying `Content-Length` claims must never panic the parser, and the
//! running daemon must always answer them with a well-formed JSON error.
//!
//! The parser half feeds in-memory byte slices to `http::read_request`
//! (it is generic over `Read` exactly for this). The socket half boots a
//! real daemon on an ephemeral port and throws the same abuse at it over
//! TCP. The vendored proptest stub has no byte-vector strategy, so
//! payloads are synthesized from a `(seed, len)` pair through splitmix64.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use culpeo_api::ApiError;
use culpeo_served::http::{read_request, HttpError, MAX_HEAD_BYTES};
use culpeo_served::{Server, ServerConfig};
use proptest::prelude::*;

/// Deterministic pseudo-random bytes from a seed (the workspace-wide
/// splitmix64 stream).
use culpeo_units::seed::byte_stream as garbage_bytes;

proptest! {
    /// Raw garbage at the parser: any outcome is fine except a panic,
    /// and success is only possible for bytes that really formed a
    /// request. (The proptest harness turns a panic into a failure.)
    #[test]
    fn parser_survives_arbitrary_bytes(seed in 0u64..u64::MAX, len in 0usize..4096) {
        let bytes = garbage_bytes(seed, len);
        match read_request(&mut &bytes[..]) {
            Ok(req) => {
                // If garbage parsed, it must at least be self-consistent.
                prop_assert!(!req.method.is_empty());
                prop_assert!(!req.path.is_empty());
            }
            Err(e) => {
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Prefixing a valid request line does not let garbage headers
    /// panic the parser either.
    #[test]
    fn parser_survives_garbage_headers(seed in 0u64..u64::MAX, len in 0usize..2048) {
        let mut bytes = b"POST /v1/vsafe HTTP/1.1\r\n".to_vec();
        bytes.extend_from_slice(&garbage_bytes(seed, len));
        bytes.extend_from_slice(b"\r\n\r\n");
        let _ = read_request(&mut &bytes[..]);
    }

    /// A Content-Length bigger than the actual body (the "lying client")
    /// must surface as a clean error, never a hang or panic: the slice
    /// ends, so the parser sees a mid-body close.
    #[test]
    fn lying_content_length_is_a_clean_error(claimed in 1usize..100_000, actual in 0usize..64) {
        prop_assume!(claimed > actual);
        let mut bytes =
            format!("POST /v1/vsafe HTTP/1.1\r\nContent-Length: {claimed}\r\n\r\n").into_bytes();
        bytes.extend_from_slice(&garbage_bytes(claimed as u64, actual));
        let err = read_request(&mut &bytes[..]).unwrap_err();
        prop_assert!(
            matches!(err, HttpError::Malformed(_)),
            "expected Malformed, got {err:?}"
        );
    }
}

#[test]
fn oversized_head_is_rejected_as_too_large() {
    let mut bytes = b"POST /v1/vsafe HTTP/1.1\r\n".to_vec();
    // A single endless header line, never reaching the blank terminator.
    bytes.extend_from_slice(b"X-Filler: ");
    bytes.resize(MAX_HEAD_BYTES + 4096, b'a');
    let err = read_request(&mut &bytes[..]).unwrap_err();
    assert_eq!(err, HttpError::TooLarge("request head"));
}

#[test]
fn oversized_content_length_claim_is_rejected_without_reading_it() {
    // 10 GiB claimed, zero sent: the cap must fire on the claim alone.
    let bytes: &[u8] = b"POST /v1/vsafe HTTP/1.1\r\nContent-Length: 10737418240\r\n\r\n";
    let err = read_request(&mut &bytes[..]).unwrap_err();
    assert_eq!(err, HttpError::TooLarge("request body"));
}

// ---------------------------------------------------------------------
// The same abuse over a real TCP socket against a running daemon.
// ---------------------------------------------------------------------

fn chaos_config() -> ServerConfig {
    ServerConfig {
        port: 0,
        threads: 2,
        // Short but not racy: the slow tests stall ~4× longer than this.
        read_timeout_ms: 250,
        write_timeout_ms: 250,
        deadline_ms: 2_000,
        ..ServerConfig::default()
    }
}

/// Strips the schema-2 response envelope, returning the inner `data`
/// document (serialised last, so it runs to the closing brace).
fn unwrap_envelope(body: &str) -> &str {
    let marker = "\"data\":";
    match body.find(marker) {
        Some(i) if body.starts_with("{\"schema_version\"") && body.ends_with('}') => {
            &body[i + marker.len()..body.len() - 1]
        }
        _ => body,
    }
}

/// Reads whatever the daemon answers and asserts it is a well-formed
/// HTTP/1.1 error response carrying a parseable `ApiError` JSON body
/// (inside the schema-2 envelope).
fn assert_well_formed_error(s: &mut TcpStream, expect_status: u16) -> ApiError {
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("daemon must answer");
    assert!(raw.starts_with("HTTP/1.1 "), "raw: {raw:?}");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    assert_eq!(status, expect_status, "raw: {raw:?}");
    let body = raw.split_once("\r\n\r\n").expect("header terminator").1;
    serde_json::from_str::<ApiError>(unwrap_envelope(body)).expect("body must be ApiError JSON")
}

#[test]
fn daemon_answers_garbage_bytes_with_400_json() {
    let server = Server::start(&chaos_config()).unwrap();
    let addr = server.addr();
    for seed in 0..8u64 {
        let mut s = TcpStream::connect(addr).unwrap();
        // Garbage with a head terminator so the parser gets a full head
        // instead of waiting out the read timeout.
        let mut bytes = garbage_bytes(seed, 512);
        bytes.extend_from_slice(b"\r\n\r\n");
        s.write_all(&bytes).unwrap();
        let e = assert_well_formed_error(&mut s, 400);
        assert_eq!(e.kind, culpeo_api::ApiErrorKind::BadRequest);
    }
    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn daemon_answers_lying_content_length_with_408_and_retry_after() {
    let server = Server::start(&chaos_config()).unwrap();
    let addr = server.addr();
    let mut s = TcpStream::connect(addr).unwrap();
    // Claim 1000 bytes, send 10, then stall: the read timeout must fire
    // and the daemon must blame the client with a 408.
    s.write_all(b"POST /v1/vsafe HTTP/1.1\r\nContent-Length: 1000\r\n\r\n0123456789")
        .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("daemon must answer");
    assert!(raw.starts_with("HTTP/1.1 408 "), "raw: {raw:?}");
    assert!(raw.contains("Retry-After: 1\r\n"), "raw: {raw:?}");
    let body = raw.split_once("\r\n\r\n").unwrap().1;
    let e: ApiError = serde_json::from_str(unwrap_envelope(body)).unwrap();
    assert_eq!(e.kind, culpeo_api::ApiErrorKind::Timeout);
    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn daemon_answers_oversized_body_claim_with_413_json() {
    let server = Server::start(&chaos_config()).unwrap();
    let addr = server.addr();
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /v1/vsafe HTTP/1.1\r\nContent-Length: 10737418240\r\n\r\n")
        .unwrap();
    let e = assert_well_formed_error(&mut s, 413);
    assert_eq!(e.kind, culpeo_api::ApiErrorKind::TooLarge);
    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn daemon_survives_mid_request_disconnects() {
    let server = Server::start(&chaos_config()).unwrap();
    let addr = server.addr();
    // Hang up at every interesting point; the daemon must neither panic
    // nor stop answering the next client.
    for partial in [
        &b"POST"[..],
        &b"POST /v1/vsafe HTTP/1.1\r\n"[..],
        &b"POST /v1/vsafe HTTP/1.1\r\nContent-Length: 50\r\n\r\n"[..],
        &b"POST /v1/vsafe HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"trace"[..],
    ] {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(partial).unwrap();
        drop(s); // disconnect without reading the answer
    }
    // The daemon is still alive and sane.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /v1/health HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200 "), "raw: {raw:?}");
    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn slow_loris_writer_is_cut_off_with_408() {
    let server = Server::start(&chaos_config()).unwrap();
    let addr = server.addr();
    let mut s = TcpStream::connect(addr).unwrap();
    // Trickle a byte, then stall well past the 250 ms read timeout.
    s.write_all(b"P").unwrap();
    std::thread::sleep(Duration::from_millis(1_000));
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("daemon must answer");
    assert!(raw.starts_with("HTTP/1.1 408 "), "raw: {raw:?}");
    // And the stall is visible to operators.
    let mut m = TcpStream::connect(addr).unwrap();
    m.write_all(b"GET /v1/metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut mraw = String::new();
    m.read_to_string(&mut mraw).unwrap();
    let body = mraw.split_once("\r\n\r\n").unwrap().1;
    let doc: culpeo_api::MetricsResponse = serde_json::from_str(unwrap_envelope(body)).unwrap();
    assert!(doc.shed.read_timeouts >= 1, "shed: {:?}", doc.shed);
    server.shutdown_handle().request();
    let _ = server.join();
}

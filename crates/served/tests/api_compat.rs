//! API compatibility pins: the `/v1` wire contract, both schema
//! generations.
//!
//! Schema 2 introduced the uniform response envelope and the fleet
//! surface; schema-1 *requests* (pinned below as byte literals, exactly
//! what a v1 client sends) must still be accepted. These tests drive a
//! live daemon over TCP so what is pinned is the actual wire shape, not
//! a serialisation detail.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use culpeo_served::{Server, ServerConfig};

fn boot() -> Server {
    Server::start(&ServerConfig {
        port: 0,
        threads: 2,
        ..ServerConfig::default()
    })
    .unwrap()
}

/// One request, `Connection: close`; returns (status, raw JSON body).
fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: compat\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, raw.split_once("\r\n\r\n").unwrap().1.to_string())
}

/// The schema-1 `/v1/vsafe` request, as a byte-for-byte client literal.
const SCHEMA1_VSAFE: &str = r##"{"schema_version": 1, "trace_csv": "# dt_us: 8\n0.0,0.010\n0.000008,0.025\n0.000016,0.010\n"}"##;

/// The same request under schema 2.
const SCHEMA2_VSAFE: &str = r##"{"schema_version": 2, "trace_csv": "# dt_us: 8\n0.0,0.010\n0.000008,0.025\n0.000016,0.010\n"}"##;

/// Asserts the schema-2 envelope shape and returns the inner `data`.
fn assert_envelope(body: &str) -> String {
    assert!(
        body.starts_with("{\"schema_version\":2,\"request_id\":\"r-"),
        "envelope prefix: {body}"
    );
    assert!(
        body.contains("\"server_timing\":{\"queue_us\":"),
        "server_timing: {body}"
    );
    assert!(body.contains(",\"compute_us\":"), "server_timing: {body}");
    let i = body.find("\"data\":").expect("data field");
    assert!(body.ends_with('}'));
    body[i + "\"data\":".len()..body.len() - 1].to_string()
}

#[test]
fn schema_1_requests_are_still_accepted() {
    let server = boot();
    let addr = server.addr();

    let (status, body) = roundtrip(addr, "POST", "/v1/vsafe", SCHEMA1_VSAFE);
    assert_eq!(status, 200, "schema-1 client must not break: {body}");
    let data = assert_envelope(&body);
    let doc = serde_json::parse_value_str(&data).unwrap();
    // The response itself is schema 2: accepting old requests does not
    // mean emitting old responses.
    assert_eq!(
        doc.get("schema_version").and_then(serde::Value::as_f64),
        Some(2.0)
    );
    assert!(doc.get("v_safe_v").is_some());

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn schema_2_requests_envelope_every_v1_response() {
    let server = boot();
    let addr = server.addr();

    let (status, body) = roundtrip(addr, "POST", "/v1/vsafe", SCHEMA2_VSAFE);
    assert_eq!(status, 200, "{body}");
    let v2 = assert_envelope(&body);
    // Byte-identity across schema generations: the inner payload for a
    // schema-1 request is the same document.
    let (_, body1) = roundtrip(addr, "POST", "/v1/vsafe", SCHEMA1_VSAFE);
    assert_eq!(assert_envelope(&body1), v2);

    // Errors are enveloped too, and carry distinct request ids.
    let (status, e1) = roundtrip(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    let (_, e2) = roundtrip(addr, "GET", "/v1/nope", "");
    let kind = |b: &str| {
        serde_json::parse_value_str(&assert_envelope(b))
            .unwrap()
            .get("kind")
            .and_then(serde::Value::as_str)
            .map(str::to_string)
    };
    assert_eq!(kind(&e1).as_deref(), Some("not_found"));
    let id = |b: &str| {
        b["{\"schema_version\":2,\"request_id\":\"".len()..]
            .split('"')
            .next()
            .map(str::to_string)
    };
    assert_ne!(id(&e1), id(&e2), "request ids are unique");

    // Health and metrics, the GET surfaces, are enveloped as well.
    let (_, h) = roundtrip(addr, "GET", "/v1/health", "");
    assert!(assert_envelope(&h).contains("\"uptime_s\""));
    let (_, m) = roundtrip(addr, "GET", "/v1/metrics", "");
    assert!(assert_envelope(&m).contains("\"endpoints\""));

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn wcec_endpoint_is_enveloped_and_certifies_table3() {
    let server = boot();
    let addr = server.addr();

    let tasks: Vec<String> = culpeo_wcec::workloads::table3(culpeo_units::Volts::new(2.55))
        .iter()
        .map(|g| serde_json::to_string(&culpeo_wcec::to_dto(g)).unwrap())
        .collect();
    let req = format!(
        "{{\"schema_version\": 2, \"tasks\": [{}]}}",
        tasks.join(",")
    );
    let (status, body) = roundtrip(addr, "POST", "/v1/wcec", &req);
    assert_eq!(status, 200, "{body}");
    let doc = serde_json::parse_value_str(&assert_envelope(&body)).unwrap();
    assert_eq!(
        doc.get("certified").and_then(serde::Value::as_f64),
        Some(3.0)
    );
    assert_eq!(doc.get("unknown").and_then(serde::Value::as_f64), Some(0.0));
    assert_eq!(
        doc.get("exit_code").and_then(serde::Value::as_f64),
        Some(0.0)
    );

    // Wrong method on the route answers 405, not 404.
    let (status, _) = roundtrip(addr, "GET", "/v1/wcec", "");
    assert_eq!(status, 405);

    // The endpoint has its own metrics row.
    let (_, m) = roundtrip(addr, "GET", "/v1/metrics", "");
    assert!(assert_envelope(&m).contains("\"path\":\"/v1/wcec\""), "{m}");

    server.shutdown_handle().request();
    let _ = server.join();
}

/// Both envelope generations, pinned side by side: the daemon stamps
/// `request_id` + `server_timing` around `data`; the CLI's local
/// envelope (`culpeo_api::cli_envelope`, used by `culpeo lint`/`verify`
/// /`wcec --format json`) carries the same `schema_version` + `data`
/// with the per-request fields omitted — there is no request to identify
/// or time.
#[test]
fn cli_and_daemon_envelopes_share_a_generation() {
    let server = boot();
    let addr = server.addr();

    let (status, body) = roundtrip(addr, "POST", "/v1/vsafe", SCHEMA2_VSAFE);
    assert_eq!(status, 200, "{body}");
    let daemon_data = assert_envelope(&body);

    let cli = culpeo_api::cli_envelope(&daemon_data);
    assert!(cli.starts_with("{\"schema_version\":2,\"data\":"), "{cli}");
    assert!(!cli.contains("request_id"), "{cli}");
    assert!(!cli.contains("server_timing"), "{cli}");
    let cli_doc = serde_json::parse_value_str(&cli).unwrap();
    assert_eq!(
        cli_doc.get("schema_version").and_then(serde::Value::as_f64),
        Some(2.0)
    );
    // The payload under `data` is byte-identical across both surfaces.
    let daemon_doc = serde_json::parse_value_str(&body).unwrap();
    assert_eq!(cli_doc.get("data"), daemon_doc.get("data"));

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn unsupported_schema_version_is_rejected() {
    let server = boot();
    let addr = server.addr();

    let bad = r##"{"schema_version": 99, "trace_csv": "# dt_us: 8\n0.0,0.010\n"}"##;
    let (status, body) = roundtrip(addr, "POST", "/v1/vsafe", bad);
    assert_eq!(status, 400, "{body}");
    let data = assert_envelope(&body);
    assert!(data.contains("unsupported_version"), "{data}");

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn fleet_surface_registers_reports_and_streams() {
    let server = boot();
    let addr = server.addr();

    // Two twins, one round each: finishes in well under a second.
    let req = r##"{"schema_version": 2, "count": 2, "rounds": 1, "trace_csv": "# dt_us: 8\n0.0,0.010\n0.000008,0.025\n0.000016,0.010\n"}"##;
    let (status, body) = roundtrip(addr, "POST", "/v1/fleet", req);
    assert_eq!(status, 200, "{body}");
    let reg = serde_json::parse_value_str(&assert_envelope(&body)).unwrap();
    assert_eq!(
        reg.get("registered").and_then(serde::Value::as_f64),
        Some(2.0)
    );
    assert_eq!(
        reg.get("first_id").and_then(serde::Value::as_f64),
        Some(0.0)
    );
    assert_eq!(
        reg.get("verify_verdict").and_then(serde::Value::as_str),
        Some("unverified")
    );

    // Poll the summary until the scheduler has driven both twins done.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let (_, s) = roundtrip(addr, "GET", "/v1/fleet", "");
        let doc = serde_json::parse_value_str(&assert_envelope(&s)).unwrap();
        if doc.get("scheduler").and_then(serde::Value::as_str) == Some("idle")
            && doc.get("rounds_done").and_then(serde::Value::as_f64) >= Some(2.0)
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "fleet never went idle: {s}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // Twin snapshots answer by id; out-of-range ids are 404s.
    let (status, t) = roundtrip(addr, "GET", "/v1/fleet/1", "");
    assert_eq!(status, 200, "{t}");
    let twin = serde_json::parse_value_str(&assert_envelope(&t)).unwrap();
    assert_eq!(twin.get("id").and_then(serde::Value::as_f64), Some(1.0));
    assert_eq!(twin.get("done"), Some(&serde::Value::Bool(true)));
    assert!(twin.get("drift_mv").is_some());
    let (status, _) = roundtrip(addr, "GET", "/v1/fleet/99", "");
    assert_eq!(status, 404);

    // The NDJSON stream: un-enveloped, one schema-2 event per line.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /v1/fleet/events HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(raw.contains("application/x-ndjson"), "{raw}");
    let body = raw.split_once("\r\n\r\n").unwrap().1;
    let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 2, "one event per completed round: {body}");
    for line in lines {
        let ev = serde_json::parse_value_str(line).unwrap();
        assert_eq!(
            ev.get("schema_version").and_then(serde::Value::as_f64),
            Some(2.0)
        );
        assert!(ev.get("v_final_v").is_some());
    }

    server.shutdown_handle().request();
    let _ = server.join();
}

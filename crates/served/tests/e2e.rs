//! End-to-end tests: boot the daemon on an ephemeral port and drive it
//! with raw `std::net::TcpStream` clients, the same way an external
//! consumer would.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use culpeo_api::{
    BatchItem, BatchRequest, BatchResponse, HealthResponse, MetricsResponse, VsafeRequest,
    VsafeResponse, SCHEMA_VERSION,
};
use culpeo_served::{handle, Server, ServerConfig};

fn ble_csv() -> String {
    let trace = culpeo_loadgen::peripheral::BleRadio::default()
        .profile()
        .sample(culpeo_units::Hertz::new(125_000.0));
    culpeo_loadgen::io::to_csv(&trace)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        port: 0, // ephemeral: tests must not fight over a fixed port
        threads: 2,
        ..ServerConfig::default()
    }
}

/// Sends one request with `Connection: close` and reads the full
/// response (the daemon honours the close and hangs up after
/// answering). Returns (status, envelope-stripped body).
fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(body.as_bytes()).unwrap();
    read_response(&mut s)
}

fn read_response(s: &mut TcpStream) -> (u16, String) {
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .expect("header terminator")
        .1
        .to_string();
    (status, unwrap_envelope(&body))
}

/// Strips the schema-2 response envelope, returning the inner `data`
/// document (the envelope serialises `data` last, so the payload runs
/// to the closing brace).
fn unwrap_envelope(body: &str) -> String {
    let marker = "\"data\":";
    match body.find(marker) {
        Some(i) if body.starts_with("{\"schema_version\"") && body.ends_with('}') => {
            body[i + marker.len()..body.len() - 1].to_string()
        }
        _ => body.to_string(),
    }
}

fn vsafe_body() -> String {
    let req = VsafeRequest {
        schema_version: Some(SCHEMA_VERSION),
        spec: None,
        trace_csv: ble_csv(),
    };
    serde_json::to_string(&req).unwrap()
}

#[test]
fn vsafe_over_tcp_is_byte_identical_to_the_cli_path() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    let (status, body) = roundtrip(addr, "POST", "/v1/vsafe", &vsafe_body());
    assert_eq!(status, 200, "body: {body}");
    let resp: VsafeResponse = serde_json::from_str(&body).unwrap();

    // The CLI's `vsafe` verb renders through the very same function; the
    // daemon's `report` field must match it to the byte.
    let model = culpeo_api::SystemSpec::capybara().into_model().unwrap();
    let trace = culpeo_loadgen::io::from_csv(&ble_csv()).unwrap();
    assert_eq!(resp.report, handle::vsafe_report(&model, &trace));
    assert_eq!(resp.schema_version, SCHEMA_VERSION);
    assert!(resp.v_safe_v > resp.energy_only_v);

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn repeated_request_is_a_cache_hit_in_metrics() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    let (s1, b1) = roundtrip(addr, "POST", "/v1/vsafe", &vsafe_body());
    let (s2, b2) = roundtrip(addr, "POST", "/v1/vsafe", &vsafe_body());
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2, "memoized answer must be identical");

    let (status, body) = roundtrip(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let m: MetricsResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(m.cache.misses, 1, "first request misses");
    assert_eq!(m.cache.hits, 1, "second request hits");
    assert_eq!(m.cache.entries, 1);
    let vsafe_row = m.endpoints.iter().find(|e| e.path == "/v1/vsafe").unwrap();
    assert_eq!(vsafe_row.requests, 2);
    assert_eq!(vsafe_row.errors, 0);

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn batch_fans_out_and_health_answers() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    let item = || BatchItem {
        vsafe: Some(VsafeRequest {
            schema_version: None,
            spec: None,
            trace_csv: ble_csv(),
        }),
        lint: None,
    };
    let batch = BatchRequest {
        schema_version: None,
        items: vec![item(), item(), item()],
    };
    let (status, body) = roundtrip(
        addr,
        "POST",
        "/v1/batch",
        &serde_json::to_string(&batch).unwrap(),
    );
    assert_eq!(status, 200, "body: {body}");
    let resp: BatchResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(resp.results.len(), 3);
    assert!(resp.results.iter().all(|r| r.vsafe.is_some()));

    let (status, body) = roundtrip(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    let h: HealthResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(h.status, "ok");
    assert_eq!(h.threads, 2);

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn unknown_paths_and_wrong_methods_get_structured_errors() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    let (status, body) = roundtrip(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    assert!(body.contains("\"not_found\""));

    let (status, body) = roundtrip(addr, "GET", "/v1/vsafe", "");
    assert_eq!(status, 405);
    assert!(body.contains("\"method_not_allowed\""));

    let (status, body) = roundtrip(addr, "POST", "/v1/vsafe", "{not json");
    assert_eq!(status, 400);
    assert!(body.contains("\"bad_request\""));

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn shutdown_drains_accepted_requests_before_exit() {
    // One worker, so a second accepted connection must sit in the queue
    // and survive the drain.
    let config = ServerConfig {
        port: 0,
        threads: 1,
        ..ServerConfig::default()
    };
    let server = Server::start(&config).unwrap();
    let addr = server.addr();

    let send = |body: &str| -> TcpStream {
        let mut s = TcpStream::connect(addr).unwrap();
        let head = format!(
            "POST /v1/vsafe HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        s.write_all(head.as_bytes()).unwrap();
        s.write_all(body.as_bytes()).unwrap();
        s
    };
    let body = vsafe_body();
    let mut a = send(&body);
    let mut b = send(&body);
    // Give the acceptor a beat to move both connections into the queue.
    std::thread::sleep(std::time::Duration::from_millis(200));

    // Drain via the wire, like an operator would.
    let (status, resp) = roundtrip(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    let h: HealthResponse = serde_json::from_str(&resp).unwrap();
    assert_eq!(h.status, "draining");

    // Both in-flight requests must still get complete answers.
    let (sa, ba) = read_response(&mut a);
    let (sb, bb) = read_response(&mut b);
    assert_eq!((sa, sb), (200, 200));
    assert!(ba.contains("v_safe_v") && bb.contains("v_safe_v"));

    // join() returning at all proves the drain terminates.
    let summary = server.join();
    assert!(summary.requests >= 3, "summary: {summary:?}");
}

// ---------------------------------------------------------------------
// Probes + durable telemetry ingest.
// ---------------------------------------------------------------------

use culpeo_api::{ObservationDto, ObserveDeviceResponse, ObserveRequest, ObserveResponse};
use culpeo_served::LogMode;

/// Like [`roundtrip`] but returns the raw (envelope-intact) body, for
/// asserting on `server_timing` itself.
fn roundtrip_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .expect("header terminator")
        .1
        .to_string();
    (status, body)
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("culpeo-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn observe_body(device: u64, triples: &[(f64, f64, f64)]) -> String {
    let dto = |&(vs, vm, vf): &(f64, f64, f64)| ObservationDto {
        device,
        v_start_v: vs,
        v_min_v: vm,
        v_final_v: vf,
    };
    let req = if triples.len() == 1 {
        ObserveRequest {
            schema_version: Some(SCHEMA_VERSION),
            observation: Some(dto(&triples[0])),
            batch: Vec::new(),
        }
    } else {
        ObserveRequest {
            schema_version: Some(SCHEMA_VERSION),
            observation: None,
            batch: triples.iter().map(dto).collect(),
        }
    };
    serde_json::to_string(&req).unwrap()
}

/// Polls `/v1/readyz` until it answers 200 (bounded).
fn await_ready(addr: SocketAddr) {
    for _ in 0..100 {
        let (status, _) = roundtrip(addr, "GET", "/v1/readyz", "");
        if status == 200 {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    panic!("daemon never became ready");
}

#[test]
fn probes_answer_without_a_store_and_reject_wrong_methods() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    let (status, body) = roundtrip(addr, "GET", "/v1/livez", "");
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"ok\""), "body: {body}");

    let (status, body) = roundtrip(addr, "GET", "/v1/readyz", "");
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"disabled\""), "store disabled: {body}");

    let (status, body) = roundtrip(addr, "POST", "/v1/livez", "");
    assert_eq!(status, 405, "body: {body}");

    // Without --store, ingest is an explicit 404, not a silent accept.
    let (status, body) = roundtrip(
        addr,
        "POST",
        "/v1/observe",
        &observe_body(1, &[(2.3, 2.2, 2.28)]),
    );
    assert_eq!(status, 404, "body: {body}");

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn observe_round_trip_acks_serves_the_estimate_and_stamps_fsync_us() {
    let dir = fresh_dir("observe");
    let config = ServerConfig {
        store_dir: Some(dir.clone()),
        ..test_config()
    };
    let server = Server::start(&config).unwrap();
    let addr = server.addr();
    await_ready(addr);

    // Single observation: the ack arrives only after durability, and
    // the envelope's server_timing carries fsync_us.
    let (status, raw) = roundtrip_raw(
        addr,
        "POST",
        "/v1/observe",
        &observe_body(5, &[(2.3, 2.25, 2.29)]),
    );
    assert_eq!(status, 200, "body: {raw}");
    assert!(
        raw.contains(",\"fsync_us\":"),
        "observe must stamp fsync_us inside server_timing: {raw}"
    );
    let resp: ObserveResponse = serde_json::from_str(&unwrap_envelope(&raw)).unwrap();
    assert_eq!(resp.acked.len(), 1);
    assert_eq!((resp.acked[0].device, resp.acked[0].seq), (5, 1));

    // Batch: per-device sequence numbers stay monotonic.
    let (status, body) = roundtrip(
        addr,
        "POST",
        "/v1/observe",
        &observe_body(
            5,
            &[(2.3, 2.24, 2.29), (2.29, 2.2, 2.27), (2.27, 2.19, 2.26)],
        ),
    );
    assert_eq!(status, 200, "body: {body}");
    let resp: ObserveResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(
        resp.acked.iter().map(|a| a.seq).collect::<Vec<_>>(),
        vec![2, 3, 4]
    );

    // The live estimate + rolling verdict round-trips.
    let (status, body) = roundtrip(addr, "GET", "/v1/observe/5", "");
    assert_eq!(status, 200, "body: {body}");
    let dev: ObserveDeviceResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(dev.device, 5);
    assert_eq!(dev.last_seq, 4);
    assert_eq!(dev.records, 4);
    assert!(dev.v_safe_v > 1.6, "estimate above V_off: {}", dev.v_safe_v);
    assert_eq!(dev.rolling.horizon, 8);
    assert!(
        matches!(
            dev.rolling.verdict.as_str(),
            "proved-periodic" | "proved-k" | "unproved"
        ),
        "verdict: {:?}",
        dev.rolling
    );

    let (status, body) = roundtrip(addr, "GET", "/v1/observe/999", "");
    assert_eq!(status, 404, "body: {body}");

    // Ordinary endpoints must NOT gain fsync_us.
    let (status, raw) = roundtrip_raw(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    assert!(
        !raw.contains("fsync_us"),
        "health must not stamp fsync_us: {raw}"
    );

    let (status, body) = roundtrip(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let m: MetricsResponse = serde_json::from_str(&body).unwrap();
    let row = m
        .endpoints
        .iter()
        .find(|e| e.path == "/v1/observe")
        .unwrap();
    assert_eq!(row.requests, 2);
    assert!(m
        .endpoints
        .iter()
        .any(|e| e.path == "/v1/readyz" && e.requests >= 1));

    server.shutdown_handle().request();
    let _ = server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readyz_flips_to_503_during_the_recovery_window_and_back() {
    let dir = fresh_dir("recovery");
    // Pre-seed the store so recovery has real records to rebuild from.
    {
        let (store, _) =
            culpeo_store::Store::open(&dir, culpeo_store::StoreConfig::default()).unwrap();
        store.append(9, 2.3, 2.2, 2.28).unwrap();
        store.append(9, 2.29, 2.21, 2.27).unwrap();
    }
    let config = ServerConfig {
        store_dir: Some(dir.clone()),
        recovery_delay_ms: 500,
        log: LogMode::Json,
        ..test_config()
    };
    let server = Server::start(&config).unwrap();
    let addr = server.addr();

    // Inside the recovery window: live but not ready.
    let (status, body) = roundtrip(addr, "GET", "/v1/livez", "");
    assert_eq!(status, 200, "livez during recovery: {body}");
    let (status, raw) = roundtrip_raw(addr, "GET", "/v1/readyz", "");
    assert_eq!(status, 503, "readyz during recovery: {raw}");
    assert!(raw.contains("\"recovering\""), "body: {raw}");
    let (status, body) = roundtrip(
        addr,
        "POST",
        "/v1/observe",
        &observe_body(9, &[(2.3, 2.2, 2.28)]),
    );
    assert_eq!(status, 503, "ingest during recovery: {body}");
    assert!(body.contains("\"busy\""), "body: {body}");

    // After recovery: ready, and the pre-seeded records survived.
    await_ready(addr);
    let (status, body) = roundtrip(addr, "GET", "/v1/observe/9", "");
    assert_eq!(status, 200, "body: {body}");
    let dev: ObserveDeviceResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(dev.last_seq, 2, "recovered both pre-seeded records");

    server.shutdown_handle().request();
    let _ = server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readyz_flips_to_503_during_drain_while_inflight_work_completes() {
    // One worker + test faults: a slow request pins the worker while
    // probes answer inline, then shutdown flips readiness mid-pipeline.
    let config = ServerConfig {
        port: 0,
        threads: 1,
        test_faults: true,
        ..ServerConfig::default()
    };
    let server = Server::start(&config).unwrap();
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    // Request 0: pinned in the worker for ~600 ms.
    s.write_all(
        b"GET /v1/health HTTP/1.1\r\nHost: e2e\r\nx-culpeo-fault: sleep:600\r\nContent-Length: 0\r\n\r\n",
    )
    .unwrap();
    // Request 1: readyz, answered inline by the reactor *now* (pre-
    // drain, so 200) but flushed after request 0 in pipeline order.
    s.write_all(b"GET /v1/readyz HTTP/1.1\r\nHost: e2e\r\nContent-Length: 0\r\n\r\n")
        .unwrap();
    // Give the reactor a beat to parse both (the probe answer is
    // computed at parse time).
    std::thread::sleep(std::time::Duration::from_millis(200));

    server.shutdown_handle().request();
    std::thread::sleep(std::time::Duration::from_millis(50));

    // Request 2: readyz during the drain window → 503 "draining".
    s.write_all(b"GET /v1/readyz HTTP/1.1\r\nHost: e2e\r\nContent-Length: 0\r\n\r\n")
        .unwrap();

    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let statuses: Vec<u16> = raw
        .split("HTTP/1.1 ")
        .skip(1)
        .map(|chunk| chunk.split_whitespace().next().unwrap().parse().unwrap())
        .collect();
    assert_eq!(
        statuses,
        vec![200, 200, 503],
        "pipeline order: slow health, pre-drain readyz, drain readyz; raw:\n{raw}"
    );
    assert!(raw.contains("\"draining\""), "raw:\n{raw}");

    let _ = server.join();
}

//! End-to-end tests: boot the daemon on an ephemeral port and drive it
//! with raw `std::net::TcpStream` clients, the same way an external
//! consumer would.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use culpeo_api::{
    BatchItem, BatchRequest, BatchResponse, HealthResponse, MetricsResponse, VsafeRequest,
    VsafeResponse, SCHEMA_VERSION,
};
use culpeo_served::{handle, Server, ServerConfig};

fn ble_csv() -> String {
    let trace = culpeo_loadgen::peripheral::BleRadio::default()
        .profile()
        .sample(culpeo_units::Hertz::new(125_000.0));
    culpeo_loadgen::io::to_csv(&trace)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        port: 0, // ephemeral: tests must not fight over a fixed port
        threads: 2,
        ..ServerConfig::default()
    }
}

/// Sends one request with `Connection: close` and reads the full
/// response (the daemon honours the close and hangs up after
/// answering). Returns (status, envelope-stripped body).
fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(body.as_bytes()).unwrap();
    read_response(&mut s)
}

fn read_response(s: &mut TcpStream) -> (u16, String) {
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .expect("header terminator")
        .1
        .to_string();
    (status, unwrap_envelope(&body))
}

/// Strips the schema-2 response envelope, returning the inner `data`
/// document (the envelope serialises `data` last, so the payload runs
/// to the closing brace).
fn unwrap_envelope(body: &str) -> String {
    let marker = "\"data\":";
    match body.find(marker) {
        Some(i) if body.starts_with("{\"schema_version\"") && body.ends_with('}') => {
            body[i + marker.len()..body.len() - 1].to_string()
        }
        _ => body.to_string(),
    }
}

fn vsafe_body() -> String {
    let req = VsafeRequest {
        schema_version: Some(SCHEMA_VERSION),
        spec: None,
        trace_csv: ble_csv(),
    };
    serde_json::to_string(&req).unwrap()
}

#[test]
fn vsafe_over_tcp_is_byte_identical_to_the_cli_path() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    let (status, body) = roundtrip(addr, "POST", "/v1/vsafe", &vsafe_body());
    assert_eq!(status, 200, "body: {body}");
    let resp: VsafeResponse = serde_json::from_str(&body).unwrap();

    // The CLI's `vsafe` verb renders through the very same function; the
    // daemon's `report` field must match it to the byte.
    let model = culpeo_api::SystemSpec::capybara().into_model().unwrap();
    let trace = culpeo_loadgen::io::from_csv(&ble_csv()).unwrap();
    assert_eq!(resp.report, handle::vsafe_report(&model, &trace));
    assert_eq!(resp.schema_version, SCHEMA_VERSION);
    assert!(resp.v_safe_v > resp.energy_only_v);

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn repeated_request_is_a_cache_hit_in_metrics() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    let (s1, b1) = roundtrip(addr, "POST", "/v1/vsafe", &vsafe_body());
    let (s2, b2) = roundtrip(addr, "POST", "/v1/vsafe", &vsafe_body());
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2, "memoized answer must be identical");

    let (status, body) = roundtrip(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let m: MetricsResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(m.cache.misses, 1, "first request misses");
    assert_eq!(m.cache.hits, 1, "second request hits");
    assert_eq!(m.cache.entries, 1);
    let vsafe_row = m.endpoints.iter().find(|e| e.path == "/v1/vsafe").unwrap();
    assert_eq!(vsafe_row.requests, 2);
    assert_eq!(vsafe_row.errors, 0);

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn batch_fans_out_and_health_answers() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    let item = || BatchItem {
        vsafe: Some(VsafeRequest {
            schema_version: None,
            spec: None,
            trace_csv: ble_csv(),
        }),
        lint: None,
    };
    let batch = BatchRequest {
        schema_version: None,
        items: vec![item(), item(), item()],
    };
    let (status, body) = roundtrip(
        addr,
        "POST",
        "/v1/batch",
        &serde_json::to_string(&batch).unwrap(),
    );
    assert_eq!(status, 200, "body: {body}");
    let resp: BatchResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(resp.results.len(), 3);
    assert!(resp.results.iter().all(|r| r.vsafe.is_some()));

    let (status, body) = roundtrip(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    let h: HealthResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(h.status, "ok");
    assert_eq!(h.threads, 2);

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn unknown_paths_and_wrong_methods_get_structured_errors() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    let (status, body) = roundtrip(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    assert!(body.contains("\"not_found\""));

    let (status, body) = roundtrip(addr, "GET", "/v1/vsafe", "");
    assert_eq!(status, 405);
    assert!(body.contains("\"method_not_allowed\""));

    let (status, body) = roundtrip(addr, "POST", "/v1/vsafe", "{not json");
    assert_eq!(status, 400);
    assert!(body.contains("\"bad_request\""));

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn shutdown_drains_accepted_requests_before_exit() {
    // One worker, so a second accepted connection must sit in the queue
    // and survive the drain.
    let config = ServerConfig {
        port: 0,
        threads: 1,
        ..ServerConfig::default()
    };
    let server = Server::start(&config).unwrap();
    let addr = server.addr();

    let send = |body: &str| -> TcpStream {
        let mut s = TcpStream::connect(addr).unwrap();
        let head = format!(
            "POST /v1/vsafe HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        s.write_all(head.as_bytes()).unwrap();
        s.write_all(body.as_bytes()).unwrap();
        s
    };
    let body = vsafe_body();
    let mut a = send(&body);
    let mut b = send(&body);
    // Give the acceptor a beat to move both connections into the queue.
    std::thread::sleep(std::time::Duration::from_millis(200));

    // Drain via the wire, like an operator would.
    let (status, resp) = roundtrip(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    let h: HealthResponse = serde_json::from_str(&resp).unwrap();
    assert_eq!(h.status, "draining");

    // Both in-flight requests must still get complete answers.
    let (sa, ba) = read_response(&mut a);
    let (sb, bb) = read_response(&mut b);
    assert_eq!((sa, sb), (200, 200));
    assert!(ba.contains("v_safe_v") && bb.contains("v_safe_v"));

    // join() returning at all proves the drain terminates.
    let summary = server.join();
    assert!(summary.requests >= 3, "summary: {summary:?}");
}

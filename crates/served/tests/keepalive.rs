//! Keep-alive and pipelining end-to-end: one real TCP connection, many
//! requests, against a live daemon on an ephemeral port.
//!
//! The load-bearing property is *order with identity*: a pipelined
//! connection may have several requests in flight across the compute
//! pool at once, finishing in any order, yet the response payloads must
//! come back in request order and byte-identical to what the same
//! requests produce one connection at a time.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use culpeo_served::{Server, ServerConfig};

fn test_config() -> ServerConfig {
    ServerConfig {
        port: 0,
        threads: 2,
        ..ServerConfig::default()
    }
}

/// A `/v1/vsafe` request over a tiny constant-then-pulse trace,
/// parameterised so different requests have observably different
/// `V_safe` answers.
fn vsafe_request(pulse_a: f64) -> String {
    format!(
        "{{\"schema_version\": 2, \"trace_csv\": \"# dt_us: 8\\n0.0,0.010\\n0.000008,{pulse_a}\\n0.000016,0.010\\n\"}}"
    )
}

fn http_head(method: &str, path: &str, body_len: usize, close: bool) -> String {
    let conn = if close { "Connection: close\r\n" } else { "" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: keepalive\r\n{conn}Content-Length: {body_len}\r\n\r\n"
    )
}

/// Splits a raw byte stream (read to EOF) into `(status, body)` pairs by
/// walking head terminators and `Content-Length`.
fn parse_responses(raw: &[u8]) -> Vec<(u16, String)> {
    let mut out = Vec::new();
    let mut rest = raw;
    while !rest.is_empty() {
        let head_end = rest
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head terminator")
            + 4;
        let head = String::from_utf8_lossy(&rest[..head_end]).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status")
            .parse()
            .expect("numeric status");
        let clen: usize = head
            .lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                k.eq_ignore_ascii_case("content-length")
                    .then(|| v.trim().parse().ok())?
            })
            .expect("content-length header");
        let body = String::from_utf8_lossy(&rest[head_end..head_end + clen]).to_string();
        out.push((status, body));
        rest = &rest[head_end + clen..];
    }
    out
}

/// Strips the schema-2 envelope, leaving the inner `data` document.
fn unwrap_envelope(body: &str) -> String {
    let marker = "\"data\":";
    match body.find(marker) {
        Some(i) if body.starts_with("{\"schema_version\"") && body.ends_with('}') => {
            body[i + marker.len()..body.len() - 1].to_string()
        }
        _ => body.to_string(),
    }
}

/// One request per fresh connection, `Connection: close`.
fn serial_roundtrip(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(http_head("POST", path, body.len(), true).as_bytes())
        .unwrap();
    s.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let mut responses = parse_responses(&raw);
    assert_eq!(responses.len(), 1);
    responses.pop().unwrap()
}

#[test]
fn one_connection_answers_many_sequential_requests() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    let body = vsafe_request(0.025);
    let mut answers = Vec::new();
    for round in 0..3 {
        s.write_all(http_head("POST", "/v1/vsafe", body.len(), false).as_bytes())
            .unwrap();
        s.write_all(body.as_bytes()).unwrap();
        // Read exactly one response off the still-open connection.
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&buf[..i + 4]).to_string();
                let clen: usize = head
                    .lines()
                    .find_map(|l| {
                        let (k, v) = l.split_once(':')?;
                        k.eq_ignore_ascii_case("content-length")
                            .then(|| v.trim().parse().ok())?
                    })
                    .expect("content-length");
                while buf.len() < i + 4 + clen {
                    let n = s.read(&mut chunk).unwrap();
                    assert!(n > 0, "EOF mid-body on round {round}");
                    buf.extend_from_slice(&chunk[..n]);
                }
                assert!(
                    head.contains("Connection: keep-alive"),
                    "round {round} must keep the connection alive: {head}"
                );
                answers.push(unwrap_envelope(&String::from_utf8_lossy(
                    &buf[i + 4..i + 4 + clen],
                )));
                break;
            }
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "EOF mid-head on round {round}");
            buf.extend_from_slice(&chunk[..n]);
        }
    }
    assert_eq!(answers.len(), 3);
    assert_eq!(answers[0], answers[1], "same request, same payload");
    assert_eq!(answers[1], answers[2]);
    assert!(answers[0].contains("v_safe_v"));

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn pipelined_responses_arrive_in_order_and_match_serial_byte_for_byte() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    // Four requests with distinguishable answers, written back-to-back
    // before reading anything; the last one asks to close so the whole
    // conversation ends in EOF.
    let pulses = [0.025, 0.045, 0.015, 0.035];
    let bodies: Vec<String> = pulses.iter().map(|&p| vsafe_request(p)).collect();

    let mut s = TcpStream::connect(addr).unwrap();
    let mut wire = Vec::new();
    for (i, body) in bodies.iter().enumerate() {
        let close = i + 1 == bodies.len();
        wire.extend_from_slice(http_head("POST", "/v1/vsafe", body.len(), close).as_bytes());
        wire.extend_from_slice(body.as_bytes());
    }
    s.write_all(&wire).unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let pipelined = parse_responses(&raw);
    assert_eq!(pipelined.len(), bodies.len(), "one response per request");

    for (i, body) in bodies.iter().enumerate() {
        let (serial_status, serial_body) = serial_roundtrip(addr, "/v1/vsafe", body);
        let (pipe_status, pipe_body) = &pipelined[i];
        assert_eq!(*pipe_status, serial_status, "request {i}");
        assert_eq!(
            unwrap_envelope(pipe_body),
            unwrap_envelope(&serial_body),
            "pipelined payload {i} must be byte-identical to the serial answer"
        );
    }
    // The answers genuinely differ across requests, so order mattered.
    assert_ne!(
        unwrap_envelope(&pipelined[0].1),
        unwrap_envelope(&pipelined[1].1)
    );

    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn mid_pipeline_disconnect_leaves_the_daemon_serving() {
    let server = Server::start(&test_config()).unwrap();
    let addr = server.addr();

    // Three requests in flight; read only the first response's head,
    // then vanish. The orphaned completions must be dropped, not wedge
    // the reactor or a worker.
    let body = vsafe_request(0.025);
    let mut s = TcpStream::connect(addr).unwrap();
    for _ in 0..3 {
        s.write_all(http_head("POST", "/v1/vsafe", body.len(), false).as_bytes())
            .unwrap();
        s.write_all(body.as_bytes()).unwrap();
    }
    let mut first = [0u8; 16];
    s.read_exact(&mut first).unwrap();
    assert!(first.starts_with(b"HTTP/1.1 200"), "first: {first:?}");
    drop(s);

    // The daemon is unbothered: a fresh client gets a full answer...
    let (status, answer) = serial_roundtrip(addr, "/v1/vsafe", &body);
    assert_eq!(status, 200);
    assert!(answer.contains("v_safe_v"));

    // ...and the drain still terminates (no leaked in-flight state).
    server.shutdown_handle().request();
    let _ = server.join();
}

#[test]
fn slow_loris_mid_keepalive_is_cut_off_with_408() {
    let config = ServerConfig {
        read_timeout_ms: 200,
        write_timeout_ms: 1_000,
        ..test_config()
    };
    let server = Server::start(&config).unwrap();
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    // A full healthy request first: keep-alive survives it.
    let body = vsafe_request(0.025);
    s.write_all(http_head("POST", "/v1/vsafe", body.len(), false).as_bytes())
        .unwrap();
    s.write_all(body.as_bytes()).unwrap();
    // Then trickle the start of a second request and stall past the
    // read deadline: the daemon must answer the first, 408 the second,
    // and hang up.
    s.write_all(b"POST /v1/vsa").unwrap();
    std::thread::sleep(Duration::from_millis(700));
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let responses = parse_responses(&raw);
    assert_eq!(responses.len(), 2, "raw: {}", String::from_utf8_lossy(&raw));
    assert_eq!(responses[0].0, 200);
    assert_eq!(responses[1].0, 408);

    server.shutdown_handle().request();
    let _ = server.join();
}

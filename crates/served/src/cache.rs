//! Content-hash memoization for repeated `V_safe` queries.
//!
//! A `V_safe` answer is a pure function of (spec, trace). The daemon
//! hashes the canonical spec JSON and the raw trace CSV into one 64-bit
//! key and remembers the full [`culpeo_api::VsafeResponse`] under it, with
//! least-recently-used eviction once the configured capacity is reached.
//!
//! The key is a 64-bit `DefaultHasher` digest, not the full content: a
//! collision would serve the wrong memo. At the default capacity (256
//! entries) the birthday-bound collision odds are ~2⁻⁴⁸ per insert —
//! accepted, and documented in DESIGN.md §9, rather than keying on the
//! full payload and burning memory on megabyte CSV keys.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use culpeo_api::CacheMetrics;

/// Builds the memo key for a `V_safe` request from the canonical spec
/// JSON (`"default"` when the request carries none) and the trace CSV.
#[must_use]
pub fn content_key(spec_json: &str, trace_csv: &str) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    // Hash as two length-prefixed fields so ("ab", "c") ≠ ("a", "bc").
    spec_json.hash(&mut h);
    trace_csv.hash(&mut h);
    h.finish()
}

/// An LRU map with hit/miss/eviction counters.
///
/// Recency is tracked by a monotone tick per entry; eviction scans for
/// the minimum tick. That makes eviction O(capacity), which at daemon
/// capacities (hundreds of entries) is noise next to one simulation
/// step, and keeps the structure a single `HashMap` — no unsafe, no
/// intrusive lists.
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    map: HashMap<u64, (u64, V)>,
}

impl<V: Clone> LruCache<V> {
    /// An empty cache evicting beyond `capacity` entries. A capacity of
    /// zero disables memoization (every lookup misses, nothing is kept).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            map: HashMap::new(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some((tick, v)) => {
                *tick = self.tick;
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` under `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.map.iter().min_by_key(|(_, (tick, _))| *tick) {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Drops every entry (counters survive). Poisoned-lock recovery uses
    /// this: a panic mid-insert may have left a half-updated map, and an
    /// empty cache is always safe — memoization is an optimisation.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Current counters, for `/v1/metrics`.
    #[must_use]
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            entries: self.map.len() as u64,
            capacity: self.capacity as u64,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss_and_counters() {
        let mut c: LruCache<u32> = LruCache::new(4);
        assert_eq!(c.get(1), None);
        c.insert(1, 10);
        assert_eq!(c.get(1), Some(10));
        let m = c.metrics();
        assert_eq!((m.hits, m.misses, m.entries), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(1), Some(10)); // refresh 1; 2 is now LRU
        c.insert(3, 30);
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(10));
        assert_eq!(c.get(3), Some(30));
        assert_eq!(c.metrics().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let mut c: LruCache<u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(1), None);
        assert_eq!(c.metrics().entries, 0);
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.get(2), Some(20));
        assert_eq!(c.get(1), Some(11));
        assert_eq!(c.metrics().evictions, 0);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let mut c: LruCache<u32> = LruCache::new(4);
        c.insert(1, 10);
        assert_eq!(c.get(1), Some(10));
        c.clear();
        assert_eq!(c.get(1), None);
        let m = c.metrics();
        assert_eq!(m.entries, 0);
        assert_eq!((m.hits, m.misses), (1, 1));
    }

    #[test]
    fn content_key_separates_fields() {
        assert_ne!(content_key("ab", "c"), content_key("a", "bc"));
        assert_ne!(content_key("spec", "t1"), content_key("spec", "t2"));
        assert_eq!(content_key("spec", "t1"), content_key("spec", "t1"));
    }
}

//! The daemon: a nonblocking readiness reactor, a compute worker pool,
//! the fleet scheduler, and graceful shutdown.
//!
//! One **reactor** thread owns the listener and every connection
//! socket, all nonblocking, multiplexed through [`crate::poll`] (epoll
//! on Linux). It accepts, accumulates request bytes, parses pipelined
//! HTTP/1.1 requests incrementally, and dispatches each parsed request
//! as a job into a *bounded* `sync_channel`; when the queue is full the
//! reactor answers `503 busy` itself instead of letting latency grow
//! unboundedly. `workers` **compute** threads pop jobs, route them
//! through [`crate::handle`], wrap the result in the schema-2 envelope,
//! and hand the serialised response back through the completion
//! protocol ([`crate::protocol::publish_completion`] — push, then a
//! coalescing wake flag, then an eventfd wake). The reactor drains
//! completions, restores *request order per connection* (pipelined
//! responses may finish out of order; a `BTreeMap` keyed by
//! per-connection sequence number re-serialises them), and flushes
//! nonblockingly with `EPOLLOUT` interest toggled only while output is
//! buffered. Two **scheduler** threads advance the digital-twin fleet
//! ([`crate::fleet`]) through `Lanes<8>` rounds via the shard hand-off
//! protocol in [`culpeo_exec::shard`].
//!
//! Connections keep alive by default; they close when the client asks
//! (`Connection: close`), on any error status, and on drain. Every
//! connection is bounded four ways: a read deadline (a slow-loris
//! request writer gets a 408, not a wedged worker), a write deadline (a
//! slow response reader gets cut off), an idle keep-alive timeout
//! (silent close), and a per-request wall-clock deadline capping
//! parse + queue + compute + write together. Worker-side lock
//! poisoning is survivable: a handler panic is caught and answered as
//! 500, and the next toucher of the poisoned cache lock clears the
//! cache and carries on. All of it is counted in
//! [`crate::metrics::ShedCounters`] and surfaced by `/v1/metrics`.
//!
//! Shutdown is cooperative: [`ShutdownHandle::request`] (also wired to
//! `POST /v1/shutdown`) sets a flag and fires the reactor's waker. The
//! reactor stops accepting, answers everything already parsed or
//! readable, closes each connection as it quiesces, then drops its job
//! sender; workers drain every job already queued, then exit — so no
//! accepted request is ever dropped. [`Server::join`] blocks until that
//! drain completes. (Pure-std Rust cannot install a SIGTERM handler;
//! deployments get signal-triggered draining by trapping the signal in
//! their supervisor and calling `/v1/shutdown` — see DESIGN.md §9 and
//! `scripts/smoke_serve.sh`.)

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use culpeo_api::{
    ApiError, ApiErrorKind, BatchRequest, HealthResponse, LintRequest, LivezResponse,
    MetricsResponse, ObserveRequest, ReadyzResponse, VerifyRequest, VsafeRequest, VsafeResponse,
    WcecRequest, SCHEMA_VERSION,
};
use culpeo_exec::Sweep;

use crate::cache::{content_key, LruCache};
use crate::fleet::FleetState;
use crate::http::{self, HttpError, Request};
use crate::metrics::{EndpointCounters, Metrics, ShedCounters};
use crate::observe::{ObserveHub, StorePhase};
use crate::poll::{self, Poller, Waker, WAKE_TOKEN};
use crate::protocol::{self, Enqueue};

/// The poller token reserved for the listener (connection ids start
/// at 1).
const LISTEN_TOKEN: u64 = 0;
/// Most requests one connection may have in flight (dispatched, not yet
/// answered). Parsing pauses at the cap and resumes as answers drain.
const MAX_PIPELINE: usize = 256;
/// Unparsed input a capped connection may buffer before it is judged
/// abusive and closed.
const MAX_UNPARSED: usize = 4 * 1024 * 1024;
/// Fleet scheduler threads (mostly parked; two so the shard hand-off
/// protocol actually runs concurrently in production, not just in the
/// model checker).
const SCHEDULER_THREADS: usize = 2;

/// How the daemon is stood up. `Default` matches `culpeo serve` with no
/// flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Interface to bind. Loopback by default: the daemon has no auth
    /// layer, so exposing it wider is an explicit operator decision.
    pub host: String,
    /// TCP port; 0 asks the OS for an ephemeral one (tests, smoke).
    pub port: u16,
    /// Compute worker threads (`--workers`). 0 means "resolve like the
    /// sweeps do": `CULPEO_THREADS`, else available parallelism.
    pub threads: usize,
    /// Bounded job-queue depth; beyond it the reactor answers 503.
    pub queue_depth: usize,
    /// `V_safe` memo-cache capacity in entries; 0 disables memoization.
    pub cache_capacity: usize,
    /// Read deadline: how long a client may stall mid-request before it
    /// gets a 408.
    pub read_timeout_ms: u64,
    /// Write deadline: how long a client may stall without accepting
    /// response bytes before the connection is cut.
    pub write_timeout_ms: u64,
    /// Per-request wall-clock deadline capping parse + queue + compute
    /// + write together.
    pub deadline_ms: u64,
    /// Idle keep-alive timeout (`--keep-alive-timeout`): a connection
    /// with no request in progress for this long is closed silently.
    pub keep_alive_timeout_ms: u64,
    /// Open-connection cap (`--max-connections`); beyond it new accepts
    /// get a best-effort 503 and are dropped.
    pub max_connections: usize,
    /// Honour the `x-culpeo-fault` request header (chaos batteries only:
    /// lets a test inject a handler panic while the cache lock is held,
    /// or a bounded `sleep:MS` compute stall).
    pub test_faults: bool,
    /// Directory of the durable telemetry store (`--store DIR`). `None`
    /// leaves `/v1/observe` disabled; `Some` recovers the store in the
    /// background at boot (readiness answers 503 until it finishes).
    pub store_dir: Option<PathBuf>,
    /// Structured request logging (`--log json|off`).
    pub log: LogMode,
    /// Artificial delay before store recovery begins, in milliseconds.
    /// Test-only: lets e2e tests observe the `/v1/readyz` recovery
    /// window deterministically. 0 in production.
    pub recovery_delay_ms: u64,
}

/// Structured request-log modes (`culpeo serve --log`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogMode {
    /// One JSON object per answered request on stderr: `request_id`,
    /// method, path, status, and the schema-2 `server_timing` numbers.
    Json,
    /// No per-request output (the default).
    #[default]
    Off,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".to_string(),
            port: 7070,
            threads: 0,
            queue_depth: 64,
            cache_capacity: 256,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            deadline_ms: 30_000,
            keep_alive_timeout_ms: 30_000,
            max_connections: 1024,
            test_faults: false,
            store_dir: None,
            log: LogMode::Off,
            recovery_delay_ms: 0,
        }
    }
}

/// One parsed request on its way to a compute worker.
struct Job {
    conn: u64,
    seq: u64,
    req: Request,
    /// First byte of the request hit the reactor (deadline anchor).
    started: Instant,
    /// The request finished parsing (queue-time anchor).
    parsed_at: Instant,
    request_id: u64,
    /// The client asked `Connection: close`.
    close: bool,
}

/// One serialised response on its way back to the reactor.
struct Completion {
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
    close: bool,
    started: Instant,
}

/// State shared by the reactor, the workers, and shutdown handles.
struct Shared {
    shutting: AtomicBool,
    metrics: Metrics,
    cache: Mutex<LruCache<VsafeResponse>>,
    sweep: Sweep,
    workers: usize,
    started: Instant,
    addr: SocketAddr,
    read_timeout: Duration,
    write_timeout: Duration,
    deadline: Duration,
    keep_alive: Duration,
    max_connections: usize,
    test_faults: bool,
    request_ids: AtomicU64,
    completions: Mutex<Vec<Completion>>,
    wake_pending: AtomicBool,
    waker: Waker,
    fleet: FleetState,
    /// The durable telemetry layer's lifecycle (see [`StorePhase`]).
    store: Mutex<StorePhase>,
    /// Jobs handed to the compute queue and not yet popped; feeds the
    /// `/v1/readyz` shed threshold.
    queued_jobs: AtomicU64,
    queue_depth: u64,
    log: LogMode,
}

impl Shared {
    /// Flags shutdown and fires the reactor's waker. Idempotent.
    fn request_shutdown(&self) {
        if protocol::begin_shutdown(&self.shutting) {
            // The winner of the flag race owes exactly one wake — the
            // pairing the model checker's `shutdown-handshake` battery
            // pins (flag-without-wake deadlocks a parked reactor).
            self.waker.wake();
            self.fleet.notify_shutdown();
        }
    }

    /// Locks the `V_safe` cache, recovering from poisoning: a handler
    /// panic mid-insert may have left a half-updated map, so the first
    /// toucher clears it (an empty cache is always safe), un-poisons the
    /// mutex, and counts the recovery. Workers never die to `expect`.
    fn lock_cache(&self) -> MutexGuard<'_, LruCache<VsafeResponse>> {
        protocol::recovering_lock(&self.cache, |cache| {
            ShedCounters::bump(&self.metrics.shed.lock_recoveries);
            cache.clear();
        })
    }

    fn next_request_id(&self) -> u64 {
        self.request_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Locks the store phase, recovering from poisoning (the phase is a
    /// plain enum; whatever value is inside remains valid).
    fn lock_store(&self) -> MutexGuard<'_, StorePhase> {
        match self.store.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.store.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// The ingest hub, or the wire error describing why ingest cannot
    /// serve right now (disabled / recovering / failed).
    fn store_hub(&self) -> Result<Arc<ObserveHub>, ApiError> {
        match &*self.lock_store() {
            StorePhase::Ready(hub) => Ok(Arc::clone(hub)),
            StorePhase::Disabled => Err(ApiError::new(
                ApiErrorKind::NotFound,
                "telemetry store is disabled; start the daemon with --store DIR",
            )),
            StorePhase::Recovering => Err(ApiError::new(
                ApiErrorKind::Busy,
                "telemetry store is recovering; retry with backoff",
            )),
            StorePhase::Failed(msg) => Err(ApiError::new(
                ApiErrorKind::Internal,
                format!("telemetry store failed to recover: {msg}"),
            )),
        }
    }
}

/// Emits one structured JSON request-log line on stderr when
/// `--log json` is on. The line reuses the schema-2 `server_timing`
/// numbers, so logs and envelopes always agree.
#[allow(clippy::too_many_arguments)]
fn log_request(
    shared: &Shared,
    request_id: u64,
    method: &str,
    path: &str,
    status: u16,
    queue_us: u64,
    compute_us: u64,
    fsync_us: Option<u64>,
) {
    if shared.log != LogMode::Json {
        return;
    }
    let ts_us = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    let fsync = fsync_us.map_or(String::new(), |f| format!(",\"fsync_us\":{f}"));
    eprintln!(
        "{{\"ts_us\":{ts_us},\"request_id\":\"r-{request_id:08}\",\
         \"method\":\"{}\",\"path\":\"{}\",\"status\":{status},\
         \"queue_us\":{queue_us},\"compute_us\":{compute_us}{fsync}}}",
        json_safe(method),
        json_safe(path),
    );
}

/// Keeps client-controlled strings from breaking the log line's JSON:
/// quotes, backslashes, and control bytes are replaced, not escaped —
/// logs are diagnostics, not a faithful byte channel.
fn json_safe(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c == '"' || c == '\\' || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .take(128)
        .collect()
}

/// A handle that can request a drain from any thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Begins graceful shutdown: stop accepting, drain, exit. Returns
    /// immediately; pair with [`Server::join`] to wait for the drain.
    pub fn request(&self) {
        self.shared.request_shutdown();
    }
}

/// What a completed run served, returned by [`Server::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered across all endpoints (errors included).
    pub requests: u64,
    /// `V_safe` cache hits over the run.
    pub cache_hits: u64,
}

/// A running daemon.
pub struct Server {
    shared: Arc<Shared>,
    reactor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    schedulers: Vec<JoinHandle<()>>,
    recovery: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable, or the
    /// poller-creation error if the kernel refuses an epoll/eventfd.
    pub fn start(config: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (poller, waker) = Poller::new()?;
        let workers_n = if config.threads == 0 {
            Sweep::from_env().threads()
        } else {
            config.threads
        };
        let shared = Arc::new(Shared {
            shutting: AtomicBool::new(false),
            metrics: Metrics::default(),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            sweep: Sweep::with_threads(workers_n),
            workers: workers_n,
            started: Instant::now(),
            addr,
            read_timeout: Duration::from_millis(config.read_timeout_ms.max(1)),
            write_timeout: Duration::from_millis(config.write_timeout_ms.max(1)),
            deadline: Duration::from_millis(config.deadline_ms.max(1)),
            keep_alive: Duration::from_millis(config.keep_alive_timeout_ms.max(1)),
            max_connections: config.max_connections.max(1),
            test_faults: config.test_faults,
            request_ids: AtomicU64::new(1),
            completions: Mutex::new(Vec::new()),
            wake_pending: AtomicBool::new(false),
            waker,
            fleet: FleetState::default(),
            store: Mutex::new(if config.store_dir.is_some() {
                StorePhase::Recovering
            } else {
                StorePhase::Disabled
            }),
            queued_jobs: AtomicU64::new(0),
            queue_depth: config.queue_depth.max(1) as u64,
            log: config.log,
        });

        // Store recovery runs off the accept path: the daemon binds and
        // answers probes immediately, readiness flips once the scan and
        // index rebuild finish (or fail).
        let recovery = config.store_dir.clone().map(|dir| {
            let shared = Arc::clone(&shared);
            let delay = config.recovery_delay_ms;
            std::thread::spawn(move || {
                if delay > 0 {
                    std::thread::sleep(Duration::from_millis(delay));
                }
                let phase = match ObserveHub::open(&dir) {
                    Ok((hub, report)) => {
                        if shared.log == LogMode::Json {
                            eprintln!(
                                "{{\"event\":\"store-recovered\",\"records\":{},\
                                 \"devices\":{},\"truncated_bytes\":{},\
                                 \"quarantined\":{}}}",
                                report.records_recovered,
                                report.devices,
                                report.truncated_bytes,
                                report.quarantined.len(),
                            );
                        }
                        StorePhase::Ready(Arc::new(hub))
                    }
                    Err(e) => StorePhase::Failed(e.to_string()),
                };
                *shared.lock_store() = phase;
            })
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(workers_n);
        for _ in 0..workers_n {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }

        let mut schedulers = Vec::with_capacity(SCHEDULER_THREADS);
        for _ in 0..SCHEDULER_THREADS {
            let shared = Arc::clone(&shared);
            schedulers.push(std::thread::spawn(move || {
                crate::fleet::scheduler_loop(&shared.fleet, &shared.shutting);
            }));
        }

        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reactor_loop(&shared, listener, poller, tx))
        };

        Ok(Self {
            shared,
            reactor,
            workers,
            schedulers,
            recovery,
        })
    }

    /// The bound address (useful with `port: 0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A cloneable handle for requesting shutdown from anywhere.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until shutdown has been requested *and* every parsed
    /// request has been answered, then returns the run's totals.
    ///
    /// # Panics
    ///
    /// Panics if the reactor or a worker thread itself panicked
    /// (individual request handlers are unwind-caught and answer 500,
    /// so this indicates a daemon bug, not bad input).
    #[must_use]
    pub fn join(self) -> ServeSummary {
        self.reactor.join().expect("reactor thread panicked");
        for w in self.workers {
            w.join().expect("worker thread panicked");
        }
        for s in self.schedulers {
            s.join().expect("fleet scheduler thread panicked");
        }
        if let Some(r) = self.recovery {
            r.join().expect("store recovery thread panicked");
        }
        // A final best-effort sync: dropping the last hub Arc runs the
        // store's Drop sync, so acked-but-batched bytes hit the disk
        // before the process exits.
        *self.shared.lock_store() = StorePhase::Disabled;
        let requests = self
            .shared
            .metrics
            .snapshot()
            .iter()
            .map(|e| e.requests)
            .sum();
        let cache_hits = self.shared.lock_cache().metrics().hits;
        ServeSummary {
            requests,
            cache_hits,
        }
    }
}

// ---------------------------------------------------------------------
// The reactor.
// ---------------------------------------------------------------------

/// One connection's reactor-side state machine.
struct Conn {
    stream: TcpStream,
    id: u64,
    /// Accumulated request bytes not yet parsed.
    inbuf: Vec<u8>,
    /// Serialised responses not yet flushed.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Sequence number the next parsed request gets.
    next_seq: u64,
    /// Sequence number the next flushed response must have.
    write_seq: u64,
    /// Out-of-order completions parked until their turn.
    parked: BTreeMap<u64, Completion>,
    /// Requests dispatched to workers, not yet completed.
    in_flight: usize,
    /// Stop parsing (a close-requesting or erroring request was seen).
    parse_done: bool,
    /// Close once the outbuf is flushed and nothing is in flight.
    closing: bool,
    /// The peer sent EOF (it may still be reading responses).
    read_closed: bool,
    /// `EPOLLOUT` interest is currently on.
    want_write: bool,
    /// First byte of the currently-parsing request (None = between
    /// requests); anchors the 408 read deadline and the request
    /// deadline.
    req_started: Option<Instant>,
    /// Last write progress while output is buffered (write deadline).
    last_write: Option<Instant>,
    /// Last activity (idle keep-alive timeout anchor).
    idle_at: Instant,
}

impl Conn {
    fn new(stream: TcpStream, id: u64, now: Instant) -> Self {
        Conn {
            stream,
            id,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            next_seq: 0,
            write_seq: 0,
            parked: BTreeMap::new(),
            in_flight: 0,
            parse_done: false,
            closing: false,
            read_closed: false,
            want_write: false,
            req_started: None,
            last_write: None,
            idle_at: now,
        }
    }

    /// Nothing pending in either direction: safe to close or idle out.
    fn quiescent(&self) -> bool {
        self.in_flight == 0
            && self.parked.is_empty()
            && self.outpos >= self.outbuf.len()
            && self.req_started.is_none()
    }
}

#[allow(clippy::too_many_lines)]
fn reactor_loop(
    shared: &Arc<Shared>,
    listener: TcpListener,
    mut poller: Poller,
    tx: SyncSender<Job>,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;
    let mut events = Vec::new();
    let mut listener_open = true;
    if poll::register(&mut poller, listener.as_raw_fd(), LISTEN_TOKEN).is_err() {
        // Without a pollable listener the daemon cannot serve; drain.
        shared.request_shutdown();
        listener_open = false;
    }

    loop {
        let shutting = shared.shutting.load(Ordering::SeqCst);
        if shutting && listener_open {
            let _ = poll::deregister(&mut poller, listener.as_raw_fd());
            listener_open = false;
        }
        if shutting {
            // Close every quiescent connection; exit once all are gone.
            let done: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| {
                    c.quiescent() || c.read_closed && c.in_flight == 0 && c.parked.is_empty()
                })
                .map(|(&id, _)| id)
                .collect();
            for id in done {
                close_conn(&mut poller, &mut conns, id);
            }
            if conns.is_empty() {
                break;
            }
        }

        let timeout = next_timeout(shared, &conns, shutting);
        let _ = poller.wait(&mut events, Some(timeout));
        let now = Instant::now();

        let mut dead: Vec<u64> = Vec::new();
        for &ev in &events {
            match ev.token {
                LISTEN_TOKEN => {
                    if listener_open {
                        accept_ready(
                            shared,
                            &listener,
                            &mut poller,
                            &mut conns,
                            &mut next_id,
                            now,
                        );
                    }
                }
                WAKE_TOKEN => {
                    // Completions are drained below, once per iteration.
                }
                id => {
                    let Some(conn) = conns.get_mut(&id) else {
                        continue;
                    };
                    if ev.readable {
                        conn_read(shared, conn, &tx, now);
                    }
                    if ev.writable {
                        conn_flush(shared, conn, now);
                    }
                    update_write_interest(&mut poller, conn);
                    if conn_finished(conn) {
                        dead.push(id);
                    }
                }
            }
        }

        // Route finished compute results back onto their connections.
        for done in protocol::drain_completions(&shared.completions, &shared.wake_pending) {
            let Some(conn) = conns.get_mut(&done.conn) else {
                // The connection died mid-pipeline; drop the orphan.
                continue;
            };
            conn.in_flight = conn.in_flight.saturating_sub(1);
            conn.parked.insert(done.seq, done);
            pump_conn(shared, conn, &tx, now);
            update_write_interest(&mut poller, conn);
            if conn_finished(conn) {
                dead.push(conn.id);
            }
        }

        // Timers: read/write/idle/request deadlines.
        sweep_timers(shared, &mut poller, &mut conns, &mut dead, now);

        for id in dead {
            close_conn(&mut poller, &mut conns, id);
        }
    }
    // Dropping `tx` (by returning) lets workers drain the queue and
    // exit; schedulers exit on the shutdown flag.
    drop(tx);
}

/// The poll timeout: the nearest per-connection deadline, defaulting to
/// a coarse housekeeping tick.
fn next_timeout(shared: &Shared, conns: &HashMap<u64, Conn>, shutting: bool) -> Duration {
    let mut cap = if shutting {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(250)
    };
    let now = Instant::now();
    for conn in conns.values() {
        if let Some(t0) = conn.req_started {
            let read_due = t0 + shared.read_timeout.min(shared.deadline);
            cap = cap.min(read_due.saturating_duration_since(now));
        }
        if conn.last_write.is_some() && conn.outpos < conn.outbuf.len() {
            let write_due = conn.last_write.unwrap_or(now) + shared.write_timeout;
            cap = cap.min(write_due.saturating_duration_since(now));
        }
    }
    cap.max(Duration::from_millis(1))
}

fn accept_ready(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    next_id: &mut u64,
    now: Instant,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting.load(Ordering::SeqCst) {
                    reject(
                        shared,
                        stream,
                        ApiErrorKind::ShuttingDown,
                        "daemon is draining",
                    );
                    continue;
                }
                if conns.len() >= shared.max_connections {
                    shared.metrics.accept_rejected.record(0, true);
                    reject(
                        shared,
                        stream,
                        ApiErrorKind::Busy,
                        "connection cap reached; retry with backoff",
                    );
                    continue;
                }
                let _ = stream.set_nonblocking(true);
                let _ = stream.set_nodelay(true);
                let id = *next_id;
                *next_id += 1;
                if poll::register(poller, stream.as_raw_fd(), id).is_ok() {
                    conns.insert(id, Conn::new(stream, id, now));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Best-effort one-shot 503/error write to a connection we will not
/// keep (the socket is still blocking-fresh, but one nonblocking write
/// of a small response almost always lands in the socket buffer).
fn reject(shared: &Shared, stream: TcpStream, kind: ApiErrorKind, msg: &str) {
    let _ = stream.set_nonblocking(true);
    let e = ApiError::new(kind, msg);
    let body = envelope(shared.next_request_id(), 0, 0, None, &error_body(&e));
    let bytes = http::response_bytes(
        e.http_status(),
        "application/json",
        e.kind.retry_after_s(),
        body.as_bytes(),
        true,
    );
    let _ = (&stream).write(&bytes);
}

fn conn_read(shared: &Arc<Shared>, conn: &mut Conn, tx: &SyncSender<Job>, now: Instant) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&chunk[..n]);
                conn.idle_at = now;
                if conn.req_started.is_none() && !conn.parse_done {
                    conn.req_started = Some(now);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Hard socket error: nothing more can be delivered.
                conn.read_closed = true;
                conn.closing = true;
                conn.parse_done = true;
                conn.outbuf.clear();
                conn.outpos = 0;
                break;
            }
        }
    }
    conn_parse(shared, conn, tx, now);
}

/// Parses as many complete pipelined requests as the in-flight cap
/// allows, dispatching each to the compute pool.
fn conn_parse(shared: &Arc<Shared>, conn: &mut Conn, tx: &SyncSender<Job>, now: Instant) {
    while !conn.parse_done {
        if conn.in_flight >= MAX_PIPELINE {
            if conn.inbuf.len() > MAX_UNPARSED {
                // Pipelining flood with no reads on the other side.
                conn.closing = true;
                conn.parse_done = true;
            }
            return;
        }
        match http::try_parse_request(&conn.inbuf) {
            Ok(Some((req, used))) => {
                conn.inbuf.drain(..used);
                let started = conn.req_started.take().unwrap_or(now);
                if !conn.inbuf.is_empty() {
                    // The next pipelined request is already mid-flight.
                    conn.req_started = Some(now);
                }
                dispatch(shared, conn, req, started, tx, now);
            }
            Ok(None) => {
                if conn.inbuf.is_empty() {
                    conn.req_started = None;
                }
                return;
            }
            Err(e) => {
                enqueue_parse_error(shared, conn, &e, now);
                return;
            }
        }
    }
}

/// Hands one parsed request to the compute pool, or answers 503 inline
/// when the daemon is draining or the queue is full.
fn dispatch(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    req: Request,
    started: Instant,
    tx: &SyncSender<Job>,
    now: Instant,
) {
    // Probes never touch the compute queue: the reactor answering at
    // all *is* liveness, and readiness must stay answerable while the
    // queue is exactly the thing that is full (or draining).
    if req.method == "GET" && (req.path == "/v1/livez" || req.path == "/v1/readyz") {
        answer_probe(shared, conn, &req, started, now);
        return;
    }
    let close = http::wants_close(&req);
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let job = Job {
        conn: conn.id,
        seq,
        req,
        started,
        parsed_at: now,
        request_id: shared.next_request_id(),
        close,
    };
    // Count before offering so a worker popping immediately can never
    // drive the gauge below zero; un-count on every rejected branch.
    shared.queued_jobs.fetch_add(1, Ordering::Relaxed);
    match protocol::offer(&shared.shutting, tx, job) {
        Enqueue::Queued => {
            conn.in_flight += 1;
        }
        Enqueue::Draining(job) => {
            shared.queued_jobs.fetch_sub(1, Ordering::Relaxed);
            let e = ApiError::new(ApiErrorKind::ShuttingDown, "daemon is draining");
            enqueue_local(shared, conn, seq, &e, job.request_id, started, now);
        }
        Enqueue::Busy(job) => {
            shared.queued_jobs.fetch_sub(1, Ordering::Relaxed);
            shared.metrics.accept_rejected.record(0, true);
            let e = ApiError::new(ApiErrorKind::Busy, "job queue is full; retry with backoff");
            enqueue_local(shared, conn, seq, &e, job.request_id, started, now);
        }
        Enqueue::Disconnected(_) => {
            shared.queued_jobs.fetch_sub(1, Ordering::Relaxed);
            conn.closing = true;
            conn.parse_done = true;
        }
    }
}

/// Answers `/v1/livez` or `/v1/readyz` inline on the reactor thread,
/// parked under the request's pipeline sequence number like any other
/// completion (so ordering holds mid-pipeline).
fn answer_probe(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    req: &Request,
    started: Instant,
    now: Instant,
) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let request_id = shared.next_request_id();
    let (status, body, counters) = if req.path == "/v1/livez" {
        let doc = LivezResponse {
            schema_version: SCHEMA_VERSION,
            status: "ok".to_string(),
        };
        (
            200,
            serde_json::to_string(&doc).expect("probe serialisation is infallible"),
            &shared.metrics.livez,
        )
    } else {
        let (status, doc) = readyz_doc(shared);
        (
            status,
            serde_json::to_string(&doc).expect("probe serialisation is infallible"),
            &shared.metrics.readyz,
        )
    };
    let close = http::wants_close(req) || status >= 400;
    counters.record(0, status >= 400);
    log_request(
        shared,
        request_id,
        &req.method,
        &req.path,
        status,
        0,
        0,
        None,
    );
    let enveloped = envelope(request_id, 0, 0, None, &body);
    let retry_after = if status == 503 {
        ApiErrorKind::Busy.retry_after_s()
    } else {
        None
    };
    let bytes = http::response_bytes(
        status,
        "application/json",
        retry_after,
        enveloped.as_bytes(),
        close,
    );
    conn.parked.insert(
        seq,
        Completion {
            conn: conn.id,
            seq,
            bytes,
            close,
            started,
        },
    );
    if close {
        conn.parse_done = true;
    }
    pump_conn_inner(shared, conn, now);
}

/// The readiness document: 200 only when the daemon is not draining,
/// the store is not mid-recovery (or failed), and the compute queue is
/// below its shed threshold.
fn readyz_doc(shared: &Shared) -> (u16, ReadyzResponse) {
    let draining = shared.shutting.load(Ordering::SeqCst);
    let store = match &*shared.lock_store() {
        StorePhase::Disabled => "disabled",
        StorePhase::Recovering => "recovering",
        StorePhase::Ready(_) => "ready",
        StorePhase::Failed(_) => "failed",
    };
    let queued = shared.queued_jobs.load(Ordering::Relaxed);
    let overloaded = queued >= shared.queue_depth;
    let status = if draining {
        "draining"
    } else if store == "recovering" || store == "failed" {
        store
    } else if overloaded {
        "overloaded"
    } else {
        "ok"
    };
    let code = if status == "ok" { 200 } else { 503 };
    (
        code,
        ReadyzResponse {
            schema_version: SCHEMA_VERSION,
            status: status.to_string(),
            store: store.to_string(),
            queued,
            queue_depth: shared.queue_depth,
        },
    )
}

/// Parks a reactor-generated error response under the sequence number
/// the failed request would have used, so ordering holds even
/// mid-pipeline. Reactor errors always close the connection.
fn enqueue_local(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    seq: u64,
    e: &ApiError,
    request_id: u64,
    started: Instant,
    now: Instant,
) {
    shared.metrics.other.record(0, true);
    log_request(shared, request_id, "-", "-", e.http_status(), 0, 0, None);
    let body = envelope(request_id, 0, 0, None, &error_body(e));
    let bytes = http::response_bytes(
        e.http_status(),
        "application/json",
        e.kind.retry_after_s(),
        body.as_bytes(),
        true,
    );
    conn.parked.insert(
        seq,
        Completion {
            conn: conn.id,
            seq,
            bytes,
            close: true,
            started,
        },
    );
    conn.parse_done = true;
    pump_conn_inner(shared, conn, now);
}

/// Answers a parse failure (malformed, oversized, or — from the timer
/// sweep — a read timeout) and begins closing.
fn enqueue_parse_error(shared: &Arc<Shared>, conn: &mut Conn, e: &HttpError, now: Instant) {
    let api_err = match e {
        HttpError::Timeout => {
            ShedCounters::bump(&shared.metrics.shed.read_timeouts);
            ApiError::new(ApiErrorKind::Timeout, e.to_string())
        }
        HttpError::TooLarge(_) => {
            ShedCounters::bump(&shared.metrics.shed.oversize_rejects);
            ApiError::new(ApiErrorKind::TooLarge, e.to_string())
        }
        HttpError::Io(_) | HttpError::Malformed(_) => ApiError::bad_request(e),
    };
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let started = conn.req_started.take().unwrap_or(now);
    let id = shared.next_request_id();
    enqueue_local(shared, conn, seq, &api_err, id, started, now);
}

/// Moves in-order parked completions into the write buffer, enforcing
/// the per-request deadline, then flushes. Also resumes parsing if the
/// pipeline cap had paused it.
fn pump_conn(shared: &Arc<Shared>, conn: &mut Conn, tx: &SyncSender<Job>, now: Instant) {
    pump_conn_inner(shared, conn, now);
    if !conn.parse_done && conn.in_flight < MAX_PIPELINE && !conn.inbuf.is_empty() {
        conn_parse(shared, conn, tx, now);
    }
}

fn pump_conn_inner(shared: &Arc<Shared>, conn: &mut Conn, now: Instant) {
    while let Some(done) = conn.parked.remove(&conn.write_seq) {
        if now.saturating_duration_since(done.started) > shared.deadline {
            // The request ate its whole wall-clock budget; the client
            // stopped deserving an answer. Cut the connection.
            ShedCounters::bump(&shared.metrics.shed.deadline_closes);
            conn.closing = true;
            conn.parse_done = true;
            conn.outbuf.clear();
            conn.outpos = 0;
            conn.parked.clear();
            return;
        }
        conn.write_seq += 1;
        conn.outbuf.extend_from_slice(&done.bytes);
        if done.close {
            conn.closing = true;
            conn.parse_done = true;
            // Later pipelined responses will never be sent; drop them
            // as they arrive (conn is removed once flushed).
            break;
        }
    }
    conn_flush(shared, conn, now);
}

/// Nonblocking flush of the write buffer.
fn conn_flush(shared: &Shared, conn: &mut Conn, now: Instant) {
    while conn.outpos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => {
                conn.closing = true;
                conn.outbuf.clear();
                conn.outpos = 0;
                conn.in_flight = 0;
                conn.parked.clear();
                return;
            }
            Ok(n) => {
                conn.outpos += n;
                conn.last_write = Some(now);
                conn.idle_at = now;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if conn.last_write.is_none() {
                    conn.last_write = Some(now);
                }
                return;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                ShedCounters::bump(&shared.metrics.shed.write_timeouts);
                conn.closing = true;
                conn.outbuf.clear();
                conn.outpos = 0;
                conn.in_flight = 0;
                conn.parked.clear();
                return;
            }
        }
    }
    // Fully flushed.
    conn.outbuf.clear();
    conn.outpos = 0;
    conn.last_write = None;
}

/// Syncs `EPOLLOUT` interest with whether output is buffered.
fn update_write_interest(poller: &mut Poller, conn: &mut Conn) {
    let want = conn.outpos < conn.outbuf.len();
    if want != conn.want_write {
        conn.want_write = want;
        let _ = poller.modify(conn.stream.as_raw_fd(), conn.id, want);
    }
}

/// Whether the connection has nothing left to do and should be closed.
fn conn_finished(conn: &Conn) -> bool {
    let flushed = conn.outpos >= conn.outbuf.len();
    if conn.closing {
        return flushed && conn.in_flight == 0;
    }
    // Peer EOF: once every pipelined answer is out, close.
    conn.read_closed && flushed && conn.in_flight == 0 && conn.parked.is_empty()
}

fn close_conn(poller: &mut Poller, conns: &mut HashMap<u64, Conn>, id: u64) {
    if let Some(conn) = conns.remove(&id) {
        let _ = poll::deregister(poller, conn.stream.as_raw_fd());
        // Dropping the stream closes the socket.
    }
}

/// Read, write, and idle deadline enforcement.
fn sweep_timers(
    shared: &Arc<Shared>,
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    dead: &mut Vec<u64>,
    now: Instant,
) {
    for conn in conns.values_mut() {
        if conn.closing {
            continue;
        }
        // Slow-loris: a request started but never finished parsing.
        if let Some(t0) = conn.req_started {
            if now.saturating_duration_since(t0) > shared.read_timeout.min(shared.deadline) {
                enqueue_parse_error(shared, conn, &HttpError::Timeout, now);
                update_write_interest(poller, conn);
                continue;
            }
        }
        // Write stall: buffered output, no progress past the deadline.
        if conn.outpos < conn.outbuf.len() {
            if let Some(t0) = conn.last_write {
                if now.saturating_duration_since(t0) > shared.write_timeout {
                    ShedCounters::bump(&shared.metrics.shed.write_timeouts);
                    dead.push(conn.id);
                    continue;
                }
            }
        }
        // Idle keep-alive expiry: silent close.
        if conn.quiescent() && now.saturating_duration_since(conn.idle_at) > shared.keep_alive {
            dead.push(conn.id);
        }
    }
    for conn in conns.values() {
        if conn_finished(conn) && !dead.contains(&conn.id) {
            dead.push(conn.id);
        }
    }
}

// ---------------------------------------------------------------------
// The compute pool.
// ---------------------------------------------------------------------

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<std::sync::mpsc::Receiver<Job>>>) {
    // `next_job` holds the lock only to pop; recv() returns queued jobs
    // even after the reactor hung up, which is the drain guarantee
    // (pinned over all interleavings by the `culpeo race` drain
    // battery). A worker that panicked past catch_unwind poisons the
    // receiver lock; the queue is recoverable state (unlike a
    // half-mutated cache map), so the survivors keep popping.
    while let Some(job) = protocol::next_job(rx.as_ref()) {
        shared.queued_jobs.fetch_sub(1, Ordering::Relaxed);
        let picked = Instant::now();
        let queue_us = us_between(job.parsed_at, picked);
        let routed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(shared, &job.req)));
        let r = match routed {
            Ok(r) => r,
            Err(_) => {
                ShedCounters::bump(&shared.metrics.shed.handler_panics);
                Routed {
                    status: 500,
                    body: error_body(&ApiError::new(
                        ApiErrorKind::Internal,
                        "handler panicked; see daemon stderr",
                    )),
                    content_type: "application/json",
                    counters: &shared.metrics.other,
                    was_error: true,
                    shutdown_after: false,
                    enveloped: true,
                    fsync_us: None,
                }
            }
        };
        let compute_us = us_between(picked, Instant::now());
        r.counters.record(queue_us + compute_us, r.was_error);
        log_request(
            shared,
            job.request_id,
            &job.req.method,
            &job.req.path,
            r.status,
            queue_us,
            compute_us,
            r.fsync_us,
        );
        let body = if r.enveloped {
            envelope(job.request_id, queue_us, compute_us, r.fsync_us, &r.body)
        } else {
            r.body
        };
        let close = job.close || r.status >= 400 || r.shutdown_after;
        let bytes = http::response_bytes(
            r.status,
            r.content_type,
            retry_after_for(r.status),
            body.as_bytes(),
            close,
        );
        let owes_wake = protocol::publish_completion(
            &shared.completions,
            &shared.wake_pending,
            Completion {
                conn: job.conn,
                seq: job.seq,
                bytes,
                close,
                started: job.started,
            },
        );
        if owes_wake {
            shared.waker.wake();
        }
        if r.shutdown_after {
            shared.request_shutdown();
        }
    }
}

fn retry_after_for(status: u16) -> Option<u32> {
    match status {
        408 => ApiErrorKind::Timeout.retry_after_s(),
        503 => ApiErrorKind::Busy.retry_after_s(),
        _ => None,
    }
}

/// The schema-2 response envelope. Hand-assembled (the vendored serde
/// stub cannot derive generics), with `data` last so readers can strip
/// the envelope with one prefix match. Durable-ingest answers append
/// `fsync_us` inside `server_timing`, after the two pinned keys.
fn envelope(
    request_id: u64,
    queue_us: u64,
    compute_us: u64,
    fsync_us: Option<u64>,
    data: &str,
) -> String {
    let fsync = fsync_us.map_or(String::new(), |f| format!(",\"fsync_us\":{f}"));
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"request_id\":\"r-{request_id:08}\",\
         \"server_timing\":{{\"queue_us\":{queue_us},\"compute_us\":{compute_us}{fsync}}},\
         \"data\":{data}}}"
    )
}

/// Routing result: status, JSON body (pre-envelope), metrics row, and
/// response policy flags.
struct Routed<'a> {
    status: u16,
    body: String,
    content_type: &'static str,
    counters: &'a EndpointCounters,
    was_error: bool,
    shutdown_after: bool,
    /// Wrap in the schema-2 envelope (everything but NDJSON streams).
    enveloped: bool,
    /// Microseconds the handler spent inside the store's durability
    /// path (`/v1/observe` only); surfaced in `server_timing`.
    fsync_us: Option<u64>,
}

#[allow(clippy::too_many_lines)]
fn route<'a>(shared: &'a Shared, req: &Request) -> Routed<'a> {
    if shared.test_faults {
        if let Some(fault) = req.header("x-culpeo-fault") {
            if fault.eq_ignore_ascii_case("panic") {
                // Panic *while holding the cache lock* so the chaos
                // battery exercises both the catch_unwind 500 path and
                // the poisoned-lock recovery on the next request.
                let _guard = shared.cache.lock();
                panic!("injected handler panic (x-culpeo-fault: panic)");
            }
            if let Some(ms) = fault
                .strip_prefix("sleep:")
                .and_then(|v| v.parse::<u64>().ok())
            {
                // A bounded compute stall: lets e2e tests pin a request
                // inside a worker while probes race it.
                std::thread::sleep(Duration::from_millis(ms.min(2_000)));
            }
        }
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/vsafe") => {
            let outcome =
                parse_body::<VsafeRequest>(&req.body).and_then(|r| cached_vsafe(shared, &r));
            finish(&shared.metrics.vsafe, outcome)
        }
        ("POST", "/v1/lint") => {
            let outcome =
                parse_body::<LintRequest>(&req.body).and_then(|r| crate::handle::lint(&r));
            finish(&shared.metrics.lint, outcome)
        }
        ("POST", "/v1/batch") => {
            let outcome = parse_body::<BatchRequest>(&req.body)
                .and_then(|r| crate::handle::batch(&r, &shared.sweep, |v| cached_vsafe(shared, v)));
            finish(&shared.metrics.batch, outcome)
        }
        ("POST", "/v1/verify") => {
            let outcome =
                parse_body::<VerifyRequest>(&req.body).and_then(|r| crate::handle::verify(&r));
            finish(&shared.metrics.verify, outcome)
        }
        ("POST", "/v1/wcec") => {
            let outcome =
                parse_body::<WcecRequest>(&req.body).and_then(|r| crate::handle::wcec(&r));
            finish(&shared.metrics.wcec, outcome)
        }
        ("POST", "/v1/observe") => {
            let outcome = parse_body::<ObserveRequest>(&req.body)
                .and_then(|r| shared.store_hub().and_then(|hub| hub.observe(&r)));
            match outcome {
                Ok((doc, fsync_us)) => {
                    let mut r = finish(&shared.metrics.observe, Ok::<_, ApiError>(doc));
                    r.fsync_us = Some(fsync_us);
                    r
                }
                Err(e) => error_routed(&shared.metrics.observe, &e),
            }
        }
        ("GET", path) if path.starts_with("/v1/observe/") => {
            let outcome = match path["/v1/observe/".len()..].parse::<u64>() {
                Ok(device) => shared.store_hub().and_then(|hub| hub.device(device)),
                Err(_) => Err(ApiError::new(
                    ApiErrorKind::NotFound,
                    format!("no such endpoint: {path}"),
                )),
            };
            finish(&shared.metrics.observe_device, outcome)
        }
        ("POST", "/v1/fleet") => {
            let outcome = parse_body::<culpeo_api::FleetRegisterRequest>(&req.body)
                .and_then(|r| shared.fleet.register(&r));
            finish(&shared.metrics.fleet, outcome)
        }
        ("GET", "/v1/fleet") => finish(&shared.metrics.fleet, Ok(shared.fleet.summary())),
        ("GET", "/v1/fleet/events") => {
            let body = shared.fleet.drain_events_ndjson();
            shared.metrics.fleet_events.record(0, false);
            Routed {
                status: 200,
                body,
                content_type: "application/x-ndjson",
                counters: &shared.metrics.fleet_events,
                was_error: false,
                shutdown_after: false,
                enveloped: false,
                fsync_us: None,
            }
        }
        ("GET", path) if path.starts_with("/v1/fleet/") => {
            let outcome = match path["/v1/fleet/".len()..].parse::<u64>() {
                Ok(id) => shared.fleet.twin(id),
                Err(_) => Err(ApiError::new(
                    ApiErrorKind::NotFound,
                    format!("no such endpoint: {path}"),
                )),
            };
            finish(&shared.metrics.fleet_twin, outcome)
        }
        ("GET", "/v1/health") => {
            let doc = health_doc(shared, false);
            finish(&shared.metrics.health, Ok(doc))
        }
        ("GET", "/v1/metrics") => {
            let doc = MetricsResponse {
                schema_version: SCHEMA_VERSION,
                uptime_s: shared.started.elapsed().as_secs_f64(),
                endpoints: shared.metrics.snapshot(),
                cache: shared.lock_cache().metrics(),
                shed: shared.metrics.shed.snapshot(),
            };
            finish(&shared.metrics.metrics, Ok(doc))
        }
        ("POST", "/v1/shutdown") => {
            let doc = health_doc(shared, true);
            let mut r = finish(&shared.metrics.shutdown, Ok(doc));
            r.shutdown_after = true;
            r
        }
        (
            _,
            "/v1/vsafe" | "/v1/lint" | "/v1/batch" | "/v1/verify" | "/v1/wcec" | "/v1/observe"
            | "/v1/fleet" | "/v1/fleet/events" | "/v1/health" | "/v1/metrics" | "/v1/shutdown"
            | "/v1/livez" | "/v1/readyz",
        ) => {
            let e = ApiError::new(
                ApiErrorKind::MethodNotAllowed,
                format!("{} does not accept {}", req.path, req.method),
            );
            error_routed(&shared.metrics.other, &e)
        }
        _ => {
            let e = ApiError::new(
                ApiErrorKind::NotFound,
                format!("no such endpoint: {}", req.path),
            );
            error_routed(&shared.metrics.other, &e)
        }
    }
}

fn health_doc(shared: &Shared, draining: bool) -> HealthResponse {
    let draining = draining || shared.shutting.load(Ordering::SeqCst);
    HealthResponse {
        schema_version: SCHEMA_VERSION,
        status: if draining { "draining" } else { "ok" }.to_string(),
        uptime_s: shared.started.elapsed().as_secs_f64(),
        threads: shared.workers as u64,
    }
}

/// Serialises a handler outcome into a [`Routed`] against an endpoint's
/// counter row.
fn finish<T: serde::Serialize>(
    counters: &EndpointCounters,
    outcome: Result<T, ApiError>,
) -> Routed<'_> {
    match outcome {
        Ok(doc) => Routed {
            status: 200,
            body: serde_json::to_string(&doc).expect("response serialisation is infallible"),
            content_type: "application/json",
            counters,
            was_error: false,
            shutdown_after: false,
            enveloped: true,
            fsync_us: None,
        },
        Err(e) => error_routed(counters, &e),
    }
}

fn error_routed<'a>(counters: &'a EndpointCounters, e: &ApiError) -> Routed<'a> {
    Routed {
        status: e.http_status(),
        body: error_body(e),
        content_type: "application/json",
        counters,
        was_error: true,
        shutdown_after: false,
        enveloped: true,
        fsync_us: None,
    }
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| ApiError::bad_request(format!("bad request body: {e}")))
}

/// The memoizing `V_safe` path: single requests and batch items both
/// land here, so they share one content-hash cache.
fn cached_vsafe(shared: &Shared, req: &VsafeRequest) -> Result<VsafeResponse, ApiError> {
    culpeo_api::check_schema_version(req.schema_version)?;
    let spec_json = match &req.spec {
        // Struct-declaration field order makes this canonical.
        Some(spec) => serde_json::to_string(spec).expect("spec serialisation is infallible"),
        None => "default".to_string(),
    };
    let key = content_key(&spec_json, &req.trace_csv);
    if let Some(hit) = shared.lock_cache().get(key) {
        return Ok(hit);
    }
    let resp = crate::handle::vsafe(req)?;
    shared.lock_cache().insert(key, resp.clone());
    Ok(resp)
}

fn error_body(e: &ApiError) -> String {
    serde_json::to_string(e).expect("error serialisation is infallible")
}

fn us_between(from: Instant, to: Instant) -> u64 {
    u64::try_from(to.saturating_duration_since(from).as_micros()).unwrap_or(u64::MAX)
}

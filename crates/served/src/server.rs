//! The daemon: listener, bounded accept queue, worker pool, shutdown.
//!
//! One acceptor thread owns the `TcpListener` and feeds accepted
//! connections into a *bounded* `sync_channel`; when the queue is full
//! the acceptor answers `503 busy` itself instead of letting latency
//! grow unboundedly. `threads` worker threads pop connections, parse one
//! request each, and route it through [`crate::handle`].
//!
//! Every connection is bounded three ways: a read timeout (a slow-loris
//! request writer gets a 408, not a wedged worker), a write timeout (a
//! slow response reader gets cut off), and a per-connection wall-clock
//! deadline capping read + handle + write together. Worker-side lock
//! poisoning is survivable: a handler panic is caught and answered as
//! 500, and the next toucher of the poisoned cache lock clears the cache
//! and carries on. All of it is counted in [`crate::metrics::ShedCounters`]
//! and surfaced by `/v1/metrics`.
//!
//! Shutdown is cooperative: [`ShutdownHandle::request`] (also wired to
//! `POST /v1/shutdown`) sets a flag and pokes the listener awake with a
//! self-connection. The acceptor stops accepting and drops its sender;
//! workers drain every connection already accepted into the queue, then
//! exit — so no accepted request is ever dropped. [`Server::join`]
//! blocks until that drain completes. (Pure-std Rust cannot install a
//! SIGTERM handler without `unsafe`/libc, which this workspace forbids;
//! deployments get signal-triggered draining by trapping the signal in
//! their supervisor and calling `/v1/shutdown` — see DESIGN.md §9 and
//! `scripts/smoke_serve.sh`.)

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use culpeo_api::{
    ApiError, ApiErrorKind, BatchRequest, HealthResponse, LintRequest, MetricsResponse,
    VerifyRequest, VsafeRequest, VsafeResponse, SCHEMA_VERSION,
};
use culpeo_exec::Sweep;

use crate::cache::{content_key, LruCache};
use crate::http::{self, HttpError, Request};
use crate::metrics::{EndpointCounters, Metrics, ShedCounters};
use crate::protocol::{self, Enqueue};

/// How the daemon is stood up. `Default` matches `culpeo serve` with no
/// flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Interface to bind. Loopback by default: the daemon has no auth
    /// layer, so exposing it wider is an explicit operator decision.
    pub host: String,
    /// TCP port; 0 asks the OS for an ephemeral one (tests, smoke).
    pub port: u16,
    /// Worker threads. 0 means "resolve like the sweeps do":
    /// `CULPEO_THREADS`, else available parallelism.
    pub threads: usize,
    /// Bounded accept-queue depth; beyond it the acceptor answers 503.
    pub queue_depth: usize,
    /// `V_safe` memo-cache capacity in entries; 0 disables memoization.
    pub cache_capacity: usize,
    /// Socket read timeout: how long a client may stall while sending its
    /// request before it gets a 408.
    pub read_timeout_ms: u64,
    /// Socket write timeout: how long a client may stall while receiving
    /// its response before the connection is cut.
    pub write_timeout_ms: u64,
    /// Per-connection wall-clock deadline capping read + handle + write.
    pub deadline_ms: u64,
    /// Honour the `x-culpeo-fault` request header (chaos batteries only:
    /// lets a test inject a handler panic while the cache lock is held).
    pub test_faults: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".to_string(),
            port: 7070,
            threads: 0,
            queue_depth: 64,
            cache_capacity: 256,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            deadline_ms: 30_000,
            test_faults: false,
        }
    }
}

/// State shared by the acceptor, the workers, and shutdown handles.
struct Shared {
    shutting: AtomicBool,
    metrics: Metrics,
    cache: Mutex<LruCache<VsafeResponse>>,
    sweep: Sweep,
    threads: usize,
    started: Instant,
    addr: SocketAddr,
    read_timeout: Duration,
    write_timeout: Duration,
    deadline: Duration,
    test_faults: bool,
}

impl Shared {
    /// Flags shutdown and pokes the acceptor awake. Idempotent.
    fn request_shutdown(&self) {
        if protocol::begin_shutdown(&self.shutting) {
            // The acceptor is (probably) parked in accept(); a throwaway
            // self-connection unblocks it so it can observe the flag.
            // The model checker's `shutdown-handshake` battery pins the
            // flag+wake pairing: flag-without-wake deadlocks the drain.
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Locks the `V_safe` cache, recovering from poisoning: a handler
    /// panic mid-insert may have left a half-updated map, so the first
    /// toucher clears it (an empty cache is always safe), un-poisons the
    /// mutex, and counts the recovery. Workers never die to `expect`.
    fn lock_cache(&self) -> MutexGuard<'_, LruCache<VsafeResponse>> {
        protocol::recovering_lock(&self.cache, |cache| {
            ShedCounters::bump(&self.metrics.shed.lock_recoveries);
            cache.clear();
        })
    }
}

/// A handle that can request a drain from any thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Begins graceful shutdown: stop accepting, drain, exit. Returns
    /// immediately; pair with [`Server::join`] to wait for the drain.
    pub fn request(&self) {
        self.shared.request_shutdown();
    }
}

/// What a completed run served, returned by [`Server::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered across all endpoints (errors included).
    pub requests: u64,
    /// `V_safe` cache hits over the run.
    pub cache_hits: u64,
}

/// A running daemon.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(config: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        let threads = if config.threads == 0 {
            Sweep::from_env().threads()
        } else {
            config.threads
        };
        let shared = Arc::new(Shared {
            shutting: AtomicBool::new(false),
            metrics: Metrics::default(),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            sweep: Sweep::with_threads(threads),
            threads,
            started: Instant::now(),
            addr,
            read_timeout: Duration::from_millis(config.read_timeout_ms.max(1)),
            write_timeout: Duration::from_millis(config.write_timeout_ms.max(1)),
            deadline: Duration::from_millis(config.deadline_ms.max(1)),
            test_faults: config.test_faults,
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener, &tx))
        };

        Ok(Self {
            shared,
            acceptor,
            workers,
        })
    }

    /// The bound address (useful with `port: 0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A cloneable handle for requesting shutdown from anywhere.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until shutdown has been requested *and* every accepted
    /// connection has been answered, then returns the run's totals.
    ///
    /// # Panics
    ///
    /// Panics if the acceptor or a worker thread itself panicked
    /// (individual request handlers are unwind-caught and answer 500,
    /// so this indicates a daemon bug, not bad input).
    #[must_use]
    pub fn join(self) -> ServeSummary {
        self.acceptor.join().expect("acceptor thread panicked");
        for w in self.workers {
            w.join().expect("worker thread panicked");
        }
        let requests = self
            .shared
            .metrics
            .snapshot()
            .iter()
            .map(|e| e.requests)
            .sum();
        let cache_hits = self.shared.lock_cache().metrics().hits;
        ServeSummary {
            requests,
            cache_hits,
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    for stream in listener.incoming() {
        let Ok(conn) = stream else { continue };
        match protocol::offer(&shared.shutting, tx, conn) {
            Enqueue::Queued => {}
            Enqueue::Draining(mut conn) => {
                // Usually the shutdown handle's own wake connection;
                // anyone else racing in gets an honest 503 before we
                // stop.
                respond_error(
                    &mut conn,
                    &ApiError::new(ApiErrorKind::ShuttingDown, "daemon is draining"),
                );
                break;
            }
            Enqueue::Busy(mut conn) => {
                shared.metrics.accept_rejected.record(0, true);
                respond_error(
                    &mut conn,
                    &ApiError::new(
                        ApiErrorKind::Busy,
                        "accept queue is full; retry with backoff",
                    ),
                );
            }
            Enqueue::Disconnected(_) => break,
        }
    }
    // Dropping `tx` (by returning) lets workers drain the queue and exit.
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    // `next_job` holds the lock only to pop; recv() returns queued
    // connections even after the acceptor hung up, which is the drain
    // guarantee (pinned over all interleavings by the `culpeo race`
    // drain battery). A worker that panicked past catch_unwind poisons
    // the receiver lock; the queue is recoverable state (unlike a
    // half-mutated cache map), so the survivors keep popping.
    while let Some(conn) = protocol::next_job(rx.as_ref()) {
        handle_connection(shared, conn);
    }
}

fn handle_connection(shared: &Shared, mut conn: TcpStream) {
    let started = Instant::now();
    // Both socket timeouts are capped by the connection deadline so a
    // client cannot stretch its wall-clock budget by trickling bytes.
    let _ = conn.set_read_timeout(Some(shared.read_timeout.min(shared.deadline)));
    let req = match http::read_request(&mut conn) {
        Ok(req) => req,
        Err(e) => {
            let api_err = match &e {
                HttpError::Timeout => {
                    ShedCounters::bump(&shared.metrics.shed.read_timeouts);
                    ApiError::new(ApiErrorKind::Timeout, e.to_string())
                }
                HttpError::TooLarge(_) => {
                    ShedCounters::bump(&shared.metrics.shed.oversize_rejects);
                    ApiError::new(ApiErrorKind::TooLarge, e.to_string())
                }
                HttpError::Io(_) | HttpError::Malformed(_) => ApiError::bad_request(e),
            };
            shared.metrics.other.record(elapsed_us(started), true);
            write_response(
                shared,
                &mut conn,
                started,
                api_err.http_status(),
                api_err.kind.retry_after_s(),
                &error_body(&api_err),
            );
            return;
        }
    };

    let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(shared, &req)));
    let (status, body, counters, was_error, shutdown_after) = match routed {
        Ok(r) => r,
        Err(_) => {
            ShedCounters::bump(&shared.metrics.shed.handler_panics);
            (
                500,
                error_body(&ApiError::new(
                    ApiErrorKind::Internal,
                    "handler panicked; see daemon stderr",
                )),
                &shared.metrics.other,
                true,
                false,
            )
        }
    };
    counters.record(elapsed_us(started), was_error);
    let retry_after = match status {
        408 => ApiErrorKind::Timeout.retry_after_s(),
        503 => ApiErrorKind::Busy.retry_after_s(),
        _ => None,
    };
    write_response(shared, &mut conn, started, status, retry_after, &body);
    if shutdown_after {
        shared.request_shutdown();
    }
}

/// Writes the response under the write timeout and the remaining
/// connection-deadline budget, counting deadline closes and write
/// timeouts. A connection already past its deadline is dropped unwritten
/// — the client stopped deserving an answer when it ate the whole budget.
fn write_response(
    shared: &Shared,
    conn: &mut TcpStream,
    started: Instant,
    status: u16,
    retry_after_s: Option<u32>,
    body: &str,
) {
    let spent = started.elapsed();
    let Some(remaining) = shared.deadline.checked_sub(spent).filter(|r| !r.is_zero()) else {
        ShedCounters::bump(&shared.metrics.shed.deadline_closes);
        return;
    };
    let _ = conn.set_write_timeout(Some(shared.write_timeout.min(remaining)));
    if let Err(e) = http::try_write_json_response(conn, status, retry_after_s, body) {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            ShedCounters::bump(&shared.metrics.shed.write_timeouts);
        }
    }
}

/// Routing result: status, JSON body, metrics row, error flag, and
/// whether to begin draining once the response is on the wire.
type Routed<'a> = (u16, String, &'a EndpointCounters, bool, bool);

fn route<'a>(shared: &'a Shared, req: &Request) -> Routed<'a> {
    if shared.test_faults {
        if let Some(fault) = req.header("x-culpeo-fault") {
            if fault.eq_ignore_ascii_case("panic") {
                // Panic *while holding the cache lock* so the chaos
                // battery exercises both the catch_unwind 500 path and
                // the poisoned-lock recovery on the next request.
                let _guard = shared.cache.lock();
                panic!("injected handler panic (x-culpeo-fault: panic)");
            }
        }
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/vsafe") => {
            let outcome =
                parse_body::<VsafeRequest>(&req.body).and_then(|r| cached_vsafe(shared, &r));
            finish(&shared.metrics.vsafe, outcome)
        }
        ("POST", "/v1/lint") => {
            let outcome =
                parse_body::<LintRequest>(&req.body).and_then(|r| crate::handle::lint(&r));
            finish(&shared.metrics.lint, outcome)
        }
        ("POST", "/v1/batch") => {
            let outcome = parse_body::<BatchRequest>(&req.body)
                .and_then(|r| crate::handle::batch(&r, &shared.sweep, |v| cached_vsafe(shared, v)));
            finish(&shared.metrics.batch, outcome)
        }
        ("POST", "/v1/verify") => {
            let outcome =
                parse_body::<VerifyRequest>(&req.body).and_then(|r| crate::handle::verify(&r));
            finish(&shared.metrics.verify, outcome)
        }
        ("GET", "/v1/health") => {
            let doc = health_doc(shared, false);
            finish(&shared.metrics.health, Ok(doc))
        }
        ("GET", "/v1/metrics") => {
            let doc = MetricsResponse {
                schema_version: SCHEMA_VERSION,
                uptime_s: shared.started.elapsed().as_secs_f64(),
                endpoints: shared.metrics.snapshot(),
                cache: shared.lock_cache().metrics(),
                shed: shared.metrics.shed.snapshot(),
            };
            finish(&shared.metrics.metrics, Ok(doc))
        }
        ("POST", "/v1/shutdown") => {
            let doc = health_doc(shared, true);
            let (status, body, counters, was_error, _) = finish(&shared.metrics.shutdown, Ok(doc));
            (status, body, counters, was_error, true)
        }
        (
            _,
            "/v1/vsafe" | "/v1/lint" | "/v1/batch" | "/v1/verify" | "/v1/health" | "/v1/metrics"
            | "/v1/shutdown",
        ) => {
            let e = ApiError::new(
                ApiErrorKind::MethodNotAllowed,
                format!("{} does not accept {}", req.path, req.method),
            );
            (405, error_body(&e), &shared.metrics.other, true, false)
        }
        _ => {
            let e = ApiError::new(
                ApiErrorKind::NotFound,
                format!("no such endpoint: {}", req.path),
            );
            (404, error_body(&e), &shared.metrics.other, true, false)
        }
    }
}

fn health_doc(shared: &Shared, draining: bool) -> HealthResponse {
    let draining = draining || shared.shutting.load(Ordering::SeqCst);
    HealthResponse {
        schema_version: SCHEMA_VERSION,
        status: if draining { "draining" } else { "ok" }.to_string(),
        uptime_s: shared.started.elapsed().as_secs_f64(),
        threads: shared.threads as u64,
    }
}

/// Serialises a handler outcome into (status, body) against an endpoint's
/// counter row.
fn finish<T: serde::Serialize>(
    counters: &EndpointCounters,
    outcome: Result<T, ApiError>,
) -> Routed<'_> {
    match outcome {
        Ok(doc) => {
            let body = serde_json::to_string(&doc).expect("response serialisation is infallible");
            (200, body, counters, false, false)
        }
        Err(e) => (e.http_status(), error_body(&e), counters, true, false),
    }
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| ApiError::bad_request(format!("bad request body: {e}")))
}

/// The memoizing `V_safe` path: single requests and batch items both
/// land here, so they share one content-hash cache.
fn cached_vsafe(shared: &Shared, req: &VsafeRequest) -> Result<VsafeResponse, ApiError> {
    culpeo_api::check_schema_version(req.schema_version)?;
    let spec_json = match &req.spec {
        // Struct-declaration field order makes this canonical.
        Some(spec) => serde_json::to_string(spec).expect("spec serialisation is infallible"),
        None => "default".to_string(),
    };
    let key = content_key(&spec_json, &req.trace_csv);
    if let Some(hit) = shared.lock_cache().get(key) {
        return Ok(hit);
    }
    let resp = crate::handle::vsafe(req)?;
    shared.lock_cache().insert(key, resp.clone());
    Ok(resp)
}

fn error_body(e: &ApiError) -> String {
    serde_json::to_string(e).expect("error serialisation is infallible")
}

fn respond_error(conn: &mut TcpStream, e: &ApiError) {
    let _ = http::try_write_json_response(
        conn,
        e.http_status(),
        e.kind.retry_after_s(),
        &error_body(e),
    );
}

fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

//! The daemon: listener, bounded accept queue, worker pool, shutdown.
//!
//! One acceptor thread owns the `TcpListener` and feeds accepted
//! connections into a *bounded* `sync_channel`; when the queue is full
//! the acceptor answers `503 busy` itself instead of letting latency
//! grow unboundedly. `threads` worker threads pop connections, parse one
//! request each, and route it through [`crate::handle`].
//!
//! Shutdown is cooperative: [`ShutdownHandle::request`] (also wired to
//! `POST /v1/shutdown`) sets a flag and pokes the listener awake with a
//! self-connection. The acceptor stops accepting and drops its sender;
//! workers drain every connection already accepted into the queue, then
//! exit — so no accepted request is ever dropped. [`Server::join`]
//! blocks until that drain completes. (Pure-std Rust cannot install a
//! SIGTERM handler without `unsafe`/libc, which this workspace forbids;
//! deployments get signal-triggered draining by trapping the signal in
//! their supervisor and calling `/v1/shutdown` — see DESIGN.md §9 and
//! `scripts/smoke_serve.sh`.)

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use culpeo_api::{
    ApiError, ApiErrorKind, BatchRequest, HealthResponse, LintRequest, MetricsResponse,
    VsafeRequest, VsafeResponse, SCHEMA_VERSION,
};
use culpeo_exec::Sweep;

use crate::cache::{content_key, LruCache};
use crate::http::{self, Request};
use crate::metrics::{EndpointCounters, Metrics};

/// How the daemon is stood up. `Default` matches `culpeo serve` with no
/// flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Interface to bind. Loopback by default: the daemon has no auth
    /// layer, so exposing it wider is an explicit operator decision.
    pub host: String,
    /// TCP port; 0 asks the OS for an ephemeral one (tests, smoke).
    pub port: u16,
    /// Worker threads. 0 means "resolve like the sweeps do":
    /// `CULPEO_THREADS`, else available parallelism.
    pub threads: usize,
    /// Bounded accept-queue depth; beyond it the acceptor answers 503.
    pub queue_depth: usize,
    /// `V_safe` memo-cache capacity in entries; 0 disables memoization.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".to_string(),
            port: 7070,
            threads: 0,
            queue_depth: 64,
            cache_capacity: 256,
        }
    }
}

/// State shared by the acceptor, the workers, and shutdown handles.
struct Shared {
    shutting: AtomicBool,
    metrics: Metrics,
    cache: Mutex<LruCache<VsafeResponse>>,
    sweep: Sweep,
    threads: usize,
    started: Instant,
    addr: SocketAddr,
}

impl Shared {
    /// Flags shutdown and pokes the acceptor awake. Idempotent.
    fn request_shutdown(&self) {
        if !self.shutting.swap(true, Ordering::SeqCst) {
            // The acceptor is (probably) parked in accept(); a throwaway
            // self-connection unblocks it so it can observe the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A handle that can request a drain from any thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Begins graceful shutdown: stop accepting, drain, exit. Returns
    /// immediately; pair with [`Server::join`] to wait for the drain.
    pub fn request(&self) {
        self.shared.request_shutdown();
    }
}

/// What a completed run served, returned by [`Server::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered across all endpoints (errors included).
    pub requests: u64,
    /// `V_safe` cache hits over the run.
    pub cache_hits: u64,
}

/// A running daemon.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(config: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        let threads = if config.threads == 0 {
            Sweep::from_env().threads()
        } else {
            config.threads
        };
        let shared = Arc::new(Shared {
            shutting: AtomicBool::new(false),
            metrics: Metrics::default(),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            sweep: Sweep::with_threads(threads),
            threads,
            started: Instant::now(),
            addr,
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener, &tx))
        };

        Ok(Self {
            shared,
            acceptor,
            workers,
        })
    }

    /// The bound address (useful with `port: 0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A cloneable handle for requesting shutdown from anywhere.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until shutdown has been requested *and* every accepted
    /// connection has been answered, then returns the run's totals.
    ///
    /// # Panics
    ///
    /// Panics if the acceptor or a worker thread itself panicked
    /// (individual request handlers are unwind-caught and answer 500,
    /// so this indicates a daemon bug, not bad input).
    #[must_use]
    pub fn join(self) -> ServeSummary {
        self.acceptor.join().expect("acceptor thread panicked");
        for w in self.workers {
            w.join().expect("worker thread panicked");
        }
        let requests = self
            .shared
            .metrics
            .snapshot()
            .iter()
            .map(|e| e.requests)
            .sum();
        let cache_hits = self
            .shared
            .cache
            .lock()
            .expect("cache lock poisoned")
            .metrics()
            .hits;
        ServeSummary {
            requests,
            cache_hits,
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    for stream in listener.incoming() {
        let Ok(mut conn) = stream else { continue };
        if shared.shutting.load(Ordering::SeqCst) {
            // Usually the shutdown handle's own wake connection; anyone
            // else racing in gets an honest 503 before we stop.
            respond_error(
                &mut conn,
                &ApiError::new(ApiErrorKind::ShuttingDown, "daemon is draining"),
            );
            break;
        }
        match tx.try_send(conn) {
            Ok(()) => {}
            Err(TrySendError::Full(mut conn)) => {
                shared.metrics.accept_rejected.record(0, true);
                respond_error(
                    &mut conn,
                    &ApiError::new(
                        ApiErrorKind::Busy,
                        "accept queue is full; retry with backoff",
                    ),
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` (by returning) lets workers drain the queue and exit.
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // Hold the lock only to pop; recv() returns queued connections
        // even after the acceptor hung up, which is the drain guarantee.
        let conn = rx.lock().expect("receiver lock poisoned").recv();
        match conn {
            Ok(conn) => handle_connection(shared, conn),
            Err(_) => break,
        }
    }
}

fn handle_connection(shared: &Shared, mut conn: TcpStream) {
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    let started = Instant::now();
    let req = match http::read_request(&mut conn) {
        Ok(req) => req,
        Err(e) => {
            let latency = elapsed_us(started);
            shared.metrics.other.record(latency, true);
            respond_error(&mut conn, &ApiError::bad_request(e));
            return;
        }
    };

    let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(shared, &req)));
    let (status, body, counters, was_error, shutdown_after) = match routed {
        Ok(r) => r,
        Err(_) => (
            500,
            error_body(&ApiError::new(
                ApiErrorKind::Internal,
                "handler panicked; see daemon stderr",
            )),
            &shared.metrics.other,
            true,
            false,
        ),
    };
    counters.record(elapsed_us(started), was_error);
    http::write_json_response(&mut conn, status, &body);
    if shutdown_after {
        shared.request_shutdown();
    }
}

/// Routing result: status, JSON body, metrics row, error flag, and
/// whether to begin draining once the response is on the wire.
type Routed<'a> = (u16, String, &'a EndpointCounters, bool, bool);

fn route<'a>(shared: &'a Shared, req: &Request) -> Routed<'a> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/vsafe") => {
            let outcome =
                parse_body::<VsafeRequest>(&req.body).and_then(|r| cached_vsafe(shared, &r));
            finish(&shared.metrics.vsafe, outcome)
        }
        ("POST", "/v1/lint") => {
            let outcome =
                parse_body::<LintRequest>(&req.body).and_then(|r| crate::handle::lint(&r));
            finish(&shared.metrics.lint, outcome)
        }
        ("POST", "/v1/batch") => {
            let outcome = parse_body::<BatchRequest>(&req.body)
                .and_then(|r| crate::handle::batch(&r, &shared.sweep, |v| cached_vsafe(shared, v)));
            finish(&shared.metrics.batch, outcome)
        }
        ("GET", "/v1/health") => {
            let doc = health_doc(shared, false);
            finish(&shared.metrics.health, Ok(doc))
        }
        ("GET", "/v1/metrics") => {
            let doc = MetricsResponse {
                schema_version: SCHEMA_VERSION,
                uptime_s: shared.started.elapsed().as_secs_f64(),
                endpoints: shared.metrics.snapshot(),
                cache: shared.cache.lock().expect("cache lock poisoned").metrics(),
            };
            finish(&shared.metrics.metrics, Ok(doc))
        }
        ("POST", "/v1/shutdown") => {
            let doc = health_doc(shared, true);
            let (status, body, counters, was_error, _) = finish(&shared.metrics.shutdown, Ok(doc));
            (status, body, counters, was_error, true)
        }
        (
            _,
            "/v1/vsafe" | "/v1/lint" | "/v1/batch" | "/v1/health" | "/v1/metrics" | "/v1/shutdown",
        ) => {
            let e = ApiError::new(
                ApiErrorKind::MethodNotAllowed,
                format!("{} does not accept {}", req.path, req.method),
            );
            (405, error_body(&e), &shared.metrics.other, true, false)
        }
        _ => {
            let e = ApiError::new(
                ApiErrorKind::NotFound,
                format!("no such endpoint: {}", req.path),
            );
            (404, error_body(&e), &shared.metrics.other, true, false)
        }
    }
}

fn health_doc(shared: &Shared, draining: bool) -> HealthResponse {
    let draining = draining || shared.shutting.load(Ordering::SeqCst);
    HealthResponse {
        schema_version: SCHEMA_VERSION,
        status: if draining { "draining" } else { "ok" }.to_string(),
        uptime_s: shared.started.elapsed().as_secs_f64(),
        threads: shared.threads as u64,
    }
}

/// Serialises a handler outcome into (status, body) against an endpoint's
/// counter row.
fn finish<T: serde::Serialize>(
    counters: &EndpointCounters,
    outcome: Result<T, ApiError>,
) -> Routed<'_> {
    match outcome {
        Ok(doc) => {
            let body = serde_json::to_string(&doc).expect("response serialisation is infallible");
            (200, body, counters, false, false)
        }
        Err(e) => (e.http_status(), error_body(&e), counters, true, false),
    }
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| ApiError::bad_request(format!("bad request body: {e}")))
}

/// The memoizing `V_safe` path: single requests and batch items both
/// land here, so they share one content-hash cache.
fn cached_vsafe(shared: &Shared, req: &VsafeRequest) -> Result<VsafeResponse, ApiError> {
    culpeo_api::check_schema_version(req.schema_version)?;
    let spec_json = match &req.spec {
        // Struct-declaration field order makes this canonical.
        Some(spec) => serde_json::to_string(spec).expect("spec serialisation is infallible"),
        None => "default".to_string(),
    };
    let key = content_key(&spec_json, &req.trace_csv);
    if let Some(hit) = shared.cache.lock().expect("cache lock poisoned").get(key) {
        return Ok(hit);
    }
    let resp = crate::handle::vsafe(req)?;
    shared
        .cache
        .lock()
        .expect("cache lock poisoned")
        .insert(key, resp.clone());
    Ok(resp)
}

fn error_body(e: &ApiError) -> String {
    serde_json::to_string(e).expect("error serialisation is infallible")
}

fn respond_error(conn: &mut TcpStream, e: &ApiError) {
    http::write_json_response(conn, e.http_status(), &error_body(e));
}

fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

//! A deliberately small HTTP/1.1 layer over `std::net`.
//!
//! The workspace vendors no HTTP crate, and the daemon needs very little:
//! request line + headers + `Content-Length` body in, one JSON response
//! out. No chunked encoding, no query strings. Two parser entry points
//! share the head grammar:
//!
//! * [`read_request`] — the blocking one-shot reader (CLI probes, fuzz
//!   battery, in-process tests), generic over [`Read`];
//! * [`try_parse_request`] — the incremental reactor-side parser: given
//!   the bytes buffered so far, yield a complete request plus its
//!   consumed length, or report "need more". Trailing bytes are the
//!   *next* pipelined request, never an error, which is what makes
//!   HTTP/1.1 keep-alive + pipelining work.
//!
//! Responses are serialised by [`response_bytes`]; the daemon holds the
//! connection open unless the client asked `Connection: close` or the
//! response status says the connection state is unsalvageable (≥ 400).

use std::io::{Read, Write};

/// Cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Cap on the request body; traces are text CSV, so 16 MiB is generous.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target path (query strings are not split off; no
    /// endpoint takes one).
    pub path: String,
    /// The request headers, in wire order, names as sent.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (ASCII case-insensitive), trimmed.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The socket failed or closed mid-request.
    Io(String),
    /// The socket's read timeout expired — the client stalled.
    Timeout,
    /// The bytes were not a parseable HTTP/1.1 request.
    Malformed(String),
    /// The head or body exceeded its size cap.
    TooLarge(&'static str),
}

impl HttpError {
    fn from_io(e: &std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e.to_string()),
        }
    }
}

impl core::fmt::Display for HttpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Timeout => write!(f, "client stalled past the read timeout"),
            HttpError::Malformed(e) => write!(f, "malformed request: {e}"),
            HttpError::TooLarge(what) => write!(f, "{what} exceeds the size cap"),
        }
    }
}

/// Reads and parses one request off `stream`.
///
/// # Errors
///
/// Returns an [`HttpError`] on socket failure, a read-timeout stall,
/// malformed syntax, or an oversized head/body.
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, HttpError> {
    // Read until the blank line ending the head. One byte at a time would
    // be slow; a chunked read may overshoot into the body, so keep the
    // overshoot and account for it when reading the body.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::from_io(&e))?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let parsed = parse_head(&buf[..head_end.start])?;
    let content_length = parsed.content_length;

    let mut body = buf[head_end.end..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::Malformed(
            "body longer than Content-Length".into(),
        ));
    }
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::from_io(&e))?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
        if body.len() > content_length {
            return Err(HttpError::Malformed(
                "body longer than Content-Length".into(),
            ));
        }
    }

    Ok(Request {
        method: parsed.method,
        path: parsed.path,
        headers: parsed.headers,
        body,
    })
}

/// A parsed request head, before the body is available.
struct ParsedHead {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    content_length: usize,
}

/// Parses the request line + headers (everything before the blank-line
/// terminator), shared by the blocking and incremental entry points.
fn parse_head(raw: &[u8]) -> Result<ParsedHead, HttpError> {
    let head =
        std::str::from_utf8(raw).map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing path".into()))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("missing HTTP/1.x version".into())),
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad Content-Length".into()))?;
            }
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }
    Ok(ParsedHead {
        method,
        path,
        headers,
        content_length,
    })
}

/// Tries to parse one complete request from the front of `buf` (the
/// bytes a nonblocking connection has accumulated so far).
///
/// Returns `Ok(Some((request, consumed)))` when a full request is
/// present — `consumed` is the byte length of that request, and
/// `buf[consumed..]` is the start of the *next* pipelined request (or
/// empty). Returns `Ok(None)` when the bytes so far are a valid prefix
/// and more input is needed.
///
/// # Errors
///
/// Returns [`HttpError::TooLarge`] when the head or declared body
/// exceeds its cap, and [`HttpError::Malformed`] when the prefix can
/// never become a valid request — both mean the connection is beyond
/// saving.
pub fn try_parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head"));
        }
        return Ok(None);
    };
    let parsed = parse_head(&buf[..head_end.start])?;
    let total = head_end.end + parsed.content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Request {
            method: parsed.method,
            path: parsed.path,
            headers: parsed.headers,
            body: buf[head_end.end..total].to_vec(),
        },
        total,
    )))
}

/// Whether the client asked for the connection to be closed after this
/// request (`Connection: close`, ASCII case-insensitive).
#[must_use]
pub fn wants_close(req: &Request) -> bool {
    req.header("connection")
        .is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close")))
}

/// Where the head ends: `start` is the offset of the blank-line
/// terminator, `end` the first body byte.
struct HeadEnd {
    start: usize,
    end: usize,
}

/// Finds the `\r\n\r\n` (or lenient `\n\n`) head terminator.
fn find_head_end(buf: &[u8]) -> Option<HeadEnd> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let lf = buf.windows(2).position(|w| w == b"\n\n");
    match (crlf, lf) {
        (Some(c), Some(l)) if l + 1 < c => Some(HeadEnd {
            start: l,
            end: l + 2,
        }),
        (Some(c), _) => Some(HeadEnd {
            start: c,
            end: c + 4,
        }),
        (None, Some(l)) => Some(HeadEnd {
            start: l,
            end: l + 2,
        }),
        (None, None) => None,
    }
}

/// The reason phrase for the handful of statuses the daemon emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one `application/json` response (with an optional
/// `Retry-After` header) and flushes.
///
/// # Errors
///
/// Propagates the socket error so the caller can count write timeouts;
/// use [`write_json_response`] when nobody is left to tell.
pub fn try_write_json_response<W: Write>(
    stream: &mut W,
    status: u16,
    retry_after_s: Option<u32>,
    body: &str,
) -> std::io::Result<()> {
    let bytes = response_bytes(
        status,
        "application/json",
        retry_after_s,
        body.as_bytes(),
        true,
    );
    stream.write_all(&bytes)?;
    stream.flush()
}

/// Serialises one complete response to bytes for the reactor's write
/// buffer. `close` selects the `Connection:` header; keep-alive
/// responses leave the socket open for the next pipelined request.
#[must_use]
pub fn response_bytes(
    status: u16,
    content_type: &str,
    retry_after_s: Option<u32>,
    body: &[u8],
    close: bool,
) -> Vec<u8> {
    let retry = match retry_after_s {
        Some(s) => format!("Retry-After: {s}\r\n"),
        None => String::new(),
    };
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{retry}Connection: {connection}\r\n\r\n",
        reason_phrase(status),
        body.len()
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    out
}

/// [`try_write_json_response`] with errors swallowed: the client may have
/// hung up, and there is nobody left to tell.
pub fn write_json_response<W: Write>(stream: &mut W, status: u16, body: &str) {
    let _ = try_write_json_response(stream, status, None, body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection_handles_both_conventions() {
        assert!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n").is_none());
        let crlf = find_head_end(b"GET / HTTP/1.1\r\n\r\nBODY").unwrap();
        assert_eq!((crlf.start, crlf.end), (14, 18));
        let lf = find_head_end(b"GET / HTTP/1.1\n\nBODY").unwrap();
        assert_eq!((lf.start, lf.end), (14, 16));
    }

    #[test]
    fn reason_phrases_cover_the_emitted_statuses() {
        for s in [200, 400, 404, 405, 408, 413, 500, 503] {
            assert_ne!(reason_phrase(s), "Unknown");
        }
        assert_eq!(reason_phrase(418), "Unknown");
    }

    #[test]
    fn parses_headers_case_insensitively_from_a_slice() {
        let raw: &[u8] =
            b"POST /v1/vsafe HTTP/1.1\r\nX-Culpeo-Fault: panic\r\nContent-Length: 2\r\n\r\nhi";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.header("x-culpeo-fault"), Some("panic"));
        assert_eq!(req.header("CONTENT-LENGTH"), Some("2"));
        assert_eq!(req.header("absent"), None);
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn timeout_kind_is_distinguished_from_other_io() {
        struct Stall;
        impl Read for Stall {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "stall"))
            }
        }
        assert_eq!(read_request(&mut Stall), Err(HttpError::Timeout));
    }

    #[test]
    fn incremental_parser_handles_partials_and_pipelining() {
        let full: &[u8] = b"POST /v1/vsafe HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /v1/health HTTP/1.1\r\n\r\n";
        // Every strict prefix of the first request is "need more".
        for cut in 0..48 {
            assert_eq!(try_parse_request(&full[..cut]), Ok(None), "cut={cut}");
        }
        let (first, used) = try_parse_request(full).unwrap().unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, b"hi");
        assert_eq!(used, 48);
        let (second, used2) = try_parse_request(&full[used..]).unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/v1/health");
        assert!(second.body.is_empty());
        assert_eq!(used + used2, full.len());
    }

    #[test]
    fn incremental_parser_rejects_oversize_and_malformed() {
        let huge = vec![b'x'; MAX_HEAD_BYTES + 2];
        assert_eq!(
            try_parse_request(&huge),
            Err(HttpError::TooLarge("request head"))
        );
        let bad: &[u8] = b"NOT-HTTP\r\n\r\n";
        assert!(matches!(
            try_parse_request(bad),
            Err(HttpError::Malformed(_))
        ));
        let lying: &[u8] = b"POST /v1/vsafe HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert!(matches!(
            try_parse_request(lying),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn wants_close_reads_the_connection_header() {
        let parse = |raw: &[u8]| try_parse_request(raw).unwrap().unwrap().0;
        assert!(wants_close(&parse(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        )));
        assert!(wants_close(&parse(
            b"GET / HTTP/1.1\r\nconnection: Keep-Alive, CLOSE\r\n\r\n"
        )));
        assert!(!wants_close(&parse(
            b"GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n"
        )));
        assert!(!wants_close(&parse(b"GET / HTTP/1.1\r\n\r\n")));
    }

    #[test]
    fn response_bytes_selects_the_connection_header() {
        let keep = response_bytes(200, "application/json", None, b"{}", false);
        let keep = String::from_utf8(keep).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"), "{keep}");
        assert!(keep.ends_with("\r\n\r\n{}"), "{keep}");
        let close = response_bytes(503, "application/json", Some(3), b"{}", true);
        let close = String::from_utf8(close).unwrap();
        assert!(close.contains("Connection: close\r\n"), "{close}");
        assert!(close.contains("Retry-After: 3\r\n"), "{close}");
    }

    #[test]
    fn retry_after_header_is_emitted_on_request() {
        let mut out: Vec<u8> = Vec::new();
        try_write_json_response(&mut out, 503, Some(5), "{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 5\r\n"), "{text}");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        let mut out: Vec<u8> = Vec::new();
        try_write_json_response(&mut out, 200, None, "{}").unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Retry-After"));
    }
}

//! Readiness polling for the reactor.
//!
//! The workspace vendors no `mio`/`libc`, so on Linux this module talks
//! to `epoll` and `eventfd` through a four-function `extern "C"` shim
//! (the symbols live in the libc that `std` already links). Every file
//! descriptor is wrapped in an owning std type (`OwnedFd`/`File`)
//! immediately on creation, so lifetimes and close-on-drop stay in safe
//! Rust; the `unsafe` surface is confined to the raw calls themselves.
//!
//! Elsewhere on unix a degraded sleep-poller stands in: it reports
//! every registered token as ready on a ~1 ms cadence, which is correct
//! (the connection state machines treat readiness as a *hint* and
//! handle `WouldBlock` everywhere) but burns a little CPU. The daemon
//! targets Linux; the fallback exists so the crate still builds and the
//! test batteries still pass on other unix hosts.

use std::io;
use std::os::fd::RawFd;

/// The token the poller reports when the [`Waker`] fired (completion
/// queue or shutdown), distinct from every connection id.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// The descriptor is readable (or hung up — a read will not block).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
}

pub use sys::{Poller, Waker};

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use super::{Event, WAKE_TOKEN};
    use std::fs::File;
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::sync::Arc;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const MAX_EVENTS: usize = 64;

    /// The kernel's `struct epoll_event`. Packed on x86-64, where the
    /// kernel ABI packs it so 32- and 64-bit layouts agree; natural
    /// layout everywhere else.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// A level-triggered epoll instance with a built-in eventfd waker.
    pub struct Poller {
        ep: OwnedFd,
        wake: File,
    }

    /// A cheap, clonable handle that interrupts [`Poller::wait`] from
    /// any thread (an 8-byte write to the shared eventfd).
    #[derive(Clone)]
    pub struct Waker {
        wake: Arc<File>,
    }

    fn interest(writable: bool) -> u32 {
        EPOLLIN | EPOLLRDHUP | if writable { EPOLLOUT } else { 0 }
    }

    impl Poller {
        /// Creates the epoll instance and its waker.
        pub fn new() -> io::Result<(Poller, Waker)> {
            // SAFETY: epoll_create1 returns a fresh descriptor that we
            // immediately take ownership of (or an error, handled first).
            let ep = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let ep = unsafe { OwnedFd::from_raw_fd(ep) };
            // SAFETY: same ownership handoff for the eventfd.
            let efd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            let wake = File::from(unsafe { OwnedFd::from_raw_fd(efd) });
            let waker = Waker {
                wake: Arc::new(wake.try_clone()?),
            };
            let poller = Poller { ep, wake };
            poller.ctl(EPOLL_CTL_ADD, poller.wake.as_raw_fd(), WAKE_TOKEN, EPOLLIN)?;
            Ok((poller, waker))
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `ev` is a live stack value for the duration of the
            // call; the fd's validity is the caller's contract.
            cvt(unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
        }

        /// Starts watching `fd` under `token`; `writable` adds write
        /// interest on top of the always-on read interest.
        pub fn register(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest(writable))
        }

        /// Changes `fd`'s write interest (used to toggle `EPOLLOUT` on
        /// only while a connection has buffered output).
        pub fn modify(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest(writable))
        }

        /// Stops watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks until readiness or `timeout`, filling `out` with the
        /// ready tokens. A waker fire is drained internally and surfaces
        /// as a [`WAKE_TOKEN`] event.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut evs = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) if d.is_zero() => 0,
                // Round up so a 100 µs deadline does not spin at 0 ms.
                Some(d) => i32::try_from(d.as_millis().min(60_000))
                    .unwrap_or(60_000)
                    .max(1),
            };
            // SAFETY: `evs` is a valid out-buffer of MAX_EVENTS entries
            // for the duration of the call.
            let n = match cvt(unsafe {
                epoll_wait(
                    self.ep.as_raw_fd(),
                    evs.as_mut_ptr(),
                    MAX_EVENTS as i32,
                    timeout_ms,
                )
            }) {
                Ok(n) => n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &evs[..n] {
                // Copy fields out of the (possibly packed) struct before use.
                let bits = { ev.events };
                let token = { ev.data };
                if token == WAKE_TOKEN {
                    // Drain the eventfd counter so level-triggering rearms.
                    let mut buf = [0u8; 8];
                    let _ = (&self.wake).read(&mut buf);
                    out.push(Event {
                        token,
                        readable: true,
                        writable: false,
                    });
                } else {
                    out.push(Event {
                        token,
                        readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                        writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                    });
                }
            }
            Ok(())
        }
    }

    impl Waker {
        /// Interrupts the poller's current (or next) wait.
        pub fn wake(&self) {
            // Write errors are unreachable short of fd exhaustion, and
            // the coalescing wake flag retries on the next publish.
            let _ = (&*self.wake).write_all(&1u64.to_ne_bytes());
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, WAKE_TOKEN};
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Degraded sleep-poller: no kernel readiness, so every registered
    /// token is reported ready on a short cadence and the nonblocking
    /// state machines sort out the `WouldBlock`s.
    pub struct Poller {
        registered: Vec<(RawFd, u64)>,
        woken: Arc<AtomicBool>,
    }

    /// Fallback waker: a flag the sleep-poller checks each tick.
    #[derive(Clone)]
    pub struct Waker {
        woken: Arc<AtomicBool>,
    }

    impl Poller {
        /// Creates the sleep-poller and its waker.
        pub fn new() -> io::Result<(Poller, Waker)> {
            let woken = Arc::new(AtomicBool::new(false));
            Ok((
                Poller {
                    registered: Vec::new(),
                    woken: Arc::clone(&woken),
                },
                Waker { woken },
            ))
        }

        /// Records `fd` under `token` in the sleep-poller's own table.
        pub fn register_mut(&mut self, fd: RawFd, token: u64) {
            self.registered.push((fd, token));
        }

        /// Changes write interest — a no-op here (every token is always
        /// reported writable).
        pub fn modify(&self, _fd: RawFd, _token: u64, _writable: bool) -> io::Result<()> {
            Ok(())
        }

        /// Stops reporting `fd`.
        pub fn deregister_mut(&mut self, fd: RawFd) {
            self.registered.retain(|&(f, _)| f != fd);
        }

        /// Sleeps briefly, then reports every registered token ready.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let nap = timeout
                .unwrap_or(Duration::from_millis(1))
                .min(Duration::from_millis(1));
            if !self.woken.load(Ordering::SeqCst) && !nap.is_zero() {
                std::thread::sleep(nap);
            }
            if self.woken.swap(false, Ordering::SeqCst) {
                out.push(Event {
                    token: WAKE_TOKEN,
                    readable: true,
                    writable: false,
                });
            }
            for &(_, token) in &self.registered {
                out.push(Event {
                    token,
                    readable: true,
                    writable: true,
                });
            }
            Ok(())
        }
    }

    impl Waker {
        /// Interrupts the poller's current (or next) sleep tick.
        pub fn wake(&self) {
            self.woken.store(true, Ordering::SeqCst);
        }
    }
}

/// Platform-neutral registration entry point for the reactor: epoll
/// registers through the kernel (`&self`), the fallback records the
/// token in its own table (`&mut self`).
pub fn register(poller: &mut Poller, fd: RawFd, token: u64) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        poller.register(fd, token, false)
    }
    #[cfg(not(target_os = "linux"))]
    {
        poller.register_mut(fd, token);
        Ok(())
    }
}

/// Platform-neutral deregistration; see [`register`].
pub fn deregister(poller: &mut Poller, fd: RawFd) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        poller.deregister(fd)
    }
    #[cfg(not(target_os = "linux"))]
    {
        poller.deregister_mut(fd);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn waker_interrupts_a_long_wait() {
        let (mut poller, waker) = Poller::new().unwrap();
        let start = Instant::now();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(4), "wait never woke");
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn socket_readiness_is_reported_under_its_token() {
        use std::io::Write;
        use std::os::fd::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (mut poller, _waker) = Poller::new().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller.register(server_side.as_raw_fd(), 7, false).unwrap();
        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "readiness never arrived");
        }
        // Toggling write interest on is reported on the next wait.
        poller.modify(server_side.as_raw_fd(), 7, true).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
        poller.deregister(server_side.as_raw_fd()).unwrap();
    }
}

//! `culpeo-loadtest` — pipelined keep-alive load generator for the
//! reactor daemon.
//!
//! Boots a daemon in-process on an ephemeral port, then drives it over
//! real TCP from client threads that each keep one connection alive and
//! write `--pipeline` requests per batch before reading the batch of
//! responses back. Per-response latency is measured from the batch
//! write, so it includes queueing behind earlier requests on the same
//! connection — the honest number for a pipelined client.
//!
//! Prints one JSON document to stdout:
//!
//! ```json
//! {"schema_version":2,"endpoint":"/v1/health","connections":4,...}
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use culpeo_served::{Server, ServerConfig};

struct Args {
    endpoint: String,
    connections: usize,
    pipeline: usize,
    millis: u64,
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        endpoint: "/v1/health".to_string(),
        connections: 4,
        pipeline: 64,
        millis: 2_000,
        workers: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--endpoint" => args.endpoint = value("--endpoint")?,
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
            }
            "--pipeline" => {
                args.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|e| format!("--pipeline: {e}"))?;
            }
            "--millis" => {
                args.millis = value("--millis")?
                    .parse()
                    .map_err(|e| format!("--millis: {e}"))?;
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.connections == 0 || args.pipeline == 0 || args.millis == 0 {
        return Err("--connections, --pipeline, and --millis must be positive".into());
    }
    if args.pipeline > 256 {
        // The daemon parks parsing at MAX_PIPELINE in-flight requests;
        // deeper batches would just serialise against the cap.
        return Err("--pipeline is capped at 256 (the daemon's in-flight cap)".into());
    }
    Ok(args)
}

/// The wire bytes for one request against `endpoint`, keep-alive.
fn request_bytes(endpoint: &str) -> Vec<u8> {
    if endpoint == "/v1/vsafe" {
        // Repeats of the same trace are cache hits after the first: the
        // batch-endpoint steady state the acceptance targets.
        let body = "{\"schema_version\": 2, \"trace_csv\": \"# dt_us: 8\\n0.0,0.010\\n0.000008,0.025\\n0.000016,0.010\\n\"}";
        format!(
            "POST /v1/vsafe HTTP/1.1\r\nHost: loadtest\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    } else {
        format!("GET {endpoint} HTTP/1.1\r\nHost: loadtest\r\nContent-Length: 0\r\n\r\n")
            .into_bytes()
    }
}

/// Consumes complete responses from the front of `buf`, panicking on a
/// non-200 status. Returns how many were consumed and how many bytes.
fn consume_responses(buf: &[u8]) -> (usize, usize) {
    let mut done = 0;
    let mut pos = 0;
    loop {
        let rest = &buf[pos..];
        let Some(head_end) = rest.windows(4).position(|w| w == b"\r\n\r\n") else {
            return (done, pos);
        };
        let head = &rest[..head_end];
        assert!(
            head.starts_with(b"HTTP/1.1 200"),
            "non-200 under load: {}",
            String::from_utf8_lossy(head)
        );
        let clen: usize = head
            .split(|&b| b == b'\r')
            .find_map(|line| {
                let line = line.strip_prefix(b"\n").unwrap_or(line);
                let text = std::str::from_utf8(line).ok()?;
                let (k, v) = text.split_once(':')?;
                k.eq_ignore_ascii_case("content-length")
                    .then(|| v.trim().parse().ok())?
            })
            .expect("content-length header");
        if rest.len() < head_end + 4 + clen {
            return (done, pos);
        }
        pos += head_end + 4 + clen;
        done += 1;
    }
}

/// One client: pipelined batches against a keep-alive connection until
/// the deadline. Returns per-response latencies in microseconds.
fn client(addr: SocketAddr, request: &[u8], pipeline: usize, deadline: Instant) -> Vec<u64> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let batch: Vec<u8> = request
        .iter()
        .copied()
        .cycle()
        .take(request.len() * pipeline)
        .collect();
    let mut latencies = Vec::new();
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    loop {
        let t0 = Instant::now();
        stream.write_all(&batch).expect("batch write");
        let mut answered = 0;
        while answered < pipeline {
            let n = stream.read(&mut chunk).expect("read");
            assert!(n > 0, "daemon hung up mid-batch");
            buf.extend_from_slice(&chunk[..n]);
            let (done, used) = consume_responses(&buf);
            buf.drain(..used);
            let now = t0.elapsed().as_micros() as u64;
            for _ in 0..done {
                latencies.push(now);
            }
            answered += done;
        }
        // Always at least one full batch, even with an expired deadline
        // (how the warm-up pass runs).
        if Instant::now() >= deadline {
            return latencies;
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("culpeo-loadtest: {e}");
            eprintln!(
                "usage: culpeo-loadtest [--endpoint /v1/health] [--connections 4] \
                 [--pipeline 64] [--millis 2000] [--workers N]"
            );
            std::process::exit(2);
        }
    };

    let server = Server::start(&ServerConfig {
        port: 0,
        threads: args.workers,
        // Provision the compute queue for the full offered load, else
        // the daemon (correctly) sheds the deepest batches with 503.
        queue_depth: (args.connections * args.pipeline).max(64),
        ..ServerConfig::default()
    })
    .expect("server start");
    let addr = server.addr();
    let request = request_bytes(&args.endpoint);

    // Warm up: first request pays cache fill and lazy init, off the clock.
    let warm = client(addr, &request, 1, Instant::now());
    drop(warm);

    let started = Instant::now();
    let deadline = started + Duration::from_millis(args.millis);
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.connections)
            .map(|_| scope.spawn(|| client(addr, &request, args.pipeline, deadline)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    server.shutdown_handle().request();
    let _ = server.join();

    assert!(!latencies.is_empty(), "no responses within the window");
    latencies.sort_unstable();
    let requests = latencies.len();
    let req_per_s = requests as f64 / elapsed;
    println!(
        "{{\"schema_version\":2,\"endpoint\":\"{}\",\"connections\":{},\"pipeline_depth\":{},\
         \"duration_s\":{:.3},\"requests\":{},\"req_per_s\":{:.0},\
         \"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
        args.endpoint,
        args.connections,
        args.pipeline,
        elapsed,
        requests,
        req_per_s,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        latencies[requests - 1],
    );
}

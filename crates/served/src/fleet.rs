//! The sharded digital-twin fleet behind `POST /v1/fleet`.
//!
//! One registration creates `count` device twins sharing a spec, a task
//! trace, and (optionally) a schedule. Each twin runs a *descent
//! probe*: starting from `V_high`, every kernel round launches its task
//! from a start voltage one `v_step` below the last completing one,
//! until the task browns out or the round budget runs dry. The lowest
//! completing start voltage is the twin's **empirical `V_safe`
//! estimate**, and its drift against the static Culpeo-PG prediction
//! (the paper's §III interface, computed once at registration) is what
//! `GET /v1/fleet/:id` and the `/v1/fleet/events` NDJSON stream report.
//! Twins within a registration start phase-staggered (1/8th of a step
//! apart), so a fleet brackets the prediction from eight offsets at
//! once instead of replicating one trajectory.
//!
//! Scheduling: twins live in shards of [`SHARD_WIDTH`]; each round, the
//! scheduler threads hand shards off through the generation-tagged
//! claim protocol in [`culpeo_exec::shard`] and advance every live twin
//! of a claimed shard in one `Lanes<8>` batched kernel call. The last
//! finisher of a round publishes it (resets the counters, opens the
//! next generation, wakes the barrier) — the exact protocol the
//! `culpeo-race` battery model-checks.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use culpeo::pg;
use culpeo_api::{
    check_schema_version, ApiError, FleetEvent, FleetRegisterRequest, FleetRegisterResponse,
    FleetSummaryResponse, FleetTwinResponse, SystemSpec, VerifyRequest, SCHEMA_VERSION,
};
use culpeo_exec::shard;
use culpeo_loadgen::{io as trace_io, LoadProfile};
use culpeo_powersim::{Lanes, PowerSystem, RunConfig};
use culpeo_units::{Farads, Ohms, Volts};

use crate::handle;

/// Twins per shard — matches the `Lanes` width that saturates the
/// floating-point units.
pub const SHARD_WIDTH: usize = 8;
/// Hard cap on resident twins; a registration pushing past it is a 400.
pub const MAX_TWINS: u64 = 4096;
/// Hard cap on rounds a twin can be registered for.
pub const MAX_ROUNDS: u64 = 4096;
/// Ring capacity of the `/v1/fleet/events` buffer; oldest drop first.
const MAX_EVENTS: usize = 4096;
/// ESR operating point used when the trace has no dominant pulse.
const FALLBACK_ESR_FREQ_HZ: f64 = 1_000.0;

/// Everything a registration's twins share.
struct Batch {
    profile: LoadProfile,
    cfg: RunConfig,
    capacitance: Farads,
    esr: Ohms,
    v_off: f64,
    static_vsafe: f64,
    v_step: f64,
    verdict: String,
}

/// One device twin's descent-probe state.
struct TwinState {
    id: u64,
    batch: Arc<Batch>,
    /// Start voltage of the next round.
    v_next: f64,
    rounds_done: u64,
    rounds_target: u64,
    brownouts: u64,
    /// Lowest start voltage that still completed (the empirical
    /// `V_safe` estimate); starts at the initial start voltage.
    vsafe_estimate: f64,
    last_v_final: f64,
    done: bool,
}

impl TwinState {
    fn snapshot(&self) -> FleetTwinResponse {
        FleetTwinResponse {
            schema_version: SCHEMA_VERSION,
            id: self.id,
            rounds_done: self.rounds_done,
            rounds_target: self.rounds_target,
            brownouts: self.brownouts,
            v_start_v: self.v_next,
            last_v_final_v: self.last_v_final,
            vsafe_estimate_v: self.vsafe_estimate,
            static_vsafe_v: self.batch.static_vsafe,
            drift_mv: (self.vsafe_estimate - self.batch.static_vsafe) * 1000.0,
            verify_verdict: self.batch.verdict.clone(),
            done: self.done,
        }
    }
}

type Shard = Arc<Mutex<Vec<TwinState>>>;

/// The registry every endpoint reads and the scheduler advances.
struct FleetInner {
    shards: Vec<Shard>,
    twins: u64,
    active: u64,
    rounds_done: u64,
    brownouts: u64,
    events: VecDeque<FleetEvent>,
}

/// The fleet: registry + round synchronisation. One per daemon.
pub struct FleetState {
    inner: Mutex<FleetInner>,
    /// Scheduler threads park here while the fleet is idle.
    work: Condvar,
    /// The generation-tagged claim word (see [`culpeo_exec::shard`]).
    claim: AtomicUsize,
    /// Shards finished this round.
    finished: AtomicUsize,
    /// The shard snapshot the *current* round claims against, installed
    /// by each round's publisher. Reading it and claiming under its
    /// generation is what keeps every claimant on the same shard count.
    plan: Mutex<RoundPlan>,
    /// Signalled at each round publication (the round barrier).
    published: Condvar,
}

struct RoundPlan {
    gen: u32,
    shards: Vec<Shard>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Default for FleetState {
    fn default() -> Self {
        FleetState {
            inner: Mutex::new(FleetInner {
                shards: Vec::new(),
                twins: 0,
                active: 0,
                rounds_done: 0,
                brownouts: 0,
                events: VecDeque::new(),
            }),
            work: Condvar::new(),
            claim: AtomicUsize::new(shard::round_word(0)),
            finished: AtomicUsize::new(0),
            plan: Mutex::new(RoundPlan {
                gen: 0,
                shards: Vec::new(),
            }),
            published: Condvar::new(),
        }
    }
}

impl FleetState {
    /// Registers `count` twins; see the module docs for the model.
    ///
    /// # Errors
    ///
    /// `unsupported_version`, `spec`, `trace`, or `bad_request`
    /// [`ApiError`]s; registration is all-or-nothing.
    pub fn register(&self, req: &FleetRegisterRequest) -> Result<FleetRegisterResponse, ApiError> {
        check_schema_version(req.schema_version)?;
        let model = handle::resolve_model(&req.spec)?;
        let trace = trace_io::from_csv(&req.trace_csv)
            .map_err(|e| ApiError::trace(format!("bad trace_csv: {e}")))?;
        let count = u64::from(req.count.unwrap_or(8));
        if count == 0 {
            return Err(ApiError::bad_request("count must be at least 1"));
        }
        let rounds = u64::from(req.rounds.unwrap_or(16));
        if rounds == 0 || rounds > MAX_ROUNDS {
            return Err(ApiError::bad_request(format!(
                "rounds must be in 1..={MAX_ROUNDS}"
            )));
        }
        let v_step = req.v_step_mv.unwrap_or(20.0) / 1000.0;
        if !v_step.is_finite() || v_step <= 0.0 {
            return Err(ApiError::bad_request("v_step_mv must be finite and > 0"));
        }

        let static_vsafe = pg::compute_vsafe(&trace, &model).v_safe.get();
        let verdict = match &req.plan {
            Some(plan) => {
                handle::verify(&VerifyRequest {
                    schema_version: None,
                    spec: req.spec.clone().unwrap_or_else(SystemSpec::capybara),
                    plan: plan.clone(),
                })?
                .verdict
            }
            None => "unverified".to_string(),
        };
        let esr = match trace.dominant_pulse_width() {
            Some(w) => model.esr_at(w.frequency()),
            None => model.esr_at(culpeo_units::Hertz::new(FALLBACK_ESR_FREQ_HZ)),
        };
        let profile = LoadProfile::constant("fleet-task", trace.peak(), trace.duration());
        let cfg = RunConfig::probe(profile.duration());
        let batch = Arc::new(Batch {
            profile,
            cfg,
            capacitance: model.capacitance(),
            esr,
            v_off: model.v_off().get(),
            static_vsafe,
            v_step,
            verdict: verdict.clone(),
        });
        let v_high = model.v_high().get();

        let mut inner = lock(&self.inner);
        if inner.twins + count > MAX_TWINS {
            return Err(ApiError::bad_request(format!(
                "fleet is capped at {MAX_TWINS} twins ({} resident, {count} requested)",
                inner.twins
            )));
        }
        let first_id = inner.twins;
        for k in 0..count {
            // Phase stagger: spread the registration's twins across one
            // descent step so the fleet probes eight offsets at once.
            let offset = batch.v_step * ((k % SHARD_WIDTH as u64) as f64) / SHARD_WIDTH as f64;
            let v_start = v_high - offset;
            let twin = TwinState {
                id: first_id + k,
                batch: Arc::clone(&batch),
                v_next: v_start,
                rounds_done: 0,
                rounds_target: rounds,
                brownouts: 0,
                vsafe_estimate: v_start,
                last_v_final: v_start,
                done: false,
            };
            let needs_new_shard = match inner.shards.last() {
                Some(s) => lock(s).len() >= SHARD_WIDTH,
                None => true,
            };
            if needs_new_shard {
                inner.shards.push(Arc::new(Mutex::new(vec![twin])));
            } else {
                lock(inner.shards.last().expect("checked non-empty")).push(twin);
            }
        }
        inner.twins += count;
        inner.active += count;
        let resp = FleetRegisterResponse {
            schema_version: SCHEMA_VERSION,
            registered: count,
            first_id,
            fleet_size: inner.twins,
            shards: inner.shards.len() as u64,
            static_vsafe_v: static_vsafe,
            verify_verdict: verdict,
        };
        drop(inner);
        // New work: wake parked scheduler threads.
        self.work.notify_all();
        Ok(resp)
    }

    /// One twin's snapshot.
    ///
    /// # Errors
    ///
    /// `not_found` when no twin has that id.
    pub fn twin(&self, id: u64) -> Result<FleetTwinResponse, ApiError> {
        let inner = lock(&self.inner);
        if id >= inner.twins {
            return Err(ApiError::new(
                culpeo_api::ApiErrorKind::NotFound,
                format!("no twin {id}"),
            ));
        }
        // Ids are dense and shards fill in order, so the address is
        // arithmetic: shard id/8, slot id%8.
        let shard = &inner.shards[(id / SHARD_WIDTH as u64) as usize];
        let twins = lock(shard);
        Ok(twins[(id % SHARD_WIDTH as u64) as usize].snapshot())
    }

    /// The whole-fleet summary.
    #[must_use]
    pub fn summary(&self) -> FleetSummaryResponse {
        let inner = lock(&self.inner);
        FleetSummaryResponse {
            schema_version: SCHEMA_VERSION,
            twins: inner.twins,
            shards: inner.shards.len() as u64,
            rounds_done: inner.rounds_done,
            brownouts: inner.brownouts,
            events_buffered: inner.events.len() as u64,
            scheduler: if inner.active > 0 { "running" } else { "idle" }.to_string(),
        }
    }

    /// Drains the buffered round events as NDJSON (one serialised
    /// [`FleetEvent`] per line).
    #[must_use]
    pub fn drain_events_ndjson(&self) -> String {
        let events = std::mem::take(&mut lock(&self.inner).events);
        let mut out = String::new();
        for ev in events {
            out.push_str(&serde_json::to_string(&ev).unwrap_or_default());
            out.push('\n');
        }
        out
    }

    /// Wakes every parked scheduler thread (shutdown path).
    pub fn notify_shutdown(&self) {
        self.work.notify_all();
        self.published.notify_all();
    }
}

/// One scheduler thread: park while idle, then cooperate on rounds
/// until shutdown.
pub fn scheduler_loop(fleet: &FleetState, shutting: &AtomicBool) {
    loop {
        // Park until the fleet has live twins (or shutdown).
        {
            let mut inner = lock(&fleet.inner);
            loop {
                if shutting.load(Ordering::SeqCst) {
                    return;
                }
                if inner.active > 0 {
                    break;
                }
                let (guard, _) = fleet
                    .work
                    .wait_timeout(inner, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                inner = guard;
            }
        }
        run_round(fleet, shutting);
    }
}

/// Cooperates on one round: claim shards under the current generation,
/// advance each, publish if last, then wait at the round barrier.
fn run_round(fleet: &FleetState, shutting: &AtomicBool) {
    let (my_gen, shards) = {
        let plan = lock(&fleet.plan);
        (plan.gen, plan.shards.clone())
    };
    let n = shards.len();
    if n == 0 {
        // First round after registrations: install the snapshot. Racing
        // installers are harmless — the plan lock serialises them and
        // the generation only moves at publication.
        let mut plan = lock(&fleet.plan);
        if plan.gen == my_gen && plan.shards.is_empty() {
            plan.shards = lock(&fleet.inner).shards.clone();
        }
        return;
    }
    while let Some(i) = shard::claim_shard(&fleet.claim, my_gen, n) {
        advance_shard(fleet, &shards[i]);
        if shard::finish_shard(&fleet.finished, n) {
            // The publication obligation: reset the finish counter,
            // open the next generation (no claim can succeed in
            // between), install the fresh shard snapshot, release the
            // barrier.
            fleet.finished.store(0, Ordering::SeqCst);
            shard::open_round(&fleet.claim, my_gen.wrapping_add(1));
            let mut plan = lock(&fleet.plan);
            plan.gen = my_gen.wrapping_add(1);
            plan.shards = lock(&fleet.inner).shards.clone();
            drop(plan);
            fleet.published.notify_all();
        }
    }
    // Round barrier: wait until this round is published (possibly by
    // this very thread, in which case the generation already moved).
    let mut plan = lock(&fleet.plan);
    while plan.gen == my_gen {
        if shutting.load(Ordering::SeqCst) {
            return;
        }
        let (guard, _) = fleet
            .published
            .wait_timeout(plan, Duration::from_millis(50))
            .unwrap_or_else(PoisonError::into_inner);
        plan = guard;
    }
}

/// Advances every live twin of one shard by one kernel round, in a
/// single `Lanes<8>` batched call.
fn advance_shard(fleet: &FleetState, shard: &Shard) {
    let mut twins = lock(shard);
    let live: Vec<usize> = twins
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.done)
        .map(|(i, _)| i)
        .collect();
    if live.is_empty() {
        return;
    }
    let mut systems: Vec<PowerSystem> = Vec::with_capacity(live.len());
    let mut profiles: Vec<&LoadProfile> = Vec::with_capacity(live.len());
    let mut cfgs: Vec<RunConfig> = Vec::with_capacity(live.len());
    for &i in &live {
        let t = &twins[i];
        let mut sys = PowerSystem::capybara_with_bank(t.batch.capacitance, t.batch.esr);
        sys.set_buffer_voltage(Volts::new(t.v_next));
        sys.force_output_enabled();
        systems.push(sys);
        profiles.push(&t.batch.profile);
        cfgs.push(t.batch.cfg);
    }
    let outcomes = Lanes::<SHARD_WIDTH>::run(&mut systems, &profiles, &cfgs);
    drop(profiles);

    let mut events: Vec<FleetEvent> = Vec::with_capacity(live.len());
    let mut finished = 0u64;
    let mut brownouts = 0u64;
    for (&i, out) in live.iter().zip(&outcomes) {
        let t = &mut twins[i];
        let v_start = t.v_next;
        t.rounds_done += 1;
        t.last_v_final = out.v_final.get();
        let completed = out.completed();
        if completed {
            t.vsafe_estimate = t.vsafe_estimate.min(v_start);
            let next = v_start - t.batch.v_step;
            if next <= t.batch.v_off {
                // Descended to the cutoff without a brownout: the
                // estimate cannot be refined further.
                t.done = true;
            } else {
                t.v_next = next;
            }
        } else {
            // Brownout: the bracket is closed; the estimate stands at
            // the last completing start voltage.
            t.brownouts += 1;
            brownouts += 1;
            t.done = true;
        }
        if t.rounds_done >= t.rounds_target {
            t.done = true;
        }
        if t.done {
            finished += 1;
        }
        events.push(FleetEvent {
            schema_version: SCHEMA_VERSION,
            twin: t.id,
            round: t.rounds_done,
            v_start_v: v_start,
            v_final_v: t.last_v_final,
            completed,
            vsafe_estimate_v: t.vsafe_estimate,
            drift_mv: (t.vsafe_estimate - t.batch.static_vsafe) * 1000.0,
        });
    }
    let rounds = events.len() as u64;
    drop(twins);

    let mut inner = lock(&fleet.inner);
    inner.rounds_done += rounds;
    inner.brownouts += brownouts;
    inner.active = inner.active.saturating_sub(finished);
    for ev in events {
        if inner.events.len() >= MAX_EVENTS {
            inner.events.pop_front();
        }
        inner.events.push_back(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ble_csv() -> String {
        let trace = culpeo_loadgen::peripheral::BleRadio::default()
            .profile()
            .sample(culpeo_units::Hertz::new(125_000.0));
        culpeo_loadgen::io::to_csv(&trace)
    }

    fn register_req(count: u32, rounds: u32) -> FleetRegisterRequest {
        FleetRegisterRequest {
            schema_version: None,
            spec: None,
            trace_csv: ble_csv(),
            plan: None,
            count: Some(count),
            rounds: Some(rounds),
            v_step_mv: Some(40.0),
        }
    }

    #[test]
    fn register_validates_and_assigns_dense_ids() {
        let fleet = FleetState::default();
        let resp = fleet.register(&register_req(12, 4)).unwrap();
        assert_eq!((resp.registered, resp.first_id), (12, 0));
        assert_eq!((resp.fleet_size, resp.shards), (12, 2));
        assert!(resp.static_vsafe_v > 0.0);
        assert_eq!(resp.verify_verdict, "unverified");
        let again = fleet.register(&register_req(3, 4)).unwrap();
        assert_eq!((again.first_id, again.fleet_size), (12, 15));
        // 12 + 3 twins still pack into ceil(15/8) = 2 shards.
        assert_eq!(again.shards, 2);
        let twin = fleet.twin(14).unwrap();
        assert_eq!(twin.id, 14);
        assert_eq!(twin.rounds_target, 4);
        assert!(!twin.done);
        assert!(fleet.twin(15).is_err());
    }

    #[test]
    fn register_rejects_bad_parameters() {
        let fleet = FleetState::default();
        let mut req = register_req(0, 4);
        assert!(fleet.register(&req).is_err());
        req = register_req(4, 0);
        assert!(fleet.register(&req).is_err());
        req = register_req(4, 4);
        req.v_step_mv = Some(-1.0);
        assert!(fleet.register(&req).is_err());
        req = register_req(4, 4);
        req.trace_csv = "not a trace".into();
        assert!(fleet.register(&req).is_err());
        req = register_req(4, 4);
        req.schema_version = Some(99);
        assert!(fleet.register(&req).is_err());
    }

    #[test]
    fn scheduler_drives_twins_to_done_and_emits_events() {
        let fleet = Arc::new(FleetState::default());
        fleet.register(&register_req(10, 3)).unwrap();
        let shutting = Arc::new(AtomicBool::new(false));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let fleet = Arc::clone(&fleet);
                let shutting = Arc::clone(&shutting);
                std::thread::spawn(move || scheduler_loop(&fleet, &shutting))
            })
            .collect();
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let s = fleet.summary();
            if s.scheduler == "idle" && s.rounds_done > 0 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "fleet never idled");
            std::thread::sleep(Duration::from_millis(20));
        }
        shutting.store(true, Ordering::SeqCst);
        fleet.notify_shutdown();
        for t in threads {
            t.join().unwrap();
        }
        let summary = fleet.summary();
        // Every twin ran at most its 3-round budget, at least 1 round.
        assert!(summary.rounds_done >= 10 && summary.rounds_done <= 30);
        for id in 0..10 {
            let t = fleet.twin(id).unwrap();
            assert!(t.done);
            assert!(t.rounds_done >= 1 && t.rounds_done <= 3);
            assert!(t.vsafe_estimate_v > 0.0);
            // The estimate only descends from the staggered start.
            assert!(t.vsafe_estimate_v <= 2.57);
        }
        let ndjson = fleet.drain_events_ndjson();
        let lines: Vec<&str> = ndjson.lines().collect();
        assert_eq!(lines.len() as u64, summary.rounds_done);
        let first: FleetEvent = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.schema_version, SCHEMA_VERSION);
        // Draining empties the ring.
        assert!(fleet.drain_events_ndjson().is_empty());
    }
}

//! Pure request → response handlers, shared by the HTTP layer and the CLI.
//!
//! Everything here is deterministic and transport-free: a handler takes a
//! `culpeo-api` request DTO and returns the response DTO or an
//! [`ApiError`]. The daemon wraps these in HTTP; the CLI's `vsafe` verb
//! calls [`vsafe_report`] directly — which is what makes the daemon's
//! `report` field *byte-identical* to the CLI output for the same inputs.

use std::fmt::Write as _;

use culpeo::termination::{self, TerminationVerdict};
use culpeo::{baseline, pg, PowerSystemModel};
use culpeo_analyze::{AnalysisInput, Registry, TraceInput};
use culpeo_api::{
    check_schema_version, ApiError, BatchOutcome, BatchRequest, BatchResponse, LintRequest,
    LintResponse, SystemSpec, VerifyRequest, VerifyResponse, VsafeRequest, VsafeResponse,
    WcecRequest, WcecResponse, SCHEMA_VERSION,
};
use culpeo_loadgen::{io as trace_io, CurrentTrace};

/// Renders the `V_safe` report for one task — the exact text
/// `culpeo vsafe --trace` prints (it moved here from the CLI so the
/// daemon and the CLI cannot drift).
#[must_use]
pub fn vsafe_report(model: &PowerSystemModel, trace: &CurrentTrace) -> String {
    let est = pg::compute_vsafe(trace, model);
    let energy_only = baseline::energy_direct(trace, model);
    let gap = est.v_safe - energy_only;
    let range = model.operating_range();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace       : {} ({} samples @ {})",
        trace.label(),
        trace.len(),
        trace.rate()
    );
    let _ = writeln!(out, "peak / mean : {} / {}", trace.peak(), trace.mean());
    if let Some(w) = trace.dominant_pulse_width() {
        let _ = writeln!(
            out,
            "dominant pulse: {} → ESR operating point {}",
            w,
            model.esr_at(w.frequency())
        );
    }
    let _ = writeln!(out, "----");
    let _ = writeln!(out, "V_safe (Culpeo-PG) : {}", est.v_safe);
    let _ = writeln!(out, "  worst ESR drop   : {}", est.v_delta);
    let _ = writeln!(out, "  buffer energy    : {}", est.buffer_energy);
    let _ = writeln!(out, "V_safe (energy-only): {}", energy_only);
    let _ = writeln!(
        out,
        "ESR-blind shortfall : {} ({:.1} % of the operating range)",
        gap,
        gap.get() / range.get() * 100.0
    );
    let verdict = termination::check_task(
        &culpeo_loadgen::LoadProfile::constant("whole-trace", trace.peak(), trace.duration()),
        model,
    );
    let _ = match verdict.verdict {
        TerminationVerdict::Terminates { headroom } => {
            writeln!(out, "termination: OK (headroom {} below V_high)", headroom)
        }
        TerminationVerdict::Marginal { headroom } => writeln!(
            out,
            "termination: MARGINAL (only {} below V_high)",
            headroom
        ),
        TerminationVerdict::NonTerminating { deficit } => writeln!(
            out,
            "termination: NON-TERMINATING even from a full buffer (deficit {})",
            deficit
        ),
    };
    out
}

/// Resolves a request's optional spec into a model (absent = Capybara).
pub(crate) fn resolve_model(spec: &Option<SystemSpec>) -> Result<PowerSystemModel, ApiError> {
    spec.clone()
        .unwrap_or_else(SystemSpec::capybara)
        .into_model()
        .map_err(ApiError::from)
}

/// Answers a [`VsafeRequest`].
///
/// # Errors
///
/// `unsupported_version`, `spec`, or `trace` [`ApiError`]s.
pub fn vsafe(req: &VsafeRequest) -> Result<VsafeResponse, ApiError> {
    check_schema_version(req.schema_version)?;
    let model = resolve_model(&req.spec)?;
    let trace = trace_io::from_csv(&req.trace_csv)
        .map_err(|e| ApiError::trace(format!("bad trace_csv: {e}")))?;
    let est = pg::compute_vsafe(&trace, &model);
    let energy_only = baseline::energy_direct(&trace, &model);
    Ok(VsafeResponse {
        schema_version: SCHEMA_VERSION,
        label: trace.label().to_string(),
        v_safe_v: est.v_safe.get(),
        v_delta_v: est.v_delta.get(),
        buffer_energy_j: est.buffer_energy.get(),
        energy_only_v: energy_only.get(),
        report: vsafe_report(&model, &trace),
    })
}

/// Answers a [`LintRequest`] by running the C0xx battery.
///
/// # Errors
///
/// `unsupported_version` or `trace` [`ApiError`]s. A spec that parses
/// but fails validation is not an error here — reporting that *is* the
/// battery's job.
pub fn lint(req: &LintRequest) -> Result<LintResponse, ApiError> {
    check_schema_version(req.schema_version)?;
    let mut traces = Vec::new();
    for t in &req.traces {
        let raw = trace_io::parse_raw(&t.csv)
            .map_err(|e| ApiError::trace(format!("bad trace `{}`: {e}", t.name)))?;
        traces.push(TraceInput::from_raw_file(t.name.clone(), &raw));
    }
    let input = AnalysisInput {
        spec: &req.spec,
        spec_locus: "spec",
        traces: &traces,
        plan: req.plan.as_ref(),
        plan_locus: "plan",
    };
    let report = Registry::default_battery().run(&input);
    let report_doc = serde_json::parse_value_str(&report.render_json())
        .map_err(|e| ApiError::new(culpeo_api::ApiErrorKind::Internal, e))?;
    let failing = report.has_errors() || (req.deny_warnings && report.warning_count() > 0);
    Ok(LintResponse {
        schema_version: SCHEMA_VERSION,
        errors: report.error_count() as u64,
        warnings: report.warning_count() as u64,
        exit_code: u32::from(failing),
        report: report_doc,
    })
}

/// Answers a [`VerifyRequest`] by running the `culpeo-verify` abstract
/// interpreter over the whole schedule.
///
/// # Errors
///
/// `unsupported_version` [`ApiError`]s only. A spec or plan the verifier
/// cannot interpret is not a transport error — it comes back as a
/// C046-carrying `"unknown"` verdict, same as the CLI.
pub fn verify(req: &VerifyRequest) -> Result<VerifyResponse, ApiError> {
    check_schema_version(req.schema_version)?;
    let outcome = culpeo_verify::verify_plan(&req.spec, &req.plan);
    Ok(culpeo_verify::to_response(&outcome))
}

/// Answers a [`WcecRequest`] by running the `culpeo-wcec` static
/// worst-case energy analyzer over every submitted task graph.
///
/// # Errors
///
/// `unsupported_version`, `spec` (embedded spec fails validation), or
/// `bad_request` (a task graph fails structural validation — dangling
/// node, inverted loop bound, non-positive op cost) [`ApiError`]s. An
/// *analysis* failure is not an error: an uncertifiable task comes back
/// as an `"unknown"` row naming the blocking node, same as the CLI.
pub fn wcec(req: &WcecRequest) -> Result<WcecResponse, ApiError> {
    check_schema_version(req.schema_version)?;
    let model = resolve_model(&req.spec)?;
    culpeo_wcec::run_graphs(Some(&model), &req.tasks).map_err(ApiError::bad_request)
}

/// How many batch items one worker claims at a time; see the call site.
const BATCH_CHUNK: usize = 8;

/// Answers a [`BatchRequest`], fanning the items out over `sweep`.
///
/// `vsafe_fn` is how a single `vsafe` item is answered — the daemon
/// passes its memoizing wrapper, everyone else passes [`vsafe`] — so the
/// batch path and the single-request path share one cache.
///
/// # Errors
///
/// `unsupported_version` or `bad_request` (malformed item) errors fail
/// the whole batch; *per-item* analysis errors come back inside the
/// matching [`BatchOutcome`] instead.
pub fn batch<F>(
    req: &BatchRequest,
    sweep: &culpeo_exec::Sweep,
    vsafe_fn: F,
) -> Result<BatchResponse, ApiError>
where
    F: Fn(&VsafeRequest) -> Result<VsafeResponse, ApiError> + Sync,
{
    check_schema_version(req.schema_version)?;
    for (i, item) in req.items.iter().enumerate() {
        item.validate(i)?;
    }
    // Chunked claiming: batch items are cheap (analytic estimates and
    // lints, no stepping), so workers claim runs of 8 instead of paying
    // the cursor per item. Results stay in input order either way.
    let results = sweep.map_chunks(&req.items, BATCH_CHUNK, |_, run| {
        run.iter()
            .map(|item| match (&item.vsafe, &item.lint) {
                (Some(v), None) => match vsafe_fn(v) {
                    Ok(resp) => BatchOutcome {
                        vsafe: Some(resp),
                        lint: None,
                        error: None,
                    },
                    Err(e) => outcome_err(e),
                },
                (None, Some(l)) => match lint(l) {
                    Ok(resp) => BatchOutcome {
                        vsafe: None,
                        lint: Some(resp),
                        error: None,
                    },
                    Err(e) => outcome_err(e),
                },
                // validate() above rules this out.
                _ => outcome_err(ApiError::bad_request("unreachable batch item shape")),
            })
            .collect()
    });
    Ok(BatchResponse {
        schema_version: SCHEMA_VERSION,
        results,
    })
}

fn outcome_err(e: ApiError) -> BatchOutcome {
    BatchOutcome {
        vsafe: None,
        lint: None,
        error: Some(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_api::{ApiErrorKind, BatchItem, NamedTrace};
    use culpeo_exec::Sweep;

    fn ble_csv() -> String {
        let trace = culpeo_loadgen::peripheral::BleRadio::default()
            .profile()
            .sample(culpeo_units::Hertz::new(125_000.0));
        culpeo_loadgen::io::to_csv(&trace)
    }

    fn vsafe_req() -> VsafeRequest {
        VsafeRequest {
            schema_version: None,
            spec: None,
            trace_csv: ble_csv(),
        }
    }

    #[test]
    fn vsafe_answer_matches_direct_computation() {
        let resp = vsafe(&vsafe_req()).unwrap();
        let model = SystemSpec::capybara().into_model().unwrap();
        let trace = trace_io::from_csv(&ble_csv()).unwrap();
        let est = pg::compute_vsafe(&trace, &model);
        assert_eq!(resp.v_safe_v, est.v_safe.get());
        assert_eq!(resp.schema_version, SCHEMA_VERSION);
        assert_eq!(resp.report, vsafe_report(&model, &trace));
        assert!(resp.report.contains("V_safe (Culpeo-PG)"));
    }

    #[test]
    fn vsafe_rejects_bad_trace_and_version() {
        let mut req = vsafe_req();
        req.trace_csv = "not,a,trace".into();
        assert_eq!(vsafe(&req).unwrap_err().kind, ApiErrorKind::Trace);
        let mut req = vsafe_req();
        req.schema_version = Some(42);
        assert_eq!(
            vsafe(&req).unwrap_err().kind,
            ApiErrorKind::UnsupportedVersion
        );
    }

    #[test]
    fn vsafe_rejects_invalid_spec() {
        let mut req = vsafe_req();
        let mut spec = SystemSpec::capybara();
        spec.capacitance_mf = -1.0;
        req.spec = Some(spec);
        assert_eq!(vsafe(&req).unwrap_err().kind, ApiErrorKind::Spec);
    }

    #[test]
    fn lint_clean_spec_is_exit_zero() {
        let resp = lint(&LintRequest {
            schema_version: None,
            spec: SystemSpec::capybara(),
            traces: Vec::new(),
            plan: None,
            deny_warnings: false,
        })
        .unwrap();
        assert_eq!((resp.errors, resp.exit_code), (0, 0));
    }

    #[test]
    fn lint_sees_nan_trace_as_c010() {
        let resp = lint(&LintRequest {
            schema_version: None,
            spec: SystemSpec::capybara(),
            traces: vec![NamedTrace {
                name: "corrupt.csv".into(),
                csv: "# dt_us: 8\n0.0,0.01\n0.000008,NaN\n".into(),
            }],
            plan: None,
            deny_warnings: false,
        })
        .unwrap();
        assert_eq!(resp.exit_code, 1);
        assert!(serde_json::to_string(&resp.report)
            .unwrap()
            .contains("C010"));
    }

    #[test]
    fn deny_warnings_promotes_a_warning_only_report_to_exit_one() {
        // Declare `sense`'s V_safe below its model-derived Theorem 1
        // floor (≈ 2.007 V): the verifier still proves the plan but
        // emits a C045 warning, which `deny_warnings` turns fatal.
        let mut plan = culpeo_api::PlanSpec::verified_example();
        plan.launches[0].v_safe = Some(1.9);
        let mut req = LintRequest {
            schema_version: None,
            spec: SystemSpec::capybara(),
            traces: Vec::new(),
            plan: Some(plan),
            deny_warnings: false,
        };
        let lax = lint(&req).unwrap();
        assert_eq!((lax.errors, lax.exit_code), (0, 0));
        assert!(lax.warnings > 0);
        req.deny_warnings = true;
        let strict = lint(&req).unwrap();
        assert_eq!((strict.errors, strict.exit_code), (0, 1));
        assert_eq!(strict.warnings, lax.warnings);
    }

    #[test]
    fn verify_answers_proved_for_the_reference_schedule() {
        let resp = verify(&VerifyRequest {
            schema_version: None,
            spec: SystemSpec::capybara(),
            plan: culpeo_api::PlanSpec::verified_example(),
        })
        .unwrap();
        assert_eq!((resp.verdict.as_str(), resp.exit_code), ("proved", 0));
        assert_eq!(resp.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn verify_reports_unverifiable_input_as_a_verdict_not_an_error() {
        let mut plan = culpeo_api::PlanSpec::verified_example();
        plan.launches[0].energy_mj = f64::NAN;
        let resp = verify(&VerifyRequest {
            schema_version: None,
            spec: SystemSpec::capybara(),
            plan,
        })
        .unwrap();
        assert_eq!(resp.verdict, "unknown");
        assert!(resp.findings.iter().any(|f| f.code == "C046"));
    }

    #[test]
    fn verify_rejects_a_version_mismatch() {
        let err = verify(&VerifyRequest {
            schema_version: Some(99),
            spec: SystemSpec::capybara(),
            plan: culpeo_api::PlanSpec::verified_example(),
        })
        .unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::UnsupportedVersion);
    }

    #[test]
    fn wcec_certifies_table3_and_rejects_a_version_mismatch() {
        let tasks: Vec<culpeo_api::TaskGraphDto> =
            culpeo_wcec::workloads::table3(culpeo_units::Volts::new(2.55))
                .iter()
                .map(culpeo_wcec::to_dto)
                .collect();
        let resp = wcec(&WcecRequest {
            schema_version: None,
            spec: None,
            tasks: tasks.clone(),
        })
        .unwrap();
        assert_eq!((resp.certified, resp.unknown, resp.exit_code), (3, 0, 0));
        assert_eq!(resp.schema_version, SCHEMA_VERSION);
        // Every certified row carries the spec-derived worst-case dip.
        assert!(resp.tasks.iter().all(|row| row
            .certificate
            .as_ref()
            .is_some_and(|c| c.v_delta_v.is_some_and(|v| v > 0.0))));
        let err = wcec(&WcecRequest {
            schema_version: Some(99),
            spec: None,
            tasks,
        })
        .unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::UnsupportedVersion);
    }

    #[test]
    fn wcec_reports_structural_failures_as_bad_request() {
        // A dangling child is a malformed graph, not an analysis verdict.
        let dto = culpeo_api::TaskGraphDto {
            name: "broken".into(),
            nodes: vec![culpeo_api::NodeDto {
                label: "seq".into(),
                kind: "seq".into(),
                ops: None,
                children: Some(vec![7]),
                bound_lo: None,
                bound_hi: None,
            }],
            root: 0,
        };
        let err = wcec(&WcecRequest {
            schema_version: None,
            spec: None,
            tasks: vec![dto],
        })
        .unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::BadRequest);
    }

    #[test]
    fn batch_answers_in_input_order_with_per_item_errors() {
        let bad = VsafeRequest {
            schema_version: None,
            spec: None,
            trace_csv: "garbage".into(),
        };
        let req = BatchRequest {
            schema_version: None,
            items: vec![
                BatchItem {
                    vsafe: Some(vsafe_req()),
                    lint: None,
                },
                BatchItem {
                    vsafe: Some(bad),
                    lint: None,
                },
                BatchItem {
                    vsafe: None,
                    lint: Some(LintRequest {
                        schema_version: None,
                        spec: SystemSpec::capybara(),
                        traces: Vec::new(),
                        plan: None,
                        deny_warnings: false,
                    }),
                },
            ],
        };
        let resp = batch(&req, &Sweep::with_threads(3), vsafe).unwrap();
        assert_eq!(resp.results.len(), 3);
        assert!(resp.results[0].vsafe.is_some());
        assert_eq!(
            resp.results[1].error.as_ref().unwrap().kind,
            ApiErrorKind::Trace
        );
        assert!(resp.results[2].lint.is_some());
    }

    #[test]
    fn batch_rejects_malformed_items_wholesale() {
        let req = BatchRequest {
            schema_version: None,
            items: vec![BatchItem {
                vsafe: None,
                lint: None,
            }],
        };
        let err = batch(&req, &Sweep::serial(), vsafe).unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::BadRequest);
    }
}

//! `culpeo-served`: the batch analysis daemon behind `culpeo serve`.
//!
//! A long-running, std-only HTTP/1.1 service that answers the same
//! questions as the CLI — `V_safe` estimation, the C0xx lint battery —
//! over a unified, versioned request/response API defined in
//! [`culpeo_api`]:
//!
//! | endpoint            | verb | handler                        |
//! |---------------------|------|--------------------------------|
//! | `/v1/vsafe`         | POST | [`handle::vsafe`] (memoized)   |
//! | `/v1/lint`          | POST | [`handle::lint`]               |
//! | `/v1/batch`         | POST | [`handle::batch`] over a sweep |
//! | `/v1/observe`       | POST | [`observe::ObserveHub::observe`] (durable ingest) |
//! | `/v1/observe/:id`   | GET  | live Culpeo-R estimate + rolling verdict |
//! | `/v1/fleet`         | POST | [`fleet::FleetState::register`]|
//! | `/v1/fleet`         | GET  | whole-fleet summary            |
//! | `/v1/fleet/:id`     | GET  | one twin's drift snapshot      |
//! | `/v1/fleet/events`  | GET  | NDJSON round-event drain       |
//! | `/v1/health`        | GET  | liveness + uptime              |
//! | `/v1/livez`         | GET  | reactor liveness (inline)      |
//! | `/v1/readyz`        | GET  | store/queue readiness (inline) |
//! | `/v1/metrics`       | GET  | per-endpoint + cache counters  |
//! | `/v1/shutdown`      | POST | graceful drain                 |
//!
//! Since schema 2 the daemon speaks HTTP/1.1 keep-alive + pipelining
//! from a nonblocking readiness reactor ([`poll`] + the private
//! `server` module): one
//! reactor thread owns every socket, compute workers answer requests
//! off a bounded queue, and finished responses flow back through the
//! completion protocol in [`protocol`]. Every `/v1` JSON response is
//! wrapped in the uniform schema-2 envelope (`schema_version`,
//! `request_id`, `server_timing`, `data`).
//!
//! The layering is strict: [`handle`] is pure DTO → DTO logic shared with
//! the CLI (that is what keeps daemon and CLI output byte-identical),
//! [`http`] is the minimal wire codec, [`cache`], [`metrics`] and
//! [`fleet`] are self-contained state, and `server` glues them
//! together. No crate outside the repo's vendored stubs is involved;
//! the only `unsafe` in the crate is the epoll FFI shim in [`poll`].

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fleet;
pub mod handle;
pub mod http;
pub mod metrics;
pub mod observe;
pub mod poll;
pub mod protocol;
mod server;

pub use observe::{ObserveHub, StorePhase};
pub use server::{LogMode, ServeSummary, Server, ServerConfig, ShutdownHandle};

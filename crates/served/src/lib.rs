//! `culpeo-served`: the batch analysis daemon behind `culpeo serve`.
//!
//! A long-running, std-only HTTP/1.1 service that answers the same
//! questions as the CLI — `V_safe` estimation, the C0xx lint battery —
//! over a unified, versioned request/response API defined in
//! [`culpeo_api`]:
//!
//! | endpoint            | verb | handler                        |
//! |---------------------|------|--------------------------------|
//! | `/v1/vsafe`         | POST | [`handle::vsafe`] (memoized)   |
//! | `/v1/lint`          | POST | [`handle::lint`]               |
//! | `/v1/batch`         | POST | [`handle::batch`] over a sweep |
//! | `/v1/health`        | GET  | liveness + uptime              |
//! | `/v1/metrics`       | GET  | per-endpoint + cache counters  |
//! | `/v1/shutdown`      | POST | graceful drain                 |
//!
//! The layering is strict: [`handle`] is pure DTO → DTO logic shared with
//! the CLI (that is what keeps daemon and CLI output byte-identical),
//! [`http`] is the minimal wire codec, [`cache`] and [`metrics`] are
//! self-contained state, and [`server`] glues them behind a bounded
//! accept queue and a worker pool. No crate outside the repo's vendored
//! stubs is involved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod handle;
pub mod http;
pub mod metrics;
pub mod protocol;
mod server;

pub use server::{ServeSummary, Server, ServerConfig, ShutdownHandle};

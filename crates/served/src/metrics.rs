//! Per-endpoint request counters, lock-free on the hot path.
//!
//! Every worker bumps plain `AtomicU64`s after answering; `/v1/metrics`
//! reads them relaxed into the [`culpeo_api::MetricsResponse`] DTO.
//! Counters may be mutually torn by a hair under load — each is
//! individually consistent, which is all an operations dashboard needs.

use std::sync::atomic::{AtomicU64, Ordering};

use culpeo_api::{EndpointMetrics, ShedMetrics};

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    total_latency_us: AtomicU64,
    max_latency_us: AtomicU64,
}

impl EndpointCounters {
    /// Records one answered request.
    pub fn record(&self, latency_us: u64, was_error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if was_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_latency_us
            .fetch_add(latency_us, Ordering::Relaxed);
        self.max_latency_us.fetch_max(latency_us, Ordering::Relaxed);
    }

    fn snapshot(&self, path: &str) -> EndpointMetrics {
        EndpointMetrics {
            path: path.to_string(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            total_latency_us: self.total_latency_us.load(Ordering::Relaxed),
            max_latency_us: self.max_latency_us.load(Ordering::Relaxed),
        }
    }
}

/// Load-shed and self-healing counters: each one is a way the daemon
/// refused or recovered from work instead of letting it wedge a worker.
#[derive(Debug, Default)]
pub struct ShedCounters {
    /// Read-timeout closes (slow or stalled request writers → 408).
    pub read_timeouts: AtomicU64,
    /// Write-timeout closes (slow response readers).
    pub write_timeouts: AtomicU64,
    /// Connections cut at the per-connection wall-clock deadline.
    pub deadline_closes: AtomicU64,
    /// 413s for oversized heads or bodies.
    pub oversize_rejects: AtomicU64,
    /// Handler panics caught and answered as 500.
    pub handler_panics: AtomicU64,
    /// Poisoned-lock recoveries (cache cleared, worker carried on).
    pub lock_recoveries: AtomicU64,
}

impl ShedCounters {
    /// Reads the counters into the wire DTO.
    #[must_use]
    pub fn snapshot(&self) -> ShedMetrics {
        ShedMetrics {
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            write_timeouts: self.write_timeouts.load(Ordering::Relaxed),
            deadline_closes: self.deadline_closes.load(Ordering::Relaxed),
            oversize_rejects: self.oversize_rejects.load(Ordering::Relaxed),
            handler_panics: self.handler_panics.load(Ordering::Relaxed),
            lock_recoveries: self.lock_recoveries.load(Ordering::Relaxed),
        }
    }

    /// Bumps one counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The daemon's full counter set, one row per routable endpoint plus a
/// synthetic row for accept-queue rejections.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `POST /v1/vsafe`.
    pub vsafe: EndpointCounters,
    /// `POST /v1/lint`.
    pub lint: EndpointCounters,
    /// `POST /v1/batch`.
    pub batch: EndpointCounters,
    /// `POST /v1/verify`.
    pub verify: EndpointCounters,
    /// `POST /v1/wcec` (static worst-case energy certification).
    pub wcec: EndpointCounters,
    /// `GET /v1/health`.
    pub health: EndpointCounters,
    /// `GET /v1/metrics`.
    pub metrics: EndpointCounters,
    /// `POST /v1/shutdown`.
    pub shutdown: EndpointCounters,
    /// `POST /v1/fleet` (and `GET /v1/fleet` summaries).
    pub fleet: EndpointCounters,
    /// `GET /v1/fleet/:id`.
    pub fleet_twin: EndpointCounters,
    /// `GET /v1/fleet/events` (NDJSON).
    pub fleet_events: EndpointCounters,
    /// `POST /v1/observe` (durable telemetry ingest).
    pub observe: EndpointCounters,
    /// `GET /v1/observe/:device` (live estimate + rolling verdict).
    pub observe_device: EndpointCounters,
    /// `GET /v1/livez` (reactor liveness, answered inline).
    pub livez: EndpointCounters,
    /// `GET /v1/readyz` (readiness, answered inline).
    pub readyz: EndpointCounters,
    /// Anything else: 404/405/parse failures.
    pub other: EndpointCounters,
    /// 503s written by the acceptor because the bounded queue was full.
    pub accept_rejected: EndpointCounters,
    /// Load-shed and recovery counters.
    pub shed: ShedCounters,
}

impl Metrics {
    /// One row per endpoint, in a fixed order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<EndpointMetrics> {
        vec![
            self.vsafe.snapshot("/v1/vsafe"),
            self.lint.snapshot("/v1/lint"),
            self.batch.snapshot("/v1/batch"),
            self.verify.snapshot("/v1/verify"),
            self.wcec.snapshot("/v1/wcec"),
            self.health.snapshot("/v1/health"),
            self.metrics.snapshot("/v1/metrics"),
            self.shutdown.snapshot("/v1/shutdown"),
            self.fleet.snapshot("/v1/fleet"),
            self.fleet_twin.snapshot("/v1/fleet/:id"),
            self.fleet_events.snapshot("/v1/fleet/events"),
            self.observe.snapshot("/v1/observe"),
            self.observe_device.snapshot("/v1/observe/:device"),
            self.livez.snapshot("/v1/livez"),
            self.readyz.snapshot("/v1/readyz"),
            self.other.snapshot("(other)"),
            self.accept_rejected.snapshot("(accept-queue)"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_tracks_max() {
        let m = Metrics::default();
        m.vsafe.record(100, false);
        m.vsafe.record(300, true);
        m.vsafe.record(200, false);
        let rows = m.snapshot();
        let v = rows.iter().find(|r| r.path == "/v1/vsafe").unwrap();
        assert_eq!(v.requests, 3);
        assert_eq!(v.errors, 1);
        assert_eq!(v.total_latency_us, 600);
        assert_eq!(v.max_latency_us, 300);
    }

    #[test]
    fn snapshot_has_one_row_per_endpoint() {
        let rows = Metrics::default().snapshot();
        assert_eq!(rows.len(), 17);
        assert!(rows.iter().all(|r| r.requests == 0));
    }

    #[test]
    fn shed_counters_snapshot_into_the_dto() {
        let m = Metrics::default();
        ShedCounters::bump(&m.shed.write_timeouts);
        ShedCounters::bump(&m.shed.lock_recoveries);
        ShedCounters::bump(&m.shed.lock_recoveries);
        let s = m.shed.snapshot();
        assert_eq!(s.write_timeouts, 1);
        assert_eq!(s.lock_recoveries, 2);
        assert_eq!(s.read_timeouts, 0);
    }
}

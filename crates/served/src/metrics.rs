//! Per-endpoint request counters, lock-free on the hot path.
//!
//! Every worker bumps plain `AtomicU64`s after answering; `/v1/metrics`
//! reads them relaxed into the [`culpeo_api::MetricsResponse`] DTO.
//! Counters may be mutually torn by a hair under load — each is
//! individually consistent, which is all an operations dashboard needs.

use std::sync::atomic::{AtomicU64, Ordering};

use culpeo_api::EndpointMetrics;

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    total_latency_us: AtomicU64,
    max_latency_us: AtomicU64,
}

impl EndpointCounters {
    /// Records one answered request.
    pub fn record(&self, latency_us: u64, was_error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if was_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_latency_us
            .fetch_add(latency_us, Ordering::Relaxed);
        self.max_latency_us.fetch_max(latency_us, Ordering::Relaxed);
    }

    fn snapshot(&self, path: &str) -> EndpointMetrics {
        EndpointMetrics {
            path: path.to_string(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            total_latency_us: self.total_latency_us.load(Ordering::Relaxed),
            max_latency_us: self.max_latency_us.load(Ordering::Relaxed),
        }
    }
}

/// The daemon's full counter set, one row per routable endpoint plus a
/// synthetic row for accept-queue rejections.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `POST /v1/vsafe`.
    pub vsafe: EndpointCounters,
    /// `POST /v1/lint`.
    pub lint: EndpointCounters,
    /// `POST /v1/batch`.
    pub batch: EndpointCounters,
    /// `GET /v1/health`.
    pub health: EndpointCounters,
    /// `GET /v1/metrics`.
    pub metrics: EndpointCounters,
    /// `POST /v1/shutdown`.
    pub shutdown: EndpointCounters,
    /// Anything else: 404/405/parse failures.
    pub other: EndpointCounters,
    /// 503s written by the acceptor because the bounded queue was full.
    pub accept_rejected: EndpointCounters,
}

impl Metrics {
    /// One row per endpoint, in a fixed order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<EndpointMetrics> {
        vec![
            self.vsafe.snapshot("/v1/vsafe"),
            self.lint.snapshot("/v1/lint"),
            self.batch.snapshot("/v1/batch"),
            self.health.snapshot("/v1/health"),
            self.metrics.snapshot("/v1/metrics"),
            self.shutdown.snapshot("/v1/shutdown"),
            self.other.snapshot("(other)"),
            self.accept_rejected.snapshot("(accept-queue)"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_tracks_max() {
        let m = Metrics::default();
        m.vsafe.record(100, false);
        m.vsafe.record(300, true);
        m.vsafe.record(200, false);
        let rows = m.snapshot();
        let v = rows.iter().find(|r| r.path == "/v1/vsafe").unwrap();
        assert_eq!(v.requests, 3);
        assert_eq!(v.errors, 1);
        assert_eq!(v.total_latency_us, 600);
        assert_eq!(v.max_latency_us, 300);
    }

    #[test]
    fn snapshot_has_one_row_per_endpoint() {
        let rows = Metrics::default().snapshot();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.requests == 0));
    }
}

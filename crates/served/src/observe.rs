//! The telemetry ingest hub: durable observation log + online Culpeo-R.
//!
//! [`ObserveHub`] owns the crash-safe [`culpeo_store::Store`] behind
//! `POST /v1/observe` and folds every acked `(V_start, V_min, V_final)`
//! triple into a per-device Culpeo-R estimate (§IV-D) the moment it is
//! durable. `GET /v1/observe/:device` serves the live estimate together
//! with `culpeo-verify`'s rolling harvest-credit envelope — "safe for
//! the next *k* hyperperiods" recomputed from the latest estimate.
//!
//! The fold is Culpeo-R's **max-update**: each new observation's
//! estimate joins the running one component-wise upward (`V_safe`,
//! `V_δ`, buffer energy), so the served requirement only ever moves in
//! the pessimistic direction a fresh worst-case observation justifies —
//! the same monotonicity [`culpeo_verify::rolling`] relies on. On
//! recovery the fold replays the store's ring-buffer index, so a
//! `kill -9` loses no acked estimate input.
//!
//! [`StorePhase`] is the daemon-visible lifecycle: `Disabled` (no
//! `--store`), `Recovering` (startup scan running; `/v1/readyz` answers
//! 503), `Ready`, or `Failed` (recovery error preserved for operators).

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use culpeo::runtime::{compute_vsafe, TaskObservation};
use culpeo::{PowerSystemModel, VsafeEstimate};
use culpeo_api::{
    ApiError, ApiErrorKind, ObservationDto, ObserveAckDto, ObserveDeviceResponse, ObserveRequest,
    ObserveResponse, RollingVerdictDto, SCHEMA_VERSION,
};
use culpeo_store::{Record, RecoveryReport, Store, StoreConfig, StoreError};
use culpeo_units::Volts;
use culpeo_verify::{rolling_envelope, RollingConfig};

/// Where the daemon's durable telemetry layer currently stands.
pub enum StorePhase {
    /// `culpeo serve` was started without `--store`; `/v1/observe`
    /// answers 404 and readiness reports the store as `disabled`.
    Disabled,
    /// The startup recovery scan is still running; ingest and readiness
    /// answer 503 until it finishes.
    Recovering,
    /// The store recovered and ingest is live.
    Ready(Arc<ObserveHub>),
    /// Recovery failed; the message is deterministic enough to serve.
    Failed(String),
}

/// One device's live Culpeo-R state: the max-update estimate plus the
/// last observed post-rebound voltage (the rolling check's `v_now`).
#[derive(Debug, Clone, Copy)]
struct DeviceState {
    est: VsafeEstimate,
    v_now: f64,
}

/// The durable ingest hub shared by the observe endpoints.
pub struct ObserveHub {
    store: Store,
    model: PowerSystemModel,
    rolling: RollingConfig,
    estimates: Mutex<HashMap<u64, DeviceState>>,
}

impl ObserveHub {
    /// Opens (and recovers) the store under `dir`, then rebuilds every
    /// device's Culpeo-R estimate from the recovered ring-buffer index.
    ///
    /// # Errors
    ///
    /// Propagates the store's recovery error (I/O only; torn tails and
    /// CRC corruption are repaired, not fatal).
    pub fn open(dir: &Path) -> Result<(Self, RecoveryReport), StoreError> {
        let (store, report) = Store::open(dir, StoreConfig::default())?;
        let hub = Self {
            store,
            model: PowerSystemModel::capybara(),
            rolling: RollingConfig::default(),
            estimates: Mutex::new(HashMap::new()),
        };
        {
            let mut map = hub.lock_estimates();
            for device in hub.store.devices() {
                if let Some(snap) = hub.store.device(device) {
                    for rec in &snap.recent {
                        fold_record(&mut map, &hub.model, rec);
                    }
                }
            }
        }
        Ok((hub, report))
    }

    /// Ingests one observe request: appends every triple durably (the
    /// ack below is only built from records the store has fsynced),
    /// then folds them into the per-device estimates. Returns the
    /// response plus the microseconds spent inside the durability path
    /// (the envelope's `fsync_us`).
    ///
    /// # Errors
    ///
    /// `bad_request` on shape/estimator-precondition violations, 503
    /// `busy` (with `Retry-After`) when the store sheds load, 500 on
    /// I/O failure.
    pub fn observe(&self, req: &ObserveRequest) -> Result<(ObserveResponse, u64), ApiError> {
        culpeo_api::check_schema_version(req.schema_version)?;
        req.validate()?;
        let observations = req.observations();

        let t0 = Instant::now();
        let mut acked = Vec::with_capacity(observations.len());
        let mut fsync_rounds = 0u64;
        // Consecutive same-device triples share one append (and thus
        // one group-commit ticket); a mixed batch degrades gracefully
        // to per-run appends.
        let mut i = 0;
        while i < observations.len() {
            let device = observations[i].device;
            let mut run: Vec<(f64, f64, f64)> = Vec::new();
            while i < observations.len() && observations[i].device == device {
                let o = observations[i];
                run.push((o.v_start_v, o.v_min_v, o.v_final_v));
                i += 1;
            }
            let acks = self.store.append_batch(device, &run).map_err(store_error)?;
            if let Some(last) = acks.last() {
                fsync_rounds += last.fsync_rounds as u64;
            }
            acked.extend(acks);
        }
        let fsync_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);

        {
            let mut map = self.lock_estimates();
            for (ack, dto) in acked.iter().zip(observations.iter()) {
                fold_dto(&mut map, &self.model, ack.device, dto);
            }
        }

        Ok((
            ObserveResponse {
                schema_version: SCHEMA_VERSION,
                acked: acked
                    .iter()
                    .map(|a| ObserveAckDto {
                        device: a.device,
                        seq: a.seq,
                    })
                    .collect(),
                fsync_rounds,
                pending: self.store.pending(),
            },
            fsync_us,
        ))
    }

    /// Serves one device's live estimate plus the rolling "safe for the
    /// next *k* hyperperiods" verdict.
    ///
    /// # Errors
    ///
    /// 404 `not_found` when the device has never reported.
    pub fn device(&self, device: u64) -> Result<ObserveDeviceResponse, ApiError> {
        let snap = self.store.device(device).ok_or_else(|| {
            ApiError::new(
                ApiErrorKind::NotFound,
                format!("device {device} has no observations"),
            )
        })?;
        let state = self.lock_estimates().get(&device).copied().ok_or_else(|| {
            ApiError::new(
                ApiErrorKind::NotFound,
                format!("device {device} has no estimate"),
            )
        })?;
        let verdict = rolling_envelope(&self.model, &state.est, state.v_now, &self.rolling);
        Ok(ObserveDeviceResponse {
            schema_version: SCHEMA_VERSION,
            device,
            last_seq: snap.last_seq,
            records: snap.total,
            window: snap.recent.len() as u64,
            v_safe_v: state.est.v_safe.get(),
            v_delta_v: state.est.v_delta.get(),
            buffer_energy_j: state.est.buffer_energy.get(),
            rolling: RollingVerdictDto {
                safe_hyperperiods: verdict.safe_hyperperiods,
                horizon: verdict.horizon,
                period_s: self.rolling.period_s,
                proven_periodic: verdict.proven_periodic,
                verdict: verdict.label().to_string(),
            },
        })
    }

    /// Unsynced records currently awaiting a group-commit round.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.store.pending()
    }

    /// Poison-recovering estimates lock: the map is rebuildable from
    /// the store, so a panicked folder costs (at worst) pessimism lag,
    /// never a dead worker.
    fn lock_estimates(&self) -> MutexGuard<'_, HashMap<u64, DeviceState>> {
        match self.estimates.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.estimates.clear_poison();
                poisoned.into_inner()
            }
        }
    }
}

/// Maps a store failure onto the wire error taxonomy. Overload is the
/// explicit degradation path: 503 + `Retry-After`, acked data untouched.
fn store_error(e: StoreError) -> ApiError {
    match e {
        StoreError::Overloaded { pending } => ApiError::new(
            ApiErrorKind::Busy,
            format!(
                "ingest fsync backlog is full ({pending} unsynced records); retry with backoff"
            ),
        ),
        StoreError::NotFinite => ApiError::bad_request("observation voltages must be finite"),
        StoreError::Io(err) => ApiError::new(
            ApiErrorKind::Internal,
            format!("telemetry store I/O failure: {}", err.kind()),
        ),
    }
}

fn fold_record(map: &mut HashMap<u64, DeviceState>, model: &PowerSystemModel, rec: &Record) {
    fold(map, model, rec.device, rec.v_start, rec.v_min, rec.v_final);
}

fn fold_dto(
    map: &mut HashMap<u64, DeviceState>,
    model: &PowerSystemModel,
    device: u64,
    dto: &ObservationDto,
) {
    fold(
        map,
        model,
        device,
        dto.v_start_v,
        dto.v_min_v,
        dto.v_final_v,
    );
}

/// The §IV-D online update: estimate the triple, then max-join it into
/// the device's running estimate.
fn fold(
    map: &mut HashMap<u64, DeviceState>,
    model: &PowerSystemModel,
    device: u64,
    v_start: f64,
    v_min: f64,
    v_final: f64,
) {
    // The store only holds triples the DTO validator (or a unit test)
    // already checked, but recovered bytes are still external input:
    // skip anything the estimator would reject rather than panic.
    if !(v_start.is_finite() && v_min.is_finite() && v_final.is_finite())
        || v_min > v_start
        || v_min > v_final
    {
        return;
    }
    let obs = TaskObservation::new(Volts::new(v_start), Volts::new(v_min), Volts::new(v_final));
    let new = compute_vsafe(&obs, model);
    map.entry(device)
        .and_modify(|s| {
            s.est = VsafeEstimate {
                v_safe: s.est.v_safe.max(new.v_safe),
                v_delta: s.est.v_delta.max(new.v_delta),
                buffer_energy: s.est.buffer_energy.max(new.buffer_energy),
            };
            s.v_now = v_final;
        })
        .or_insert(DeviceState {
            est: new,
            v_now: v_final,
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("culpeo-observe-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn single(device: u64, vs: f64, vm: f64, vf: f64) -> ObserveRequest {
        ObserveRequest {
            schema_version: Some(SCHEMA_VERSION),
            observation: Some(ObservationDto {
                device,
                v_start_v: vs,
                v_min_v: vm,
                v_final_v: vf,
            }),
            batch: Vec::new(),
        }
    }

    #[test]
    fn observe_acks_then_serves_a_rolling_verdict() {
        let dir = tmp_dir("roundtrip");
        let (hub, report) = ObserveHub::open(&dir).unwrap();
        assert_eq!(report.records_recovered, 0);

        let (resp, _fsync) = hub.observe(&single(7, 2.3, 2.25, 2.29)).unwrap();
        assert_eq!(resp.acked.len(), 1);
        assert_eq!(resp.acked[0].seq, 1);
        assert_eq!(resp.pending, 0, "fsync mode leaves nothing pending");

        let dev = hub.device(7).unwrap();
        assert_eq!(dev.last_seq, 1);
        assert!(dev.v_safe_v > 1.6, "estimate above V_off: {}", dev.v_safe_v);
        assert_eq!(dev.rolling.horizon, 8);
        assert!(
            dev.rolling.proven_periodic,
            "a light task proves the whole horizon: {:?}",
            dev.rolling
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_estimate_is_a_max_update_and_survives_reopen() {
        let dir = tmp_dir("maxjoin");
        let deep_vsafe;
        {
            let (hub, _) = ObserveHub::open(&dir).unwrap();
            hub.observe(&single(3, 2.3, 2.05, 2.29)).unwrap(); // deep dip
            deep_vsafe = hub.device(3).unwrap().v_safe_v;
            hub.observe(&single(3, 2.3, 2.28, 2.30)).unwrap(); // shallow
            let after = hub.device(3).unwrap();
            assert!(
                after.v_safe_v >= deep_vsafe,
                "a shallow observation must not relax the requirement"
            );
        }
        // Reopen: the recovered fold must reproduce the pessimal bound.
        let (hub, report) = ObserveHub::open(&dir).unwrap();
        assert_eq!(report.records_recovered, 2);
        let recovered = hub.device(3).unwrap();
        assert!(recovered.v_safe_v >= deep_vsafe);
        assert_eq!(recovered.last_seq, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_devices_and_bad_shapes_map_to_wire_errors() {
        let dir = tmp_dir("errors");
        let (hub, _) = ObserveHub::open(&dir).unwrap();
        let e = hub.device(99).unwrap_err();
        assert_eq!(e.kind, ApiErrorKind::NotFound);
        // v_min above v_start: the validator, not the estimator, rejects.
        let e = hub.observe(&single(1, 2.0, 2.4, 2.1)).unwrap_err();
        assert_eq!(e.kind, ApiErrorKind::BadRequest);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

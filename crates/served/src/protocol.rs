//! The daemon's core concurrency protocols, extracted and generic over
//! the `culpeo_exec::shim` vocabulary.
//!
//! `crate::server` stakes three production guarantees on these few dozen
//! lines: a full accept queue sheds load with an honest `503` instead of
//! unbounded latency, **no accepted connection is ever dropped** by a
//! graceful drain, and a handler panic mid-cache-update can poison the
//! cache lock without taking a worker (or the daemon) down with it.
//! Each protocol is a free function generic over the shim traits, so the
//! production server (instantiated with the plain `std::sync` types —
//! monomorphises to exactly the code it replaced) and the `culpeo-race`
//! model checker (instantiated with cooperative model types and explored
//! over every interleaving up to a preemption bound) run the *same
//! protocol source*.

use culpeo_exec::shim::{AtomicBoolShim, MutexShim, ReceiverShim, SenderShim};
use std::sync::atomic::Ordering;
use std::sync::mpsc::TrySendError;
use std::sync::PoisonError;

/// What became of one accepted connection offered to the bounded queue.
#[derive(Debug, PartialEq, Eq)]
pub enum Enqueue<T> {
    /// Queued for a worker; the drain guarantee now covers it.
    Queued,
    /// The daemon is draining: answer 503 and stop accepting.
    Draining(T),
    /// The queue is at capacity: answer 503 busy, keep accepting.
    Busy(T),
    /// Every worker is gone; the daemon is past draining.
    Disconnected(T),
}

/// The acceptor's decision for one accepted connection: observe the
/// shutdown flag, then offer the connection to the bounded queue
/// without blocking.
///
/// The flag check precedes the enqueue so a drain request published
/// before the accept is honoured even if queue space is available —
/// shutdown wins races against new work, never the other way around.
#[inline]
pub fn offer<B, Tx, T>(shutting: &B, tx: &Tx, conn: T) -> Enqueue<T>
where
    B: AtomicBoolShim,
    Tx: SenderShim<T>,
    T: Send,
{
    if shutting.load(Ordering::SeqCst) {
        return Enqueue::Draining(conn);
    }
    match tx.try_send(conn) {
        Ok(()) => Enqueue::Queued,
        Err(TrySendError::Full(conn)) => Enqueue::Busy(conn),
        Err(TrySendError::Disconnected(conn)) => Enqueue::Disconnected(conn),
    }
}

/// Pops the next queued connection for a worker, or `None` once the
/// queue is both hung up *and empty* — the drain guarantee.
///
/// The receiver is shared behind a mutex held only for the pop.
/// `recv()` keeps returning queued values after the sender is dropped,
/// which is exactly why dropping the acceptor's sender is the drain
/// trigger: workers finish everything already accepted, then see the
/// hangup. A poisoned receiver lock is survivable — the queue holds no
/// half-mutated state, so the survivors take the guard and keep popping.
#[inline]
pub fn next_job<M, R, T>(rx: &M) -> Option<T>
where
    T: Send,
    R: ReceiverShim<T>,
    M: MutexShim<R>,
{
    let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
    guard.recv().ok()
}

/// Flags shutdown; returns `true` exactly once, for the caller that won
/// the race and therefore owes the acceptor its wake-up call.
///
/// The swap makes "first" well-defined under concurrent shutdown
/// requests, and the single wake obligation is what the model checker's
/// `shutdown-handshake` battery pins: flag-without-wake deadlocks an
/// acceptor parked in `accept()`.
#[inline]
pub fn begin_shutdown<B: AtomicBoolShim>(shutting: &B) -> bool {
    !shutting.swap(true, Ordering::SeqCst)
}

/// Publishes one finished compute result onto the reactor's completion
/// queue; returns `true` exactly when the caller owes the reactor a
/// wake-up (an `eventfd` write in production, a condvar notify in the
/// race model).
///
/// The wake flag is a *coalescing* signal: many workers finishing close
/// together produce one wake, because only the worker that flips the
/// flag `false → true` owes the signal. The push happens **before** the
/// swap — a reactor woken by the flag is therefore guaranteed to find
/// the value already queued. Reordering those two lines is the classic
/// lost-wake: the reactor drains an empty queue, clears nothing, and
/// the pushed value sits unobserved until the next unrelated wake.
#[inline]
pub fn publish_completion<M, B, T>(completions: &M, wake: &B, value: T) -> bool
where
    T: Send,
    M: MutexShim<Vec<T>>,
    B: AtomicBoolShim,
{
    completions
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(value);
    !wake.swap(true, Ordering::SeqCst)
}

/// Drains every published completion for the reactor, consuming the
/// pending wake.
///
/// The flag is cleared **before** the queue is taken: a worker that
/// publishes between the two steps re-raises the flag, so its value is
/// either in this drain or covered by a fresh wake obligation — never
/// both lost. Taking the queue first and clearing after is the mutant
/// the race battery refutes: a publish landing in the gap is swallowed
/// with its wake, and the reactor sleeps on a non-empty queue.
#[inline]
pub fn drain_completions<M, B, T>(completions: &M, wake: &B) -> Vec<T>
where
    T: Send,
    M: MutexShim<Vec<T>>,
    B: AtomicBoolShim,
{
    wake.store(false, Ordering::SeqCst);
    std::mem::take(&mut *completions.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Locks `mutex`, recovering from poisoning: the first toucher after a
/// panicking holder runs `on_recover` on the (possibly half-mutated)
/// state to restore an invariant-safe value, clears the poison, and
/// carries on. Callers never die to a poisoned lock.
#[inline]
pub fn recovering_lock<'a, M, T>(mutex: &'a M, on_recover: impl FnOnce(&mut T)) -> M::Guard<'a>
where
    T: Send,
    M: MutexShim<T>,
{
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            mutex.clear_poison();
            let mut guard = poisoned.into_inner();
            on_recover(&mut guard);
            guard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::{mpsc, Mutex};

    #[test]
    fn offer_prefers_draining_over_queueing() {
        let shutting = AtomicBool::new(false);
        let (tx, rx) = mpsc::sync_channel::<u32>(1);
        assert_eq!(offer(&shutting, &tx, 1), Enqueue::Queued);
        assert_eq!(offer(&shutting, &tx, 2), Enqueue::Busy(2));
        shutting.store(true, Ordering::SeqCst);
        assert_eq!(offer(&shutting, &tx, 3), Enqueue::Draining(3));
        drop(rx);
        shutting.store(false, Ordering::SeqCst);
        assert_eq!(offer(&shutting, &tx, 4), Enqueue::Disconnected(4));
    }

    #[test]
    fn next_job_drains_queued_items_after_hangup() {
        let (tx, rx) = mpsc::sync_channel::<u32>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let rx = Mutex::new(rx);
        assert_eq!(next_job(&rx), Some(1));
        assert_eq!(next_job(&rx), Some(2));
        assert_eq!(next_job::<_, _, u32>(&rx), None);
    }

    #[test]
    fn begin_shutdown_is_first_caller_only() {
        let shutting = AtomicBool::new(false);
        assert!(begin_shutdown(&shutting));
        assert!(!begin_shutdown(&shutting));
    }

    #[test]
    fn publish_coalesces_wakes_and_drain_rearms() {
        let completions: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        let wake = AtomicBool::new(false);
        assert!(publish_completion(&completions, &wake, 1));
        assert!(!publish_completion(&completions, &wake, 2));
        assert_eq!(drain_completions(&completions, &wake), vec![1, 2]);
        // The drain consumed the wake; the next publish owes a fresh one.
        assert!(publish_completion(&completions, &wake, 3));
        assert_eq!(drain_completions(&completions, &wake), vec![3]);
        assert_eq!(drain_completions::<_, _, u32>(&completions, &wake), vec![]);
    }

    #[test]
    fn no_completion_is_lost_under_concurrent_publish() {
        use std::sync::atomic::AtomicUsize;
        let completions: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        let wake = AtomicBool::new(false);
        let drained = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let completions = &completions;
                let wake = &wake;
                s.spawn(move || {
                    for i in 0..100 {
                        publish_completion(completions, wake, t * 100 + i);
                    }
                });
            }
            let reactor = s.spawn(|| {
                let mut seen = 0usize;
                while seen < 400 {
                    seen += drain_completions(&completions, &wake).len();
                    std::thread::yield_now();
                }
                drained.store(seen, Ordering::SeqCst);
            });
            reactor.join().unwrap();
        });
        assert_eq!(drained.load(Ordering::SeqCst), 400);
    }

    #[test]
    fn recovering_lock_restores_a_poisoned_mutex() {
        let m = Mutex::new(vec![1, 2]);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("die holding the lock");
        }));
        assert!(m.is_poisoned());
        let recovered = std::cell::Cell::new(false);
        let guard = recovering_lock(&m, |v| {
            v.clear();
            recovered.set(true);
        });
        assert!(recovered.get());
        assert!(guard.is_empty());
        drop(guard);
        assert!(!m.is_poisoned());
        // A healthy lock never triggers recovery.
        let guard = recovering_lock(&m, |_| panic!("must not recover twice"));
        assert!(guard.is_empty());
    }
}

//! Rolling harvest-credit envelope: "safe for the next *k* hyperperiods".
//!
//! The ingest path turns each device's observation stream into a live
//! Culpeo-R estimate (`V_safe`, `V_δ`, buffer energy). This module turns
//! that estimate into a *forward-looking* verdict by synthesising a
//! one-launch periodic plan — the device repeating its observed task
//! every `period_s` seconds under `recharge_power_mw` of harvest — and
//! asking the abstract interpreter how far ahead safety is provable:
//!
//! 1. **Periodic proof first.** If the periodic fixpoint proves the
//!    synthetic plan, the device is safe for *every* upcoming
//!    hyperperiod, `k` included ([`RollingVerdict::proven_periodic`]).
//! 2. **Concrete unrolls otherwise.** When the fixpoint cannot close
//!    (e.g. the estimate sits near the requirement and widening loses
//!    it), the module falls back to single-shot plans of 1, 2, … `k`
//!    concrete launches and reports the longest proved prefix.
//!
//! The verdict is monotone in the estimate's pessimism: a worse
//! (higher-`V_safe`, higher-energy) estimate can only shorten the safe
//! horizon, never lengthen it — the same direction Culpeo-R's max-update
//! moves, so serving the rolling verdict from the latest estimate is
//! sound.

use culpeo::{PowerSystemModel, VsafeEstimate};
use culpeo_api::plan::{LaunchSpec, PlanSpec};

use crate::interp::{verify_with_model, Verdict};
use crate::VerifyConfig;

/// How far ahead and under what assumed conditions the rolling check
/// looks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollingConfig {
    /// Hyperperiods to certify (`k`).
    pub horizon: u64,
    /// Hyperperiod length: the device repeats its task every this many
    /// seconds.
    pub period_s: f64,
    /// Assumed harvested power while idle, in milliwatts.
    pub recharge_power_mw: f64,
}

impl Default for RollingConfig {
    fn default() -> Self {
        Self {
            horizon: 8,
            period_s: 60.0,
            recharge_power_mw: 8.0,
        }
    }
}

/// The rolling verdict: how many upcoming hyperperiods are provably
/// safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollingVerdict {
    /// Hyperperiods proved safe from now (capped at the horizon).
    pub safe_hyperperiods: u64,
    /// The horizon `k` that was checked.
    pub horizon: u64,
    /// The periodic fixpoint proof closed: safe for all hyperperiods,
    /// not just `k`.
    pub proven_periodic: bool,
}

impl RollingVerdict {
    /// The wire-verdict string (`"proved-periodic"`, `"proved-k"`, or
    /// `"unproved"`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        if self.proven_periodic {
            "proved-periodic"
        } else if self.safe_hyperperiods > 0 {
            "proved-k"
        } else {
            "unproved"
        }
    }
}

/// The synthetic plan a rolling check verifies: one launch per
/// hyperperiod with the estimate's energy/dip/floor, starting from the
/// device's current voltage. `cycles == None` makes it periodic
/// (fixpoint); `Some(c)` unrolls `c` concrete launches single-shot.
fn synthetic_plan(
    est: &VsafeEstimate,
    v_now: f64,
    cfg: &RollingConfig,
    cycles: Option<u64>,
) -> PlanSpec {
    let launch = |i: u64| LaunchSpec {
        task: "observed".to_string(),
        #[allow(clippy::cast_precision_loss)]
        start_s: (i as f64) * cfg.period_s,
        energy_mj: est.buffer_energy.to_milli(),
        v_delta: est.v_delta.get(),
        v_safe: Some(est.v_safe.get()),
    };
    match cycles {
        None => PlanSpec {
            recharge_power_mw: cfg.recharge_power_mw,
            v_start: Some(v_now),
            period_s: Some(cfg.period_s),
            launches: vec![launch(0)],
        },
        Some(c) => PlanSpec {
            recharge_power_mw: cfg.recharge_power_mw,
            v_start: Some(v_now),
            period_s: None,
            launches: (0..c).map(launch).collect(),
        },
    }
}

/// Evaluates the rolling harvest-credit envelope for one device: given
/// its live Culpeo-R estimate and current buffer voltage, how many of
/// the next [`RollingConfig::horizon`] hyperperiods provably complete
/// without exhaustion.
#[must_use]
pub fn rolling_envelope(
    model: &PowerSystemModel,
    est: &VsafeEstimate,
    v_now: f64,
    cfg: &RollingConfig,
) -> RollingVerdict {
    let vcfg = VerifyConfig::default();

    // Periodic fixpoint first: one proof covers every horizon.
    let periodic = synthetic_plan(est, v_now, cfg, None);
    if matches!(
        verify_with_model(model, &periodic, &vcfg).verdict,
        Verdict::Proved
    ) {
        return RollingVerdict {
            safe_hyperperiods: cfg.horizon,
            horizon: cfg.horizon,
            proven_periodic: true,
        };
    }

    // Otherwise the longest proved concrete prefix. Proved prefixes are
    // monotone (a proof of c launches walks through a proof of every
    // shorter prefix), so stop at the first failure.
    let mut safe = 0u64;
    for c in 1..=cfg.horizon {
        let unrolled = synthetic_plan(est, v_now, cfg, Some(c));
        if matches!(
            verify_with_model(model, &unrolled, &vcfg).verdict,
            Verdict::Proved
        ) {
            safe = c;
        } else {
            break;
        }
    }
    RollingVerdict {
        safe_hyperperiods: safe,
        horizon: cfg.horizon,
        proven_periodic: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_units::{Joules, Volts};

    fn model() -> PowerSystemModel {
        PowerSystemModel::capybara()
    }

    fn modest_estimate() -> VsafeEstimate {
        // A light task on a healthy buffer: comfortably provable.
        VsafeEstimate {
            v_safe: Volts::new(2.1),
            v_delta: Volts::new(0.1),
            buffer_energy: Joules::from_milli(5.0),
        }
    }

    #[test]
    fn a_light_periodic_load_proves_the_whole_horizon() {
        let v = rolling_envelope(
            &model(),
            &modest_estimate(),
            2.56,
            &RollingConfig::default(),
        );
        assert!(v.proven_periodic, "{v:?}");
        assert_eq!(v.safe_hyperperiods, v.horizon);
        assert_eq!(v.label(), "proved-periodic");
    }

    #[test]
    fn an_impossible_estimate_proves_nothing() {
        // A task whose floor sits above the buffer ceiling can never be
        // proved safe for even one hyperperiod.
        let est = VsafeEstimate {
            v_safe: Volts::new(9.0),
            v_delta: Volts::new(0.5),
            buffer_energy: Joules::from_milli(500.0),
        };
        let v = rolling_envelope(&model(), &est, 2.56, &RollingConfig::default());
        assert!(!v.proven_periodic);
        assert_eq!(v.safe_hyperperiods, 0);
        assert_eq!(v.label(), "unproved");
    }

    #[test]
    fn the_verdict_is_monotone_in_estimate_pessimism() {
        let cfg = RollingConfig {
            horizon: 4,
            ..RollingConfig::default()
        };
        let light = rolling_envelope(&model(), &modest_estimate(), 2.56, &cfg);
        let heavy = VsafeEstimate {
            v_safe: Volts::new(2.4),
            v_delta: Volts::new(0.3),
            buffer_energy: Joules::from_milli(60.0),
        };
        let worse = rolling_envelope(&model(), &heavy, 2.56, &cfg);
        assert!(
            worse.safe_hyperperiods <= light.safe_hyperperiods,
            "pessimism must not lengthen the horizon: {worse:?} vs {light:?}"
        );
    }

    #[test]
    fn a_lower_current_voltage_cannot_lengthen_the_horizon() {
        let cfg = RollingConfig {
            horizon: 4,
            ..RollingConfig::default()
        };
        let est = modest_estimate();
        let high = rolling_envelope(&model(), &est, 2.56, &cfg);
        let low = rolling_envelope(&model(), &est, 2.12, &cfg);
        assert!(low.safe_hyperperiods <= high.safe_hyperperiods);
    }
}

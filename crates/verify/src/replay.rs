//! Counterexample replay: turning a [`Counterexample`] prefix back into a
//! physical `culpeo-powersim` run.
//!
//! A plan launch declares only `(E, V_δ)`; the plant needs a load
//! profile. The synthesis here picks the unique constant-current profile
//! that honours both numbers against the *model's* physics:
//!
//! * output current `i_out = V_δ·η(V_off)·V_off / (V_out·r_max)` — the
//!   current whose booster-side input current dips the node by at most
//!   the declared `V_δ` through the worst-case ESR (clamped to a
//!   practical 1–80 mA band);
//! * output energy `e_out = E·η(V_off)·η_max` — chosen so the buffer-side
//!   draw lands inside the verifier's consumption band
//!   `[E·η(V_off), E/η(V_off)]` whatever voltage the booster actually
//!   runs at (`draw = e_out/η_actual ∈ [e_out/η_max, e_out/η(V_off)]`,
//!   plus ESR heating, which only pushes it further from the lower
//!   bound);
//! * duration `d = e_out / (V_out·i_out)`.
//!
//! Replaying a [`Verdict::Refuted`] prefix with any harvester inside the
//! verifier's envelope must brown the plant out; replaying a
//! [`Verdict::Proved`] plan must not. The soundness battery exercises
//! both directions.
//!
//! [`Counterexample`]: crate::Counterexample
//! [`Verdict::Refuted`]: crate::Verdict::Refuted
//! [`Verdict::Proved`]: crate::Verdict::Proved

use culpeo::PowerSystemModel;
use culpeo_api::LaunchSpec;
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{OutputBooster, PowerSystem, RunConfig, VoltageMonitor};
use culpeo_units::{Amps, Seconds, Volts};

/// Practical bounds on the synthesized output current.
const I_OUT_MIN: f64 = 1.0e-3;
const I_OUT_MAX: f64 = 80.0e-3;

/// What happened when a schedule prefix ran on the plant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOutcome {
    /// Index (into the replayed prefix) of the first launch the monitor
    /// killed, if any.
    pub brownout_launch: Option<usize>,
    /// Node voltage when the replay ended.
    pub v_final: Volts,
    /// How many launches actually started.
    pub launches_run: usize,
}

impl ReplayOutcome {
    /// True when every launch ran to completion.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.brownout_launch.is_none()
    }
}

/// Worst-case booster efficiency `η(V_off)`, clamped usable.
fn eta_off(model: &PowerSystemModel) -> f64 {
    model.efficiency_at(model.v_off()).clamp(0.05, 1.0)
}

/// Best-case booster efficiency over the operating range (the efficiency
/// line is monotone, so an endpoint attains the maximum).
fn eta_max(model: &PowerSystemModel) -> f64 {
    model
        .efficiency_at(model.v_off())
        .max(model.efficiency_at(model.v_high()))
        .clamp(0.05, 1.0)
}

/// The largest resistance on the model's measured ESR curve.
fn r_max(model: &PowerSystemModel) -> f64 {
    model
        .esr_curve()
        .points()
        .iter()
        .map(|&(_, r)| r.get())
        .fold(0.0, f64::max)
        .max(1e-6)
}

/// The synthesized constant output current for one launch.
fn output_current(model: &PowerSystemModel, launch: &LaunchSpec) -> Amps {
    let i = launch.v_delta * eta_off(model) * model.v_off().get()
        / (model.v_out().get() * r_max(model));
    Amps::new(i.clamp(I_OUT_MIN, I_OUT_MAX))
}

/// How long the synthesized replay profile for `launch` runs. The
/// best-case unroll in `interp` credits harvest over exactly this window,
/// which is why the two modules must agree on it.
#[must_use]
pub fn replay_duration(model: &PowerSystemModel, launch: &LaunchSpec) -> Seconds {
    let e_out = launch.energy_mj * 1e-3 * eta_off(model) * eta_max(model);
    if e_out <= 0.0 {
        return Seconds::ZERO;
    }
    let i = output_current(model, launch);
    Seconds::new(e_out / (model.v_out().get() * i.get()))
}

/// Builds the constant-current load profile for one launch, or `None`
/// for a zero-energy launch (nothing to run).
#[must_use]
pub fn synthesize_profile(model: &PowerSystemModel, launch: &LaunchSpec) -> Option<LoadProfile> {
    let d = replay_duration(model, launch);
    if d.get() <= 0.0 {
        return None;
    }
    Some(LoadProfile::constant(
        launch.task.clone(),
        output_current(model, launch),
        d,
    ))
}

/// A worst-case physical plant for `model`: single-branch bank at the ESR
/// curve's maximum resistance, the model's own booster and monitor, no
/// harvester (callers attach one with
/// [`PowerSystem::set_harvester`]).
#[must_use]
pub fn plant_from_model(model: &PowerSystemModel) -> PowerSystem {
    PowerSystem::builder()
        .bank(model.capacitance(), culpeo_units::Ohms::new(r_max(model)))
        .booster(OutputBooster::new(
            model.v_out(),
            *model.efficiency(),
            Volts::new(0.5),
        ))
        .monitor(VoltageMonitor::new(model.v_high(), model.v_off()))
        .build()
}

/// Replays a schedule prefix on `sys` from `v_start`, launching each task
/// at its (absolute) planned start time — or immediately, open-loop, if
/// the previous task overran. Returns at the first launch the monitor
/// kills.
pub fn replay_on(
    sys: &mut PowerSystem,
    model: &PowerSystemModel,
    prefix: &[LaunchSpec],
    v_start: Volts,
) -> ReplayOutcome {
    let idle_dt = Seconds::from_milli(1.0);
    let mut cfg = RunConfig::coarse().without_trace();
    cfg.settle_timeout = Seconds::ZERO;
    sys.set_buffer_voltage(v_start);
    sys.force_output_enabled();
    let mut launches_run = 0usize;
    for (i, launch) in prefix.iter().enumerate() {
        let wait = launch.start_s - sys.time().get();
        if wait > idle_dt.get() {
            let _ = sys.run_idle(Seconds::new(wait), idle_dt);
        }
        // The open-loop schedule launches regardless of monitor state —
        // that is exactly the failure mode Theorem 1 exists to prevent.
        sys.force_output_enabled();
        let Some(profile) = synthesize_profile(model, launch) else {
            continue;
        };
        launches_run += 1;
        let out = sys.run_profile(&profile, cfg);
        if out.brownout.is_some() || out.collapsed {
            return ReplayOutcome {
                brownout_launch: Some(i),
                v_final: sys.v_node(),
                launches_run,
            };
        }
    }
    ReplayOutcome {
        brownout_launch: None,
        v_final: sys.v_node(),
        launches_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_with_model, Verdict, VerifyConfig};
    use culpeo_api::PlanSpec;
    use culpeo_powersim::Harvester;
    use culpeo_units::Watts;

    fn model() -> PowerSystemModel {
        PowerSystemModel::capybara()
    }

    #[test]
    fn synthesized_current_respects_the_declared_dip() {
        let m = model();
        let launch = LaunchSpec {
            task: "radio".to_string(),
            start_s: 0.0,
            energy_mj: 3.0,
            v_delta: 0.35,
            v_safe: Some(2.1),
        };
        let i_out = output_current(&m, &launch);
        // Input current through the worst-case ESR must dip ≤ V_δ at the
        // bottom of the range.
        let i_in = i_out.get() * m.v_out().get() / (eta_off(&m) * m.v_off().get());
        assert!(i_in * r_max(&m) <= 0.35 + 1e-9, "dip {}", i_in * r_max(&m));
        // Duration shrinks as the declared dip (hence current) grows.
        let mut gentle = launch.clone();
        gentle.v_delta = 0.05;
        assert!(replay_duration(&m, &gentle) > replay_duration(&m, &launch));
    }

    #[test]
    fn zero_energy_launch_synthesizes_nothing() {
        let m = model();
        let launch = LaunchSpec {
            task: "noop".to_string(),
            start_s: 0.0,
            energy_mj: 0.0,
            v_delta: 0.1,
            v_safe: None,
        };
        assert!(synthesize_profile(&m, &launch).is_none());
        assert_eq!(replay_duration(&m, &launch), Seconds::ZERO);
    }

    #[test]
    fn refuted_counterexample_browns_out_on_the_plant() {
        let m = model();
        let mut plan = PlanSpec::figure5_example();
        plan.launches[0].energy_mj = 200.0;
        plan.launches[0].v_delta = 0.3;
        let outcome = verify_with_model(&m, &plan, &VerifyConfig::default());
        let Verdict::Refuted(cex) = outcome.verdict else {
            panic!("expected Refuted, got {:?}", outcome.verdict);
        };
        // Replay with the plan's own declared harvest — inside the
        // verifier's envelope, so the brownout is guaranteed.
        let mut sys = plant_from_model(&m);
        sys.set_harvester(Harvester::ConstantPower(Watts::from_milli(
            plan.recharge_power_mw,
        )));
        let replay = replay_on(&mut sys, &m, &cex.prefix, cex.v_start);
        let hit = replay
            .brownout_launch
            .expect("a refuted prefix must brown out");
        assert!(hit <= cex.failing_launch, "browned out late: {hit}");
        // The monitor trips on the ESR-dipped *node* voltage, so the cut
        // can land before the internal voltage reaches V_off; the node
        // still ends well below a healthy launch level.
        assert!(replay.v_final < Volts::new(2.0), "{}", replay.v_final);
    }

    #[test]
    fn proved_plan_survives_a_dropout_harvester_replay() {
        let m = model();
        let plan = PlanSpec::verified_example();
        let outcome = verify_with_model(&m, &plan, &VerifyConfig::default());
        assert_eq!(outcome.verdict, Verdict::Proved);
        // Unroll three hyperperiods by hand and run them under a
        // worst-admissible windowed harvester: duty at the envelope's
        // minimum, on-current sized so the declared 8 mW is the on-window
        // delivery floor (v ≥ V_off ⇒ v·i ≥ 8 mW).
        let period = plan.period_s.unwrap();
        let mut prefix = Vec::new();
        for k in 0..3 {
            for l in &plan.launches {
                let mut unrolled = l.clone();
                unrolled.start_s += k as f64 * period;
                prefix.push(unrolled);
            }
        }
        let mut sys = plant_from_model(&m);
        sys.set_harvester(Harvester::Windowed {
            i: Amps::new(8.0e-3 / m.v_off().get()),
            period: Seconds::new(3.0),
            duty: 0.3,
            phase: Seconds::new(1.7),
        });
        let replay = replay_on(&mut sys, &m, &prefix, Volts::new(2.56));
        assert!(
            replay.completed(),
            "proved plan browned out at launch {:?} (v_final {})",
            replay.brownout_launch,
            replay.v_final
        );
        assert_eq!(replay.launches_run, prefix.len());
    }
}

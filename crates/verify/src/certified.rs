//! Verification on *analyzed* rather than *declared* energies.
//!
//! The interval interpreter is sound relative to its inputs: a launch
//! that under-declares `(E, V_δ)` gets a proof that means nothing. When
//! `culpeo-wcec` has certified a task, the certificate's worst-case
//! endpoints are the figures the proof should rest on — so this module
//! substitutes them *in place of* the declared values (not merely as a
//! cross-check) before running the ordinary abstract interpretation.

use culpeo::PowerSystemModel;
use culpeo_api::{CertificateDto, PlanSpec};

use crate::interp::{verify_with_model, VerifyOutcome};
use crate::VerifyConfig;

/// Rewrites `plan` so every launch whose task has a certificate declares
/// the certificate's worst-case energy and ESR dip. Launches without a
/// matching certificate keep their declared figures.
#[must_use]
pub fn apply_certificates(plan: &PlanSpec, certs: &[CertificateDto]) -> PlanSpec {
    let mut certified = plan.clone();
    for launch in &mut certified.launches {
        let Some(cert) = certs.iter().find(|c| c.task == launch.task) else {
            continue;
        };
        launch.energy_mj = cert.energy_mj_hi;
        if let Some(v_delta) = cert.v_delta_v {
            launch.v_delta = v_delta;
        }
    }
    certified
}

/// Verifies `plan` against `model` with certificates substituted for
/// declared energies. The resulting verdict (and any counterexample —
/// still replayable, since replay reads the rewritten launches) speaks
/// about the *analyzed* worst case.
#[must_use]
pub fn verify_certified(
    model: &PowerSystemModel,
    plan: &PlanSpec,
    certs: &[CertificateDto],
    cfg: &VerifyConfig,
) -> VerifyOutcome {
    verify_with_model(model, &apply_certificates(plan, certs), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Verdict;

    fn cert(task: &str, e_hi_mj: f64, v_delta: f64) -> CertificateDto {
        CertificateDto {
            task: task.to_string(),
            energy_mj_lo: e_hi_mj * 0.8,
            energy_mj_hi: e_hi_mj,
            time_s_lo: 0.01,
            time_s_hi: 0.02,
            peak_ma: 25.0,
            v_delta_v: Some(v_delta),
            paths: 1,
            loops: 0,
        }
    }

    #[test]
    fn substitution_rewrites_matching_launches_only() {
        let plan = PlanSpec::verified_example();
        let declared: Vec<f64> = plan.launches.iter().map(|l| l.energy_mj).collect();
        let certs = vec![cert("sense", 99.0, 0.5)];
        let rewritten = apply_certificates(&plan, &certs);
        for (before, after) in plan.launches.iter().zip(&rewritten.launches) {
            if before.task == "sense" {
                assert_eq!(after.energy_mj, 99.0);
                assert_eq!(after.v_delta, 0.5);
            } else {
                assert_eq!(after.energy_mj, before.energy_mj);
            }
        }
        // The input plan is untouched.
        for (l, e) in plan.launches.iter().zip(&declared) {
            assert_eq!(l.energy_mj, *e);
        }
    }

    #[test]
    fn inflated_certificate_voids_a_declared_proof() {
        let model = PowerSystemModel::capybara();
        let plan = PlanSpec::verified_example();
        let declared = verify_with_model(&model, &plan, &VerifyConfig::default());
        assert_eq!(declared.verdict, Verdict::Proved, "baseline must prove");
        // A certificate showing the task really draws far more than it
        // declared must flip the verdict off Proved.
        let certs = vec![cert("sense", 400.0, 0.05)];
        let certified = verify_certified(&model, &plan, &certs, &VerifyConfig::default());
        assert_ne!(
            certified.verdict,
            Verdict::Proved,
            "{:?}",
            certified.verdict
        );
    }

    #[test]
    fn empty_certificate_set_is_identity() {
        let model = PowerSystemModel::capybara();
        let plan = PlanSpec::verified_example();
        let a = verify_with_model(&model, &plan, &VerifyConfig::default());
        let b = verify_certified(&model, &plan, &[], &VerifyConfig::default());
        assert_eq!(a.verdict, b.verdict);
    }
}

//! The interval abstract interpreter over [`PlanSpec`] schedules.
//!
//! One launch is abstracted by two transfer functions on voltage
//! envelopes — gap recharge then task draw — with the uncertainty bands
//! described in the crate docs. Single-shot plans are walked once;
//! periodic plans iterate entry-envelope → exit-envelope to a fixpoint
//! with join at the wrap-around, widening to the domain bounds when the
//! iteration refuses to converge.
//!
//! `Refuted` verdicts do not come from the envelope (an envelope can only
//! prove universals); they come from a *concrete* best-case unroll: the
//! scalar trajectory that draws the least and harvests the most, rounded
//! upward. If even that trajectory drains to `V_off`, every admissible
//! trajectory does, and the unrolled prefix is a replayable witness.

use culpeo::PowerSystemModel;
use culpeo_api::{LaunchSpec, PlanSpec, SystemSpec};
use culpeo_units::{IntervalJ, IntervalV, Joules, Seconds, Volts, Watts};

use crate::replay::replay_duration;
use crate::VerifyConfig;

/// The three-valued result of static verification.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Theorem 1 holds at every launch of every cycle, for every
    /// trajectory inside the admissible envelope.
    Proved,
    /// Even the best-case trajectory exhausts the buffer: the plan browns
    /// out on the physical plant, and here is a replayable witness.
    Refuted(Counterexample),
    /// The envelope straddles a requirement — the verifier can neither
    /// prove nor refute the plan at this precision.
    Unknown(Imprecision),
}

impl Verdict {
    /// Short lowercase tag (`proved` / `refuted` / `unknown`), used by the
    /// CLI and the daemon's JSON surface.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Proved => "proved",
            Verdict::Refuted(_) => "refuted",
            Verdict::Unknown(_) => "unknown",
        }
    }
}

/// A concrete minimal schedule prefix that browns out even under
/// best-case physics. Replay it with [`crate::replay::replay_on`].
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Buffer voltage at the schedule origin.
    pub v_start: Volts,
    /// The unrolled launches, with *absolute* start times (cycle offsets
    /// already applied), up to and including the failing launch.
    pub prefix: Vec<LaunchSpec>,
    /// Index of the failing launch within `prefix` (always the last).
    pub failing_launch: usize,
    /// 1-based hyperperiod cycle in which the exhaustion happens.
    pub cycle: usize,
    /// The best-case buffer voltage at the end of the failing task — at
    /// or below `V_off`, hence the brownout.
    pub v_predicted: Volts,
}

/// Why a plan came back [`Verdict::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImprecisionKind {
    /// The launch envelope straddles the requirement (C042).
    LaunchStraddle,
    /// Even the envelope's best case undercuts the requirement (C041) —
    /// a definite Theorem 1 violation, but launching below a conservative
    /// `V_safe` does not *guarantee* a physical brownout, so this is not
    /// a refutation.
    EnvelopeBelowRequirement,
    /// The post-task envelope straddles `V_off` (C043).
    ExhaustionStraddle,
    /// The spec or plan cannot be verified at all (C046).
    Inapplicable,
}

impl ImprecisionKind {
    /// Stable kebab-case tag for the wire surface.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            ImprecisionKind::LaunchStraddle => "launch-straddle",
            ImprecisionKind::EnvelopeBelowRequirement => "envelope-below-requirement",
            ImprecisionKind::ExhaustionStraddle => "exhaustion-straddle",
            ImprecisionKind::Inapplicable => "inapplicable",
        }
    }
}

/// The blocking interval behind an [`Verdict::Unknown`].
#[derive(Debug, Clone, PartialEq)]
pub struct Imprecision {
    /// What kind of precision loss blocked the proof.
    pub kind: ImprecisionKind,
    /// Task name of the blocking launch (empty when inapplicable).
    pub task: String,
    /// Index of the blocking launch in the plan's launch list.
    pub launch_index: usize,
    /// The voltage envelope at the point precision was lost.
    pub envelope: Option<IntervalV>,
    /// The requirement the envelope failed to clear.
    pub requirement: Option<Volts>,
}

/// One diagnostic-ready finding (C040–C046). `culpeo-analyze` maps these
/// onto `culpeo_analyze::Diagnostic`s; the locus is relative to the plan (the caller
/// prepends the file locus).
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Diagnostic code, `"C040"`–`"C046"`.
    pub code: &'static str,
    /// True for errors, false for warnings.
    pub error: bool,
    /// Plan-relative locus, e.g. `launch 'radio' [1]`.
    pub locus: String,
    /// Human-readable message.
    pub message: String,
    /// Optional remediation hint.
    pub help: Option<String>,
}

/// Everything the verifier learned about one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyOutcome {
    /// The verdict.
    pub verdict: Verdict,
    /// Diagnostic-ready findings (C040–C046), in walk order.
    pub findings: Vec<Finding>,
    /// Pre-launch voltage envelopes from the final (fixpoint) walk, one
    /// per plan launch. Every admissible trajectory's launch voltage lies
    /// inside the corresponding interval.
    pub launch_envelopes: Vec<IntervalV>,
    /// Fixpoint rounds taken (1 for single-shot plans).
    pub iterations: usize,
    /// Whether widening was needed to terminate the fixpoint iteration.
    pub widened: bool,
    /// The entry envelope the periodic fixpoint settled on (None for
    /// single-shot plans).
    pub fixpoint: Option<IntervalV>,
}

impl VerifyOutcome {
    fn inapplicable(message: String) -> Self {
        Self {
            verdict: Verdict::Unknown(Imprecision {
                kind: ImprecisionKind::Inapplicable,
                task: String::new(),
                launch_index: 0,
                envelope: None,
                requirement: None,
            }),
            findings: vec![Finding {
                code: "C046",
                error: true,
                locus: "plan".to_string(),
                message,
                help: Some("fix the spec/plan so the charge model is well-defined".to_string()),
            }],
            launch_envelopes: Vec::new(),
            iterations: 0,
            widened: false,
            fixpoint: None,
        }
    }
}

/// Model-derived constants the transfer functions close over.
#[derive(Debug, Clone, Copy)]
struct ModelParams {
    c: f64,
    v_off: Volts,
    v_high: Volts,
    /// Worst-case booster efficiency, `η(V_off)`, clamped into `(0, 1]`.
    eta_off: f64,
    /// `r_max / r_min` over the measured ESR curve (≥ 1).
    esr_ratio: f64,
    /// `V_high / V_off`: how much more a declared harvest power can
    /// deliver at the top of the operating range than at the bottom.
    headroom: f64,
}

impl ModelParams {
    fn of(model: &PowerSystemModel) -> Self {
        let points = model.esr_curve().points();
        let r_max = points.iter().map(|&(_, r)| r.get()).fold(0.0, f64::max);
        let r_min = points
            .iter()
            .map(|&(_, r)| r.get())
            .fold(f64::INFINITY, f64::min);
        Self {
            c: model.capacitance().get(),
            v_off: model.v_off(),
            v_high: model.v_high(),
            eta_off: model.efficiency_at(model.v_off()).clamp(0.05, 1.0),
            esr_ratio: if r_min > 0.0 {
                (r_max / r_min).max(1.0)
            } else {
                1.0
            },
            headroom: (model.v_high().get() / model.v_off().get()).max(1.0),
        }
    }
}

/// The physical-draw band for a task declaring buffer energy `e`:
/// `[e·η_off, e/η_off]`, outward-rounded.
#[must_use]
pub fn consumption_band(e: Joules, eta_off: f64) -> IntervalJ {
    let eta = eta_off.clamp(0.05, 1.0);
    IntervalJ::new(
        Joules::new((e.get() * eta).next_down().max(0.0)),
        Joules::new((e.get() / eta).next_up()),
    )
}

/// The harvest-credit band for an idle window of `gap` seconds at
/// declared power `p`: `[p·max(0, d_min·gap − t_out), p·gap·headroom]`,
/// outward-rounded. Windows shorter than `t_out / d_min` credit nothing
/// on the low side — the zero-harvest envelope.
#[must_use]
pub fn harvest_band(p: Watts, gap: Seconds, headroom: f64, cfg: &VerifyConfig) -> IntervalJ {
    let on_s = (cfg.duty_min * gap.get() - cfg.outage_s).max(0.0);
    let lo = (p.get() * on_s).next_down().max(0.0);
    let hi = (p.get() * gap.get() * headroom.max(1.0)).next_up().max(lo);
    IntervalJ::new(Joules::new(lo), Joules::new(hi))
}

/// The Theorem 1 voltage floor the model itself implies for a launch:
/// `√((V_off + V_δ·r_max/r_min)² + 2·E_hi/C)`, rounded up. A launch below
/// this voltage either dips under `V_off` through the worst-case ESR or
/// exhausts the buffer outright, whatever its declared `V_safe` says.
#[must_use]
pub fn requirement_floor(
    v_off: Volts,
    v_delta: Volts,
    esr_ratio: f64,
    e_hi: Joules,
    c: f64,
) -> Volts {
    let dip = (v_off.get() + (v_delta.get() * esr_ratio.max(1.0)).next_up()).next_up();
    IntervalV::point(Volts::new(dip))
        .charge(IntervalJ::point(e_hi), c)
        .hi()
}

/// Per-launch record from one envelope walk.
#[derive(Debug, Clone)]
struct WalkCheck {
    launch_index: usize,
    task: String,
    pre: IntervalV,
    post: IntervalV,
    requirement: Volts,
    floor: Volts,
    declared_v_safe: Option<Volts>,
}

/// Walks the launch list once from `entry`, returning the envelope after
/// the last task and the per-launch records.
fn walk(
    entry: IntervalV,
    plan: &PlanSpec,
    p: &ModelParams,
    cfg: &VerifyConfig,
) -> (IntervalV, Vec<WalkCheck>) {
    let power = Watts::from_milli(plan.recharge_power_mw);
    let mut env = entry;
    let mut t_prev = 0.0_f64;
    let mut checks = Vec::with_capacity(plan.launches.len());
    for (i, l) in plan.launches.iter().enumerate() {
        let gap = Seconds::new((l.start_s - t_prev).max(0.0));
        env = env
            .charge(harvest_band(power, gap, p.headroom, cfg), p.c)
            .min(p.v_high);
        let band = consumption_band(Joules::new(l.energy_mj * 1e-3), p.eta_off);
        let floor = requirement_floor(p.v_off, Volts::new(l.v_delta), p.esr_ratio, band.hi(), p.c);
        let declared = l.v_safe.map(Volts::new);
        let requirement = declared.map_or(floor, |vs| vs.max(floor));
        let pre = env;
        env = env.discharge(band, p.c);
        checks.push(WalkCheck {
            launch_index: i,
            task: l.task.clone(),
            pre,
            post: env,
            requirement,
            floor,
            declared_v_safe: declared,
        });
        t_prev = l.start_s;
    }
    (env, checks)
}

/// The concrete best-case unroll: minimal draw, maximal harvest, rounded
/// upward at every step, including harvest during the synthesized replay
/// tasks themselves. Returns a witness if even this trajectory drains to
/// `V_off`. Monotonicity makes the witness minimal: the first doomed
/// launch of the best-case trajectory is the earliest any admissible
/// trajectory can be *certainly* dead.
fn find_certain_exhaustion(
    plan: &PlanSpec,
    model: &PowerSystemModel,
    p: &ModelParams,
    cfg: &VerifyConfig,
    v_start: Volts,
) -> Option<Counterexample> {
    let power = Watts::from_milli(plan.recharge_power_mw);
    let cycles = if plan.period_s.is_some() {
        cfg.unroll_cycles.max(1)
    } else {
        1
    };
    let period = plan.period_s.unwrap_or(0.0);
    let mut hi = IntervalV::point(v_start);
    let mut prefix: Vec<LaunchSpec> = Vec::new();
    let mut t_prev = 0.0_f64;
    let mut cycle_entry_hi = hi.hi();
    for cycle in 0..cycles {
        let offset = cycle as f64 * period;
        for l in &plan.launches {
            let abs_start = offset + l.start_s;
            let gap = Seconds::new((abs_start - t_prev).max(0.0));
            // Harvest credit for the window leading into this launch. The
            // replayed task may outlast the planned gap, so the *previous*
            // window was already stretched to cover it (below).
            hi = hi
                .charge(harvest_band(power, gap, p.headroom, cfg).hi_only(), p.c)
                .min(p.v_high);
            let mut unrolled = l.clone();
            unrolled.start_s = abs_start;
            prefix.push(unrolled);
            let e_lo = consumption_band(Joules::new(l.energy_mj * 1e-3), p.eta_off).lo();
            // Credit harvest during the synthesized task itself, then take
            // the minimal draw; energy conservation bounds any interleaving.
            let d = replay_duration(model, l);
            let task_credit = harvest_band(power, d, p.headroom, cfg).hi();
            let task_end = hi
                .charge(IntervalJ::point(task_credit), p.c)
                .discharge(IntervalJ::point(e_lo), p.c)
                .min(p.v_high);
            if task_end.hi() <= p.v_off {
                return Some(Counterexample {
                    v_start,
                    failing_launch: prefix.len() - 1,
                    cycle: cycle + 1,
                    v_predicted: task_end.hi(),
                    prefix,
                });
            }
            // Transition: the harvest window to the next launch starts
            // where the replayed task actually ends, so an overlong task
            // never shortens the credited charging time below reality.
            hi = task_end;
            t_prev = abs_start + d.get().max(0.0);
        }
        if plan.launches.is_empty() {
            break;
        }
        // Stationary across a full cycle ⇒ it never dooms; stop early.
        let entry_now = hi.hi();
        if cycle > 0 && entry_now == cycle_entry_hi {
            break;
        }
        cycle_entry_hi = entry_now;
    }
    None
}

/// Verifies `plan` against `spec`, deriving the charge model from the
/// spec. Spec errors come back as a C046 [`Verdict::Unknown`].
#[must_use]
pub fn verify_plan(spec: &SystemSpec, plan: &PlanSpec) -> VerifyOutcome {
    match spec.clone().into_model() {
        Ok(model) => verify_with_model(&model, plan, &VerifyConfig::default()),
        Err(e) => VerifyOutcome::inapplicable(format!(
            "the system spec does not define a usable charge model: {e}"
        )),
    }
}

/// Verifies `plan` against an already-built charge model.
#[must_use]
pub fn verify_with_model(
    model: &PowerSystemModel,
    plan: &PlanSpec,
    cfg: &VerifyConfig,
) -> VerifyOutcome {
    if let Some(reason) = unusable_reason(plan) {
        return VerifyOutcome::inapplicable(reason);
    }
    let p = ModelParams::of(model);
    let v_start = plan.v_start.map_or(p.v_high, Volts::new);
    let start = IntervalV::point(v_start.min(p.v_high));

    // Fixpoint over the hyperperiod (trivial for single-shot plans).
    let (entry, iterations, widened) = match plan.period_s {
        Some(period) if !plan.launches.is_empty() => {
            let power = Watts::from_milli(plan.recharge_power_mw);
            let last_start = plan.launches.last().map_or(0.0, |l| l.start_s);
            let wrap = Seconds::new((period - last_start).max(0.0));
            let mut entry = start;
            let mut iterations = 0usize;
            let mut widened = false;
            loop {
                iterations += 1;
                let (exit, _) = walk(entry, plan, &p, cfg);
                let wrapped = exit
                    .charge(harvest_band(power, wrap, p.headroom, cfg), p.c)
                    .min(p.v_high);
                let next = entry.join(wrapped);
                if next == entry {
                    break;
                }
                if iterations >= cfg.max_iterations {
                    entry = IntervalV::new(Volts::ZERO, p.v_high);
                    widened = true;
                    break;
                }
                entry = if iterations >= cfg.widen_after {
                    widened = true;
                    IntervalV::new(
                        if next.lo() < entry.lo() {
                            Volts::ZERO
                        } else {
                            next.lo()
                        },
                        if next.hi() > entry.hi() {
                            p.v_high
                        } else {
                            next.hi()
                        },
                    )
                } else {
                    next
                };
            }
            (entry, iterations, widened)
        }
        _ => (start, 1, false),
    };

    let (_, checks) = walk(entry, plan, &p, cfg);
    let counterexample = find_certain_exhaustion(plan, model, &p, cfg, v_start.min(p.v_high));

    let mut findings = Vec::new();
    if let Some(cex) = &counterexample {
        let failing = &cex.prefix[cex.failing_launch];
        findings.push(Finding {
            code: "C040",
            error: true,
            locus: format!("launch '{}' [{}]", failing.task, cex.failing_launch),
            message: format!(
                "certain exhaustion: even drawing only E·η and harvesting at the envelope \
                 maximum, the buffer reaches {} ≤ V_off = {} at t = {} s (cycle {}) from \
                 V_start = {}; a {}-launch prefix is a replayable counterexample",
                cex.v_predicted,
                p.v_off,
                failing.start_s,
                cex.cycle,
                cex.v_start,
                cex.prefix.len(),
            ),
            help: Some(
                "replay the counterexample with `culpeo-verify::replay_on` or drop \
                 launches until the plan recharges faster than it drains"
                    .to_string(),
            ),
        });
    }

    let mut blocking: Option<Imprecision> = None;
    for chk in &checks {
        let locus = format!("launch '{}' [{}]", chk.task, chk.launch_index);
        if let Some(vs) = chk.declared_v_safe {
            if chk.floor > vs {
                findings.push(Finding {
                    code: "C045",
                    error: false,
                    locus: locus.clone(),
                    message: format!(
                        "the model-derived Theorem 1 floor {} exceeds the declared V_safe = {vs}; \
                         verification uses the floor",
                        chk.floor
                    ),
                    help: Some("re-profile the task or loosen the declared estimate".to_string()),
                });
            }
        }
        if chk.pre.hi() < chk.requirement {
            findings.push(Finding {
                code: "C041",
                error: true,
                locus: locus.clone(),
                message: format!(
                    "the whole launch envelope {} lies below the requirement {} — Theorem 1's \
                     voltage conjunct fails for every admissible trajectory",
                    chk.pre, chk.requirement
                ),
                help: Some(
                    "a conservative V_safe violation is not a certain brownout, so this \
                     refutes the proof, not the plan"
                        .to_string(),
                ),
            });
            if blocking.is_none() {
                blocking = Some(Imprecision {
                    kind: ImprecisionKind::EnvelopeBelowRequirement,
                    task: chk.task.clone(),
                    launch_index: chk.launch_index,
                    envelope: Some(chk.pre),
                    requirement: Some(chk.requirement),
                });
            }
        } else if chk.pre.lo() < chk.requirement {
            findings.push(Finding {
                code: "C042",
                error: true,
                locus: locus.clone(),
                message: format!(
                    "the launch envelope {} straddles the requirement {} — the proof is blocked \
                     by this interval",
                    chk.pre, chk.requirement
                ),
                help: Some(
                    "delay the launch, raise recharge power, or tighten the task's \
                     declared energy band"
                        .to_string(),
                ),
            });
            if blocking.is_none() {
                blocking = Some(Imprecision {
                    kind: ImprecisionKind::LaunchStraddle,
                    task: chk.task.clone(),
                    launch_index: chk.launch_index,
                    envelope: Some(chk.pre),
                    requirement: Some(chk.requirement),
                });
            }
        }
        if chk.post.lo() <= p.v_off && counterexample.is_none() {
            findings.push(Finding {
                code: "C043",
                error: true,
                locus,
                message: format!(
                    "the post-task envelope {} reaches V_off = {} — possible exhaustion the \
                     verifier cannot rule out",
                    chk.post, p.v_off
                ),
                help: None,
            });
            if blocking.is_none() {
                blocking = Some(Imprecision {
                    kind: ImprecisionKind::ExhaustionStraddle,
                    task: chk.task.clone(),
                    launch_index: chk.launch_index,
                    envelope: Some(chk.post),
                    requirement: Some(p.v_off),
                });
            }
        }
    }

    let verdict = if let Some(cex) = counterexample {
        Verdict::Refuted(cex)
    } else if let Some(imp) = blocking {
        Verdict::Unknown(imp)
    } else {
        Verdict::Proved
    };
    if widened && !matches!(verdict, Verdict::Proved) {
        findings.push(Finding {
            code: "C044",
            error: false,
            locus: "period fixpoint".to_string(),
            message: format!(
                "the entry envelope was widened to {entry} after {iterations} rounds; the \
                 verdict may be imprecise for this plan"
            ),
            help: Some(
                "a plan that drains a little every cycle has no finite fixpoint".to_string(),
            ),
        });
    }

    VerifyOutcome {
        verdict,
        findings,
        launch_envelopes: checks.iter().map(|c| c.pre).collect(),
        iterations,
        widened,
        fixpoint: plan.period_s.map(|_| entry),
    }
}

/// Why this plan cannot be verified at all, if it can't.
fn unusable_reason(plan: &PlanSpec) -> Option<String> {
    let clean_f = |v: f64| v.is_finite() && v >= 0.0;
    if !clean_f(plan.recharge_power_mw) {
        return Some(format!(
            "recharge power must be finite and non-negative; got {} mW",
            plan.recharge_power_mw
        ));
    }
    if let Some(v) = plan.v_start {
        if !(v.is_finite() && v > 0.0) {
            return Some(format!(
                "start voltage must be positive and finite; got {v} V"
            ));
        }
    }
    for (i, l) in plan.launches.iter().enumerate() {
        if !(clean_f(l.start_s) && clean_f(l.energy_mj) && clean_f(l.v_delta)) {
            return Some(format!("launch [{i}] '{}' has unusable numbers", l.task));
        }
        if let Some(vs) = l.v_safe {
            if !vs.is_finite() {
                return Some(format!("launch [{i}] '{}' has a non-finite V_safe", l.task));
            }
        }
        if i > 0 && l.start_s < plan.launches[i - 1].start_s {
            return Some("launches are not sorted by start time".to_string());
        }
    }
    if let Some(t) = plan.period_s {
        let last = plan.launches.last().map_or(0.0, |l| l.start_s);
        if !(t.is_finite() && t > 0.0) {
            return Some(format!("period must be positive and finite; got {t} s"));
        }
        if t < last {
            return Some(format!(
                "period {t} s does not cover the last launch at {last} s"
            ));
        }
    }
    None
}

/// Upper-endpoint-only view used by the best-case unroll.
trait HiOnly {
    fn hi_only(self) -> IntervalJ;
}

impl HiOnly for IntervalJ {
    fn hi_only(self) -> IntervalJ {
        IntervalJ::point(self.hi())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capybara() -> PowerSystemModel {
        PowerSystemModel::capybara()
    }

    fn outcome(plan: &PlanSpec) -> VerifyOutcome {
        verify_with_model(&capybara(), plan, &VerifyConfig::default())
    }

    fn codes(o: &VerifyOutcome) -> Vec<&'static str> {
        o.findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn verified_example_is_proved() {
        let o = outcome(&PlanSpec::verified_example());
        assert_eq!(o.verdict, Verdict::Proved, "{:?}", o.findings);
        assert!(o.findings.is_empty(), "{:?}", o.findings);
        assert!(!o.widened);
        assert!(o.iterations <= 3, "iterations = {}", o.iterations);
        let fix = o.fixpoint.expect("periodic plan has a fixpoint");
        assert!(fix.lo() >= Volts::new(2.0), "fixpoint {fix}");
    }

    #[test]
    fn figure5_is_unknown_with_straddle_on_the_radio() {
        let o = outcome(&PlanSpec::figure5_example());
        let Verdict::Unknown(imp) = &o.verdict else {
            panic!("expected Unknown, got {:?}", o.verdict);
        };
        assert_eq!(imp.task, "radio");
        assert_eq!(imp.kind, ImprecisionKind::LaunchStraddle);
        assert!(imp.envelope.is_some() && imp.requirement.is_some());
        let cs = codes(&o);
        assert!(cs.contains(&"C042"), "{cs:?}");
        // The sense task's declared V_safe = 1.7 sits below the
        // model-derived floor → warning.
        assert!(cs.contains(&"C045"), "{cs:?}");
        assert!(
            !cs.contains(&"C040"),
            "figure 5 is not certainly doomed: {cs:?}"
        );
    }

    #[test]
    fn single_shot_exhaustion_is_refuted_with_minimal_prefix() {
        let mut plan = PlanSpec::figure5_example();
        plan.launches[0].energy_mj = 200.0; // > ½C(V_high² − V_off²) even at E·η
        plan.launches[0].v_delta = 0.3; // high-current task: too fast to be rescued by harvest
        let o = outcome(&plan);
        let Verdict::Refuted(cex) = &o.verdict else {
            panic!("expected Refuted, got {:?}", o.verdict);
        };
        assert_eq!(cex.cycle, 1);
        assert_eq!(cex.failing_launch, 0);
        assert_eq!(
            cex.prefix.len(),
            1,
            "minimal prefix stops at the doomed launch"
        );
        assert!(cex.v_predicted <= Volts::new(1.6));
        assert!(codes(&o).contains(&"C040"));
    }

    #[test]
    fn periodic_drain_without_harvest_is_refuted_in_a_later_cycle() {
        let mut plan = PlanSpec::verified_example();
        plan.recharge_power_mw = 0.0;
        let o = outcome(&plan);
        let Verdict::Refuted(cex) = &o.verdict else {
            panic!("expected Refuted, got {:?}", o.verdict);
        };
        assert!(
            cex.cycle > 1,
            "drain takes several cycles; got {}",
            cex.cycle
        );
        // The prefix is fully unrolled with absolute times.
        let last = cex.prefix.last().unwrap();
        assert!(last.start_s >= plan.period_s.unwrap());
        assert_eq!(cex.failing_launch, cex.prefix.len() - 1);
    }

    #[test]
    fn slow_periodic_drain_widens_to_unknown() {
        // Per cycle: the worst-case draw exceeds the envelope's minimum
        // harvest credit, so the entry envelope descends forever — no
        // finite fixpoint. Widening must terminate it, and the best case
        // (full 8 mW) recharges fine, so it cannot be refuted either.
        let mut plan = PlanSpec::verified_example();
        plan.period_s = Some(20.0);
        let o = outcome(&plan);
        assert!(o.widened);
        assert!(matches!(o.verdict, Verdict::Unknown(_)), "{:?}", o.verdict);
        let cs = codes(&o);
        assert!(cs.contains(&"C044"), "{cs:?}");
        assert!(!cs.contains(&"C040"), "{cs:?}");
    }

    #[test]
    fn exhaustion_straddle_reports_c043_alongside_the_launch_check() {
        // 80 mJ from a full buffer: drains below V_off at E/η but stays
        // above at E·η — a genuine unknown.
        let mut plan = PlanSpec::figure5_example();
        plan.launches.truncate(1);
        plan.launches[0].energy_mj = 80.0;
        let o = outcome(&plan);
        assert!(matches!(o.verdict, Verdict::Unknown(_)));
        let cs = codes(&o);
        assert!(cs.contains(&"C043"), "{cs:?}");
    }

    #[test]
    fn empty_plan_is_trivially_proved() {
        let plan = PlanSpec {
            recharge_power_mw: 8.0,
            v_start: None,
            period_s: None,
            launches: vec![],
        };
        let o = outcome(&plan);
        assert_eq!(o.verdict, Verdict::Proved);
        assert!(o.launch_envelopes.is_empty());
    }

    #[test]
    fn bad_period_is_inapplicable() {
        let mut plan = PlanSpec::verified_example();
        plan.period_s = Some(0.5); // does not cover the radio at 1 s
        let o = outcome(&plan);
        assert!(matches!(
            o.verdict,
            Verdict::Unknown(Imprecision {
                kind: ImprecisionKind::Inapplicable,
                ..
            })
        ));
        assert_eq!(codes(&o), vec!["C046"]);
    }

    #[test]
    fn unusable_numbers_are_inapplicable() {
        let mut plan = PlanSpec::figure5_example();
        plan.launches[0].energy_mj = f64::NAN;
        let o = outcome(&plan);
        assert_eq!(codes(&o), vec!["C046"]);
    }

    #[test]
    fn envelopes_enclose_scalar_prediction_for_the_figure5_plan() {
        // The scalar walk (exact declared energy, full declared harvest)
        // is one admissible trajectory; every launch envelope must
        // contain it.
        let plan = PlanSpec::figure5_example();
        let o = outcome(&plan);
        assert_eq!(o.launch_envelopes.len(), 2);
        // Scalar: 2.56 at sense; √(2.56² − 2·0.06/0.045) then 0.5 s of
        // 8 mW before the radio.
        let v_sense = 2.56_f64;
        let v_after = (v_sense * v_sense - 2.0 * 0.06 / 0.045).sqrt();
        let v_radio = (v_after * v_after + 2.0 * 0.008 * 0.5 / 0.045).sqrt();
        assert!(o.launch_envelopes[0].contains(Volts::new(v_sense)));
        assert!(
            o.launch_envelopes[1].contains(Volts::new(v_radio)),
            "{} should contain {v_radio}",
            o.launch_envelopes[1]
        );
    }

    #[test]
    fn verdict_tags_are_stable() {
        assert_eq!(Verdict::Proved.tag(), "proved");
        let o = outcome(&PlanSpec::figure5_example());
        assert_eq!(o.verdict.tag(), "unknown");
    }
}

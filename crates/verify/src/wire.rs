//! Wire conversion: [`VerifyOutcome`] → [`culpeo_api::VerifyResponse`].
//!
//! The daemon's `/v1/verify` handler, the CLI's `--format json` mode, and
//! the harness battery all serialise verdicts through this one function,
//! so the three surfaces cannot drift apart.

use culpeo_api::{CounterexampleDto, UnknownDto, VerifyFindingDto, VerifyResponse};

use crate::interp::{Verdict, VerifyOutcome};

/// The exit code a verdict maps to: 0 only for a proof, 1 otherwise
/// (`Refuted` and `Unknown` both mean "do not ship this schedule").
#[must_use]
pub fn exit_code(verdict: &Verdict) -> u32 {
    match verdict {
        Verdict::Proved => 0,
        Verdict::Refuted(_) | Verdict::Unknown(_) => 1,
    }
}

/// Builds the versioned wire document for one verification outcome.
#[must_use]
pub fn to_response(outcome: &VerifyOutcome) -> VerifyResponse {
    let counterexample = match &outcome.verdict {
        Verdict::Refuted(cex) => Some(CounterexampleDto {
            v_start_v: cex.v_start.get(),
            cycle: cex.cycle as u64,
            failing_launch: cex.failing_launch as u64,
            v_predicted_v: cex.v_predicted.get(),
            prefix: cex.prefix.clone(),
        }),
        _ => None,
    };
    let unknown = match &outcome.verdict {
        Verdict::Unknown(imp) => Some(UnknownDto {
            kind: imp.kind.tag().to_string(),
            task: imp.task.clone(),
            launch_index: imp.envelope.is_some().then_some(imp.launch_index as u64),
            envelope_lo_v: imp.envelope.map(|e| e.lo().get()),
            envelope_hi_v: imp.envelope.map(|e| e.hi().get()),
            requirement_v: imp.requirement.map(culpeo_units::Volts::get),
        }),
        _ => None,
    };
    VerifyResponse {
        schema_version: culpeo_api::SCHEMA_VERSION,
        verdict: outcome.verdict.tag().to_string(),
        iterations: outcome.iterations as u64,
        widened: outcome.widened,
        counterexample,
        unknown,
        findings: outcome
            .findings
            .iter()
            .map(|f| VerifyFindingDto {
                code: f.code.to_string(),
                severity: if f.error { "error" } else { "warning" }.to_string(),
                locus: f.locus.clone(),
                message: f.message.clone(),
                help: f.help.clone(),
            })
            .collect(),
        exit_code: exit_code(&outcome.verdict),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_with_model, VerifyConfig};
    use culpeo::PowerSystemModel;
    use culpeo_api::PlanSpec;

    fn respond(plan: &PlanSpec) -> VerifyResponse {
        let model = PowerSystemModel::capybara();
        to_response(&verify_with_model(&model, plan, &VerifyConfig::default()))
    }

    #[test]
    fn proved_response_has_no_optional_payloads() {
        let resp = respond(&PlanSpec::verified_example());
        assert_eq!(resp.verdict, "proved");
        assert_eq!(resp.exit_code, 0);
        assert!(resp.counterexample.is_none());
        assert!(resp.unknown.is_none());
        assert!(resp.findings.is_empty());
    }

    #[test]
    fn refuted_response_carries_the_witness() {
        let mut plan = PlanSpec::figure5_example();
        plan.launches[0].energy_mj = 200.0;
        plan.launches[0].v_delta = 0.3;
        let resp = respond(&plan);
        assert_eq!((resp.verdict.as_str(), resp.exit_code), ("refuted", 1));
        let cex = resp.counterexample.expect("witness");
        assert!(!cex.prefix.is_empty());
        assert!(cex.v_predicted_v <= 1.6 + 1e-9);
        assert!(resp.findings.iter().any(|f| f.code == "C040"));
    }

    #[test]
    fn unknown_response_names_the_blocking_interval() {
        let resp = respond(&PlanSpec::figure5_example());
        assert_eq!((resp.verdict.as_str(), resp.exit_code), ("unknown", 1));
        let unk = resp.unknown.expect("imprecision");
        assert_eq!(unk.kind, "launch-straddle");
        assert_eq!(unk.task, "radio");
        let (lo, hi) = (unk.envelope_lo_v.unwrap(), unk.envelope_hi_v.unwrap());
        let req = unk.requirement_v.unwrap();
        assert!(lo < req && req <= hi, "[{lo}, {hi}] vs {req}");
    }
}

//! Sound static verification of whole schedules (`culpeo verify`).
//!
//! The plan lints (C020–C023) walk a *scalar* voltage prediction: each
//! task consumes exactly its declared energy and every gap recharges at
//! exactly the declared power. That is a useful smell test but not a
//! proof — the real plant draws more than the model (booster loss, ESR
//! heating), harvesters drop out, and floating-point rounding cuts both
//! ways. This crate replaces the scalar walk with an *abstract
//! interpretation* over [`culpeo_units::IntervalV`]: a voltage envelope
//! `[v_lo, v_hi]` that provably brackets every admissible concrete
//! trajectory, propagated with directed (outward) rounding.
//!
//! The admissible-trajectory envelope, per launch:
//!
//! * **consumption**: the declared task energy `E` is the *model's* buffer
//!   draw; the physical draw is bracketed by the booster-efficiency band
//!   `[E·η(V_off), E/η(V_off)]` (a plant drawing `E` at the output rail
//!   costs up to `E/η` from the buffer; one that declared `E` as a buffer
//!   figure can physically draw as little as `E·η`);
//! * **harvest**: an idle gap of `g` seconds credits at most
//!   `P·g·(V_high/V_off)` (the declared power `P`, measured at the bottom
//!   of the range, scales with node voltage) and at least
//!   `P·max(0, d_min·g − t_out)` — a duty-cycled source that is on a
//!   fraction `d_min` of the time and can disappear for up to `t_out`
//!   seconds at a stretch. Gaps shorter than `t_out/d_min` therefore
//!   credit *nothing*: the zero-harvest envelope of Culpeo-PG's worst
//!   case;
//! * **requirement**: a launch is safe when the envelope's lower endpoint
//!   clears both the declared `V_safe` and the Theorem 1 floor derived
//!   from the model itself, `√((V_off + V_δ·r_max/r_min)² + 2E_hi/C)`,
//!   which charges the declared ESR dip up to the top of the measured
//!   ESR curve.
//!
//! Periodic plans ([`culpeo_api::PlanSpec::period_s`]) iterate the launch
//! list to a fixpoint with lattice join at the cycle boundary, widening to
//! the domain bounds after [`VerifyConfig::widen_after`] rounds so the
//! iteration always terminates. The result is a three-valued verdict:
//!
//! * [`Verdict::Proved`] — every admissible trajectory clears every
//!   launch; Theorem 1 holds for the whole schedule.
//! * [`Verdict::Refuted`] — even the *best-case* trajectory (minimal
//!   draw, maximal harvest) exhausts the buffer; the attached
//!   [`Counterexample`] is a concrete minimal schedule prefix plus a
//!   starting voltage that browns out when replayed through
//!   `culpeo-powersim` (see [`replay`]).
//! * [`Verdict::Unknown`] — the envelope straddles a requirement; the
//!   attached [`Imprecision`] names the blocking interval and the launch
//!   where precision was lost.
//!
//! Verdicts surface as diagnostics C040–C046 through
//! `culpeo-analyze`'s registry; see `DESIGN.md` §11 for the full table
//! and the soundness argument.

#![forbid(unsafe_code)]

pub mod certified;
pub mod interp;
pub mod replay;
pub mod rolling;
pub mod wire;

pub use certified::{apply_certificates, verify_certified};
pub use interp::{
    verify_plan, verify_with_model, Counterexample, Finding, Imprecision, ImprecisionKind, Verdict,
    VerifyOutcome,
};
pub use replay::{plant_from_model, replay_duration, replay_on, synthesize_profile, ReplayOutcome};
pub use rolling::{rolling_envelope, RollingConfig, RollingVerdict};
pub use wire::{exit_code, to_response};

/// Tunable envelope parameters for the abstract interpreter.
///
/// The defaults are matched to the fault-injection battery's
/// `dropout_harvester` family (duty ≥ 0.3, dropout windows ≤ 3 s), so a
/// `Proved` plan survives every harvester that battery can throw at it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyConfig {
    /// Minimum fraction of any idle gap the harvester is actually on.
    pub duty_min: f64,
    /// Longest contiguous harvester outage, in seconds. Gaps shorter than
    /// `outage_s / duty_min` credit no harvest at all.
    pub outage_s: f64,
    /// How many hyperperiods the concrete best-case unroll searches for a
    /// certain-exhaustion counterexample before giving up.
    pub unroll_cycles: usize,
    /// Fixpoint rounds before the entry envelope is widened to the domain
    /// bounds (`[0, V_high]` on the moving side).
    pub widen_after: usize,
    /// Hard cap on fixpoint rounds (defensive; widening converges long
    /// before this).
    pub max_iterations: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        Self {
            duty_min: 0.3,
            outage_s: 3.0,
            unroll_cycles: 64,
            widen_after: 8,
            max_iterations: 64,
        }
    }
}

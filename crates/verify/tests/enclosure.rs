//! Enclosure property: the interval interpreter's launch envelopes must
//! contain the scalar `culpeo-sched` prediction for every randomized
//! plan. The scalar walk (exact declared energy, the full declared
//! harvest power) is one admissible trajectory inside the verifier's
//! uncertainty band, so an envelope that ever excludes it is unsound.

use culpeo::compose::TaskRequirement;
use culpeo::PowerSystemModel;
use culpeo_api::{LaunchSpec, PlanSpec};
use culpeo_sched::feasibility::{predicted_voltages, PlanContext, PlannedLaunch};
use culpeo_units::{Joules, Seconds, Volts, Watts};
use culpeo_verify::{verify_with_model, VerifyConfig};
use proptest::prelude::*;

const TASK_NAMES: [&str; 4] = ["sense", "radio", "log", "compute"];

fn plan_from(power_mw: f64, n: usize, gap_s: f64, e_mj: f64, v_delta: f64) -> PlanSpec {
    PlanSpec {
        recharge_power_mw: power_mw,
        v_start: Some(2.56),
        period_s: None,
        launches: (0..n)
            .map(|i| LaunchSpec {
                task: TASK_NAMES[i % TASK_NAMES.len()].to_string(),
                start_s: gap_s * i as f64,
                energy_mj: e_mj * (1.0 + 0.3 * i as f64),
                v_delta,
                v_safe: Some(1.7),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn launch_envelopes_enclose_the_scalar_prediction(
        power_mw in 0.0..30.0f64,
        n in 1usize..5,
        gap_s in 0.1..40.0f64,
        e_mj in 0.5..40.0f64,
        v_delta in 0.0..0.4f64,
    ) {
        let model = PowerSystemModel::capybara();
        let plan = plan_from(power_mw, n, gap_s, e_mj, v_delta);
        let outcome = verify_with_model(&model, &plan, &VerifyConfig::default());
        prop_assert_eq!(outcome.launch_envelopes.len(), plan.launches.len());

        let ctx = PlanContext {
            capacitance: model.capacitance(),
            v_off: model.v_off(),
            v_high: model.v_high(),
            recharge_power: Watts::from_milli(plan.recharge_power_mw),
            v_start: Volts::new(2.56),
        };
        let launches: Vec<PlannedLaunch> = plan
            .launches
            .iter()
            .map(|l| PlannedLaunch {
                start: Seconds::new(l.start_s),
                requirement: TaskRequirement {
                    buffer_energy: Joules::new(l.energy_mj * 1e-3),
                    v_delta: Volts::new(l.v_delta),
                },
                v_safe: l.v_safe.map_or(ctx.v_off, Volts::new),
            })
            .collect();
        let scalar = predicted_voltages(&launches, &ctx);
        for (env, v) in outcome.launch_envelopes.iter().zip(&scalar) {
            prop_assert!(
                env.contains(*v),
                "envelope {} excludes the scalar prediction {}", env, v
            );
        }
    }

    // A periodic plan's fixpoint envelopes must still enclose the scalar
    // first-cycle prediction: the fixpoint entry contains the start point.
    #[test]
    fn periodic_envelopes_enclose_cycle_one(
        power_mw in 0.0..30.0f64,
        gap_s in 0.5..20.0f64,
        e_mj in 0.5..30.0f64,
    ) {
        let model = PowerSystemModel::capybara();
        let mut plan = plan_from(power_mw, 2, gap_s, e_mj, 0.1);
        plan.period_s = Some(gap_s * 2.0 + 30.0);
        let outcome = verify_with_model(&model, &plan, &VerifyConfig::default());

        let ctx = PlanContext {
            capacitance: model.capacitance(),
            v_off: model.v_off(),
            v_high: model.v_high(),
            recharge_power: Watts::from_milli(plan.recharge_power_mw),
            v_start: Volts::new(2.56),
        };
        let launches: Vec<PlannedLaunch> = plan
            .launches
            .iter()
            .map(|l| PlannedLaunch {
                start: Seconds::new(l.start_s),
                requirement: TaskRequirement {
                    buffer_energy: Joules::new(l.energy_mj * 1e-3),
                    v_delta: Volts::new(l.v_delta),
                },
                v_safe: Volts::new(1.7),
            })
            .collect();
        let scalar = predicted_voltages(&launches, &ctx);
        for (env, v) in outcome.launch_envelopes.iter().zip(&scalar) {
            prop_assert!(
                env.contains(*v),
                "fixpoint envelope {} excludes cycle-1 scalar {}", env, v
            );
        }
    }
}

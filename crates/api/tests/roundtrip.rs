//! Wire-layer property tests: every DTO must survive
//! serialise → parse → compare, bit-for-bit, under randomized contents.
//!
//! The vendored proptest stub has no string strategies, so text fields
//! are synthesized from numeric draws (labels picked from a fixed pool,
//! CSV bodies formatted from floats). Rust's `{}` float formatting emits
//! the shortest round-trippable decimal, so `f64` fields compare exactly
//! after a JSON round trip.

use culpeo_api::{
    ApiError, ApiErrorKind, BatchItem, BatchOutcome, BatchRequest, BatchResponse, CacheMetrics,
    CounterexampleDto, EndpointMetrics, HealthResponse, LintRequest, LintResponse, MetricsResponse,
    NamedTrace, PlanSpec, ShedMetrics, SystemSpec, UnknownDto, VerifyFindingDto, VerifyRequest,
    VerifyResponse, VsafeRequest, VsafeResponse, SCHEMA_VERSION,
};
use proptest::prelude::*;

/// A label from a small fixed pool.
fn label(i: usize) -> String {
    const POOL: [&str; 6] = ["ble", "adc", "mcu-active", "trace 7", "αβ", "a\"b\\c"];
    POOL[i % POOL.len()].to_string()
}

/// A plausible trace-CSV body synthesized from two floats.
fn csv(a: f64, b: f64) -> String {
    format!("# dt_us: 8\n0.0,{a}\n0.000008,{b}\n")
}

fn spec_from(cap: f64, esr_sel: u32, v: (f64, f64, f64), points: usize) -> SystemSpec {
    let mut spec = SystemSpec::capybara();
    spec.capacitance_mf = cap;
    spec.v_out = v.0;
    spec.v_off = v.1;
    spec.v_high = v.2;
    match esr_sel {
        0 => {
            spec.esr_ohms = Some(cap / 10.0);
            spec.esr_curve = None;
        }
        1 => {
            spec.esr_ohms = None;
            spec.esr_curve = Some(
                (0..points.max(1))
                    .map(|i| (1000.0 * (i + 1) as f64, 0.5 + cap / (i + 1) as f64))
                    .collect(),
            );
        }
        _ => {} // keep capybara's own ESR fields
    }
    spec.efficiency.points = (0..points.max(2))
        .map(|i| (0.5 + i as f64 * 0.5, 0.80 + 0.01 * i as f64))
        .collect();
    spec
}

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::Deserialize,
{
    let json = serde_json::to_string(value).expect("serialise");
    serde_json::from_str(&json).expect("parse back")
}

proptest! {
    #[test]
    fn system_spec_roundtrips(
        cap in 0.001..1000.0f64,
        esr_sel in 0u32..3,
        v in (1.0..5.0f64, 0.1..1.0f64, 3.0..6.0f64),
        points in 1usize..5,
    ) {
        let spec = spec_from(cap, esr_sel, v, points);
        prop_assert_eq!(roundtrip(&spec), spec);
    }

    #[test]
    fn plan_spec_roundtrips(
        power in 0.0..500.0f64,
        with_vstart in 0u32..2,
        n in 0usize..4,
        t in (0.0..10.0f64, 0.0..100.0f64, 0.0..0.5f64),
        with_vsafe in 0u32..2,
    ) {
        let plan = PlanSpec {
            recharge_power_mw: power,
            v_start: (with_vstart == 1).then_some(t.0),
            period_s: (with_vstart == 0).then_some(t.1 + 1.0),
            launches: (0..n)
                .map(|i| culpeo_api::LaunchSpec {
                    task: label(i),
                    start_s: t.0 * (i + 1) as f64,
                    energy_mj: t.1,
                    v_delta: t.2,
                    v_safe: (with_vsafe == 1).then_some(t.0 + t.2),
                })
                .collect(),
        };
        prop_assert_eq!(roundtrip(&plan), plan);
    }

    #[test]
    fn vsafe_request_roundtrips(
        versioned in 0u32..2,
        with_spec in 0u32..2,
        a in 0.0..0.5f64,
        b in 0.0..0.5f64,
    ) {
        let req = VsafeRequest {
            schema_version: (versioned == 1).then_some(SCHEMA_VERSION),
            spec: (with_spec == 1).then_some(SystemSpec::capybara()),
            trace_csv: csv(a, b),
        };
        prop_assert_eq!(roundtrip(&req), req);
    }

    #[test]
    fn vsafe_response_roundtrips(
        li in 0usize..6,
        vs in (2.0..5.0f64, 0.0..1.0f64, 0.0..0.1f64, 2.0..5.0f64),
    ) {
        let resp = VsafeResponse {
            schema_version: SCHEMA_VERSION,
            label: label(li),
            v_safe_v: vs.0,
            v_delta_v: vs.1,
            buffer_energy_j: vs.2,
            energy_only_v: vs.3,
            report: format!("V_safe (Culpeo-PG) : {} V\nline two {}\n", vs.0, label(li)),
        };
        prop_assert_eq!(roundtrip(&resp), resp);
    }

    #[test]
    fn lint_request_roundtrips(
        n in 0usize..4,
        a in 0.0..0.5f64,
        with_plan in 0u32..2,
        power in 0.0..100.0f64,
        deny in 0u32..2,
    ) {
        let req = LintRequest {
            schema_version: None,
            spec: SystemSpec::capybara(),
            traces: (0..n)
                .map(|i| NamedTrace { name: label(i), csv: csv(a, a * (i + 1) as f64) })
                .collect(),
            plan: (with_plan == 1).then_some(PlanSpec {
                recharge_power_mw: power,
                v_start: None,
                period_s: None,
                launches: Vec::new(),
            }),
            deny_warnings: deny == 1,
        };
        prop_assert_eq!(roundtrip(&req), req);
    }

    #[test]
    fn lint_response_roundtrips(
        counts in (0u64..100, 0u64..100),
        doc_n in 0.0..9.0f64,
    ) {
        let report = serde_json::parse_value_str(&format!(
            r#"{{"version": 1, "errors": {}, "diagnostics": [{{"code": "C001", "x": {doc_n}}}]}}"#,
            counts.0
        )).unwrap();
        let resp = LintResponse {
            schema_version: SCHEMA_VERSION,
            errors: counts.0,
            warnings: counts.1,
            exit_code: u32::from(counts.0 > 0),
            report,
        };
        prop_assert_eq!(roundtrip(&resp), resp);
    }

    #[test]
    fn verify_request_roundtrips(
        versioned in 0u32..2,
        power in 0.0..100.0f64,
    ) {
        let mut plan = PlanSpec::verified_example();
        plan.recharge_power_mw = power;
        let req = VerifyRequest {
            schema_version: (versioned == 1).then_some(SCHEMA_VERSION),
            spec: SystemSpec::capybara(),
            plan,
        };
        prop_assert_eq!(roundtrip(&req), req);
    }

    #[test]
    fn verify_response_roundtrips(
        kind_sel in 0u32..3,
        iters in 1u64..64,
        vs in (0.0..3.0f64, 0.0..3.0f64, 1.5..2.5f64),
        li in 0usize..6,
    ) {
        let verdict = ["proved", "refuted", "unknown"][kind_sel as usize];
        let counterexample = (kind_sel == 1).then(|| CounterexampleDto {
            v_start_v: vs.0 + 1.0,
            cycle: iters,
            failing_launch: 0,
            v_predicted_v: vs.1,
            prefix: PlanSpec::verified_example().launches,
        });
        let unknown = (kind_sel == 2).then(|| UnknownDto {
            kind: "launch-straddle".to_string(),
            task: label(li),
            launch_index: Some(1),
            envelope_lo_v: Some(vs.0),
            envelope_hi_v: Some(vs.0 + vs.1),
            requirement_v: Some(vs.2),
        });
        let resp = VerifyResponse {
            schema_version: SCHEMA_VERSION,
            verdict: verdict.to_string(),
            iterations: iters,
            widened: kind_sel == 2,
            counterexample,
            unknown,
            findings: vec![VerifyFindingDto {
                code: "C042".to_string(),
                severity: "error".to_string(),
                locus: format!("launch '{}'", label(li)),
                message: format!("envelope [{}, {}] straddles {}", vs.0, vs.0 + vs.1, vs.2),
                help: (kind_sel == 2).then(|| "raise recharge power".to_string()),
            }],
            exit_code: u32::from(kind_sel != 0),
        };
        prop_assert_eq!(roundtrip(&resp), resp);
    }

    #[test]
    fn batch_request_roundtrips(
        n in 1usize..5,
        kind_seed in 0u32..2,
        a in 0.0..0.5f64,
    ) {
        let items = (0..n)
            .map(|i| {
                if (i as u32 + kind_seed).is_multiple_of(2) {
                    BatchItem {
                        vsafe: Some(VsafeRequest {
                            schema_version: None,
                            spec: None,
                            trace_csv: csv(a, a + i as f64),
                        }),
                        lint: None,
                    }
                } else {
                    BatchItem {
                        vsafe: None,
                        lint: Some(LintRequest {
                            schema_version: None,
                            spec: SystemSpec::capybara(),
                            traces: Vec::new(),
                            plan: None,
                            deny_warnings: false,
                        }),
                    }
                }
            })
            .collect();
        let req = BatchRequest { schema_version: Some(SCHEMA_VERSION), items };
        for (i, item) in req.items.iter().enumerate() {
            prop_assert!(item.validate(i).is_ok());
        }
        prop_assert_eq!(roundtrip(&req), req);
    }

    #[test]
    fn batch_response_roundtrips(
        kinds in (0u32..2, 0u32..2),
        v in 2.0..5.0f64,
        ki in 0usize..10,
    ) {
        let ok = BatchOutcome {
            vsafe: Some(VsafeResponse {
                schema_version: SCHEMA_VERSION,
                label: label(kinds.0 as usize),
                v_safe_v: v,
                v_delta_v: v / 10.0,
                buffer_energy_j: v / 100.0,
                energy_only_v: v - 0.1,
                report: "r".to_string(),
            }),
            lint: None,
            error: None,
        };
        let err = BatchOutcome {
            vsafe: None,
            lint: None,
            error: Some(ApiError::new(
                ApiErrorKind::all()[ki % ApiErrorKind::all().len()],
                format!("failed at {v}"),
            )),
        };
        let resp = BatchResponse {
            schema_version: SCHEMA_VERSION,
            results: vec![ok, err],
        };
        prop_assert_eq!(roundtrip(&resp), resp);
    }

    #[test]
    fn health_and_metrics_roundtrip(
        uptime in 0.0..1.0e6f64,
        threads in 1u64..64,
        c in (0u64..1000, 0u64..1000, 0u64..1000),
        lat in (0u64..10_000_000, 0u64..10_000_000),
    ) {
        let health = HealthResponse {
            schema_version: SCHEMA_VERSION,
            status: "ok".to_string(),
            uptime_s: uptime,
            threads,
        };
        prop_assert_eq!(roundtrip(&health), health);

        let metrics = MetricsResponse {
            schema_version: SCHEMA_VERSION,
            uptime_s: uptime,
            endpoints: vec![EndpointMetrics {
                path: "/v1/vsafe".to_string(),
                requests: c.0,
                errors: c.1,
                total_latency_us: lat.0,
                max_latency_us: lat.1,
            }],
            cache: CacheMetrics {
                entries: c.0,
                capacity: c.1,
                hits: c.2,
                misses: lat.0,
                evictions: lat.1,
            },
            shed: ShedMetrics {
                read_timeouts: c.0,
                write_timeouts: c.1,
                deadline_closes: c.2,
                oversize_rejects: lat.0,
                handler_panics: lat.1,
                lock_recoveries: c.0,
            },
        };
        prop_assert_eq!(roundtrip(&metrics), metrics);
    }

    #[test]
    fn api_error_roundtrips_for_every_kind(ki in 0usize..10, mi in 0usize..6) {
        let kinds = ApiErrorKind::all();
        let e = ApiError::new(kinds[ki % kinds.len()], label(mi));
        prop_assert_eq!(roundtrip(&e), e);
    }
}

//! The versioned request/response DTOs for every Culpeo analysis surface.
//!
//! One request shape per question, one response shape per answer, all
//! stamped with [`crate::SCHEMA_VERSION`]. The daemon (`culpeo-served`),
//! the CLI, and the harness drivers all speak these types; nothing else
//! goes over the wire or into `results/*.json` envelopes.
//!
//! Requests carry their payloads *inline* (trace CSV text, spec JSON
//! object) rather than as file paths: the daemon must not read the
//! client's filesystem, and inline payloads are what make content-hash
//! memoization sound.

use serde::{Deserialize, Serialize, Value};

use crate::error::ApiError;
use crate::plan::PlanSpec;
use crate::spec::SystemSpec;

/// Checks a request's optional `schema_version` claim against the
/// versions this build accepts. Absent means "current".
///
/// Responses are always stamped [`crate::SCHEMA_VERSION`]; *requests*
/// may claim any entry of [`crate::ACCEPTED_SCHEMA_VERSIONS`] — the
/// schema-1 request shapes are a strict subset of schema-2's, so an old
/// client keeps working against a new daemon.
///
/// # Errors
///
/// Returns an [`ApiError`] of kind `unsupported_version` on mismatch.
pub fn check_schema_version(claimed: Option<u32>) -> Result<(), ApiError> {
    match claimed {
        None => Ok(()),
        Some(v) if crate::ACCEPTED_SCHEMA_VERSIONS.contains(&v) => Ok(()),
        Some(v) => Err(ApiError::new(
            crate::error::ApiErrorKind::UnsupportedVersion,
            format!(
                "request claims schema_version {v}; this build speaks {:?}",
                crate::ACCEPTED_SCHEMA_VERSIONS
            ),
        )),
    }
}

/// Wraps an already-rendered JSON payload in the schema-2 envelope the
/// *local* surfaces (CLI `--format json`, harness result files) stamp:
/// `{"schema_version":N,"data":…}`.
///
/// This is the daemon envelope minus the members that only make sense
/// with a server in the loop — no `request_id` (nothing to correlate)
/// and no `server_timing`. Pinned against the daemon generation in
/// `crates/served/tests/api_compat.rs`.
#[must_use]
pub fn cli_envelope(data: &str) -> String {
    format!(
        "{{\"schema_version\":{},\"data\":{data}}}",
        crate::SCHEMA_VERSION
    )
}

/// The `server_timing` member of every schema-2 response envelope: how
/// long the request sat in the accept/compute queue and how long the
/// handler actually ran, both in microseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerTiming {
    /// Microseconds between the reactor parsing the request and a
    /// compute worker picking it up.
    pub queue_us: u64,
    /// Microseconds the handler ran for.
    pub compute_us: u64,
    /// Microseconds the handler spent waiting on log durability
    /// (group-commit fsync). Present only on ingest answers; absent
    /// keeps pre-store envelopes byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fsync_us: Option<u64>,
}

/// `POST /v1/vsafe` — compute the ESR-aware `V_safe` for one task trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VsafeRequest {
    /// Optional version claim; absent means "current".
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub schema_version: Option<u32>,
    /// The system spec to analyse against; absent means the Capybara
    /// reference configuration (the CLI's `--system` default).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub spec: Option<SystemSpec>,
    /// The task's current trace as `culpeo-trace v1` CSV text.
    pub trace_csv: String,
}

/// The answer to a [`VsafeRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VsafeResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The trace's own label.
    pub label: String,
    /// ESR-aware safe starting voltage (Culpeo-PG), in volts.
    pub v_safe_v: f64,
    /// Worst-case ESR-induced recoverable drop `V_δ`, in volts.
    pub v_delta_v: f64,
    /// Buffer energy the task draws, in joules.
    pub buffer_energy_j: f64,
    /// The energy-only (ESR-blind) estimate, in volts, for comparison.
    pub energy_only_v: f64,
    /// The human-readable report, byte-identical to what
    /// `culpeo vsafe --trace` prints for the same inputs.
    pub report: String,
}

/// One named trace payload inside a [`LintRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedTrace {
    /// Diagnostic locus (the client's file name, typically).
    pub name: String,
    /// The raw `culpeo-trace v1` CSV text, corruption and all — the lint
    /// battery wants to *see* NaNs, not have the parser reject them.
    pub csv: String,
}

/// `POST /v1/lint` — run the C0xx static battery over a spec and
/// optional traces / plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintRequest {
    /// Optional version claim; absent means "current".
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub schema_version: Option<u32>,
    /// The spec under analysis.
    pub spec: SystemSpec,
    /// Zero or more traces to lint against the spec.
    #[serde(default)]
    pub traces: Vec<NamedTrace>,
    /// An optional schedule to lint against the spec.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub plan: Option<PlanSpec>,
    /// When set, warnings count toward the exit code exactly like errors
    /// (the CLI's `--deny-warnings`). Defaults to off.
    #[serde(default)]
    pub deny_warnings: bool,
}

/// The answer to a [`LintRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Error-severity diagnostic count.
    pub errors: u64,
    /// Warning-severity diagnostic count.
    pub warnings: u64,
    /// The exit code the CLI would have returned (1 if any error fired).
    pub exit_code: u32,
    /// The battery's versioned JSON report document, embedded verbatim
    /// (the same document `culpeo lint --format json` prints).
    pub report: Value,
}

/// `POST /v1/verify` — statically verify Theorem 1 over a whole schedule
/// with the `culpeo-verify` interval abstract interpreter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifyRequest {
    /// Optional version claim; absent means "current".
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub schema_version: Option<u32>,
    /// The system spec the schedule runs on.
    pub spec: SystemSpec,
    /// The schedule under verification.
    pub plan: PlanSpec,
}

/// A replayable witness inside a `refuted` [`VerifyResponse`]: the
/// schedule prefix (absolute start times) that exhausts the buffer even
/// under best-case physics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterexampleDto {
    /// The starting buffer voltage the witness assumes, in volts.
    pub v_start_v: f64,
    /// 1-based hyperperiod cycle in which exhaustion is certain.
    pub cycle: u64,
    /// Index (into `prefix`) of the launch that exhausts the buffer.
    pub failing_launch: u64,
    /// The best-case internal voltage after that launch, in volts.
    pub v_predicted_v: f64,
    /// The unrolled launch prefix to replay, absolute start times.
    pub prefix: Vec<crate::plan::LaunchSpec>,
}

/// Where and why the verifier lost precision, inside an `unknown`
/// [`VerifyResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnknownDto {
    /// Stable kind tag: `"launch-straddle"`,
    /// `"envelope-below-requirement"`, `"exhaustion-straddle"`, or
    /// `"inapplicable"`.
    pub kind: String,
    /// The task whose check blocked the proof (empty for
    /// `"inapplicable"`).
    pub task: String,
    /// Index of the blocking launch in the plan, when one exists.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub launch_index: Option<u64>,
    /// Lower end of the blocking voltage envelope, in volts.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub envelope_lo_v: Option<f64>,
    /// Upper end of the blocking voltage envelope, in volts.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub envelope_hi_v: Option<f64>,
    /// The launch requirement the envelope failed to clear, in volts.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub requirement_v: Option<f64>,
}

/// One verifier finding (C040–C046) in wire form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifyFindingDto {
    /// Diagnostic code (`"C040"`…`"C046"`).
    pub code: String,
    /// `"error"` or `"warning"`.
    pub severity: String,
    /// What the finding is about (launch, period, spec).
    pub locus: String,
    /// The finding text.
    pub message: String,
    /// Optional remediation hint.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub help: Option<String>,
}

/// The answer to a [`VerifyRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifyResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// `"proved"`, `"refuted"`, or `"unknown"`.
    pub verdict: String,
    /// Fixpoint iterations the abstract interpreter ran.
    pub iterations: u64,
    /// Whether widening was applied to force convergence.
    pub widened: bool,
    /// The replayable witness, set exactly when `verdict == "refuted"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub counterexample: Option<CounterexampleDto>,
    /// The blocking imprecision, set exactly when `verdict == "unknown"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub unknown: Option<UnknownDto>,
    /// Every C040–C046 finding, in report order.
    pub findings: Vec<VerifyFindingDto>,
    /// The exit code the CLI would have returned (0 only for `proved`).
    pub exit_code: u32,
}

/// One costed operation inside a [`NodeDto`] block: energy and time
/// bands plus the worst-case rail current.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpDto {
    /// What the op is ("ble-tx", "feature-extract", …).
    pub name: String,
    /// Lower energy endpoint, millijoules at the output rail.
    pub energy_mj_lo: f64,
    /// Upper energy endpoint, millijoules at the output rail.
    pub energy_mj_hi: f64,
    /// Lower duration endpoint, milliseconds.
    pub time_ms_lo: f64,
    /// Upper duration endpoint, milliseconds.
    pub time_ms_hi: f64,
    /// Worst-case instantaneous rail current, milliamps.
    pub peak_ma: f64,
}

/// One node of a [`TaskGraphDto`] arena.
///
/// (The vendored serde stub derives structs only, so the node sum type is
/// spelled as a `kind` tag plus optional payloads: `"block"` uses `ops`,
/// `"seq"` uses `children` in order, `"branch"` uses `children` as
/// `[then, else]`, `"loop"` uses `children` as `[body]` with
/// `bound_lo`/`bound_hi` — both absent meaning *unbounded*.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeDto {
    /// Diagnostic label.
    pub label: String,
    /// `"block"`, `"seq"`, `"branch"`, or `"loop"`.
    pub kind: String,
    /// The ops of a `"block"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ops: Option<Vec<OpDto>>,
    /// Child node indices (meaning depends on `kind`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub children: Option<Vec<u32>>,
    /// Declared lower iteration bound of a `"loop"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub bound_lo: Option<u32>,
    /// Declared upper iteration bound of a `"loop"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub bound_hi: Option<u32>,
}

/// A whole task graph in wire form: a flat node arena plus its entry
/// index — the same shape `culpeo-wcec`'s in-memory IR uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraphDto {
    /// Task name; certificates key on it.
    pub name: String,
    /// The node arena.
    pub nodes: Vec<NodeDto>,
    /// Entry node index.
    pub root: u32,
}

/// `POST /v1/wcec` — statically derive worst-case energy/latency
/// certificates for a batch of task graphs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WcecRequest {
    /// Optional version claim; absent means "current".
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub schema_version: Option<u32>,
    /// The system spec supplying the rail voltage and ESR used to derive
    /// `V_δ`; the daemon's default model applies when absent.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub spec: Option<SystemSpec>,
    /// The task graphs to certify, answered in input order.
    pub tasks: Vec<TaskGraphDto>,
}

/// One task's worst-case certificate in wire form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertificateDto {
    /// The task the certificate covers.
    pub task: String,
    /// Best-case output-rail energy, millijoules.
    pub energy_mj_lo: f64,
    /// Worst-case output-rail energy, millijoules.
    pub energy_mj_hi: f64,
    /// Best-case latency, seconds.
    pub time_s_lo: f64,
    /// Worst-case latency, seconds.
    pub time_s_hi: f64,
    /// Worst-case instantaneous rail current, milliamps.
    pub peak_ma: f64,
    /// The worst-case ESR dip `V_δ = I_peak · R_max` on the analyzed
    /// model's buffer, volts. Absent when no model was supplied.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub v_delta_v: Option<f64>,
    /// Distinct acyclic paths the interval covers (saturating).
    pub paths: u64,
    /// Bounded loops multiplied through symbolically.
    pub loops: u32,
}

/// One row of a [`WcecResponse`]: a certificate or the blocking node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WcecTaskRow {
    /// The task this row answers for.
    pub task: String,
    /// `"certified"` or `"unknown"`.
    pub status: String,
    /// The certificate, set exactly when `status == "certified"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub certificate: Option<CertificateDto>,
    /// Label of the blocking node, set when `status == "unknown"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub blocking: Option<String>,
    /// Why precision was lost there, set when `status == "unknown"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub reason: Option<String>,
}

/// The answer to a [`WcecRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WcecResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// One row per requested task, in input order.
    pub tasks: Vec<WcecTaskRow>,
    /// How many rows are `"certified"`.
    pub certified: u64,
    /// How many rows are `"unknown"`.
    pub unknown: u64,
    /// The exit code the CLI would have returned (0 only when every
    /// task certified).
    pub exit_code: u32,
}

/// One entry of a [`BatchRequest`]: exactly one of the fields is set.
///
/// (The vendored serde stub derives structs only, so the sum type is
/// spelled as a struct of options with an exactly-one invariant, checked
/// by [`BatchItem::validate`].)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchItem {
    /// A `V_safe` computation.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub vsafe: Option<VsafeRequest>,
    /// A lint battery run.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub lint: Option<LintRequest>,
}

impl BatchItem {
    /// Confirms exactly one request field is populated.
    ///
    /// # Errors
    ///
    /// Returns a `bad_request` [`ApiError`] naming the item index.
    pub fn validate(&self, index: usize) -> Result<(), ApiError> {
        match (&self.vsafe, &self.lint) {
            (Some(_), None) | (None, Some(_)) => Ok(()),
            _ => Err(ApiError::bad_request(format!(
                "batch item {index} must set exactly one of `vsafe` or `lint`"
            ))),
        }
    }
}

/// `POST /v1/batch` — many analyses in one round trip; items fan out
/// over the daemon's `Sweep` worker pool and come back in input order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRequest {
    /// Optional version claim; absent means "current".
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub schema_version: Option<u32>,
    /// The analyses to run, answered in input order.
    pub items: Vec<BatchItem>,
}

/// One entry of a [`BatchResponse`]: the item's answer or its error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// Set when the item was a successful `vsafe` request.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub vsafe: Option<VsafeResponse>,
    /// Set when the item was a successful `lint` request.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub lint: Option<LintResponse>,
    /// Set when the item failed; the other fields are absent.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<ApiError>,
}

/// The answer to a [`BatchRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Per-item outcomes, in request order.
    pub results: Vec<BatchOutcome>,
}

/// `GET /v1/health` — liveness and drain state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// `"ok"` while serving, `"draining"` once shutdown has begun.
    pub status: String,
    /// Seconds since the daemon started.
    pub uptime_s: f64,
    /// Worker threads serving requests.
    pub threads: u64,
}

/// Counters for one endpoint, inside a [`MetricsResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointMetrics {
    /// Endpoint path (`"/v1/vsafe"`, …).
    pub path: String,
    /// Requests answered (including error answers).
    pub requests: u64,
    /// Requests answered with an [`ApiError`].
    pub errors: u64,
    /// Total handling wall-clock across those requests, in microseconds.
    pub total_latency_us: u64,
    /// Worst single-request handling wall-clock, in microseconds.
    pub max_latency_us: u64,
}

/// Counters for the `V_safe` memoization cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheMetrics {
    /// Entries currently resident.
    pub entries: u64,
    /// Configured capacity (entries).
    pub capacity: u64,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

/// Load-shed and self-healing counters, inside a [`MetricsResponse`].
///
/// Each row counts a way the daemon refused or recovered from work
/// rather than letting it wedge a worker: slow readers/writers cut off
/// by socket timeouts, connections past their wall-clock deadline, and
/// poisoned-lock recoveries after an injected handler panic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedMetrics {
    /// Connections closed because the client stalled while we read the
    /// request (read timeout → 408).
    pub read_timeouts: u64,
    /// Connections closed because the client stalled while we wrote the
    /// response (write timeout).
    pub write_timeouts: u64,
    /// Connections closed because they exceeded the per-connection
    /// wall-clock deadline.
    pub deadline_closes: u64,
    /// Requests refused with 413 because the head or body exceeded caps.
    pub oversize_rejects: u64,
    /// Handler panics caught and answered as 500 instead of crashing.
    pub handler_panics: u64,
    /// Times a worker found the cache lock poisoned and recovered by
    /// clearing the cache instead of aborting.
    pub lock_recoveries: u64,
}

/// `POST /v1/fleet` — register a batch of digital device twins.
///
/// Every twin in the batch shares one (spec, trace, plan) triple; the
/// shard scheduler advances them through `Lanes<8>` kernel rounds, each
/// twin descending its start voltage from `V_high` by `v_step_mv` per
/// completed round until its task browns out. The lowest completing
/// start voltage is the twin's *empirical* `V_safe` estimate; its drift
/// against the static Culpeo-PG prediction is what `/v1/fleet/:id` and
/// the `/v1/fleet/events` stream report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRegisterRequest {
    /// Optional version claim; absent means "current".
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub schema_version: Option<u32>,
    /// The system spec every twin runs on; absent means the Capybara
    /// reference configuration.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub spec: Option<SystemSpec>,
    /// The task trace every twin executes, as `culpeo-trace v1` CSV.
    pub trace_csv: String,
    /// An optional schedule to verify per twin at registration; its
    /// `culpeo-verify` verdict is carried on every twin snapshot.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub plan: Option<PlanSpec>,
    /// How many twins to register (default 8, capped by the daemon).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub count: Option<u32>,
    /// Kernel rounds to advance each twin through (default 16).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rounds: Option<u32>,
    /// Start-voltage descent per completed round, in millivolts
    /// (default 20 mV).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub v_step_mv: Option<f64>,
}

/// The answer to a [`FleetRegisterRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRegisterResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Twins registered by this request.
    pub registered: u64,
    /// First twin id assigned to this batch (ids are dense).
    pub first_id: u64,
    /// Total twins resident in the fleet after this registration.
    pub fleet_size: u64,
    /// Shards (of ≤ 8 twins) the scheduler will advance per round.
    pub shards: u64,
    /// The static Culpeo-PG `V_safe` prediction for the shared trace, in
    /// volts — the reference every twin's drift is measured against.
    pub static_vsafe_v: f64,
    /// The `culpeo-verify` verdict for the shared plan (`"proved"`,
    /// `"refuted"`, `"unknown"`), or `"unverified"` when no plan was
    /// supplied.
    pub verify_verdict: String,
}

/// `GET /v1/fleet/:id` — one twin's current snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTwinResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The twin's dense id.
    pub id: u64,
    /// Kernel rounds completed so far.
    pub rounds_done: u64,
    /// Kernel rounds this twin was registered for.
    pub rounds_target: u64,
    /// Rounds that ended in brownout (task did not complete).
    pub brownouts: u64,
    /// The start voltage the next round will launch from, in volts.
    pub v_start_v: f64,
    /// Final buffer voltage of the last completed round, in volts.
    pub last_v_final_v: f64,
    /// Lowest start voltage that still completed the task, in volts —
    /// the twin's empirical `V_safe` estimate so far.
    pub vsafe_estimate_v: f64,
    /// The static Culpeo-PG prediction for the twin's trace, in volts.
    pub static_vsafe_v: f64,
    /// `vsafe_estimate_v − static_vsafe_v`, in millivolts.
    pub drift_mv: f64,
    /// The registration-time `culpeo-verify` verdict for this twin's
    /// plan (`"unverified"` when none was supplied).
    pub verify_verdict: String,
    /// Whether the twin has finished its round budget.
    pub done: bool,
}

/// `GET /v1/fleet` — whole-fleet summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSummaryResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Twins resident.
    pub twins: u64,
    /// Shards (of ≤ 8 twins) the scheduler advances per round.
    pub shards: u64,
    /// Total kernel rounds completed across all twins.
    pub rounds_done: u64,
    /// Total brownout rounds across all twins.
    pub brownouts: u64,
    /// Events currently buffered for `/v1/fleet/events`.
    pub events_buffered: u64,
    /// `"idle"` when every twin has met its round budget, `"running"`
    /// otherwise.
    pub scheduler: String,
}

/// One line of the `GET /v1/fleet/events` NDJSON stream: a twin
/// finishing one kernel round. (The stream carries one serialised
/// `FleetEvent` per line; it is the only `/v1` surface *not* wrapped in
/// the response envelope, since NDJSON has no single top-level object.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetEvent {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The twin that finished the round.
    pub twin: u64,
    /// The twin's round counter after this round.
    pub round: u64,
    /// The round's start voltage, in volts.
    pub v_start_v: f64,
    /// The round's final buffer voltage, in volts.
    pub v_final_v: f64,
    /// Whether the task completed (false = brownout).
    pub completed: bool,
    /// The twin's empirical `V_safe` estimate after this round, in
    /// volts.
    pub vsafe_estimate_v: f64,
    /// `vsafe_estimate_v − static_vsafe_v`, in millivolts.
    pub drift_mv: f64,
}

/// One observation triple in wire form: what a deployed device reports
/// after each task run (the §IV-D Culpeo-R inputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationDto {
    /// The reporting device's id.
    pub device: u64,
    /// Buffer voltage when the task started, in volts.
    pub v_start_v: f64,
    /// Minimum buffer voltage observed during the task, in volts.
    pub v_min_v: f64,
    /// Buffer voltage after the post-task rebound, in volts.
    pub v_final_v: f64,
}

impl ObservationDto {
    /// Validates the triple against the runtime-estimator preconditions
    /// (`culpeo::runtime::TaskObservation` panics on violations, so the
    /// wire layer must refuse them first): all voltages finite, and
    /// `v_min` no higher than either endpoint.
    ///
    /// # Errors
    ///
    /// Returns a `bad_request` [`ApiError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ApiError> {
        let finite =
            self.v_start_v.is_finite() && self.v_min_v.is_finite() && self.v_final_v.is_finite();
        if !finite {
            return Err(ApiError::bad_request(format!(
                "observation for device {} must have finite voltages",
                self.device
            )));
        }
        if self.v_min_v > self.v_start_v || self.v_min_v > self.v_final_v {
            return Err(ApiError::bad_request(format!(
                "observation for device {}: v_min_v must not exceed v_start_v or v_final_v",
                self.device
            )));
        }
        Ok(())
    }
}

/// `POST /v1/observe` — ingest one observation or a batch; the answer is
/// an *ack*, and an ack means the record is on stable storage (it
/// survives `kill -9` at any byte offset).
///
/// (Exactly one of `observation` / `batch` is set; the vendored serde
/// stub derives structs only, so the sum type is spelled as options with
/// the invariant checked by [`ObserveRequest::validate`].)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserveRequest {
    /// Optional version claim; absent means "current".
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub schema_version: Option<u32>,
    /// A single observation.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub observation: Option<ObservationDto>,
    /// A batch of observations, all for one durability round (one
    /// group-commit fsync acks the whole batch).
    #[serde(default)]
    pub batch: Vec<ObservationDto>,
}

impl ObserveRequest {
    /// Confirms exactly one of `observation` / `batch` is populated and
    /// every triple passes [`ObservationDto::validate`].
    ///
    /// # Errors
    ///
    /// Returns a `bad_request` [`ApiError`].
    pub fn validate(&self) -> Result<(), ApiError> {
        match (&self.observation, self.batch.is_empty()) {
            (Some(obs), true) => obs.validate(),
            (None, false) => self.batch.iter().try_for_each(ObservationDto::validate),
            _ => Err(ApiError::bad_request(
                "observe request must set exactly one of `observation` or `batch`",
            )),
        }
    }

    /// The observations, whichever shape carried them.
    #[must_use]
    pub fn observations(&self) -> Vec<&ObservationDto> {
        match &self.observation {
            Some(obs) => vec![obs],
            None => self.batch.iter().collect(),
        }
    }
}

/// One acked record inside an [`ObserveResponse`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserveAckDto {
    /// The device the record belongs to.
    pub device: u64,
    /// The store-assigned per-device sequence number (1-based,
    /// monotonic).
    pub seq: u64,
}

/// The answer to an [`ObserveRequest`]: every listed record is durable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserveResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// One ack per ingested observation, in request order.
    pub acked: Vec<ObserveAckDto>,
    /// Fsync rounds this request led itself; 0 means a concurrent
    /// group-commit covered it (batching under load).
    pub fsync_rounds: u64,
    /// Records appended but not yet durable after this request (the
    /// shed-threshold observable).
    pub pending: u64,
}

/// The rolling harvest-credit verdict inside an
/// [`ObserveDeviceResponse`]: how many upcoming hyperperiods the
/// device's current estimate provably survives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RollingVerdictDto {
    /// Hyperperiods (of `period_s` each) proved safe from now.
    pub safe_hyperperiods: u64,
    /// The horizon `k` the daemon checks against.
    pub horizon: u64,
    /// The hyperperiod length, in seconds.
    pub period_s: f64,
    /// True when the periodic fixpoint proof succeeded — safe for *all*
    /// k (and beyond); false means `safe_hyperperiods` came from
    /// concrete unrolling.
    pub proven_periodic: bool,
    /// `"proved-periodic"`, `"proved-k"` (some prefix proved), or
    /// `"unproved"`.
    pub verdict: String,
}

/// `GET /v1/observe/:device` — the device's online Culpeo-R estimate and
/// its rolling safety envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserveDeviceResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The device id.
    pub device: u64,
    /// Highest sequence number acked for this device.
    pub last_seq: u64,
    /// Total observations ever ingested for this device.
    pub records: u64,
    /// Observations in the current estimate window.
    pub window: u64,
    /// The online Culpeo-R safe-voltage estimate, in volts (the §IV-D
    /// update over the window's worst case).
    pub v_safe_v: f64,
    /// The estimated worst-case recoverable drop `V_δ`, in volts.
    pub v_delta_v: f64,
    /// The estimated buffer energy draw, in joules.
    pub buffer_energy_j: f64,
    /// The rolling "safe for the next k hyperperiods" verdict.
    pub rolling: RollingVerdictDto,
}

/// `GET /v1/livez` — process liveness: the reactor answered, nothing
/// more. Always 200 while the event loop runs (draining included).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LivezResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Always `"ok"` (a dead reactor answers nothing).
    pub status: String,
}

/// `GET /v1/readyz` — readiness to take traffic: 200 only when the
/// store is recovered, workers are up, and the queue is below the shed
/// threshold; 503 while draining or recovering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadyzResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// `"ok"`, `"draining"`, `"recovering"`, `"overloaded"`, or
    /// `"failed"`.
    pub status: String,
    /// Store state: `"ready"`, `"recovering"`, `"failed"`, or
    /// `"disabled"` (no `--store` configured).
    pub store: String,
    /// Jobs currently queued for the compute workers.
    pub queued: u64,
    /// The queue depth readiness is judged against.
    pub queue_depth: u64,
}

/// `GET /v1/metrics` — per-endpoint latency/hit-rate counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsResponse {
    /// Always [`crate::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Seconds since the daemon started.
    pub uptime_s: f64,
    /// Per-endpoint counters, one row per known endpoint.
    pub endpoints: Vec<EndpointMetrics>,
    /// `V_safe` memoization cache counters.
    pub cache: CacheMetrics,
    /// Load-shed and recovery counters. Defaults to all-zero when absent
    /// so pre-hardening clients still parse the document.
    #[serde(default)]
    pub shed: ShedMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_check_accepts_absent_current_and_legacy() {
        assert!(check_schema_version(None).is_ok());
        assert!(check_schema_version(Some(crate::SCHEMA_VERSION)).is_ok());
        for v in crate::ACCEPTED_SCHEMA_VERSIONS {
            assert!(check_schema_version(Some(v)).is_ok(), "version {v}");
        }
        let err = check_schema_version(Some(99)).unwrap_err();
        assert_eq!(err.kind, crate::error::ApiErrorKind::UnsupportedVersion);
    }

    #[test]
    fn fleet_register_minimal_json_parses_with_defaults() {
        let req: FleetRegisterRequest =
            serde_json::from_str(r##"{ "trace_csv": "# dt_us: 8\n0.0,0.01\n" }"##).unwrap();
        assert_eq!(req.schema_version, None);
        assert!(req.spec.is_none() && req.plan.is_none());
        assert_eq!((req.count, req.rounds), (None, None));
    }

    #[test]
    fn fleet_event_roundtrips() {
        let ev = FleetEvent {
            schema_version: crate::SCHEMA_VERSION,
            twin: 3,
            round: 7,
            v_start_v: 2.48,
            v_final_v: 2.11,
            completed: true,
            vsafe_estimate_v: 2.48,
            drift_mv: -12.5,
        };
        let line = serde_json::to_string(&ev).unwrap();
        let back: FleetEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn vsafe_request_minimal_json_parses() {
        let req: VsafeRequest =
            serde_json::from_str(r##"{ "trace_csv": "# dt_us: 8\n0.0,0.01\n" }"##).unwrap();
        assert_eq!(req.schema_version, None);
        assert!(req.spec.is_none());
    }

    #[test]
    fn batch_item_exactly_one_invariant() {
        let neither = BatchItem {
            vsafe: None,
            lint: None,
        };
        assert!(neither.validate(0).is_err());
        let both = BatchItem {
            vsafe: Some(VsafeRequest {
                schema_version: None,
                spec: None,
                trace_csv: String::new(),
            }),
            lint: Some(LintRequest {
                schema_version: None,
                spec: SystemSpec::capybara(),
                traces: Vec::new(),
                plan: None,
                deny_warnings: false,
            }),
        };
        let err = both.validate(3).unwrap_err();
        assert!(err.message.contains("item 3"));
    }

    #[test]
    fn lint_request_defaults_are_empty() {
        let json = serde_json::to_string(&SystemSpec::capybara()).unwrap();
        let req: LintRequest = serde_json::from_str(&format!(r#"{{ "spec": {json} }}"#)).unwrap();
        assert!(req.traces.is_empty());
        assert!(req.plan.is_none());
        assert!(!req.deny_warnings);
    }

    #[test]
    fn verify_request_minimal_json_parses() {
        let spec = serde_json::to_string(&SystemSpec::capybara()).unwrap();
        let plan = serde_json::to_string(&crate::plan::PlanSpec::verified_example()).unwrap();
        let req: VerifyRequest =
            serde_json::from_str(&format!(r#"{{ "spec": {spec}, "plan": {plan} }}"#)).unwrap();
        assert_eq!(req.schema_version, None);
        assert_eq!(req.plan.launches.len(), 2);
    }

    #[test]
    fn verify_response_roundtrips_with_optional_fields_absent() {
        let resp = VerifyResponse {
            schema_version: crate::SCHEMA_VERSION,
            verdict: "proved".to_string(),
            iterations: 2,
            widened: false,
            counterexample: None,
            unknown: None,
            findings: vec![VerifyFindingDto {
                code: "C045".to_string(),
                severity: "warning".to_string(),
                locus: "launch 'sense'".to_string(),
                message: "floor above declared V_safe".to_string(),
                help: None,
            }],
            exit_code: 0,
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(!json.contains("counterexample"), "{json}");
        let back: VerifyResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn observe_request_exactly_one_shape() {
        let single: ObserveRequest = serde_json::from_str(
            r##"{ "observation": { "device": 7, "v_start_v": 2.3, "v_min_v": 2.1, "v_final_v": 2.28 } }"##,
        )
        .unwrap();
        assert!(single.validate().is_ok());
        assert_eq!(single.observations().len(), 1);

        let neither: ObserveRequest = serde_json::from_str("{}").unwrap();
        assert!(neither.validate().is_err());

        let both = ObserveRequest {
            schema_version: None,
            observation: single.observation.clone(),
            batch: vec![single.observation.clone().unwrap()],
        };
        assert!(both.validate().is_err());
    }

    #[test]
    fn observe_validation_enforces_estimator_preconditions() {
        let mut obs = ObservationDto {
            device: 1,
            v_start_v: 2.3,
            v_min_v: 2.1,
            v_final_v: 2.28,
        };
        assert!(obs.validate().is_ok());
        obs.v_min_v = 2.35; // above v_start: TaskObservation would panic
        assert!(obs.validate().is_err());
        obs.v_min_v = f64::NAN;
        assert!(obs.validate().is_err());
    }

    #[test]
    fn server_timing_without_fsync_is_byte_stable() {
        let t = ServerTiming {
            queue_us: 5,
            compute_us: 9,
            fsync_us: None,
        };
        let json = serde_json::to_string(&t).unwrap();
        assert!(!json.contains("fsync_us"), "{json}");
        let with = ServerTiming {
            fsync_us: Some(120),
            ..t
        };
        let json = serde_json::to_string(&with).unwrap();
        assert!(json.contains(r#""fsync_us":120"#), "{json}");
    }

    #[test]
    fn observe_device_response_roundtrips() {
        let resp = ObserveDeviceResponse {
            schema_version: crate::SCHEMA_VERSION,
            device: 7,
            last_seq: 42,
            records: 42,
            window: 16,
            v_safe_v: 2.41,
            v_delta_v: 0.08,
            buffer_energy_j: 0.0021,
            rolling: RollingVerdictDto {
                safe_hyperperiods: 8,
                horizon: 8,
                period_s: 60.0,
                proven_periodic: true,
                verdict: "proved-periodic".to_string(),
            },
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: ObserveDeviceResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn verify_counterexample_roundtrips_the_prefix() {
        let resp = VerifyResponse {
            schema_version: crate::SCHEMA_VERSION,
            verdict: "refuted".to_string(),
            iterations: 1,
            widened: false,
            counterexample: Some(CounterexampleDto {
                v_start_v: 2.56,
                cycle: 3,
                failing_launch: 1,
                v_predicted_v: 1.55,
                prefix: crate::plan::PlanSpec::verified_example().launches,
            }),
            unknown: None,
            findings: Vec::new(),
            exit_code: 1,
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: VerifyResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.counterexample.unwrap().prefix.len(), 2);
    }

    #[test]
    fn wcec_request_and_response_roundtrip() {
        let req = WcecRequest {
            schema_version: Some(crate::SCHEMA_VERSION),
            spec: None,
            tasks: vec![TaskGraphDto {
                name: "gesture".to_string(),
                nodes: vec![
                    NodeDto {
                        label: "frame".to_string(),
                        kind: "block".to_string(),
                        ops: Some(vec![OpDto {
                            name: "apds-read".to_string(),
                            energy_mj_lo: 0.18,
                            energy_mj_hi: 0.21,
                            time_ms_lo: 3.3,
                            time_ms_hi: 3.7,
                            peak_ma: 25.0,
                        }]),
                        children: None,
                        bound_lo: None,
                        bound_hi: None,
                    },
                    NodeDto {
                        label: "frame-loop".to_string(),
                        kind: "loop".to_string(),
                        ops: None,
                        children: Some(vec![0]),
                        bound_lo: Some(8),
                        bound_hi: Some(8),
                    },
                ],
                root: 1,
            }],
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: WcecRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);

        let resp = WcecResponse {
            schema_version: crate::SCHEMA_VERSION,
            tasks: vec![WcecTaskRow {
                task: "gesture".to_string(),
                status: "certified".to_string(),
                certificate: Some(CertificateDto {
                    task: "gesture".to_string(),
                    energy_mj_lo: 1.4,
                    energy_mj_hi: 1.8,
                    time_s_lo: 0.026,
                    time_s_hi: 0.031,
                    peak_ma: 25.0,
                    v_delta_v: Some(0.25),
                    paths: 2,
                    loops: 1,
                }),
                blocking: None,
                reason: None,
            }],
            certified: 1,
            unknown: 0,
            exit_code: 0,
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: WcecResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn cli_envelope_stamps_schema_without_request_id() {
        let enveloped = cli_envelope("{\"verdict\":\"proved\"}");
        assert_eq!(
            enveloped,
            format!(
                "{{\"schema_version\":{},\"data\":{{\"verdict\":\"proved\"}}}}",
                crate::SCHEMA_VERSION
            )
        );
        let doc = serde_json::parse_value_str(&enveloped).unwrap();
        assert!(doc.get("request_id").is_none());
        assert_eq!(
            doc.get("data")
                .and_then(|d| d.get("verdict"))
                .and_then(Value::as_str),
            Some("proved")
        );
    }
}

//! `culpeo-api` — the unified, versioned request/response surface.
//!
//! Every way of asking Culpeo a question — the `culpeo` CLI, the
//! `culpeo-served` daemon, the harness drivers — used to carry its own
//! input parsing and its own results shape. This crate is the single
//! vocabulary they now share:
//!
//! * [`spec::SystemSpec`] — the one spec JSON parser/validator (the CLI
//!   and `culpeo-analyze` re-export it from here);
//! * [`plan::PlanSpec`] — the one schedule shape;
//! * [`dto`] — `VsafeRequest`/`VsafeResponse`, `LintRequest`/…, the
//!   batch envelope, and the health/metrics documents;
//! * [`error::ApiError`] — the single error taxonomy, with its
//!   HTTP-status mapping;
//! * [`SCHEMA_VERSION`] — the wire/results schema version stamped into
//!   every response and every `results/*.json` file.
//!
//! The crate is deliberately thin: shapes, validation, and version
//! plumbing. Computation lives in `culpeo` (core) and `culpeo-served`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dto;
pub mod error;
pub mod plan;
pub mod spec;

pub use dto::{
    check_schema_version, cli_envelope, BatchItem, BatchOutcome, BatchRequest, BatchResponse,
    CacheMetrics, CertificateDto, CounterexampleDto, EndpointMetrics, FleetEvent,
    FleetRegisterRequest, FleetRegisterResponse, FleetSummaryResponse, FleetTwinResponse,
    HealthResponse, LintRequest, LintResponse, LivezResponse, MetricsResponse, NamedTrace, NodeDto,
    ObservationDto, ObserveAckDto, ObserveDeviceResponse, ObserveRequest, ObserveResponse, OpDto,
    ReadyzResponse, RollingVerdictDto, ServerTiming, ShedMetrics, TaskGraphDto, UnknownDto,
    VerifyFindingDto, VerifyRequest, VerifyResponse, VsafeRequest, VsafeResponse, WcecRequest,
    WcecResponse, WcecTaskRow,
};
pub use error::{ApiError, ApiErrorKind};
pub use plan::{LaunchSpec, PlanSpec};
pub use spec::{EfficiencySpec, SpecError, SystemSpec};

/// The version of every serialised shape this workspace emits: wire
/// responses, lint report documents, and `results/*.json` envelopes.
///
/// Bump it when a shape changes incompatibly; downstream consumers key
/// their parsers off the `"schema_version"` field this constant feeds.
///
/// Version 2 wraps every `/v1` HTTP response in the uniform envelope
/// (`schema_version`, `request_id`, `server_timing`, `data`) and adds
/// the `/v1/fleet` surface. Schema-1 *requests* are still accepted —
/// see [`ACCEPTED_SCHEMA_VERSIONS`].
pub const SCHEMA_VERSION: u32 = 2;

/// Request schema versions this build still understands. Responses and
/// results files are always stamped [`SCHEMA_VERSION`]; requests may
/// claim any version listed here (schema-1 request bodies are a strict
/// subset of schema-2's, so acceptance is shape-exact, not best-effort).
pub const ACCEPTED_SCHEMA_VERSIONS: [u32; 2] = [1, 2];

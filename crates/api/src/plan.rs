//! The JSON schedule description (`PlanSpec`) the plan lints and the
//! daemon's lint endpoint both consume.
//!
//! These are wire types: they moved here from `culpeo-analyze`'s input
//! module so every surface that accepts a plan — `culpeo lint --plan`,
//! `POST /v1/lint`, and the harness pre-flight — parses exactly one
//! shape. `culpeo-analyze` re-exports them unchanged.

use serde::{Deserialize, Serialize};

/// A planned schedule, as JSON:
///
/// ```json
/// {
///   "recharge_power_mw": 8.0,
///   "v_start": 2.56,
///   "launches": [
///     { "task": "sense", "start_s": 0.0, "energy_mj": 60.0,
///       "v_delta": 0.05, "v_safe": 1.7 },
///     { "task": "radio", "start_s": 0.5, "energy_mj": 3.0,
///       "v_delta": 0.35, "v_safe": 2.1 }
///   ]
/// }
/// ```
///
/// The buffer parameters (`C`, `V_off`, `V_high`) come from the system
/// spec the plan is analyzed against, not from the plan file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSpec {
    /// Assumed constant harvested power while idle, in milliwatts.
    pub recharge_power_mw: f64,
    /// Buffer voltage at the schedule origin; defaults to `V_high`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub v_start: Option<f64>,
    /// Hyperperiod in seconds: when present, the schedule repeats every
    /// `period_s` (which must cover the last launch), and the static
    /// verifier iterates the launch list to a fixpoint instead of walking
    /// it once. Absent means a single-shot schedule. Added compatibly:
    /// plans without the field parse exactly as before.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub period_s: Option<f64>,
    /// The task launches, in start order.
    pub launches: Vec<LaunchSpec>,
}

/// One planned task launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchSpec {
    /// Task name, used in diagnostics.
    pub task: String,
    /// Start time relative to the schedule origin, in seconds.
    pub start_s: f64,
    /// Worst-case buffer energy the task draws, in millijoules.
    pub energy_mj: f64,
    /// Worst-case ESR-induced voltage dip `V_δ`, in volts.
    pub v_delta: f64,
    /// The task's registered `V_safe` estimate, in volts. Theorem 1
    /// cannot be evaluated for a task without one (lint C022).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub v_safe: Option<f64>,
}

impl PlanSpec {
    /// A plan reproducing the paper's Figure 5 discrepancy: energy enough
    /// for both tasks, but the radio launches below its ESR-aware
    /// `V_safe`. Useful as a documented example and in tests.
    #[must_use]
    pub fn figure5_example() -> Self {
        Self {
            recharge_power_mw: 8.0,
            v_start: Some(2.56),
            period_s: None,
            launches: vec![
                LaunchSpec {
                    task: "sense".to_string(),
                    start_s: 0.0,
                    energy_mj: 60.0,
                    v_delta: 0.05,
                    v_safe: Some(1.7),
                },
                LaunchSpec {
                    task: "radio".to_string(),
                    start_s: 0.5,
                    energy_mj: 3.0,
                    v_delta: 0.35,
                    v_safe: Some(2.1),
                },
            ],
        }
    }

    /// A modest periodic sense-then-radio schedule over the Capybara
    /// buffer that the static verifier (`culpeo verify`) can prove
    /// brownout-free: both tasks fit one discharge with margin over their
    /// Theorem 1 floors, and the 59 s tail of the hyperperiod recharges
    /// the buffer back to `V_high` even under the verifier's pessimistic
    /// harvest envelope.
    #[must_use]
    pub fn verified_example() -> Self {
        Self {
            recharge_power_mw: 8.0,
            v_start: Some(2.56),
            period_s: Some(60.0),
            launches: vec![
                LaunchSpec {
                    task: "sense".to_string(),
                    start_s: 0.0,
                    energy_mj: 20.0,
                    v_delta: 0.1,
                    v_safe: Some(2.1),
                },
                LaunchSpec {
                    task: "radio".to_string(),
                    start_s: 1.0,
                    energy_mj: 5.0,
                    v_delta: 0.3,
                    v_safe: Some(2.0),
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_json() {
        let plan = PlanSpec::figure5_example();
        let json = serde_json::to_string(&plan).unwrap();
        let back: PlanSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.launches[1].v_safe, Some(2.1));
    }

    #[test]
    fn missing_v_safe_deserialises_as_none() {
        let json = r#"{
            "recharge_power_mw": 8.0,
            "launches": [
                { "task": "x", "start_s": 0.0, "energy_mj": 1.0, "v_delta": 0.1 }
            ]
        }"#;
        let plan: PlanSpec = serde_json::from_str(json).unwrap();
        assert_eq!(plan.v_start, None);
        assert_eq!(plan.launches[0].v_safe, None);
    }
}

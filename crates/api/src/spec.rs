//! The JSON power-system specification and its validating conversion.
//!
//! This is the *single* spec parser in the workspace. It lived in
//! `culpeo-cli` originally, moved to `culpeo-analyze` so the lint battery
//! and the harness pre-flight could share it, and now lives here so the
//! daemon's wire DTOs, the CLI, and the analyzers all validate specs
//! through one code path. `culpeo-analyze` and the CLI re-export these
//! types unchanged under their historical homes.

use culpeo::PowerSystemModel;
use culpeo_powersim::{EfficiencyCurve, EsrCurve};
use culpeo_units::{Farads, Hertz, Ohms, Volts};
use serde::{Deserialize, Serialize};

/// A power-system description, as a designer would write it down:
///
/// ```json
/// {
///   "capacitance_mf": 45.0,
///   "esr_ohms": 3.3,
///   "v_out": 2.55,
///   "v_off": 1.6,
///   "v_high": 2.56,
///   "efficiency": { "points": [[1.6, 0.78], [2.5, 0.87]] }
/// }
/// ```
///
/// `esr_ohms` may be replaced by a measured curve:
/// `"esr_curve": [[10.0, 4.2], [100.0, 3.6], [1000.0, 3.1]]`
/// (frequency in hertz, resistance in ohms, ascending frequency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Energy-buffer capacitance in millifarads.
    pub capacitance_mf: f64,
    /// Flat ESR in ohms (mutually exclusive with `esr_curve`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub esr_ohms: Option<f64>,
    /// Measured ESR-vs-frequency curve: `[hz, ohms]` pairs, ascending.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub esr_curve: Option<Vec<(f64, f64)>>,
    /// Regulated output voltage in volts.
    pub v_out: f64,
    /// Power-off threshold in volts.
    pub v_off: f64,
    /// Full-charge voltage in volts.
    pub v_high: f64,
    /// Booster efficiency description.
    pub efficiency: EfficiencySpec,
}

/// A linear efficiency model given as two `(voltage, efficiency)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencySpec {
    /// Exactly two `[volts, efficiency]` points.
    pub points: Vec<(f64, f64)>,
}

/// Why a spec failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Neither `esr_ohms` nor `esr_curve` was given.
    EsrMissing,
    /// Both `esr_ohms` and `esr_curve` were given.
    EsrAmbiguous,
    /// `esr_curve` was given but holds no points.
    EsrCurveEmpty,
    /// Adjacent `esr_curve` frequencies decreased; holds the 0-based
    /// index of the out-of-order point.
    EsrCurveUnsorted {
        /// Index of the point whose frequency is below its predecessor's.
        index: usize,
    },
    /// Two `esr_curve` points share a frequency; holds the 0-based index
    /// of the second occurrence.
    EsrCurveDuplicate {
        /// Index of the repeated-frequency point.
        index: usize,
    },
    /// An `esr_curve` point had a non-finite or non-positive frequency or
    /// resistance; holds its 0-based index.
    EsrCurvePoint {
        /// Index of the unphysical point.
        index: usize,
    },
    /// The efficiency spec did not hold exactly two valid points.
    EfficiencyPoints,
    /// A numeric field was out of range; holds the field name.
    OutOfRange(&'static str),
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecError::EsrMissing => {
                write!(f, "specify one of esr_ohms or esr_curve")
            }
            SpecError::EsrAmbiguous => {
                write!(f, "specify exactly one of esr_ohms or esr_curve, not both")
            }
            SpecError::EsrCurveEmpty => write!(f, "esr_curve holds no points"),
            SpecError::EsrCurveUnsorted { index } => {
                write!(
                    f,
                    "esr_curve frequencies must ascend; point {index} is out of order"
                )
            }
            SpecError::EsrCurveDuplicate { index } => {
                write!(f, "esr_curve point {index} repeats the previous frequency")
            }
            SpecError::EsrCurvePoint { index } => {
                write!(
                    f,
                    "esr_curve point {index} must have finite, positive frequency and resistance"
                )
            }
            SpecError::EfficiencyPoints => {
                write!(
                    f,
                    "efficiency.points must hold exactly two [volts, eta] pairs"
                )
            }
            SpecError::OutOfRange(field) => write!(f, "field out of range: {field}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Validates the `esr_curve` field alone; shared between [`SystemSpec::
/// into_model`] and the C002 lint so both report identical findings.
///
/// # Errors
///
/// Returns the first `EsrCurve*` [`SpecError`] in index order.
pub fn validate_esr_curve(points: &[(f64, f64)]) -> Result<(), SpecError> {
    if points.is_empty() {
        return Err(SpecError::EsrCurveEmpty);
    }
    for (index, &(hz, ohms)) in points.iter().enumerate() {
        if !(hz.is_finite() && hz > 0.0 && ohms.is_finite() && ohms > 0.0) {
            return Err(SpecError::EsrCurvePoint { index });
        }
        if index > 0 {
            let prev = points[index - 1].0;
            if hz == prev {
                return Err(SpecError::EsrCurveDuplicate { index });
            }
            if hz < prev {
                return Err(SpecError::EsrCurveUnsorted { index });
            }
        }
    }
    Ok(())
}

impl SystemSpec {
    /// The simulated Capybara reference spec, used when the user supplies
    /// no `--system` file.
    #[must_use]
    pub fn capybara() -> Self {
        Self {
            capacitance_mf: 45.0,
            esr_ohms: Some(3.3),
            esr_curve: None,
            v_out: 2.55,
            v_off: 1.6,
            v_high: 2.56,
            efficiency: EfficiencySpec {
                points: vec![(1.6, 0.78), (2.5, 0.87)],
            },
        }
    }

    /// Validates and converts the spec into a [`PowerSystemModel`].
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first invalid field.
    pub fn into_model(self) -> Result<PowerSystemModel, SpecError> {
        if !(self.capacitance_mf.is_finite() && self.capacitance_mf > 0.0) {
            return Err(SpecError::OutOfRange("capacitance_mf"));
        }
        if !(self.v_out.is_finite() && self.v_out > 0.0) {
            return Err(SpecError::OutOfRange("v_out"));
        }
        if !(self.v_off.is_finite()
            && self.v_high.is_finite()
            && 0.0 < self.v_off
            && self.v_off < self.v_high)
        {
            return Err(SpecError::OutOfRange("v_off/v_high"));
        }

        let esr = match (self.esr_ohms, &self.esr_curve) {
            (Some(r), None) => {
                if !(r.is_finite() && r > 0.0) {
                    return Err(SpecError::OutOfRange("esr_ohms"));
                }
                EsrCurve::flat(Ohms::new(r))
            }
            (None, Some(points)) => {
                validate_esr_curve(points)?;
                EsrCurve::new(
                    points
                        .iter()
                        .map(|&(f, r)| (Hertz::new(f), Ohms::new(r)))
                        .collect(),
                )
            }
            (None, None) => return Err(SpecError::EsrMissing),
            (Some(_), Some(_)) => return Err(SpecError::EsrAmbiguous),
        };

        if self.efficiency.points.len() != 2 {
            return Err(SpecError::EfficiencyPoints);
        }
        let p1 = self.efficiency.points[0];
        let p2 = self.efficiency.points[1];
        if !(p1.0.is_finite() && p2.0.is_finite())
            || (p1.0 - p2.0).abs() < 1e-9
            || !(0.0 < p1.1 && p1.1 <= 1.0 && 0.0 < p2.1 && p2.1 <= 1.0)
        {
            return Err(SpecError::EfficiencyPoints);
        }
        let efficiency = EfficiencyCurve::through(
            (Volts::new(p1.0), p1.1),
            (Volts::new(p2.0), p2.1),
            0.05,
            0.95,
        );

        Ok(PowerSystemModel::new(
            Farads::from_milli(self.capacitance_mf),
            esr,
            Volts::new(self.v_out),
            efficiency,
            Volts::new(self.v_off),
            Volts::new(self.v_high),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capybara_spec_round_trips_through_json() {
        let spec = SystemSpec::capybara();
        let json = serde_json::to_string(&spec).unwrap();
        let back: SystemSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        let model = back.into_model().unwrap();
        assert!(model
            .capacitance()
            .approx_eq(Farads::from_milli(45.0), 1e-12));
    }

    #[test]
    fn esr_curve_variant_parses() {
        let json = r#"{
            "capacitance_mf": 45.0,
            "esr_curve": [[10.0, 4.2], [1000.0, 3.1]],
            "v_out": 2.55, "v_off": 1.6, "v_high": 2.56,
            "efficiency": { "points": [[1.6, 0.78], [2.5, 0.87]] }
        }"#;
        let spec: SystemSpec = serde_json::from_str(json).unwrap();
        let model = spec.into_model().unwrap();
        assert!(model
            .esr_at(Hertz::new(10.0))
            .approx_eq(Ohms::new(4.2), 1e-12));
    }

    #[test]
    fn inverted_thresholds_rejected() {
        let mut spec = SystemSpec::capybara();
        spec.v_off = 2.6;
        assert_eq!(
            spec.into_model(),
            Err(SpecError::OutOfRange("v_off/v_high"))
        );
    }

    #[test]
    fn unsorted_curve_names_the_offending_index() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        spec.esr_curve = Some(vec![(10.0, 5.0), (100.0, 4.0), (50.0, 4.5)]);
        assert_eq!(
            spec.into_model(),
            Err(SpecError::EsrCurveUnsorted { index: 2 })
        );
    }

    #[test]
    fn duplicate_frequency_distinguished_from_unsorted() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        spec.esr_curve = Some(vec![(10.0, 5.0), (10.0, 4.0)]);
        assert_eq!(
            spec.into_model(),
            Err(SpecError::EsrCurveDuplicate { index: 1 })
        );
    }

    #[test]
    fn unphysical_curve_point_named_by_index() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        spec.esr_curve = Some(vec![(10.0, 5.0), (100.0, -1.0)]);
        assert_eq!(
            spec.clone().into_model(),
            Err(SpecError::EsrCurvePoint { index: 1 })
        );
        spec.esr_curve = Some(vec![]);
        assert_eq!(spec.clone().into_model(), Err(SpecError::EsrCurveEmpty));
    }

    #[test]
    fn efficiency_needs_two_distinct_points() {
        let mut spec = SystemSpec::capybara();
        spec.efficiency.points = vec![(1.6, 0.78)];
        assert_eq!(spec.into_model(), Err(SpecError::EfficiencyPoints));
    }

    #[test]
    fn error_messages_name_indices() {
        assert!(SpecError::EsrCurveUnsorted { index: 2 }
            .to_string()
            .contains("point 2"));
        assert!(SpecError::EsrCurveDuplicate { index: 1 }
            .to_string()
            .contains("point 1"));
    }
}

//! The single error taxonomy every Culpeo surface speaks.
//!
//! Before this crate, a failed request surfaced as one of three divergent
//! shapes: the CLI's `CliError` display strings, the analyzers'
//! `SpecError` variants, and ad-hoc JSON in the harness drivers. An
//! [`ApiError`] is the one wire shape they all map into: a closed
//! machine-readable [`ApiErrorKind`] plus a human message. The daemon
//! derives its HTTP status directly from the kind.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// The closed set of failure classes a Culpeo API call can report.
///
/// Serialised as a lower-snake-case string (`"bad_request"`, …) so the
/// set can grow without renumbering anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiErrorKind {
    /// The request was syntactically or structurally malformed.
    BadRequest,
    /// The request named a `schema_version` this build does not speak.
    UnsupportedVersion,
    /// The embedded system spec failed validation.
    Spec,
    /// An embedded trace failed to parse.
    Trace,
    /// An embedded plan failed to parse.
    Plan,
    /// The requested endpoint does not exist.
    NotFound,
    /// The endpoint exists but not for this HTTP method.
    MethodNotAllowed,
    /// The request body exceeded the daemon's size cap.
    TooLarge,
    /// The client took too long to send (or accept) the request.
    Timeout,
    /// The daemon's bounded accept queue is full; retry later.
    Busy,
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
    /// An unexpected server-side failure.
    Internal,
}

impl ApiErrorKind {
    /// The wire spelling of this kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ApiErrorKind::BadRequest => "bad_request",
            ApiErrorKind::UnsupportedVersion => "unsupported_version",
            ApiErrorKind::Spec => "spec",
            ApiErrorKind::Trace => "trace",
            ApiErrorKind::Plan => "plan",
            ApiErrorKind::NotFound => "not_found",
            ApiErrorKind::MethodNotAllowed => "method_not_allowed",
            ApiErrorKind::TooLarge => "too_large",
            ApiErrorKind::Timeout => "timeout",
            ApiErrorKind::Busy => "busy",
            ApiErrorKind::ShuttingDown => "shutting_down",
            ApiErrorKind::Internal => "internal",
        }
    }

    /// Parses the wire spelling back into a kind.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Some(match s {
            "bad_request" => ApiErrorKind::BadRequest,
            "unsupported_version" => ApiErrorKind::UnsupportedVersion,
            "spec" => ApiErrorKind::Spec,
            "trace" => ApiErrorKind::Trace,
            "plan" => ApiErrorKind::Plan,
            "not_found" => ApiErrorKind::NotFound,
            "method_not_allowed" => ApiErrorKind::MethodNotAllowed,
            "too_large" => ApiErrorKind::TooLarge,
            "timeout" => ApiErrorKind::Timeout,
            "busy" => ApiErrorKind::Busy,
            "shutting_down" => ApiErrorKind::ShuttingDown,
            "internal" => ApiErrorKind::Internal,
            _ => return None,
        })
    }

    /// The HTTP status code the daemon answers with for this kind.
    #[must_use]
    pub fn http_status(self) -> u16 {
        match self {
            ApiErrorKind::BadRequest
            | ApiErrorKind::UnsupportedVersion
            | ApiErrorKind::Spec
            | ApiErrorKind::Trace
            | ApiErrorKind::Plan => 400,
            ApiErrorKind::NotFound => 404,
            ApiErrorKind::MethodNotAllowed => 405,
            ApiErrorKind::TooLarge => 413,
            ApiErrorKind::Timeout => 408,
            ApiErrorKind::Busy | ApiErrorKind::ShuttingDown => 503,
            ApiErrorKind::Internal => 500,
        }
    }

    /// The `Retry-After` hint (in seconds) the daemon attaches to this
    /// kind's response, if any. Transient conditions — a full accept
    /// queue, a drain in progress, a client that stalled mid-request —
    /// are worth retrying; everything else is not.
    #[must_use]
    pub fn retry_after_s(self) -> Option<u32> {
        match self {
            ApiErrorKind::Busy | ApiErrorKind::Timeout => Some(1),
            ApiErrorKind::ShuttingDown => Some(5),
            _ => None,
        }
    }

    /// Every kind, in declaration order — used by round-trip tests.
    #[must_use]
    pub fn all() -> &'static [ApiErrorKind] {
        &[
            ApiErrorKind::BadRequest,
            ApiErrorKind::UnsupportedVersion,
            ApiErrorKind::Spec,
            ApiErrorKind::Trace,
            ApiErrorKind::Plan,
            ApiErrorKind::NotFound,
            ApiErrorKind::MethodNotAllowed,
            ApiErrorKind::TooLarge,
            ApiErrorKind::Timeout,
            ApiErrorKind::Busy,
            ApiErrorKind::ShuttingDown,
            ApiErrorKind::Internal,
        ]
    }
}

// The vendored serde derive handles named-field structs only, so the
// string-enum impls are written out by hand.
impl Serialize for ApiErrorKind {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for ApiErrorKind {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let s = v
            .as_str()
            .ok_or_else(|| SerdeError::custom("expected error-kind string"))?;
        Self::from_str_opt(s).ok_or_else(|| SerdeError::custom(format!("unknown error kind `{s}`")))
    }
}

/// The unified wire error: a machine-readable kind plus a human message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiError {
    /// Which failure class this is.
    pub kind: ApiErrorKind,
    /// Human-readable detail (file name, field, parser message, …).
    pub message: String,
}

impl ApiError {
    /// Builds an error of `kind` with a displayable message.
    #[must_use]
    pub fn new(kind: ApiErrorKind, message: impl core::fmt::Display) -> Self {
        Self {
            kind,
            message: message.to_string(),
        }
    }

    /// Shorthand for a [`ApiErrorKind::BadRequest`] error.
    #[must_use]
    pub fn bad_request(message: impl core::fmt::Display) -> Self {
        Self::new(ApiErrorKind::BadRequest, message)
    }

    /// Shorthand for a [`ApiErrorKind::Spec`] error.
    #[must_use]
    pub fn spec(message: impl core::fmt::Display) -> Self {
        Self::new(ApiErrorKind::Spec, message)
    }

    /// Shorthand for a [`ApiErrorKind::Trace`] error.
    #[must_use]
    pub fn trace(message: impl core::fmt::Display) -> Self {
        Self::new(ApiErrorKind::Trace, message)
    }

    /// The HTTP status code this error maps to.
    #[must_use]
    pub fn http_status(&self) -> u16 {
        self.kind.http_status()
    }
}

impl core::fmt::Display for ApiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<crate::spec::SpecError> for ApiError {
    fn from(e: crate::spec::SpecError) -> Self {
        ApiError::spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips_as_a_string() {
        for &kind in ApiErrorKind::all() {
            let back = ApiErrorKind::from_str_opt(kind.as_str()).unwrap();
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn unknown_kind_string_is_rejected() {
        assert!(ApiErrorKind::from_str_opt("weird").is_none());
        let v = Value::String("weird".into());
        assert!(ApiErrorKind::from_value(&v).is_err());
    }

    #[test]
    fn error_round_trips_through_json() {
        let e = ApiError::new(ApiErrorKind::Trace, "bad trace t.csv: line 3");
        let json = serde_json::to_string(&e).unwrap();
        let back: ApiError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert!(json.contains("\"trace\""));
    }

    #[test]
    fn statuses_partition_sensibly() {
        assert_eq!(ApiErrorKind::Spec.http_status(), 400);
        assert_eq!(ApiErrorKind::NotFound.http_status(), 404);
        assert_eq!(ApiErrorKind::MethodNotAllowed.http_status(), 405);
        assert_eq!(ApiErrorKind::TooLarge.http_status(), 413);
        assert_eq!(ApiErrorKind::Timeout.http_status(), 408);
        assert_eq!(ApiErrorKind::Busy.http_status(), 503);
        assert_eq!(ApiErrorKind::Internal.http_status(), 500);
    }

    #[test]
    fn retry_after_marks_only_transient_kinds() {
        assert_eq!(ApiErrorKind::Busy.retry_after_s(), Some(1));
        assert_eq!(ApiErrorKind::Timeout.retry_after_s(), Some(1));
        assert_eq!(ApiErrorKind::ShuttingDown.retry_after_s(), Some(5));
        assert_eq!(ApiErrorKind::BadRequest.retry_after_s(), None);
        assert_eq!(ApiErrorKind::Internal.retry_after_s(), None);
    }

    #[test]
    fn spec_error_converts() {
        let e: ApiError = crate::spec::SpecError::EsrMissing.into();
        assert_eq!(e.kind, ApiErrorKind::Spec);
        assert!(e.message.contains("esr"));
    }
}

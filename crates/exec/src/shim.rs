//! The sync shim: the concurrency vocabulary the execution and serving
//! protocols are written against.
//!
//! Every protocol this workspace stakes a guarantee on — the sweep's
//! atomic-cursor claim, the daemon's bounded accept queue, its drain on
//! sender-drop, the poison-recovering cache lock, the shutdown handshake
//! — manipulates shared state through a handful of `std::sync`
//! primitives. To *prove* those protocols over all interleavings (not
//! just the schedules a lucky test run happens to sample), the protocol
//! code is written against the traits below instead of the concrete std
//! types, and instantiated twice:
//!
//! * **production** — with the `std::sync` types themselves. Every trait
//!   here is implemented *directly on* `std::sync::atomic::AtomicUsize`,
//!   `std::sync::Mutex<T>`, `std::sync::mpsc::SyncSender<T>`, …, so a
//!   monomorphised protocol compiles to the exact code it replaced: no
//!   wrapper structs, no indirection, no cost. (`Sweep::map` and the
//!   `culpeo-served` hot paths use these instantiations.)
//! * **model** — with the cooperative types in `culpeo-race`, which
//!   route every acquire/release/load/store through a deterministic
//!   scheduler so a bounded-DFS explorer can enumerate interleavings and
//!   a vector-clock detector can flag unsynchronized conflicting
//!   accesses.
//!
//! The trait surface is deliberately *exactly* what the protocols use —
//! mirroring the std signatures (including `LockResult` poisoning and
//! the `mpsc` error types) so the two instantiations are observationally
//! identical, which `culpeo-race`'s equivalence proptests pin.
//!
//! Methods are `#[track_caller]` so the model instantiation can tag
//! every access with the protocol source line that performed it; the
//! std instantiation ignores the caller location entirely.

use std::ops::DerefMut;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{RecvError, SendError, TrySendError};
use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError};

/// `std::sync::atomic::AtomicUsize`'s protocol surface.
pub trait AtomicUsizeShim: Send + Sync {
    /// Creates the atomic holding `v`.
    fn new(v: usize) -> Self;
    /// Atomic load.
    #[track_caller]
    fn load(&self, order: Ordering) -> usize;
    /// Atomic store.
    #[track_caller]
    fn store(&self, v: usize, order: Ordering);
    /// Atomic fetch-add, returning the previous value.
    #[track_caller]
    fn fetch_add(&self, v: usize, order: Ordering) -> usize;
    /// Atomic compare-exchange, `Ok(previous)` on success.
    #[track_caller]
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize>;
}

/// `std::sync::atomic::AtomicBool`'s protocol surface.
pub trait AtomicBoolShim: Send + Sync {
    /// Creates the atomic holding `v`.
    fn new(v: bool) -> Self;
    /// Atomic load.
    #[track_caller]
    fn load(&self, order: Ordering) -> bool;
    /// Atomic store.
    #[track_caller]
    fn store(&self, v: bool, order: Ordering);
    /// Atomic swap, returning the previous value.
    #[track_caller]
    fn swap(&self, v: bool, order: Ordering) -> bool;
}

/// `std::sync::atomic::AtomicU64`'s protocol surface (metrics counters).
pub trait AtomicU64Shim: Send + Sync {
    /// Creates the atomic holding `v`.
    fn new(v: u64) -> Self;
    /// Atomic load.
    #[track_caller]
    fn load(&self, order: Ordering) -> u64;
    /// Atomic store.
    #[track_caller]
    fn store(&self, v: u64, order: Ordering);
    /// Atomic fetch-add, returning the previous value.
    #[track_caller]
    fn fetch_add(&self, v: u64, order: Ordering) -> u64;
}

/// `std::sync::Mutex<T>`'s protocol surface, poisoning included: the
/// daemon's cache-lock recovery protocol is *about* poisoning, so the
/// shim keeps std's `LockResult` shape rather than papering over it.
pub trait MutexShim<T: Send>: Send + Sync {
    /// The RAII guard; unlocks (and, under a panic, poisons) on drop.
    type Guard<'a>: DerefMut<Target = T>
    where
        Self: 'a,
        T: 'a;

    /// Creates the mutex owning `value`.
    fn new(value: T) -> Self;
    /// Blocks until the lock is held; `Err` carries the guard of a
    /// poisoned mutex exactly like [`std::sync::Mutex::lock`].
    #[track_caller]
    fn lock(&self) -> LockResult<Self::Guard<'_>>;
    /// Clears the poison flag, as [`std::sync::Mutex::clear_poison`].
    fn clear_poison(&self);
    /// Whether a holder has panicked.
    fn is_poisoned(&self) -> bool;
}

/// A lite `std::sync::Condvar`: wait/notify without poison plumbing
/// (the wait re-acquire returns the guard directly; protocols that care
/// about poison observe it at the next `lock`).
pub trait CondvarShim<T: Send, M: MutexShim<T>>: Send + Sync {
    /// Creates the condition variable.
    fn new() -> Self;
    /// Atomically releases `guard`, waits for a notification, and
    /// re-acquires the lock.
    #[track_caller]
    fn wait<'a>(&self, guard: M::Guard<'a>, mutex: &'a M) -> M::Guard<'a>;
    /// Wakes one waiter.
    #[track_caller]
    fn notify_one(&self);
    /// Wakes every waiter.
    #[track_caller]
    fn notify_all(&self);
}

/// The sending half of a bounded channel
/// ([`std::sync::mpsc::SyncSender`]).
pub trait SenderShim<T: Send>: Send + Clone {
    /// Blocking send; `Err` when the receiver is gone.
    #[track_caller]
    fn send(&self, value: T) -> Result<(), SendError<T>>;
    /// Non-blocking send; `Err(Full)` when the queue is at capacity.
    #[track_caller]
    fn try_send(&self, value: T) -> Result<(), TrySendError<T>>;
}

/// The receiving half of a bounded channel
/// ([`std::sync::mpsc::Receiver`]).
pub trait ReceiverShim<T: Send>: Send {
    /// Blocking receive; keeps returning queued values after every
    /// sender is dropped (the drain guarantee), then `Err`.
    #[track_caller]
    fn recv(&self) -> Result<T, RecvError>;
}

// ---------------------------------------------------------------------
// Production instantiation: the traits implemented directly on the std
// types, so generic protocol code monomorphises to plain std calls.
// ---------------------------------------------------------------------

impl AtomicUsizeShim for std::sync::atomic::AtomicUsize {
    #[inline]
    fn new(v: usize) -> Self {
        Self::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> usize {
        self.load(order)
    }
    #[inline]
    fn store(&self, v: usize, order: Ordering) {
        self.store(v, order);
    }
    #[inline]
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        self.fetch_add(v, order)
    }
    #[inline]
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.compare_exchange(current, new, success, failure)
    }
}

impl AtomicBoolShim for std::sync::atomic::AtomicBool {
    #[inline]
    fn new(v: bool) -> Self {
        Self::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> bool {
        self.load(order)
    }
    #[inline]
    fn store(&self, v: bool, order: Ordering) {
        self.store(v, order);
    }
    #[inline]
    fn swap(&self, v: bool, order: Ordering) -> bool {
        self.swap(v, order)
    }
}

impl AtomicU64Shim for std::sync::atomic::AtomicU64 {
    #[inline]
    fn new(v: u64) -> Self {
        Self::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        self.load(order)
    }
    #[inline]
    fn store(&self, v: u64, order: Ordering) {
        self.store(v, order);
    }
    #[inline]
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        self.fetch_add(v, order)
    }
}

impl<T: Send> MutexShim<T> for Mutex<T> {
    type Guard<'a>
        = MutexGuard<'a, T>
    where
        T: 'a;

    #[inline]
    fn new(value: T) -> Self {
        Self::new(value)
    }
    #[inline]
    fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        self.lock()
    }
    #[inline]
    fn clear_poison(&self) {
        self.clear_poison();
    }
    #[inline]
    fn is_poisoned(&self) -> bool {
        self.is_poisoned()
    }
}

impl<T: Send> CondvarShim<T, Mutex<T>> for Condvar {
    #[inline]
    fn new() -> Self {
        Self::new()
    }
    #[inline]
    fn wait<'a>(&self, guard: MutexGuard<'a, T>, _mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
        // Lite contract: poison is surfaced at the next `lock`, not here.
        self.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }
    #[inline]
    fn notify_one(&self) {
        self.notify_one();
    }
    #[inline]
    fn notify_all(&self) {
        self.notify_all();
    }
}

impl<T: Send> SenderShim<T> for std::sync::mpsc::SyncSender<T> {
    #[inline]
    fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.send(value)
    }
    #[inline]
    fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        self.try_send(value)
    }
}

impl<T: Send> ReceiverShim<T> for std::sync::mpsc::Receiver<T> {
    #[inline]
    fn recv(&self) -> Result<T, RecvError> {
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

    /// The std instantiation must behave exactly like the std types it
    /// re-exports — trivially true by construction, but pinned so a
    /// wrapper can never sneak in between the trait and the type.
    #[test]
    fn std_atomics_pass_through() {
        let a = <AtomicUsize as AtomicUsizeShim>::new(3);
        assert_eq!(AtomicUsizeShim::fetch_add(&a, 2, Ordering::Relaxed), 3);
        assert_eq!(AtomicUsizeShim::load(&a, Ordering::SeqCst), 5);
        AtomicUsizeShim::store(&a, 9, Ordering::SeqCst);
        assert_eq!(
            AtomicUsizeShim::compare_exchange(&a, 9, 1, Ordering::SeqCst, Ordering::SeqCst),
            Ok(9)
        );
        assert_eq!(
            AtomicUsizeShim::compare_exchange(&a, 9, 1, Ordering::SeqCst, Ordering::SeqCst),
            Err(1)
        );

        let b = <AtomicBool as AtomicBoolShim>::new(false);
        assert!(!AtomicBoolShim::swap(&b, true, Ordering::SeqCst));
        assert!(AtomicBoolShim::load(&b, Ordering::SeqCst));

        let c = <AtomicU64 as AtomicU64Shim>::new(7);
        assert_eq!(AtomicU64Shim::fetch_add(&c, 1, Ordering::Relaxed), 7);
        AtomicU64Shim::store(&c, 0, Ordering::SeqCst);
        assert_eq!(AtomicU64Shim::load(&c, Ordering::SeqCst), 0);
    }

    #[test]
    fn std_mutex_poisons_and_recovers_through_the_shim() {
        let m = <Mutex<Vec<u32>> as MutexShim<Vec<u32>>>::new(vec![1]);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = MutexShim::lock(&m);
            panic!("poison it");
        }));
        assert!(MutexShim::is_poisoned(&m));
        let guard = match MutexShim::lock(&m) {
            Err(poisoned) => {
                MutexShim::clear_poison(&m);
                poisoned.into_inner()
            }
            Ok(g) => g,
        };
        assert_eq!(*guard, vec![1]);
        drop(guard);
        assert!(!MutexShim::is_poisoned(&m));
    }

    #[test]
    fn std_channel_shim_round_trips() {
        let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(1);
        SenderShim::send(&tx, 1).unwrap();
        assert!(matches!(
            SenderShim::try_send(&tx, 2),
            Err(TrySendError::Full(2))
        ));
        assert_eq!(ReceiverShim::recv(&rx), Ok(1));
        drop(tx);
        assert!(ReceiverShim::recv(&rx).is_err());
    }
}

//! The shard hand-off protocol for round-based fleet scheduling,
//! extracted and generic over the [`crate::shim`] vocabulary.
//!
//! The fleet scheduler in `culpeo-served` advances device twins in
//! shards of eight through `Lanes<8>` kernel rounds, with several
//! scheduler threads cooperating on each round. The round's shard
//! count can *change between rounds* (registrations append shards), so
//! the claim word packs a **round generation** (high 32 bits) next to
//! the **shard cursor** (low 32 bits): a claim is only granted when the
//! claimer's generation matches, atomically with the cursor bump. A
//! thread still holding last round's generation gets `None` and goes
//! back to the round barrier — it can never claim into a round whose
//! shard count it read stale.
//!
//! Correctness then rests on two facts, both staked on the functions
//! below so the production scheduler and the `culpeo-race` model
//! checker run the *same protocol source*:
//!
//! 1. **every shard is handed off to exactly one thread per round** —
//!    the compare-exchange makes generation check and cursor bump one
//!    atomic step, so concurrent claims are disjoint and stale-round
//!    claims are impossible;
//! 2. **exactly one thread publishes the round** — the *last* finisher
//!    (and only it) sees the completion counter reach the shard count,
//!    so resetting the counters and opening the next generation is a
//!    single, well-defined obligation. The publisher must reset the
//!    finish counter **before** opening the next round (no new claim
//!    can succeed in between, because the old round is exhausted and
//!    the new generation is not yet open).

use crate::shim::AtomicUsizeShim;
use std::sync::atomic::Ordering;

const GEN_SHIFT: u32 = 32;
const CURSOR_MASK: usize = (1 << GEN_SHIFT) - 1;

/// The claim word for round `gen` with no shards yet claimed.
#[must_use]
pub fn round_word(gen: u32) -> usize {
    (gen as usize) << GEN_SHIFT
}

/// The round generation a claim word carries.
#[must_use]
pub fn word_gen(word: usize) -> u32 {
    (word >> GEN_SHIFT) as u32
}

/// Claims the next unadvanced shard of round `gen`, or `None` when the
/// round is exhausted *or* has moved past `gen` (the caller should
/// return to the round barrier either way).
#[inline]
pub fn claim_shard<A: AtomicUsizeShim>(state: &A, gen: u32, shards: usize) -> Option<usize> {
    loop {
        let cur = state.load(Ordering::SeqCst);
        if word_gen(cur) != gen {
            return None;
        }
        let idx = cur & CURSOR_MASK;
        if idx >= shards {
            return None;
        }
        if state
            .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return Some(idx);
        }
    }
}

/// Records one shard of the round finished; returns `true` for exactly
/// the *last* finisher, who thereby owes the round publication: reset
/// the finish counter, then [`open_round`] for `gen + 1`, then wake the
/// threads parked on the round barrier.
///
/// `AcqRel` so the publication happens-after every other thread's shard
/// writes: a waiter released by it observes every twin state the round
/// produced.
#[inline]
pub fn finish_shard<A: AtomicUsizeShim>(done: &A, shards: usize) -> bool {
    done.fetch_add(1, Ordering::AcqRel) + 1 == shards
}

/// Opens round `gen`: resets the cursor to zero under the new
/// generation. Only the round publisher calls this, after resetting the
/// finish counter.
#[inline]
pub fn open_round<A: AtomicUsizeShim>(state: &A, gen: u32) {
    state.store(round_word(gen), Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn claims_are_disjoint_and_exhaust() {
        let state = AtomicUsize::new(round_word(1));
        let claimed: Vec<Option<usize>> = (0..5).map(|_| claim_shard(&state, 1, 3)).collect();
        assert_eq!(claimed, vec![Some(0), Some(1), Some(2), None, None]);
    }

    #[test]
    fn stale_generation_cannot_claim() {
        let state = AtomicUsize::new(round_word(2));
        assert_eq!(claim_shard(&state, 1, 8), None);
        assert_eq!(claim_shard(&state, 3, 8), None);
        assert_eq!(claim_shard(&state, 2, 8), Some(0));
        // Publication moves the generation; the old one is dead even
        // with shards "remaining" from its point of view.
        open_round(&state, 3);
        assert_eq!(claim_shard(&state, 2, 8), None);
        assert_eq!(claim_shard(&state, 3, 2), Some(0));
        assert_eq!(word_gen(state.load(Ordering::SeqCst)), 3);
    }

    #[test]
    fn exactly_one_last_finisher() {
        let done = AtomicUsize::new(0);
        let lasts: Vec<bool> = (0..4).map(|_| finish_shard(&done, 4)).collect();
        assert_eq!(lasts.iter().filter(|&&b| b).count(), 1);
        assert_eq!(lasts, vec![false, false, false, true]);
    }

    #[test]
    fn threaded_rounds_have_one_publisher_each() {
        let state = AtomicUsize::new(round_word(0));
        let done = AtomicUsize::new(0);
        let advanced: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        let publishers = AtomicUsize::new(0);
        const ROUNDS: u32 = 5;
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let mut gen = 0u32;
                    while gen < ROUNDS {
                        while let Some(i) = claim_shard(&state, gen, 8) {
                            advanced[i].fetch_add(1, Ordering::Relaxed);
                            if finish_shard(&done, 8) {
                                publishers.fetch_add(1, Ordering::Relaxed);
                                done.store(0, Ordering::SeqCst);
                                open_round(&state, gen + 1);
                            }
                        }
                        // Round barrier: spin until the publication.
                        while word_gen(state.load(Ordering::SeqCst)) == gen {
                            std::thread::yield_now();
                        }
                        gen = word_gen(state.load(Ordering::SeqCst));
                    }
                });
            }
        });
        for a in &advanced {
            assert_eq!(a.load(Ordering::Relaxed), ROUNDS as usize);
        }
        assert_eq!(publishers.load(Ordering::Relaxed), ROUNDS as usize);
    }
}

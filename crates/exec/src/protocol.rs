//! The sweep's core concurrency protocol, extracted and generic over the
//! [`crate::shim`] vocabulary.
//!
//! [`crate::Sweep::map`]'s determinism contract rests on two facts:
//!
//! 1. **every cell is claimed exactly once** — workers race on one
//!    atomic cursor, and `fetch_add`'s read-modify-write atomicity is
//!    what makes concurrent claims disjoint;
//! 2. **results land in input order** — whatever order cells were
//!    claimed and finished in, each result is scattered back to the slot
//!    of the *input index* it was claimed under.
//!
//! Both live here as free functions so that production code
//! (instantiated with `std::sync::atomic::AtomicUsize`; inlines to the
//! exact loop `Sweep::map` always ran) and the `culpeo-race` model
//! checker (instantiated with the cooperative model atomic; explored
//! over every interleaving up to a preemption bound) execute the *same
//! protocol source*, not a transliteration that could drift.

use crate::shim::AtomicUsizeShim;
use std::sync::atomic::Ordering;

/// Claims the next unclaimed cell index from the shared cursor, or
/// `None` when the sweep is exhausted.
///
/// `Relaxed` is sufficient: the cursor orders nothing but itself — the
/// claim is made by the atomicity of the read-modify-write, and results
/// flow back to the parent through thread-join synchronization, not
/// through this counter.
#[inline]
pub fn claim_next<A: AtomicUsizeShim>(cursor: &A, len: usize) -> Option<usize> {
    let idx = cursor.fetch_add(1, Ordering::Relaxed);
    (idx < len).then_some(idx)
}

/// Scatters a worker's `(input index, result)` batch into the shared
/// output slots, preserving input order by construction.
///
/// # Panics
///
/// Panics if two results claim the same slot — the double-claim the
/// cursor protocol exists to rule out, kept as a hard assertion so a
/// future protocol regression fails loudly instead of silently dropping
/// a result.
#[inline]
pub fn scatter<R>(slots: &mut [Option<R>], batch: Vec<(usize, R)>) {
    for (idx, r) in batch {
        assert!(
            slots[idx].replace(r).is_none(),
            "cell {idx} scattered twice: the claim protocol double-claimed"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn claim_hands_out_each_index_once_then_none() {
        let cursor = AtomicUsize::new(0);
        let claimed: Vec<Option<usize>> = (0..5).map(|_| claim_next(&cursor, 3)).collect();
        assert_eq!(claimed, vec![Some(0), Some(1), Some(2), None, None]);
    }

    #[test]
    fn scatter_preserves_input_order() {
        let mut slots: Vec<Option<u32>> = vec![None, None, None];
        scatter(&mut slots, vec![(2, 20), (0, 0)]);
        scatter(&mut slots, vec![(1, 10)]);
        assert_eq!(slots, vec![Some(0), Some(10), Some(20)]);
    }

    #[test]
    #[should_panic(expected = "scattered twice")]
    fn scatter_refuses_a_double_claim() {
        let mut slots: Vec<Option<u32>> = vec![None];
        scatter(&mut slots, vec![(0, 1), (0, 2)]);
    }
}

//! The execution layer: a deterministic parallel sweep executor plus the
//! wall-clock telemetry every experiment driver embeds in its results.
//!
//! Every figure and ablation driver is, at heart, a grid of independent
//! cells — (load, system, trial, seed) tuples — each of which builds a
//! fresh simulated plant and grinds through `PowerSystem::step`. The cells
//! share no mutable state, so they parallelise perfectly; what must *not*
//! change with the thread count is the output. [`Sweep::map`] therefore
//! hands cells to a scoped worker pool through an atomic cursor and writes
//! each result back into its input slot, so the collected vector is always
//! in input order and `results/*.json` stays byte-identical whether the
//! sweep ran on one thread or sixteen (floating-point work per cell is an
//! identical instruction sequence either way; only wall-clock changes).
//!
//! Thread count resolution, in priority order: an explicit
//! [`Sweep::with_threads`], the `CULPEO_THREADS` environment variable, the
//! machine's available parallelism. DESIGN.md §8 documents the contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod shard;
pub mod shim;
mod telemetry;

pub use telemetry::{Phase, PhaseClock, Telemetry};

use std::num::NonZeroUsize;
use std::sync::atomic::AtomicUsize;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "CULPEO_THREADS";

/// A parallel executor for grids of independent cells.
///
/// Construction picks the worker count; [`Sweep::map`] runs a closure over
/// a slice of cells on that many scoped threads, returning the results in
/// input order. A `Sweep` holds no pool state — threads are scoped to each
/// `map` call — so it is `Copy` and free to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sweep {
    threads: usize,
}

impl Sweep {
    /// An executor with an explicit worker count (clamped to ≥ 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single-threaded executor: `map` degenerates to a plain serial
    /// loop on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// The executor the drivers use: `CULPEO_THREADS` if set (and a
    /// positive integer), otherwise the machine's available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        let from_env = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
        Self::with_threads(threads)
    }

    /// The worker count this executor fans out to.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every cell, returning results in input order.
    ///
    /// `f` receives the cell's index and a reference to the cell. Cells
    /// are claimed through an atomic cursor (dynamic scheduling — cheap
    /// cells don't serialise behind expensive ones), but every result is
    /// written back to its input slot, so the output order — and therefore
    /// any serialisation of it — is independent of the thread count.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f` (after all workers
    /// stop claiming new cells).
    pub fn map<T, R, F>(&self, cells: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(cells.len()).max(1);
        if workers == 1 {
            return cells.iter().enumerate().map(|(i, c)| f(i, c)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(cells.len());
        slots.resize_with(cells.len(), || None);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            // Hand each worker a disjoint slice of output slots? No — the
            // cursor hands out arbitrary indices. Instead each worker
            // returns its (index, result) pairs and the parent scatters
            // them; scattering is O(cells) and order-insensitive.
            for _ in 0..workers {
                let cursor = &cursor;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(idx) = protocol::claim_next(cursor, cells.len()) {
                        local.push((idx, f(idx, &cells[idx])));
                    }
                    local
                }));
            }
            let mut panic = None;
            for handle in handles {
                match handle.join() {
                    Ok(pairs) => protocol::scatter(&mut slots, pairs),
                    Err(payload) => panic = panic.or(Some(payload)),
                }
            }
            if let Some(payload) = panic {
                std::panic::resume_unwind(payload);
            }
        });

        slots
            .into_iter()
            .map(|s| s.expect("every cell produced a result"))
            .collect()
    }

    /// [`Sweep::map`] with chunked claiming: workers claim contiguous runs
    /// of up to `chunk` cells, and `f` maps a whole run at once.
    ///
    /// Two wins over per-cell claiming. The atomic cursor is touched once
    /// per run instead of once per cell — relevant when cells are cheap
    /// and plentiful (a batch endpoint linting hundreds of items). And the
    /// callee sees a contiguous slice, so it can hand the run to a batched
    /// kernel (the powersim lanes executor advances one run per
    /// invocation) instead of simulating cell by cell.
    ///
    /// `f` receives the run's starting index and the run's cells, and must
    /// return exactly one result per cell, in cell order. Results land in
    /// input order regardless of thread count, same as [`Sweep::map`].
    ///
    /// # Panics
    ///
    /// Panics when `f` returns a different number of results than cells it
    /// was given; propagates the first panic raised inside `f`.
    pub fn map_chunks<T, R, F>(&self, cells: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> Vec<R> + Sync,
    {
        let chunk = chunk.max(1);
        let n_runs = cells.len().div_ceil(chunk);
        let workers = self.threads.min(n_runs).max(1);
        let run = |c: usize| {
            let start = c * chunk;
            let slice = &cells[start..(start + chunk).min(cells.len())];
            let out = f(start, slice);
            assert_eq!(
                out.len(),
                slice.len(),
                "map_chunks callee must return one result per cell"
            );
            (start, out)
        };
        if workers == 1 {
            return (0..n_runs).flat_map(|c| run(c).1).collect();
        }

        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(cells.len());
        slots.resize_with(cells.len(), || None);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cursor = &cursor;
                let run = &run;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(c) = protocol::claim_next(cursor, n_runs) {
                        let (start, out) = run(c);
                        local.extend(out.into_iter().enumerate().map(|(k, r)| (start + k, r)));
                    }
                    local
                }));
            }
            let mut panic = None;
            for handle in handles {
                match handle.join() {
                    Ok(pairs) => protocol::scatter(&mut slots, pairs),
                    Err(payload) => panic = panic.or(Some(payload)),
                }
            }
            if let Some(payload) = panic {
                std::panic::resume_unwind(payload);
            }
        });

        slots
            .into_iter()
            .map(|s| s.expect("every cell produced a result"))
            .collect()
    }

    /// [`Sweep::map`] over an owned vector of cells.
    pub fn map_into<T, R, F>(&self, cells: Vec<T>, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map(&cells, f)
    }
}

impl Default for Sweep {
    fn default() -> Self {
        Self::from_env()
    }
}

/// A two-axis cell grid in row-major order.
///
/// Sweeps like Figure 10's (load × system) or Figure 12's
/// (application × policy × trial) are cartesian products whose *output
/// order* is part of the determinism contract. `CellGrid` materialises the
/// index pairs once, row-major, so drivers fan the product out through
/// [`Sweep::map`] without hand-rolling nested loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellGrid {
    rows: usize,
    cols: usize,
}

impl CellGrid {
    /// A grid of `rows × cols` cells.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    /// Total cell count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when either axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(row, col)` index pairs in row-major order.
    #[must_use]
    pub fn cells(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.len());
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.push((r, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn map_preserves_input_order() {
        let cells: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = cells.iter().map(|c| c * c).collect();
        for threads in [1, 2, 4, 7] {
            let got = Sweep::with_threads(threads).map(&cells, |_, &c| c * c);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_passes_matching_indices() {
        let cells: Vec<usize> = (0..50).collect();
        let got = Sweep::with_threads(4).map(&cells, |i, &c| (i, c));
        for (i, &(idx, cell)) in got.iter().enumerate() {
            assert_eq!(i, idx);
            assert_eq!(i, cell);
        }
    }

    #[test]
    fn map_actually_fans_out() {
        let seen = Mutex::new(std::collections::HashSet::new());
        let cells: Vec<u32> = (0..64).collect();
        Sweep::with_threads(4).map(&cells, |_, _| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        // With 64 sleeping cells and 4 workers, more than one worker must
        // have participated.
        assert!(seen.lock().unwrap().len() > 1);
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(Sweep::with_threads(8).map(&empty, |_, &c| c).is_empty());
        assert_eq!(Sweep::with_threads(8).map(&[5u32], |_, &c| c), vec![5]);
    }

    #[test]
    #[should_panic(expected = "cell 13")]
    fn map_propagates_worker_panics() {
        let cells: Vec<usize> = (0..32).collect();
        Sweep::with_threads(4).map(&cells, |i, _| {
            assert!(i != 13, "cell 13");
        });
    }

    #[test]
    fn map_chunks_matches_map_across_widths_and_threads() {
        let cells: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = cells.iter().map(|c| c * 3 + 1).collect();
        for threads in [1, 2, 4, 7] {
            for chunk in [1, 3, 8, 97, 200] {
                let got = Sweep::with_threads(threads).map_chunks(&cells, chunk, |start, run| {
                    run.iter()
                        .enumerate()
                        .map(|(k, &c)| {
                            assert_eq!(cells[start + k], c, "run slice misaligned");
                            c * 3 + 1
                        })
                        .collect()
                });
                assert_eq!(got, expected, "threads = {threads}, chunk = {chunk}");
            }
        }
    }

    #[test]
    fn map_chunks_handles_empty_input() {
        let empty: Vec<u32> = Vec::new();
        let got = Sweep::with_threads(4).map_chunks(&empty, 8, |_, run| run.to_vec());
        assert!(got.is_empty());
    }

    #[test]
    #[should_panic(expected = "one result per cell")]
    fn map_chunks_rejects_wrong_arity() {
        let cells: Vec<u32> = (0..16).collect();
        let _ = Sweep::serial().map_chunks(&cells, 4, |_, _| vec![0u32]);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Sweep::with_threads(0).threads(), 1);
        assert_eq!(Sweep::serial().threads(), 1);
    }

    #[test]
    fn grid_is_row_major() {
        let g = CellGrid::new(2, 3);
        assert_eq!(g.len(), 6);
        assert!(!g.is_empty());
        assert_eq!(
            g.cells(),
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        );
        assert!(CellGrid::new(0, 3).is_empty());
    }
}

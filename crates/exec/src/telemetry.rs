//! Wall-clock phase telemetry embedded in every driver's results file.
//!
//! Each experiment driver splits its work into named phases
//! (characterise / ground truth / predictions / …). A [`PhaseClock`]
//! stamps the wall-clock spent in each and folds them into a
//! [`Telemetry`] record that the binaries serialise next to their rows,
//! so `results/perf_summary.json` — and any future PR — has a trajectory
//! to compare against.

use std::time::Instant;

use serde::Serialize;

/// One named phase and the wall-clock seconds it took.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Phase {
    /// Phase name (e.g. `"characterize"`, `"ground-truth+predictions"`).
    pub name: String,
    /// Wall-clock duration of the phase in seconds.
    pub seconds: f64,
}

/// Wall-clock telemetry for one driver run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Telemetry {
    /// Worker threads the run's sweeps fanned out to.
    pub threads: usize,
    /// Per-phase wall-clock, in execution order.
    pub phases: Vec<Phase>,
    /// End-to-end wall-clock in seconds (≥ the sum of the phases).
    pub total_seconds: f64,
}

impl Telemetry {
    /// The recorded duration of `phase`, if present.
    #[must_use]
    pub fn phase_seconds(&self, phase: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|p| p.name == phase)
            .map(|p| p.seconds)
    }
}

/// Accumulates [`Telemetry`] as a driver runs.
///
/// Create one at driver entry, call [`PhaseClock::mark`] at each phase
/// boundary (the elapsed time since the previous mark is attributed to
/// the named phase), and [`PhaseClock::finish`] at exit.
#[derive(Debug)]
pub struct PhaseClock {
    threads: usize,
    started: Instant,
    last_mark: Instant,
    phases: Vec<Phase>,
}

impl PhaseClock {
    /// Starts the clock for a run using `threads` workers.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let now = Instant::now();
        Self {
            threads,
            started: now,
            last_mark: now,
            phases: Vec::new(),
        }
    }

    /// Closes the current phase under `name`; time resumes accumulating
    /// toward the next mark.
    pub fn mark(&mut self, name: impl Into<String>) {
        let now = Instant::now();
        self.phases.push(Phase {
            name: name.into(),
            seconds: now.duration_since(self.last_mark).as_secs_f64(),
        });
        self.last_mark = now;
    }

    /// Finalises the telemetry record.
    #[must_use]
    pub fn finish(self) -> Telemetry {
        Telemetry {
            threads: self.threads,
            phases: self.phases,
            total_seconds: self.started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_order() {
        let mut clock = PhaseClock::new(3);
        clock.mark("a");
        std::thread::sleep(std::time::Duration::from_millis(5));
        clock.mark("b");
        let t = clock.finish();
        assert_eq!(t.threads, 3);
        assert_eq!(t.phases.len(), 2);
        assert_eq!(t.phases[0].name, "a");
        assert_eq!(t.phases[1].name, "b");
        assert!(t.phase_seconds("b").unwrap() >= 0.004);
        assert!(t.total_seconds >= t.phase_seconds("b").unwrap());
        assert!(t.phase_seconds("missing").is_none());
    }
}

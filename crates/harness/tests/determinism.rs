//! Determinism contract of the sweep executor: `results/*.json` must be
//! byte-identical no matter how many worker threads ran the sweep.
//!
//! Figure 10 exercises the riskiest path — the ground-truth verdict cache
//! is shared across cells, so the test clears it between runs to prove
//! the rows do not depend on cache warm-up order either.

use culpeo_harness::exec::Sweep;
use culpeo_harness::fig10;
use culpeo_harness::ground_truth::clear_truth_cache;
use culpeo_loadgen::synthetic::fig10_loads;

/// A short load subset keeps the test fast while still spanning multiple
/// cells per worker.
fn short_loads() -> Vec<culpeo_loadgen::LoadProfile> {
    fig10_loads().into_iter().take(4).collect()
}

#[test]
fn fig10_rows_are_identical_serial_vs_four_threads() {
    let loads = short_loads();

    clear_truth_cache();
    let (serial, serial_tele) = fig10::run_on(Sweep::serial(), &loads);

    clear_truth_cache();
    let (parallel, parallel_tele) = fig10::run_on(Sweep::with_threads(4), &loads);

    assert_eq!(serial_tele.threads, 1);
    assert_eq!(parallel_tele.threads, 4);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        // Byte-identical through the same serializer the result writer
        // uses — bitwise float equality, same field order, same rows.
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap()
        );
    }
}

#[test]
fn fig10_rows_do_not_depend_on_a_warm_verdict_cache() {
    let loads = short_loads();

    clear_truth_cache();
    let (cold, _) = fig10::run_on(Sweep::serial(), &loads);
    // Second run reuses the now-warm cache; verdicts must be bit-equal.
    let (warm, _) = fig10::run_on(Sweep::serial(), &loads);

    assert_eq!(cold, warm);
}

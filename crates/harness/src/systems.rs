//! The `V_safe` estimation systems under comparison.
//!
//! One enum unifies every estimator the evaluation races: the energy-only
//! baselines (Energy-Direct, Energy-V, the two CatNap measurement
//! timings), the compile-time Culpeo-PG analysis, and the two Culpeo-R
//! runtime implementations (ISR and µArch). Each system predicts a
//! `V_safe` for a load using exactly — and only — the information that
//! system would have on a real deployment.

use culpeo::baseline::{energy_direct, vsafe_from_voltage_pair, CatnapEstimator};
use culpeo::{pg, runtime, PowerSystemModel};
use culpeo_device::{measure_for_catnap, profile_task, IsrProfiler, Profiler, UArchProfiler};
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{Kernel, Lanes, PowerSystem, RunConfig};
use culpeo_units::{Hertz, Volts};

/// Every `V_safe` estimation system in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VsafeSystem {
    /// Direct energy measurement converted to voltage (no ESR model).
    EnergyDirect,
    /// End-to-end voltage-as-energy from fully rebounded readings.
    EnergyV,
    /// Published CatNap: end voltage read at completion (pre-rebound).
    CatnapMeasured,
    /// CatNap with a 2 ms measurement delay.
    CatnapSlow,
    /// Culpeo-PG: Algorithm 1 over a 125 kHz current trace.
    CulpeoPg,
    /// Culpeo-R via the 1 ms timer ISR and 12-bit on-chip ADC.
    CulpeoIsr,
    /// Culpeo-R via the 100 kHz, 8-bit µArch capture block.
    CulpeoUArch,
}

impl VsafeSystem {
    /// All systems, in a stable presentation order.
    pub const ALL: [VsafeSystem; 7] = [
        VsafeSystem::EnergyDirect,
        VsafeSystem::EnergyV,
        VsafeSystem::CatnapMeasured,
        VsafeSystem::CatnapSlow,
        VsafeSystem::CulpeoPg,
        VsafeSystem::CulpeoIsr,
        VsafeSystem::CulpeoUArch,
    ];

    /// The figure-legend label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            VsafeSystem::EnergyDirect => "Energy-Direct",
            VsafeSystem::EnergyV => "Energy-V",
            VsafeSystem::CatnapMeasured => "Catnap-Measured",
            VsafeSystem::CatnapSlow => "Catnap-Slow",
            VsafeSystem::CulpeoPg => "Culpeo-PG",
            VsafeSystem::CulpeoIsr => "Culpeo-ISR",
            VsafeSystem::CulpeoUArch => "Culpeo-µArch",
        }
    }

    /// Predicts `V_safe` for `load`.
    ///
    /// `model` is the compile-time power-system model (shared by every
    /// system that needs one); `make_system` supplies fresh plants for the
    /// systems that profile by running the task. Profiling runs start from
    /// a full buffer, as in the paper's methodology.
    ///
    /// Returns `None` if the system could not produce an estimate (its
    /// profiling run browned out even from `V_high`).
    #[must_use]
    pub fn predict(
        self,
        load: &LoadProfile,
        model: &PowerSystemModel,
        make_system: &(dyn Fn() -> PowerSystem + Sync),
    ) -> Option<Volts> {
        match self {
            VsafeSystem::EnergyDirect => {
                let trace = load.sample(Hertz::new(culpeo_loadgen::PG_SAMPLE_RATE_HZ));
                Some(energy_direct(&trace, model))
            }
            VsafeSystem::EnergyV => {
                let mut sys = fresh_full(make_system);
                let out = sys.run_profile(load, Self::energy_v_profile_cfg());
                if !out.completed() {
                    return None;
                }
                Some(vsafe_from_voltage_pair(out.v_start, out.v_final, model))
            }
            VsafeSystem::CatnapMeasured | VsafeSystem::CatnapSlow => {
                let estimator = if self == VsafeSystem::CatnapMeasured {
                    CatnapEstimator::published()
                } else {
                    CatnapEstimator::slow()
                };
                let mut sys = fresh_full(make_system);
                let m = measure_for_catnap(&mut sys, load, estimator.measurement_delay)?;
                Some(estimator.vsafe(m.v_start, m.v_end, model))
            }
            VsafeSystem::CulpeoPg => Some(pg::compute_vsafe_for_profile(load, model).v_safe),
            VsafeSystem::CulpeoIsr => {
                let mut sys = fresh_full(make_system);
                let run = profile_task(&mut sys, load, &Profiler::Isr(IsrProfiler::msp430()))?;
                Some(runtime::compute_vsafe(&run.observation, model).v_safe)
            }
            VsafeSystem::CulpeoUArch => {
                let mut sys = fresh_full(make_system);
                let run = profile_task(&mut sys, load, &Profiler::UArch(UArchProfiler::default()))?;
                Some(runtime::compute_vsafe(&run.observation, model).v_safe)
            }
        }
    }
}

impl VsafeSystem {
    /// The Energy-V profiling-run configuration: default stepping and
    /// settle, trace-free, on the analytic event kernel. Energy-V only
    /// consumes the fully rebounded `(v_start, v_final)` pair, so the
    /// trace is dead weight — and the event kernel makes the run (and
    /// its settle) chunk-analytic *and* eligible for the 8-wide lanes
    /// batch below.
    #[must_use]
    pub fn energy_v_profile_cfg() -> RunConfig {
        RunConfig::default()
            .without_trace()
            .with_kernel(Kernel::Event)
    }

    /// Batched Energy-V predictions over a load grid: every profiling
    /// sim starts from a full buffer and the whole grid advances eight
    /// lanes per kernel invocation through [`Lanes`]. Each returned
    /// estimate equals what `VsafeSystem::EnergyV.predict` computes for
    /// the same load — the lanes kernel is bitwise the serial run.
    #[must_use]
    pub fn predict_energy_v_batch(
        loads: &[LoadProfile],
        model: &PowerSystemModel,
        make_system: &(dyn Fn() -> PowerSystem + Sync),
    ) -> Vec<Option<Volts>> {
        let mut systems: Vec<PowerSystem> = loads.iter().map(|_| fresh_full(make_system)).collect();
        let profiles: Vec<&LoadProfile> = loads.iter().collect();
        let cfgs = vec![Self::energy_v_profile_cfg(); loads.len()];
        Lanes::<8>::run(&mut systems, &profiles, &cfgs)
            .into_iter()
            .map(|out| {
                out.completed()
                    .then(|| vsafe_from_voltage_pair(out.v_start, out.v_final, model))
            })
            .collect()
    }
}

impl core::fmt::Display for VsafeSystem {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

fn fresh_full(make_system: &(dyn Fn() -> PowerSystem + Sync)) -> PowerSystem {
    let mut sys = make_system();
    let v_high = sys.monitor().v_high();
    sys.set_buffer_voltage(v_high);
    sys.force_output_enabled();
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_plant;
    use culpeo_loadgen::synthetic::UniformLoad;
    use culpeo_units::{Amps, Seconds};

    fn model() -> PowerSystemModel {
        PowerSystemModel::characterize(&reference_plant)
    }

    fn pulse(ma: f64, ms: f64) -> LoadProfile {
        UniformLoad::new(Amps::from_milli(ma), Seconds::from_milli(ms)).profile()
    }

    #[test]
    fn every_system_produces_an_estimate_for_a_moderate_load() {
        let m = model();
        let load = pulse(25.0, 10.0);
        for sys in VsafeSystem::ALL {
            let v = sys.predict(&load, &m, &reference_plant);
            assert!(v.is_some(), "{sys} produced no estimate");
            let v = v.unwrap();
            assert!(
                v >= m.v_off() && v <= m.v_high() + Volts::from_milli(50.0),
                "{sys}: {v}"
            );
        }
    }

    #[test]
    fn culpeo_systems_exceed_energy_direct_for_hard_pulses() {
        let m = model();
        let load = pulse(50.0, 10.0);
        let direct = VsafeSystem::EnergyDirect
            .predict(&load, &m, &reference_plant)
            .unwrap();
        for sys in [
            VsafeSystem::CulpeoPg,
            VsafeSystem::CulpeoIsr,
            VsafeSystem::CulpeoUArch,
        ] {
            let v = sys.predict(&load, &m, &reference_plant).unwrap();
            assert!(
                v.get() > direct.get() + 0.1,
                "{sys} ({v}) should far exceed Energy-Direct ({direct})"
            );
        }
    }

    #[test]
    fn energy_v_batch_matches_scalar_predictions_exactly() {
        let m = model();
        let loads = vec![
            pulse(25.0, 10.0),
            pulse(5.0, 10.0),
            pulse(50.0, 10.0),
            pulse(12.0, 30.0),
            pulse(40.0, 2.0),
        ];
        let batch = VsafeSystem::predict_energy_v_batch(&loads, &m, &reference_plant);
        assert_eq!(batch.len(), loads.len());
        for (load, got) in loads.iter().zip(&batch) {
            let scalar = VsafeSystem::EnergyV.predict(load, &m, &reference_plant);
            assert_eq!(*got, scalar, "batch diverged on {}", load.label());
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            VsafeSystem::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), VsafeSystem::ALL.len());
    }
}

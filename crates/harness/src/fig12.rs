//! Figure 12: event-capture rates for the three applications under
//! CatNap and Culpeo scheduling.

use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_sched::{apps, run_trial, AppSpec, ChargePolicy, TrialResult};
use culpeo_units::Seconds;
use serde::Serialize;

/// One (application-class, policy) bar of Figure 12.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig12Row {
    /// Event-class label (PS, report, NMR-mic, NMR-BLE).
    pub class: String,
    /// Policy label.
    pub policy: String,
    /// Events generated across all trials.
    pub generated: u32,
    /// Events captured across all trials.
    pub captured: u32,
    /// Capture rate in percent.
    pub capture_pct: f64,
    /// Brownouts suffered across all trials.
    pub brownouts: u32,
}

/// Number of trials per (app, policy), as in the paper.
pub const TRIALS: u32 = 3;

/// Trial duration (the paper runs five-minute trials).
pub const TRIAL_DURATION: Seconds = Seconds::new(300.0);

/// Runs Figure 12: three apps × two policies × three 5-minute trials.
#[must_use]
pub fn run() -> Vec<Fig12Row> {
    run_with(TRIAL_DURATION, TRIALS)
}

/// Parameterised variant (shorter runs for tests).
#[must_use]
pub fn run_with(duration: Seconds, trials: u32) -> Vec<Fig12Row> {
    run_timed(Sweep::from_env(), duration, trials).0
}

/// [`run_with`] on an explicit executor, with phase telemetry. Every
/// seeded (app × policy × trial) tuple is one sweep cell; aggregation
/// happens afterwards over the input-ordered results, so rows are
/// identical at any thread count.
#[must_use]
pub fn run_timed(sweep: Sweep, duration: Seconds, trials: u32) -> (Vec<Fig12Row>, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    let applications = [
        apps::periodic_sensing(),
        apps::responsive_reporting(),
        apps::noise_monitoring(),
    ];
    let policies = [ChargePolicy::Catnap, ChargePolicy::Culpeo];
    let mut cells = Vec::new();
    for ai in 0..applications.len() {
        for policy in policies {
            for k in 0..trials {
                cells.push((ai, policy, k));
            }
        }
    }
    let results = sweep.map(&cells, |_, &(ai, policy, k)| {
        run_trial(&applications[ai], policy, duration, 7000 + u64::from(k))
    });
    clock.mark("trials");

    let mut rows = Vec::new();
    for (ai, app) in applications.iter().enumerate() {
        for policy in policies {
            let group: Vec<&TrialResult> = cells
                .iter()
                .zip(&results)
                .filter(|((ci, cp, _), _)| *ci == ai && *cp == policy)
                .map(|(_, r)| r)
                .collect();
            rows.extend(aggregate(app, policy, &group));
        }
    }
    clock.mark("aggregate");
    (rows, clock.finish())
}

/// Aggregates per-class stats over seeded trials of one (app, policy).
fn aggregate(app: &AppSpec, policy: ChargePolicy, trials: &[&TrialResult]) -> Vec<Fig12Row> {
    let mut per_class: Vec<(String, u32, u32)> = app
        .classes
        .iter()
        .map(|c| (c.name.clone(), 0u32, 0u32))
        .collect();
    let mut brownouts = 0;
    for result in trials {
        brownouts += result.brownouts;
        for (name, gen, cap) in &mut per_class {
            let s = result.class(name);
            *gen += s.generated;
            *cap += s.captured;
        }
    }
    per_class
        .into_iter()
        .map(|(class, generated, captured)| Fig12Row {
            class,
            policy: policy.label().to_string(),
            generated,
            captured,
            capture_pct: if generated == 0 {
                100.0
            } else {
                f64::from(captured) / f64::from(generated) * 100.0
            },
            brownouts,
        })
        .collect()
}

/// Prints the Figure 12 table.
pub fn print_table(rows: &[Fig12Row]) {
    println!("Figure 12: events captured (%) per application class");
    println!(
        "{:<12} {:<8} {:>10} {:>10} {:>10} {:>10}",
        "class", "policy", "generated", "captured", "capture %", "brownouts"
    );
    for r in rows {
        println!(
            "{:<12} {:<8} {:>10} {:>10} {:>10.1} {:>10}",
            r.class, r.policy, r.generated, r.captured, r.capture_pct, r.brownouts
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shortened Figure 12 (one 2-minute trial per cell) so the test stays
    /// fast; the full binaries run the paper-scale version.
    fn quick() -> Vec<Fig12Row> {
        run_with(Seconds::new(120.0), 1)
    }

    #[test]
    fn culpeo_beats_catnap_on_every_class_it_matters() {
        let rows = quick();
        for class in ["PS", "report"] {
            let cat = rows
                .iter()
                .find(|r| r.class == class && r.policy == "Catnap")
                .unwrap();
            let cul = rows
                .iter()
                .find(|r| r.class == class && r.policy == "Culpeo")
                .unwrap();
            assert!(
                cul.capture_pct >= cat.capture_pct,
                "{class}: culpeo {:.0}% < catnap {:.0}%",
                cul.capture_pct,
                cat.capture_pct
            );
        }
        // And strictly better somewhere substantial.
        let cat_report = rows
            .iter()
            .find(|r| r.class == "report" && r.policy == "Catnap")
            .unwrap();
        let cul_report = rows
            .iter()
            .find(|r| r.class == "report" && r.policy == "Culpeo")
            .unwrap();
        assert!(
            cul_report.capture_pct > cat_report.capture_pct + 20.0,
            "culpeo {:.0}% vs catnap {:.0}% on RR",
            cul_report.capture_pct,
            cat_report.capture_pct
        );
    }

    #[test]
    fn culpeo_capture_is_high_everywhere() {
        let rows = quick();
        for r in rows.iter().filter(|r| r.policy == "Culpeo") {
            assert!(
                r.capture_pct > 60.0,
                "{}: culpeo captured only {:.0}%",
                r.class,
                r.capture_pct
            );
        }
    }

    #[test]
    fn all_four_paper_classes_appear() {
        let rows = quick();
        for class in ["PS", "report", "NMR-mic", "NMR-BLE"] {
            assert!(rows.iter().any(|r| r.class == class), "missing {class}");
        }
    }
}

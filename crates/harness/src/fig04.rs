//! Figure 4: an ESR drop powers the device down with plenty of stored
//! energy remaining.
//!
//! The paper's motivating numbers: a LoRa-class 50 mA transmission on a
//! 10 Ω-ESR capacitor drops 500 mV — 62.5 % of a 2.4–1.6 V operating range
//! — so a transmission needing only a few percent of the stored energy
//! kills the device unless it starts high in the range. In the paper's
//! sketch the load draws 50 mA *directly* from the capacitor; here the
//! load sits behind the output booster, which inflates the capacitor-side
//! current by ~1.5× (voltage ratio over efficiency), so the same ~0.5 V
//! drop arises at ~5 Ω of ESR (plus the 100 ms droop). The phenomenon — power-off with ample
//! stored energy — is identical.

use culpeo_loadgen::peripheral::LoRaRadio;
use culpeo_powersim::{PowerSystem, RunConfig};
use culpeo_units::{Farads, Ohms, Volts};
use serde::Serialize;

/// One starting voltage's outcome in the Figure 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig04Row {
    /// Starting buffer voltage.
    pub v_start: f64,
    /// Whether the transmission completed.
    pub completed: bool,
    /// Energy stored at the moment the device cut out (or at completion),
    /// in joules.
    pub stored_energy_j: f64,
    /// Fraction of the initially stored energy still present at cutoff.
    pub energy_remaining_frac: f64,
    /// Minimum observed node voltage.
    pub v_min: f64,
}

/// The Figure 4 power system: a 45 mF buffer with 5 Ω of ESR (a single
/// small supercapacitor rather than a parallel bank) and a 2.4 V charge
/// target; the booster-side current makes this electrically equivalent to
/// the paper's 10 Ω direct-draw sketch.
fn fig04_plant() -> PowerSystem {
    let mut sys = PowerSystem::builder()
        .bank(Farads::from_milli(45.0), Ohms::new(5.0))
        .monitor(culpeo_powersim::VoltageMonitor::new(
            Volts::new(2.4),
            Volts::new(1.6),
        ))
        .build();
    sys.force_output_enabled();
    sys
}

/// Sweeps starting voltages across the operating range and reports where
/// the LoRa packet survives.
#[must_use]
pub fn run() -> Vec<Fig04Row> {
    crate::preflight::require_clean_reference();
    let load = LoRaRadio::default().profile();
    let mut rows = Vec::new();
    for k in 0..=16 {
        let v_start = Volts::new(1.6 + 0.05 * f64::from(k));
        let mut sys = fig04_plant();
        sys.set_buffer_voltage(v_start);
        sys.force_output_enabled();
        let e0 = sys.buffer().stored_energy();
        let out = sys.run_profile(&load, RunConfig::default());
        let e_now = sys.buffer().stored_energy();
        rows.push(Fig04Row {
            v_start: v_start.get(),
            completed: out.completed(),
            stored_energy_j: e_now.get(),
            energy_remaining_frac: e_now.get() / e0.get(),
            v_min: out.v_min.get(),
        });
    }
    rows
}

/// Prints the survival boundary and the stranded energy.
pub fn print_table(rows: &[Fig04Row]) {
    println!("Figure 4: LoRa TX (50 mA) on a high-ESR buffer, V_off = 1.6 V");
    println!(
        "{:>9} {:>10} {:>14} {:>12} {:>9}",
        "V_start", "completed", "E_stored (J)", "E remaining", "V_min"
    );
    for r in rows {
        println!(
            "{:>9.2} {:>10} {:>14.4} {:>11.1}% {:>9.3}",
            r.v_start,
            r.completed,
            r.stored_energy_j,
            r.energy_remaining_frac * 100.0,
            r.v_min
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_strand_most_of_the_energy() {
        let rows = run();
        let failed: Vec<_> = rows.iter().filter(|r| !r.completed).collect();
        assert!(!failed.is_empty(), "some starting voltages must fail");
        for r in &failed {
            // Figure 4's point: the device dies with ample energy left.
            // Runs right at the survival boundary burn part of the pulse
            // before cutting out; even those keep the large majority.
            assert!(
                r.energy_remaining_frac > 0.8,
                "failed run at {} V kept only {:.0}% of its energy",
                r.v_start,
                r.energy_remaining_frac * 100.0
            );
        }
        // Far below the boundary the cutout is immediate: essentially all
        // the stored energy is stranded.
        let lowest = failed
            .iter()
            .min_by(|a, b| a.v_start.total_cmp(&b.v_start))
            .unwrap();
        assert!(lowest.energy_remaining_frac > 0.95);
    }

    #[test]
    fn survival_is_monotone_in_v_start() {
        let rows = run();
        // Once a start voltage completes, every higher one does too.
        let first_ok = rows.iter().position(|r| r.completed).unwrap();
        assert!(rows[first_ok..].iter().all(|r| r.completed));
        assert!(rows[..first_ok].iter().all(|r| !r.completed));
    }

    #[test]
    fn boundary_is_well_inside_the_operating_range() {
        // The paper's 10 Ω example puts the survival boundary around
        // 62.5 % of the range above V_off — far above V_off itself.
        let rows = run();
        let boundary = rows.iter().find(|r| r.completed).unwrap().v_start;
        assert!(
            boundary > 1.9,
            "boundary {boundary} should sit high in the range"
        );
        assert!(boundary < 2.4);
    }
}

//! Verification-battery driver: the `culpeo-verify` abstract interpreter
//! exercised over a roster of known-verdict schedules, with the same
//! telemetry envelope as the figure drivers.
//!
//! Each case pins a plan to the verdict the interpreter must return —
//! proved, refuted, or unknown with a specific imprecision kind — and
//! every `Refuted` verdict is additionally *replayed* through
//! `culpeo-powersim` to confirm the counterexample physically browns out
//! (the soundness contract of DESIGN.md §11, checked end-to-end on every
//! reproduction run). The report lands in `results/verify_battery.json`.

use culpeo_api::PlanSpec;
use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_powersim::Harvester;
use culpeo_units::Watts;
use culpeo_verify::{plant_from_model, replay_on, verify_with_model, Verdict, VerifyConfig};
use serde::Serialize;

/// What a battery case expects back from the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// `Verdict::Proved`.
    Proved,
    /// `Verdict::Refuted`, with a counterexample that must brown out on
    /// replay.
    Refuted,
    /// `Verdict::Unknown` with this imprecision-kind tag.
    Unknown(&'static str),
}

impl Expect {
    fn label(self) -> String {
        match self {
            Expect::Proved => "proved".to_string(),
            Expect::Refuted => "refuted".to_string(),
            Expect::Unknown(kind) => format!("unknown({kind})"),
        }
    }
}

/// One named schedule with its pinned verdict.
struct Case {
    name: &'static str,
    expect: Expect,
    plan: PlanSpec,
}

/// The roster: every verdict and every imprecision kind the interpreter
/// can produce, each witnessed by a concrete schedule.
fn roster() -> Vec<Case> {
    let mut single_shot_doom = PlanSpec::figure5_example();
    single_shot_doom.launches[0].energy_mj = 200.0;
    single_shot_doom.launches[0].v_delta = 0.3;

    let mut periodic_drain = PlanSpec::verified_example();
    periodic_drain.recharge_power_mw = 0.0;

    let mut slow_drain = PlanSpec::verified_example();
    slow_drain.period_s = Some(20.0);

    let mut unusable = PlanSpec::verified_example();
    unusable.launches[0].energy_mj = f64::NAN;

    vec![
        Case {
            name: "reference-periodic",
            expect: Expect::Proved,
            plan: PlanSpec::verified_example(),
        },
        Case {
            name: "figure5-straddle",
            expect: Expect::Unknown("launch-straddle"),
            plan: PlanSpec::figure5_example(),
        },
        Case {
            name: "single-shot-exhaustion",
            expect: Expect::Refuted,
            plan: single_shot_doom,
        },
        Case {
            name: "periodic-drain",
            expect: Expect::Refuted,
            plan: periodic_drain,
        },
        Case {
            name: "slow-drain-widened",
            expect: Expect::Unknown("launch-straddle"),
            plan: slow_drain,
        },
        Case {
            name: "unusable-plan",
            expect: Expect::Unknown("inapplicable"),
            plan: unusable,
        },
    ]
}

/// One row of the battery report.
#[derive(Debug, Clone, Serialize)]
pub struct CaseRow {
    /// Case name.
    pub case: String,
    /// The pinned verdict, e.g. `"unknown(launch-straddle)"`.
    pub expected: String,
    /// What the verifier actually answered.
    pub verdict: String,
    /// Fixpoint rounds taken.
    pub iterations: u64,
    /// Whether widening fired.
    pub widened: bool,
    /// The C04x codes the verdict came with, in report order.
    pub codes: Vec<String>,
    /// For refuted cases: whether the counterexample browned out when
    /// replayed on the physical plant (`None` when there was nothing to
    /// replay).
    pub replay_brownout: Option<bool>,
    /// Whether the case met its pin.
    pub pass: bool,
}

/// The whole battery's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct VerifyBatteryReport {
    /// One row per roster case, in roster order.
    pub rows: Vec<CaseRow>,
}

impl VerifyBatteryReport {
    /// True when every case met its pinned verdict.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// The deterministic human-readable table.
    #[must_use]
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:<28} {:<28} {:>7} {:>7}",
            "case", "expected", "verdict", "replay", "result"
        );
        for r in &self.rows {
            let replay = match r.replay_brownout {
                None => "-",
                Some(true) => "brownout",
                Some(false) => "SURVIVED",
            };
            let _ = writeln!(
                out,
                "{:<24} {:<28} {:<28} {:>7} {:>7}",
                r.case,
                r.expected,
                r.verdict,
                replay,
                if r.pass { "PASS" } else { "FAIL" }
            );
        }
        out
    }
}

/// Runs one case: verify, compare against the pin, replay any witness.
fn run_case(case: &Case) -> CaseRow {
    let model = culpeo::PowerSystemModel::capybara();
    let outcome = verify_with_model(&model, &case.plan, &VerifyConfig::default());
    let verdict = match &outcome.verdict {
        Verdict::Proved | Verdict::Refuted(_) => outcome.verdict.tag().to_string(),
        Verdict::Unknown(imp) => format!("unknown({})", imp.kind.tag()),
    };
    let mut replay_brownout = None;
    if let Verdict::Refuted(cex) = &outcome.verdict {
        let mut sys = plant_from_model(&model);
        sys.set_harvester(Harvester::ConstantPower(Watts::from_milli(
            case.plan.recharge_power_mw,
        )));
        let replay = replay_on(&mut sys, &model, &cex.prefix, cex.v_start);
        replay_brownout = Some(replay.brownout_launch.is_some());
    }
    let verdict_ok = verdict == case.expect.label();
    let replay_ok = replay_brownout != Some(false);
    CaseRow {
        case: case.name.to_string(),
        expected: case.expect.label(),
        verdict,
        iterations: outcome.iterations as u64,
        widened: outcome.widened,
        codes: outcome
            .findings
            .iter()
            .map(|f| f.code.to_string())
            .collect(),
        replay_brownout,
        pass: verdict_ok && replay_ok,
    }
}

/// Runs the battery under the harness conventions.
#[must_use]
pub fn run() -> VerifyBatteryReport {
    run_timed(Sweep::from_env()).0
}

/// [`run`] on an explicit executor, with phase telemetry. The report is
/// identical at any thread count: cases are independent and reassembled
/// in roster order.
#[must_use]
pub fn run_timed(sweep: Sweep) -> (VerifyBatteryReport, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    clock.mark("preflight");
    let cases = roster();
    let rows = sweep.map(&cases, |_, case| run_case(case));
    clock.mark("battery");
    (VerifyBatteryReport { rows }, clock.finish())
}

/// Prints the battery's deterministic table to stdout.
pub fn print_table(report: &VerifyBatteryReport) {
    print!("{}", report.render_table());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_meets_its_pinned_verdict() {
        let (report, telemetry) = run_timed(Sweep::with_threads(2));
        assert!(report.all_passed(), "{}", report.render_table());
        assert!(telemetry.phase_seconds("battery").is_some());
    }

    #[test]
    fn refuted_cases_replayed_and_browned_out() {
        let (report, _) = run_timed(Sweep::serial());
        let refuted: Vec<&CaseRow> = report
            .rows
            .iter()
            .filter(|r| r.expected == "refuted")
            .collect();
        assert_eq!(refuted.len(), 2);
        assert!(refuted.iter().all(|r| r.replay_brownout == Some(true)));
    }

    #[test]
    fn report_is_identical_at_any_thread_count() {
        let serial = run_timed(Sweep::serial()).0;
        let parallel = run_timed(Sweep::with_threads(4)).0;
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }

    #[test]
    fn widening_fires_on_the_slow_drain_case() {
        let (report, _) = run_timed(Sweep::serial());
        let slow = report
            .rows
            .iter()
            .find(|r| r.case == "slow-drain-widened")
            .unwrap();
        assert!(slow.widened);
        assert!(slow.codes.iter().any(|c| c == "C044"), "{:?}", slow.codes);
    }
}

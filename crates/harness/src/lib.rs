//! The experiment harness: ground-truth `V_safe` search and drivers that
//! regenerate every table and figure of the paper's evaluation.
//!
//! Each `figNN` module exposes a `run()` producing serialisable rows and a
//! `print_table()` for human-readable output; the binaries in
//! `culpeo-bench` are thin wrappers around them. DESIGN.md's
//! per-experiment index maps each module to the paper artefact it
//! regenerates, and EXPERIMENTS.md records paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;
pub mod chaos;
pub mod decoupling;
pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod ground_truth;
pub mod harvest;
pub mod preflight;
pub mod race;
pub mod reconfig;
pub mod store;
pub mod systems;
pub mod verify;
pub mod wcec;

pub use culpeo_exec as exec;

use culpeo_powersim::PowerSystem;
use culpeo_units::{Percent, Volts};

/// The reference plant every estimator-accuracy experiment runs against:
/// the two-branch supercapacitor bank, whose frequency-dependent ESR and
/// millisecond-scale rebound are what distinguish the estimators.
#[must_use]
pub fn reference_plant() -> PowerSystem {
    let mut sys = PowerSystem::capybara_two_branch();
    sys.force_output_enabled();
    sys
}

/// Error as a percentage of the software operating range
/// (`V_high − V_off`), the unit of Figures 6 and 10.
#[must_use]
pub fn error_percent_of_range(delta: Volts, range: Volts) -> Percent {
    Percent::new(delta.get() / range.get() * 100.0)
}

//! WCEC-battery driver: the `culpeo-wcec` static analyzer exercised over
//! a roster of known-verdict task graphs, plus the admission-gate
//! scenario the ROADMAP's arena item asks for, with the same telemetry
//! envelope as the figure drivers.
//!
//! Two halves:
//!
//! * **Certificates** — every Table III workload model plus hand-built
//!   shapes (diamond join, nested bounded loops, an unbounded spin) is
//!   analyzed and pinned to its expected verdict and path/loop counts.
//! * **Admission gate** — a seeded plan whose launches under-declare a
//!   modelled workload's energy: declared-`(E, V_δ)` verification proves
//!   it, the ETAP-style admission test rejects it on certificates, and
//!   certificate-substituted verification refutes it with a
//!   counterexample that physically browns out on replay — the
//!   end-to-end justification for the rejection.
//!
//! The report lands in `results/wcec_battery.json`; everything below is
//! a pure function of the fixed roster, so the bytes are identical
//! across runs and thread counts (`scripts/wcec.sh` gates on that).

use culpeo_api::PlanSpec;
use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_powersim::Harvester;
use culpeo_sched::{ArenaPolicy, WcecAdmission};
use culpeo_units::{Volts, Watts};
use culpeo_verify::{plant_from_model, replay_on, verify_with_model, Verdict, VerifyConfig};
use culpeo_wcec::{analyze, workloads, LoopBound, OpCost, TaskGraph, WcecVerdict};
use serde::Serialize;

/// What a battery case expects back from the analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// A finite certificate with these path/loop counts.
    Certified { paths: u64, loops: u32 },
    /// `WcecVerdict::Unknown` blocked at this node label.
    Unknown(&'static str),
}

impl Expect {
    fn label(self) -> String {
        match self {
            Expect::Certified { paths, loops } => format!("certified(paths={paths},loops={loops})"),
            Expect::Unknown(node) => format!("unknown(at {node})"),
        }
    }
}

/// One named task graph with its pinned verdict.
struct Case {
    name: &'static str,
    expect: Expect,
    graph: TaskGraph,
}

/// The analysis operates on the reference output rail.
fn v_out() -> Volts {
    culpeo::PowerSystemModel::capybara().v_out()
}

/// The roster: the three Table III workload models plus hand-built
/// shapes covering every analyzer feature (joins, nested bounded loops,
/// the widening fallback).
fn roster() -> Vec<Case> {
    let v = v_out();

    let mut spin = TaskGraph::new("unbounded-spin");
    let poll = spin.block("poll", vec![OpCost::exact("poll", 0.05, 0.5, 2.0)]);
    spin.bounded_loop("spin", LoopBound::Unbounded, poll);

    let mut diamond = TaskGraph::new("diamond");
    let cheap = diamond.block("cheap", vec![OpCost::exact("idle-path", 0.2, 2.0, 1.0)]);
    let dear = diamond.block("dear", vec![OpCost::exact("burst-path", 1.4, 4.0, 30.0)]);
    diamond.branch("split", cheap, dear);

    let mut nested = TaskGraph::new("nested-loops");
    let step = nested.block("step", vec![OpCost::exact("step", 0.1, 1.0, 4.0)]);
    let inner = nested.bounded_loop("inner", LoopBound::Range(1, 2), step);
    nested.bounded_loop("outer", LoopBound::Exact(3), inner);

    vec![
        Case {
            name: "gesture",
            expect: Expect::Certified { paths: 2, loops: 1 },
            graph: workloads::gesture(v),
        },
        Case {
            name: "ble-report",
            expect: Expect::Certified { paths: 3, loops: 1 },
            graph: workloads::ble_report(v),
        },
        Case {
            name: "mnist",
            expect: Expect::Certified { paths: 2, loops: 1 },
            graph: workloads::mnist(v),
        },
        Case {
            name: "diamond-join",
            expect: Expect::Certified { paths: 2, loops: 0 },
            graph: diamond,
        },
        Case {
            // The inner `Range(1, 2)` bound is a two-way choice made anew
            // on each of the outer loop's three iterations: 2³ paths.
            name: "nested-loops",
            expect: Expect::Certified { paths: 8, loops: 2 },
            graph: nested,
        },
        Case {
            name: "unbounded-spin",
            expect: Expect::Unknown("spin"),
            graph: spin,
        },
    ]
}

/// One certificate row of the battery report.
#[derive(Debug, Clone, Serialize)]
pub struct CaseRow {
    /// Case name.
    pub case: String,
    /// The pinned verdict, e.g. `"certified(paths=2,loops=1)"`.
    pub expected: String,
    /// What the analyzer actually answered.
    pub verdict: String,
    /// Certified energy interval, millijoules (`0` for unknown rows).
    pub energy_mj_lo: f64,
    /// Upper endpoint of the certified energy interval.
    pub energy_mj_hi: f64,
    /// Certified worst-case latency, seconds.
    pub time_s_hi: f64,
    /// Worst simultaneous draw on any path, milliamps.
    pub peak_ma: f64,
    /// Whether the case met its pin.
    pub pass: bool,
}

/// The admission-gate scenario's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct AdmissionRow {
    /// Verdict of declared-`(E, V_δ)` verification (must be `proved`).
    pub declared_verdict: String,
    /// Whether the certificate-charging admission test admitted the plan
    /// (must be `false`).
    pub admitted: bool,
    /// Worst-case certified buffer demand, millijoules.
    pub demand_mj: f64,
    /// Credit envelope (initial swing + harvest floor), millijoules.
    pub credit_mj: f64,
    /// First launch where demand overtakes credit.
    pub failing_launch: Option<usize>,
    /// Verdict once certificates replace the declarations (must be
    /// `refuted`).
    pub certified_verdict: String,
    /// Whether the certified counterexample browned out when replayed on
    /// the physical plant — the witness that justifies the rejection.
    pub replay_brownout: Option<bool>,
    /// Whether the whole scenario met its pins.
    pub pass: bool,
}

/// The whole battery's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct WcecBatteryReport {
    /// One row per roster case, in roster order.
    pub rows: Vec<CaseRow>,
    /// The admission-gate scenario.
    pub admission: AdmissionRow,
}

impl WcecBatteryReport {
    /// True when every case and the admission scenario met their pins.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.rows.iter().all(|r| r.pass) && self.admission.pass
    }

    /// The deterministic human-readable table.
    #[must_use]
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:<28} {:<28} {:>20} {:>10} {:>7}",
            "case", "expected", "verdict", "energy (mJ)", "t_hi (s)", "result"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:<28} {:<28} {:>20} {:>10} {:>7}",
                r.case,
                r.expected,
                r.verdict,
                format!("[{:.3}, {:.3}]", r.energy_mj_lo, r.energy_mj_hi),
                format!("{:.3}", r.time_s_hi),
                if r.pass { "PASS" } else { "FAIL" }
            );
        }
        let a = &self.admission;
        let _ = writeln!(out, "----");
        let _ = writeln!(
            out,
            "admission gate: declared {} | admitted {} (demand {:.1} mJ vs credit {:.1} mJ) | \
             certified {} | replay {} | {}",
            a.declared_verdict,
            a.admitted,
            a.demand_mj,
            a.credit_mj,
            a.certified_verdict,
            match a.replay_brownout {
                None => "-",
                Some(true) => "brownout",
                Some(false) => "SURVIVED",
            },
            if a.pass { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Runs one certificate case against its pin.
fn run_case(case: &Case) -> CaseRow {
    let (verdict, energy, time_s_hi, peak_ma, pass) = match analyze(&case.graph) {
        Ok(WcecVerdict::Certified(cert)) => {
            let got = Expect::Certified {
                paths: cert.paths,
                loops: cert.loops,
            };
            let sound = cert.energy_mj_lo() <= cert.energy_mj_hi()
                && cert.energy_mj_lo() >= 0.0
                && cert.time_s.0 <= cert.time_s.1;
            (
                got.label(),
                (cert.energy_mj_lo(), cert.energy_mj_hi()),
                cert.time_s.1,
                cert.peak_ma,
                got == case.expect && sound,
            )
        }
        Ok(WcecVerdict::Unknown(blocked)) => (
            format!("unknown(at {})", blocked.label),
            (0.0, 0.0),
            0.0,
            0.0,
            matches!(case.expect, Expect::Unknown(node) if node == blocked.label),
        ),
        Err(e) => (format!("ir-error({e})"), (0.0, 0.0), 0.0, 0.0, false),
    };
    CaseRow {
        case: case.name.to_string(),
        expected: case.expect.label(),
        verdict,
        energy_mj_lo: energy.0,
        energy_mj_hi: energy.1,
        time_s_hi,
        peak_ma,
        pass,
    }
}

/// The seeded plan the admission gate must save us from: three MNIST
/// inferences declared at a fraction of their certified worst case. The
/// declarations alone look comfortably affordable.
#[must_use]
pub fn under_declared_plan() -> PlanSpec {
    let mut plan = PlanSpec::figure5_example();
    plan.period_s = None;
    plan.recharge_power_mw = 2.0;
    plan.launches.clear();
    for i in 0..3 {
        plan.launches.push(culpeo_api::LaunchSpec {
            task: "mnist".to_string(),
            start_s: f64::from(i) * 0.5,
            energy_mj: 12.0, // certified worst case is ≈ 54 mJ
            v_delta: 0.05,
            v_safe: Some(2.1),
        });
    }
    plan
}

/// Runs the admission-gate scenario; see the module docs.
fn run_admission() -> AdmissionRow {
    let model = culpeo::PowerSystemModel::capybara();
    let plan = under_declared_plan();
    let cfg = VerifyConfig::default();

    let declared = verify_with_model(&model, &plan, &cfg);
    let declared_verdict = declared.verdict.tag().to_string();

    let certs = culpeo_wcec::certificates_for_plan(&plan, &model);
    let policy = WcecAdmission::default();
    let admission = policy.admit(&model, &plan, &certs);

    let certified = culpeo_verify::verify_certified(&model, &plan, &certs, &cfg);
    let certified_verdict = certified.verdict.tag().to_string();
    let mut replay_brownout = None;
    if let Verdict::Refuted(cex) = &certified.verdict {
        let mut sys = plant_from_model(&model);
        sys.set_harvester(Harvester::ConstantPower(Watts::from_milli(
            plan.recharge_power_mw,
        )));
        let replay = replay_on(&mut sys, &model, &cex.prefix, cex.v_start);
        replay_brownout = Some(replay.brownout_launch.is_some());
    }

    let pass = declared_verdict == "proved"
        && !admission.admitted()
        && certified_verdict == "refuted"
        && replay_brownout == Some(true);
    AdmissionRow {
        declared_verdict,
        admitted: admission.admitted(),
        demand_mj: admission.demand_mj,
        credit_mj: admission.credit_mj,
        failing_launch: admission.failing_launch,
        certified_verdict,
        replay_brownout,
        pass,
    }
}

/// Runs the battery under the harness conventions.
#[must_use]
pub fn run() -> WcecBatteryReport {
    run_timed(Sweep::from_env()).0
}

/// [`run`] on an explicit executor, with phase telemetry. The report is
/// identical at any thread count: cases are independent and reassembled
/// in roster order, and the admission scenario runs once, serially.
#[must_use]
pub fn run_timed(sweep: Sweep) -> (WcecBatteryReport, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    clock.mark("preflight");
    let cases = roster();
    let rows = sweep.map(&cases, |_, case| run_case(case));
    clock.mark("certificates");
    let admission = run_admission();
    clock.mark("admission");
    (WcecBatteryReport { rows, admission }, clock.finish())
}

/// Prints the battery's deterministic table to stdout.
pub fn print_table(report: &WcecBatteryReport) {
    print!("{}", report.render_table());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_meets_its_pinned_verdict() {
        let (report, telemetry) = run_timed(Sweep::with_threads(2));
        assert!(report.all_passed(), "{}", report.render_table());
        assert!(telemetry.phase_seconds("certificates").is_some());
    }

    #[test]
    fn table3_rows_all_certify_finite() {
        let (report, _) = run_timed(Sweep::serial());
        for name in ["gesture", "ble-report", "mnist"] {
            let row = report.rows.iter().find(|r| r.case == name).unwrap();
            assert!(row.pass, "{}", report.render_table());
            assert!(row.energy_mj_hi.is_finite() && row.energy_mj_hi > 0.0);
            assert!(row.energy_mj_lo <= row.energy_mj_hi);
        }
    }

    #[test]
    fn admission_gate_rejects_what_declarations_prove() {
        let (report, _) = run_timed(Sweep::serial());
        let a = &report.admission;
        assert_eq!(a.declared_verdict, "proved", "{a:?}");
        assert!(!a.admitted, "{a:?}");
        assert_eq!(a.certified_verdict, "refuted", "{a:?}");
        assert_eq!(a.replay_brownout, Some(true), "{a:?}");
        assert!(a.demand_mj > a.credit_mj);
    }

    #[test]
    fn report_is_identical_at_any_thread_count() {
        let serial = run_timed(Sweep::serial()).0;
        let parallel = run_timed(Sweep::with_threads(4)).0;
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }
}

//! Harness driver for the `culpeo-race` battery: runs every protocol
//! model and every mutant with per-phase wall-clock telemetry, so
//! `results/race_battery.json` records how long each exploration took
//! next to how many interleavings it covered.
//!
//! The battery itself is deterministic — verdicts, counts and traces
//! depend only on `(seed, preemptions)` — so the report half of the
//! artifact is byte-stable; wall-clock lives only in the telemetry
//! envelope, like every other timed driver in this crate.

use culpeo_exec::{PhaseClock, Telemetry};
use culpeo_race::battery::{self, BatteryConfig, BatteryReport};

/// Runs the full race battery under the harness conventions.
#[must_use]
pub fn run(config: &BatteryConfig) -> BatteryReport {
    run_timed(config).0
}

/// [`run`] with per-model / per-mutant phase telemetry.
#[must_use]
pub fn run_timed(config: &BatteryConfig) -> (BatteryReport, Telemetry) {
    // The explorer is inherently serial: one schedule at a time.
    let mut clock = PhaseClock::new(1);
    let models: Vec<_> = battery::model_names()
        .into_iter()
        .map(|name| {
            let report = battery::run_model(name, config);
            clock.mark(name);
            report
        })
        .collect();
    let mutants: Vec<_> = battery::mutant_names()
        .into_iter()
        .map(|name| {
            let report = battery::run_mutant(name, config);
            clock.mark(name);
            report
        })
        .collect();
    let total_interleavings = models.iter().map(|m| m.interleavings).sum::<u64>()
        + mutants.iter().map(|m| m.interleavings).sum::<u64>();
    let all_proved = models.iter().all(|m| m.holds);
    let all_refuted = mutants.iter().all(|m| m.caught);
    let report = BatteryReport {
        schema_version: 2,
        seed: config.seed,
        preemptions: config.preemptions,
        total_interleavings,
        models,
        mutants,
        all_proved,
        all_refuted,
    };
    (report, clock.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BatteryConfig {
        BatteryConfig {
            preemptions: 2,
            seed: 11,
            max_interleavings: 20_000,
        }
    }

    #[test]
    fn battery_passes_and_matches_direct_run() {
        let (timed, telemetry) = run_timed(&quick());
        assert!(timed.passed(), "{}", battery::render_table(&timed));
        assert_eq!(
            telemetry.phases.len(),
            battery::model_names().len() + battery::mutant_names().len(),
            "one phase per model and mutant"
        );
        // The harness assembly must agree with the crate's own runner.
        let direct = battery::run(&quick());
        assert_eq!(
            serde_json::to_string(&timed).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "timing must not perturb the report"
        );
    }
}

//! Figure 11: `V_safe` and resulting `V_min` for three real peripherals
//! under four systems.
//!
//! Each arrow in the paper's plot runs from the system's predicted
//! `V_safe` (top) down to the minimum voltage actually observed when the
//! peripheral operation is dispatched at that prediction (tip). A tip
//! below `V_off` means the device powered off under that system.

use culpeo::PowerSystemModel;
use culpeo_exec::{CellGrid, PhaseClock, Sweep, Telemetry};
use culpeo_loadgen::peripheral::{BleRadio, GestureSensor, MnistAccelerator};
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{Kernel, Lanes, PowerSystem, RunConfig};
use culpeo_units::{Seconds, Volts};
use serde::Serialize;

use crate::reference_plant;
use crate::systems::VsafeSystem;

/// The systems Figure 11 compares (Culpeo-R here is the ISR variant, as
/// in the paper's prototype).
pub const FIG11_SYSTEMS: [VsafeSystem; 4] = [
    VsafeSystem::EnergyV,
    VsafeSystem::CatnapMeasured,
    VsafeSystem::CulpeoPg,
    VsafeSystem::CulpeoIsr,
];

/// One (peripheral, system) arrow of Figure 11.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig11Row {
    /// Peripheral name.
    pub peripheral: String,
    /// System label.
    pub system: String,
    /// Predicted `V_safe` (the arrow's top), volts.
    pub v_safe: f64,
    /// Minimum observed voltage when dispatched at `v_safe` (the arrow's
    /// tip), volts.
    pub v_min: f64,
    /// Whether the operation completed from `v_safe`.
    pub completed: bool,
}

/// The three peripherals of the figure.
#[must_use]
pub fn peripherals() -> Vec<LoadProfile> {
    vec![
        {
            let mut p = GestureSensor::default().profile();
            p = rename(p, "Gesture");
            p
        },
        rename(BleRadio::default().profile(), "BLE"),
        rename(MnistAccelerator::default().profile(), "MNIST"),
    ]
}

fn rename(p: LoadProfile, name: &str) -> LoadProfile {
    let mut b = LoadProfile::builder(name);
    for s in p.segments() {
        b = b.segment(*s);
    }
    b.build()
}

/// Runs the Figure 11 experiment.
#[must_use]
pub fn run() -> Vec<Fig11Row> {
    run_timed(Sweep::from_env()).0
}

/// The dispatch-trial configuration: the default stepping, trace-free on
/// the analytic event kernel, no rebound wait. A trial only consumes
/// `v_min` and the completion verdict — both decided while the load runs
/// — so the batch of trials lane-packs through the event kernel.
#[must_use]
pub fn dispatch_cfg() -> RunConfig {
    RunConfig {
        settle_timeout: Seconds::ZERO,
        ..RunConfig::default()
            .without_trace()
            .with_kernel(Kernel::Event)
    }
}

/// [`run`] on an explicit executor, with phase telemetry. Predictions run
/// first (the Energy-V profiling sims as one lanes batch, the rest as
/// sweep cells), then every dispatch trial advances in one 8-wide lanes
/// batch. Cells stay row-major so the output order matches the serial
/// nesting.
#[must_use]
pub fn run_timed(sweep: Sweep) -> (Vec<Fig11Row>, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    let model = PowerSystemModel::characterize(&reference_plant);
    clock.mark("characterize");
    let loads = peripherals();
    // The Energy-V profiling sims for all peripherals advance in one
    // batch; per-cell prediction below just reads the precomputed lane.
    let energy_v = VsafeSystem::predict_energy_v_batch(&loads, &model, &reference_plant);
    let grid = CellGrid::new(loads.len(), FIG11_SYSTEMS.len());
    let cells = sweep.map_into(grid.cells(), |_, &(li, si)| {
        let system = FIG11_SYSTEMS[si];
        let v_safe = match system {
            VsafeSystem::EnergyV => energy_v[li]?,
            _ => system.predict(&loads[li], &model, &reference_plant)?,
        };
        Some((li, si, v_safe))
    });
    clock.mark("predict");
    // Dispatch each operation at its predicted V_safe, padded by the 5 mV
    // granularity the §VI-A search procedure resolves — a prediction
    // within that band is indistinguishable from the true boundary on the
    // real harness. All trials advance in one lanes batch.
    let trials: Vec<(usize, usize, Volts)> = cells.into_iter().flatten().collect();
    let mut systems: Vec<PowerSystem> = trials
        .iter()
        .map(|&(_, _, v_safe)| {
            let mut sys = reference_plant();
            let v_start = (v_safe + crate::ground_truth::TOLERANCE).min(model.v_high());
            sys.set_buffer_voltage(v_start);
            sys.force_output_enabled();
            sys
        })
        .collect();
    let profiles: Vec<&LoadProfile> = trials.iter().map(|&(li, _, _)| &loads[li]).collect();
    let cfgs = vec![dispatch_cfg(); trials.len()];
    let outcomes = Lanes::<8>::run(&mut systems, &profiles, &cfgs);
    clock.mark("dispatch");
    let rows = trials
        .iter()
        .zip(outcomes)
        .map(|(&(li, si, v_safe), out)| Fig11Row {
            peripheral: loads[li].label().to_string(),
            system: FIG11_SYSTEMS[si].label().to_string(),
            v_safe: v_safe.get(),
            v_min: out.v_min.get(),
            completed: out.completed(),
        })
        .collect();
    (rows, clock.finish())
}

/// Prints the Figure 11 table.
pub fn print_table(rows: &[Fig11Row]) {
    println!("Figure 11: dispatching each peripheral at each system's V_safe");
    println!(
        "{:<12} {:<18} {:>10} {:>10} {:>10}",
        "peripheral", "system", "V_safe", "V_min", "completed"
    );
    for r in rows {
        println!(
            "{:<12} {:<18} {:>10.3} {:>10.3} {:>10}",
            r.peripheral, r.system, r.v_safe, r.v_min, r.completed
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn culpeo_systems_complete_all_peripherals() {
        let rows = run();
        for r in rows
            .iter()
            .filter(|r| r.system == "Culpeo-PG" || r.system == "Culpeo-ISR")
        {
            assert!(
                r.completed,
                "{} must complete {} from its V_safe (v_min = {:.3})",
                r.system, r.peripheral, r.v_min
            );
            // And not be wastefully conservative: V_min lands near V_off.
            assert!(
                r.v_min < 1.75,
                "{} on {} left too much margin: v_min = {:.3}",
                r.system,
                r.peripheral,
                r.v_min
            );
        }
    }

    #[test]
    fn energy_v_fails_high_current_peripherals() {
        let rows = run();
        // Energy-V underestimates for the bursty peripherals (gesture,
        // BLE); its dispatches brown out.
        let failures = rows
            .iter()
            .filter(|r| r.system == "Energy-V" && !r.completed)
            .count();
        assert!(
            failures >= 2,
            "Energy-V should fail at least gesture and BLE, failed {failures}"
        );
    }

    #[test]
    fn grid_is_complete() {
        let rows = run();
        assert_eq!(rows.len(), 3 * 4);
    }
}

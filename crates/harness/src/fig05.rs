//! Figure 5: CatNap's feasibility test accepts a schedule that ESR kills.
//!
//! Two periodic tasks — `radio` every 6.5 τ and `sense` every 3 τ — fit
//! energetically on the profiled buffer, so CatNap's `e_cap(t) > 0` test
//! accepts the schedule. Executing it on the plant, the radio launch that
//! follows a sense on the same discharge starts below its ESR-aware
//! `V_safe` and browns out. The Theorem 1 test rejects exactly that
//! launch.

use culpeo::compose::TaskRequirement;
use culpeo::pg;
use culpeo::PowerSystemModel;
use culpeo_device::measure_for_catnap;
use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_loadgen::peripheral::BleRadio;
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{PowerSystem, RunConfig};
use culpeo_sched::feasibility::{catnap_feasible, culpeo_feasible, PlanContext, PlannedLaunch};
use culpeo_units::Joules;
use culpeo_units::{Amps, Seconds, Watts};
use serde::Serialize;

/// The Figure 5 outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig05 {
    /// CatNap's verdict on the schedule.
    pub catnap_accepts: bool,
    /// Theorem 1's verdict.
    pub culpeo_accepts: bool,
    /// What actually happened on the plant: the index of the launch that
    /// browned out, if any.
    pub plant_failure_at_launch: Option<usize>,
    /// Number of launches in the schedule.
    pub launches: usize,
}

/// The Figure 5 plant: the standard 45 mF Capybara bank.
fn plant() -> PowerSystem {
    let mut sys = PowerSystem::capybara();
    sys.force_output_enabled();
    sys
}

fn sense_load() -> LoadProfile {
    // A hungry sensing task: substantial energy, modest current. Three of
    // these plus the weak recharge leave the buffer barely above the
    // radio's *energy* requirement — but below its ESR-aware V_safe.
    LoadProfile::constant("sense", Amps::from_milli(4.5), Seconds::new(2.32))
}

fn radio_load() -> LoadProfile {
    BleRadio::default().profile()
}

/// Measures a task's energy the way CatNap's profiling does (Figure 5a):
/// start/end voltage on the device, converted through ½C·(V₀²−V₁²).
fn measured_energy(load: &LoadProfile, model: &PowerSystemModel) -> Joules {
    let mut sys = plant();
    let m = measure_for_catnap(&mut sys, load, Seconds::from_milli(2.0))
        .expect("profiling from V_high must complete");
    Joules::new(0.5 * model.capacitance().get() * (m.v_start.squared() - m.v_end.squared()))
}

/// Builds the periodic schedule over one hyperperiod (τ = 1 s): sense at
/// {0, 3, 6} τ, radio at {6.5} τ — so the τ6 sense and τ6.5 radio share a
/// discharge, the Figure 5 failure. Task energies come from CatNap-style
/// device profiling; the ESR-aware `V_safe` values come from Culpeo-PG.
fn schedule(model: &PowerSystemModel, sweep: Sweep) -> Vec<(Seconds, LoadProfile, PlannedLaunch)> {
    // Each task's profiling (CatNap-style energy measurement plus the
    // Culpeo-PG pass) is independent of the others' — one sweep cell each.
    let tasks = [sense_load(), radio_load()];
    let profiled = sweep.map(&tasks, |_, load| {
        let pg_out = pg::compute_vsafe_for_profile(load, model);
        let requirement = TaskRequirement {
            buffer_energy: measured_energy(load, model),
            v_delta: pg_out.v_delta,
        };
        (requirement, pg_out.v_safe)
    });
    let [sense, radio] = &tasks;
    let (sense_req, sense_vsafe) = profiled[0];
    let (radio_req, radio_vsafe) = profiled[1];

    let entries = [
        (0.0, sense, sense_req, sense_vsafe),
        (3.0, sense, sense_req, sense_vsafe),
        (6.0, sense, sense_req, sense_vsafe),
        (6.5, radio, radio_req, radio_vsafe),
    ];
    entries
        .into_iter()
        .map(|(t, load, requirement, v_safe)| {
            (
                Seconds::new(t),
                load.clone(),
                PlannedLaunch {
                    start: Seconds::new(t),
                    requirement,
                    v_safe,
                },
            )
        })
        .collect()
}

/// Runs the Figure 5 experiment: evaluate both feasibility tests, then
/// execute the schedule on the plant.
#[must_use]
pub fn run() -> Fig05 {
    run_timed(Sweep::from_env()).0
}

/// [`run`] on an explicit executor, with phase telemetry. The per-task
/// profiling fans out; the schedule execution is inherently serial (one
/// plant, one timeline).
#[must_use]
pub fn run_timed(sweep: Sweep) -> (Fig05, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    let model = PowerSystemModel::capybara();
    let sched = schedule(&model, sweep);
    clock.mark("profile-tasks");
    let plan: Vec<PlannedLaunch> = sched.iter().map(|(_, _, p)| *p).collect();
    let ctx = PlanContext {
        capacitance: model.capacitance(),
        v_off: model.v_off(),
        v_high: model.v_high(),
        recharge_power: Watts::from_milli(1.0),
        v_start: model.v_high(),
    };

    let catnap_accepts = catnap_feasible(&plan, &ctx);
    let culpeo_accepts = culpeo_feasible(&plan, &ctx);
    clock.mark("feasibility");

    // Execute on the plant with the plan's charging assumption.
    let mut sys = plant();
    sys.set_harvester(culpeo_powersim::Harvester::ConstantPower(
        ctx.recharge_power,
    ));
    let dt = Seconds::from_micro(100.0);
    let mut failure = None;
    let mut t_prev = Seconds::ZERO;
    for (idx, (start, load, _)) in sched.iter().enumerate() {
        let gap = Seconds::new((start.get() - t_prev.get()).max(0.0));
        sys.run_idle(gap, dt);
        let out = sys.run_profile(load, RunConfig::coarse());
        if !out.completed() {
            failure = Some(idx);
            break;
        }
        t_prev = Seconds::new(start.get() + load.duration().get());
    }

    clock.mark("execute");

    (
        Fig05 {
            catnap_accepts,
            culpeo_accepts,
            plant_failure_at_launch: failure,
            launches: sched.len(),
        },
        clock.finish(),
    )
}

/// Prints the verdicts-versus-reality comparison.
pub fn print_table(fig: &Fig05) {
    println!("Figure 5: feasibility verdicts vs plant reality");
    println!("  CatNap (energy-only) accepts : {}", fig.catnap_accepts);
    println!("  Theorem 1 (V_safe)  accepts : {}", fig.culpeo_accepts);
    match fig.plant_failure_at_launch {
        Some(idx) => println!(
            "  plant: launch #{idx} of {} browned out — CatNap's verdict was wrong",
            fig.launches
        ),
        None => println!("  plant: all {} launches completed", fig.launches),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_units::Joules;

    #[test]
    fn catnap_accepts_culpeo_rejects_plant_fails() {
        let fig = run();
        assert!(
            fig.catnap_accepts,
            "CatNap must judge the schedule feasible"
        );
        assert!(!fig.culpeo_accepts, "Theorem 1 must reject it");
        // The plant vindicates Theorem 1: the radio launch (index 3) dies.
        assert_eq!(fig.plant_failure_at_launch, Some(3));
    }

    #[test]
    fn radio_vsafe_exceeds_sense_vsafe() {
        // The radio's burst current, not its energy, is what demands the
        // higher starting voltage.
        let model = PowerSystemModel::capybara();
        let sense = pg::compute_vsafe_for_profile(&sense_load(), &model);
        let radio = pg::compute_vsafe_for_profile(&radio_load(), &model);
        assert!(radio.v_delta > sense.v_delta);
        // Yet sense consumes much more energy.
        assert!(sense.buffer_energy > Joules::new(radio.buffer_energy.get() * 2.0));
    }
}

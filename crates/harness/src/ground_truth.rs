//! Brute-force ground-truth `V_safe` search (§VI-A test-harness
//! procedure).
//!
//! The paper validates every estimator against a hardware binary search:
//! charge the bank to `V_high`, disable charging, discharge to a candidate
//! level, trigger the power system, apply the load, and observe whether
//! the minimum voltage stays above `V_off`. We run the identical procedure
//! against the simulated plant, to a 5 mV tolerance.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};

use culpeo_loadgen::{LoadProfile, Segment};
use culpeo_powersim::{Lanes, PowerSystem, RunConfig};
use culpeo_units::{Quantity as _, Volts};

/// The paper's search tolerance: the found `V_safe` is within 5 mV of the
/// true boundary.
pub const TOLERANCE: Volts = Volts::new(5e-3);

/// Whether a single execution of `load` from `v_start` completes on a
/// fresh plant from `make_system`.
#[must_use]
pub fn completes_from(
    make_system: &(dyn Fn() -> PowerSystem + Sync),
    load: &LoadProfile,
    v_start: Volts,
) -> bool {
    let mut sys = make_system();
    sys.set_buffer_voltage(v_start);
    sys.force_output_enabled();
    sys.run_profile(load, RunConfig::probe(load.duration()))
        .completed()
}

/// [`completes_from`] with memoisation keyed on `(plant_key, load,
/// v_start)`.
///
/// The figure drivers re-run the same bisection probes many times — every
/// estimator sharing a plant triggers the same ground-truth search, and
/// the test suite invokes each driver repeatedly. A probe verdict is a
/// pure function of the plant, the load, and the start voltage, so it is
/// cached globally. `plant_key` must uniquely identify what `make_system`
/// builds; callers that mutate a shared plant family (aging sweeps, bank
/// reconfiguration) must fold those parameters into the key.
#[must_use]
pub fn completes_from_cached(
    plant_key: &str,
    make_system: &(dyn Fn() -> PowerSystem + Sync),
    load: &LoadProfile,
    v_start: Volts,
) -> bool {
    let key = (
        plant_key.to_owned(),
        load_fingerprint(load),
        v_start.get().to_bits(),
    );
    if let Some(&verdict) = truth_cache().lock().unwrap().get(&key) {
        return verdict;
    }
    let verdict = completes_from(make_system, load, v_start);
    truth_cache().lock().unwrap().insert(key, verdict);
    verdict
}

/// Binary-searches the smallest starting voltage from which `load`
/// completes, to within [`TOLERANCE`].
///
/// Returns `None` when the load cannot complete even from `V_high` (it is
/// infeasible on this power system).
#[must_use]
pub fn true_vsafe(
    make_system: &(dyn Fn() -> PowerSystem + Sync),
    load: &LoadProfile,
) -> Option<Volts> {
    bisect(make_system, load, None)
}

/// [`true_vsafe`] with every bisection probe memoised through
/// [`completes_from_cached`] under `plant_key`.
#[must_use]
pub fn true_vsafe_cached(
    plant_key: &str,
    make_system: &(dyn Fn() -> PowerSystem + Sync),
    load: &LoadProfile,
) -> Option<Volts> {
    bisect(make_system, load, Some(plant_key))
}

fn bisect(
    make_system: &(dyn Fn() -> PowerSystem + Sync),
    load: &LoadProfile,
    plant_key: Option<&str>,
) -> Option<Volts> {
    let probe = |v: Volts| match plant_key {
        Some(key) => completes_from_cached(key, make_system, load, v),
        None => completes_from(make_system, load, v),
    };
    let reference = make_system();
    let v_off = reference.monitor().v_off();
    let v_high = reference.monitor().v_high();

    if !probe(v_high) {
        return None;
    }
    // Starting exactly at V_off fails for any real load (the first ESR
    // millivolt crosses the threshold), so [v_off, v_high] brackets.
    let mut lo = v_off;
    let mut hi = v_high;
    while (hi - lo).get() > TOLERANCE.get() {
        let mid = lo.lerp(hi, 0.5);
        if probe(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Batched [`true_vsafe_cached`] over a whole load grid: every search
/// bisects in lock-step rounds, and each round's probes run through the
/// powersim lanes kernel so one invocation advances up to eight
/// simulations at once.
///
/// Each load follows exactly the scalar bisection's candidate sequence,
/// and the lanes kernel is bitwise-identical to the serial probe, so the
/// returned voltages equal [`true_vsafe_cached`]'s. Every probe verdict
/// lands in the shared cache — the figure drivers call this once up
/// front, then their per-load searches resolve entirely from cache.
#[must_use]
pub fn true_vsafe_batch(
    plant_key: &str,
    make_system: &(dyn Fn() -> PowerSystem + Sync),
    loads: &[LoadProfile],
) -> Vec<Option<Volts>> {
    struct Search {
        lo: Volts,
        hi: Volts,
        result: Option<Option<Volts>>,
    }
    let reference = make_system();
    let v_off = reference.monitor().v_off();
    let v_high = reference.monitor().v_high();
    let mut searches: Vec<Search> = loads
        .iter()
        .map(|_| Search {
            lo: v_off,
            hi: v_high,
            result: None,
        })
        .collect();

    // Round zero: feasibility at V_high, for every load at once.
    let queries: Vec<(usize, Volts)> = (0..loads.len()).map(|i| (i, v_high)).collect();
    let verdicts = probe_round(plant_key, make_system, loads, &queries);
    for (&(i, _), verdict) in queries.iter().zip(verdicts) {
        if !verdict {
            searches[i].result = Some(None);
        }
    }

    // Lock-step bisection: each live search contributes its midpoint, the
    // whole round probes in one lanes batch.
    loop {
        let mut queries = Vec::new();
        for (i, s) in searches.iter_mut().enumerate() {
            if s.result.is_some() {
                continue;
            }
            if (s.hi - s.lo).get() <= TOLERANCE.get() {
                s.result = Some(Some(s.hi));
                continue;
            }
            queries.push((i, s.lo.lerp(s.hi, 0.5)));
        }
        if queries.is_empty() {
            break;
        }
        let verdicts = probe_round(plant_key, make_system, loads, &queries);
        for (&(i, mid), verdict) in queries.iter().zip(verdicts) {
            let s = &mut searches[i];
            if verdict {
                s.hi = mid;
            } else {
                s.lo = mid;
            }
        }
    }
    searches
        .into_iter()
        .map(|s| s.result.expect("every search resolved"))
        .collect()
}

/// Answers one round of probes: cache hits are read back, misses simulate
/// in 8-wide lanes packs, and every fresh verdict is cached.
fn probe_round(
    plant_key: &str,
    make_system: &(dyn Fn() -> PowerSystem + Sync),
    loads: &[LoadProfile],
    queries: &[(usize, Volts)],
) -> Vec<bool> {
    let mut verdicts = vec![false; queries.len()];
    let mut misses: Vec<usize> = Vec::new();
    {
        let cache = truth_cache().lock().unwrap();
        for (q, &(i, v)) in queries.iter().enumerate() {
            let key = (
                plant_key.to_owned(),
                load_fingerprint(&loads[i]),
                v.get().to_bits(),
            );
            match cache.get(&key) {
                Some(&verdict) => verdicts[q] = verdict,
                None => misses.push(q),
            }
        }
    }
    if misses.is_empty() {
        return verdicts;
    }
    let mut systems: Vec<PowerSystem> = Vec::with_capacity(misses.len());
    let mut profiles: Vec<&LoadProfile> = Vec::with_capacity(misses.len());
    let mut cfgs: Vec<RunConfig> = Vec::with_capacity(misses.len());
    for &q in &misses {
        let (i, v) = queries[q];
        let mut sys = make_system();
        sys.set_buffer_voltage(v);
        sys.force_output_enabled();
        systems.push(sys);
        profiles.push(&loads[i]);
        cfgs.push(RunConfig::probe(loads[i].duration()));
    }
    let outcomes = Lanes::<8>::run(&mut systems, &profiles, &cfgs);
    let mut cache = truth_cache().lock().unwrap();
    for (&q, outcome) in misses.iter().zip(outcomes) {
        let (i, v) = queries[q];
        let verdict = outcome.completed();
        verdicts[q] = verdict;
        cache.insert(
            (
                plant_key.to_owned(),
                load_fingerprint(&loads[i]),
                v.get().to_bits(),
            ),
            verdict,
        );
    }
    verdicts
}

/// Empties the global probe-verdict cache (bench/test hook: honest
/// cold-cache timings, and determinism tests that must re-run the full
/// search).
pub fn clear_truth_cache() {
    truth_cache().lock().unwrap().clear();
}

type TruthKey = (String, u64, u64);

fn truth_cache() -> &'static Mutex<HashMap<TruthKey, bool>> {
    static CACHE: OnceLock<Mutex<HashMap<TruthKey, bool>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A structural fingerprint of a load profile: label plus every segment's
/// exact parameter bits.
fn load_fingerprint(load: &LoadProfile) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    load.label().hash(&mut h);
    for seg in load.segments() {
        match *seg {
            Segment::Constant { current, duration } => {
                0u8.hash(&mut h);
                current.get().to_bits().hash(&mut h);
                duration.get().to_bits().hash(&mut h);
            }
            Segment::Ramp { from, to, duration } => {
                1u8.hash(&mut h);
                from.get().to_bits().hash(&mut h);
                to.get().to_bits().hash(&mut h);
                duration.get().to_bits().hash(&mut h);
            }
            Segment::Burst {
                peak,
                base,
                period,
                duty,
                duration,
            } => {
                2u8.hash(&mut h);
                peak.get().to_bits().hash(&mut h);
                base.get().to_bits().hash(&mut h);
                period.get().to_bits().hash(&mut h);
                duty.to_bits().hash(&mut h);
                duration.get().to_bits().hash(&mut h);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_plant;
    use culpeo_loadgen::synthetic::UniformLoad;
    use culpeo_units::{Amps, Seconds};

    fn make() -> PowerSystem {
        reference_plant()
    }

    fn pulse(ma: f64, ms: f64) -> LoadProfile {
        UniformLoad::new(Amps::from_milli(ma), Seconds::from_milli(ms)).profile()
    }

    #[test]
    fn boundary_is_tight() {
        let load = pulse(25.0, 10.0);
        let v = true_vsafe(&make, &load).unwrap();
        // Safe at the boundary, unsafe noticeably below it (the paper
        // validated that 20 mV below reliably fails).
        assert!(completes_from(&make, &load, v));
        assert!(!completes_from(&make, &load, v - Volts::from_milli(25.0)));
    }

    #[test]
    fn heavier_load_needs_higher_vsafe() {
        let lo = true_vsafe(&make, &pulse(5.0, 10.0)).unwrap();
        let hi = true_vsafe(&make, &pulse(50.0, 10.0)).unwrap();
        assert!(hi > lo);
    }

    #[test]
    fn impossible_load_is_none() {
        // 2 A cannot be sourced through ohms of ESR at these voltages.
        let load = LoadProfile::constant("absurd", Amps::new(2.0), Seconds::from_milli(10.0));
        assert!(true_vsafe(&make, &load).is_none());
    }

    #[test]
    fn cached_search_matches_uncached() {
        let load = pulse(30.0, 8.0);
        let direct = true_vsafe(&make, &load).unwrap();
        clear_truth_cache();
        let cold = true_vsafe_cached("reference", &make, &load).unwrap();
        let warm = true_vsafe_cached("reference", &make, &load).unwrap();
        assert_eq!(direct, cold);
        assert_eq!(cold, warm);
    }

    #[test]
    fn distinct_plant_keys_do_not_collide() {
        // The same load on a weaker plant must not be served the reference
        // plant's cached verdicts.
        let weak = || {
            let mut sys = PowerSystem::capybara_with_bank(
                culpeo_units::Farads::from_milli(45.0),
                culpeo_units::Ohms::new(8.0),
            );
            sys.force_output_enabled();
            sys
        };
        let load = pulse(40.0, 10.0);
        clear_truth_cache();
        let v_ref = true_vsafe_cached("reference", &make, &load).unwrap();
        let v_weak = true_vsafe_cached("weak-bank", &weak, &load).unwrap();
        assert!(v_weak > v_ref, "weak plant {v_weak} vs reference {v_ref}");
    }

    #[test]
    fn batch_search_matches_scalar_search() {
        let loads = vec![
            pulse(25.0, 10.0),
            pulse(5.0, 10.0),
            pulse(50.0, 10.0),
            LoadProfile::constant("absurd", Amps::new(2.0), Seconds::from_milli(10.0)),
            pulse(12.0, 30.0),
        ];
        clear_truth_cache();
        let batch = true_vsafe_batch("reference", &make, &loads);
        clear_truth_cache();
        let scalar: Vec<Option<Volts>> = loads.iter().map(|l| true_vsafe(&make, l)).collect();
        assert_eq!(batch, scalar);
        // The batch left every probe verdict behind: the cached scalar
        // search must now resolve without fresh simulations.
        clear_truth_cache();
        let warm = true_vsafe_batch("reference", &make, &loads);
        for (b, l) in warm.iter().zip(&loads) {
            assert_eq!(*b, true_vsafe_cached("reference", &make, l));
        }
    }

    #[test]
    fn trivial_load_needs_little_above_v_off() {
        let load = LoadProfile::constant("tiny", Amps::from_micro(100.0), Seconds::from_milli(1.0));
        let v = true_vsafe(&make, &load).unwrap();
        assert!(v.get() < 1.62, "V_safe = {v}");
    }
}

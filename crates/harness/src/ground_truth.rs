//! Brute-force ground-truth `V_safe` search (§VI-A test-harness
//! procedure).
//!
//! The paper validates every estimator against a hardware binary search:
//! charge the bank to `V_high`, disable charging, discharge to a candidate
//! level, trigger the power system, apply the load, and observe whether
//! the minimum voltage stays above `V_off`. We run the identical procedure
//! against the simulated plant, to a 5 mV tolerance.

use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{PowerSystem, RunConfig};
use culpeo_units::{Quantity as _, Seconds, Volts};

/// The paper's search tolerance: the found `V_safe` is within 5 mV of the
/// true boundary.
pub const TOLERANCE: Volts = Volts::new(5e-3);

/// Whether a single execution of `load` from `v_start` completes on a
/// fresh plant from `make_system`.
#[must_use]
pub fn completes_from(
    make_system: &dyn Fn() -> PowerSystem,
    load: &LoadProfile,
    v_start: Volts,
) -> bool {
    let mut sys = make_system();
    sys.set_buffer_voltage(v_start);
    sys.force_output_enabled();
    let cfg = search_run_config(load);
    sys.run_profile(load, cfg).completed()
}

/// Binary-searches the smallest starting voltage from which `load`
/// completes, to within [`TOLERANCE`].
///
/// Returns `None` when the load cannot complete even from `V_high` (it is
/// infeasible on this power system).
#[must_use]
pub fn true_vsafe(make_system: &dyn Fn() -> PowerSystem, load: &LoadProfile) -> Option<Volts> {
    let reference = make_system();
    let v_off = reference.monitor().v_off();
    let v_high = reference.monitor().v_high();

    if !completes_from(make_system, load, v_high) {
        return None;
    }
    // Starting exactly at V_off fails for any real load (the first ESR
    // millivolt crosses the threshold), so [v_off, v_high] brackets.
    let mut lo = v_off;
    let mut hi = v_high;
    while (hi - lo).get() > TOLERANCE.get() {
        let mid = lo.lerp(hi, 0.5);
        if completes_from(make_system, load, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Run configuration for search probes: fine enough to resolve 1 ms
/// pulses, minimum-only recording, generous settle.
fn search_run_config(load: &LoadProfile) -> RunConfig {
    let dt = if load.duration().get() > 1.0 {
        Seconds::from_micro(50.0)
    } else {
        Seconds::from_micro(10.0)
    };
    RunConfig {
        dt,
        record_stride: usize::MAX,
        ..RunConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference_plant;
    use culpeo_loadgen::synthetic::UniformLoad;
    use culpeo_units::{Amps, Seconds};

    fn make() -> PowerSystem {
        reference_plant()
    }

    fn pulse(ma: f64, ms: f64) -> LoadProfile {
        UniformLoad::new(Amps::from_milli(ma), Seconds::from_milli(ms)).profile()
    }

    #[test]
    fn boundary_is_tight() {
        let load = pulse(25.0, 10.0);
        let v = true_vsafe(&make, &load).unwrap();
        // Safe at the boundary, unsafe noticeably below it (the paper
        // validated that 20 mV below reliably fails).
        assert!(completes_from(&make, &load, v));
        assert!(!completes_from(&make, &load, v - Volts::from_milli(25.0)));
    }

    #[test]
    fn heavier_load_needs_higher_vsafe() {
        let lo = true_vsafe(&make, &pulse(5.0, 10.0)).unwrap();
        let hi = true_vsafe(&make, &pulse(50.0, 10.0)).unwrap();
        assert!(hi > lo);
    }

    #[test]
    fn impossible_load_is_none() {
        // 2 A cannot be sourced through ohms of ESR at these voltages.
        let load = LoadProfile::constant("absurd", Amps::new(2.0), Seconds::from_milli(10.0));
        assert!(true_vsafe(&make, &load).is_none());
    }

    #[test]
    fn trivial_load_needs_little_above_v_off() {
        let load = LoadProfile::constant("tiny", Amps::from_micro(100.0), Seconds::from_milli(1.0));
        let v = true_vsafe(&make, &load).unwrap();
        assert!(v.get() < 1.62, "V_safe = {v}");
    }
}

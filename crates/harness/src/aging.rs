//! The §IV-C aging ablation: static models go stale, runtime re-profiling
//! adapts.
//!
//! Supercapacitor capacitance fades toward 80 % of nominal and ESR grows
//! toward 2× over the device's lifetime. Culpeo-PG's `V_safe` values were
//! computed against the *fresh* power system; as the plant ages, those
//! values become unsafe. Culpeo-R re-profiles on the aged plant and stays
//! safe — the paper's argument for the runtime design.

use culpeo::{pg, runtime, PowerSystemModel};
use culpeo_device::{profile_task, Profiler, UArchProfiler};
use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_loadgen::synthetic::PulseLoad;
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{AgingState, BufferNetwork, PowerSystem};
use culpeo_units::{Amps, Seconds, Volts};
use serde::Serialize;

/// One aging step's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AgingRow {
    /// Aging fraction (0 = fresh, 1 = datasheet end-of-life).
    pub age: f64,
    /// True `V_safe` on the aged plant, volts.
    pub true_vsafe: f64,
    /// Culpeo-PG's stale prediction (computed against the fresh model).
    pub pg_stale: f64,
    /// Culpeo-R's prediction after re-profiling on the aged plant.
    pub culpeo_r_reprofiled: f64,
    /// Is the stale PG value still safe?
    pub pg_safe: bool,
    /// Is the re-profiled value safe?
    pub culpeo_r_safe: bool,
}

/// The workload under test: a hard 50 mA/10 ms pulse with compute tail.
fn load() -> LoadProfile {
    PulseLoad::new(Amps::from_milli(50.0), Seconds::from_milli(10.0)).profile()
}

/// A plant aged to fraction `t` of end-of-life.
fn aged_plant(t: f64) -> PowerSystem {
    let mut sys = PowerSystem::capybara_two_branch();
    let aging = AgingState::at_fraction(t);
    let aged: Vec<_> = sys
        .buffer()
        .branches()
        .iter()
        .map(|b| b.aged(aging))
        .collect();
    *sys.buffer_mut() = BufferNetwork::new(aged);
    sys.force_output_enabled();
    sys
}

/// Sweeps aging from fresh to 20 % beyond end-of-life.
#[must_use]
pub fn run() -> Vec<AgingRow> {
    run_timed(Sweep::from_env()).0
}

/// [`run`] on an explicit executor, with phase telemetry. Each aging step
/// — ground-truth search plus Culpeo-R re-profiling on that aged plant —
/// is one sweep cell.
#[must_use]
pub fn run_timed(sweep: Sweep) -> (Vec<AgingRow>, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    // PG computes once, against the fresh characterisation.
    let fresh_model = PowerSystemModel::characterize(&|| aged_plant(0.0));
    let pg_stale = pg::compute_vsafe_for_profile(&load(), &fresh_model).v_safe;
    clock.mark("characterize");

    let ages = [0.0, 0.25, 0.5, 0.75, 1.0, 1.2];
    let rows = sweep.map(&ages, |_, &age| {
        let make = move || aged_plant(age);
        let plant_key = format!("aged-{age}");
        let truth = crate::ground_truth::true_vsafe_cached(&plant_key, &make, &load())
            .expect("load must be feasible across the aging sweep");

        // Culpeo-R re-profiles on the aged plant; it keeps the fresh
        // model's datasheet constants (C, η) but its observations come
        // from current reality.
        let mut sys = make();
        let v_high = sys.monitor().v_high();
        sys.set_buffer_voltage(v_high);
        let reprofiled = profile_task(
            &mut sys,
            &load(),
            &Profiler::UArch(UArchProfiler::default()),
        )
        .map(|run| runtime::compute_vsafe(&run.observation, &fresh_model).v_safe)
        .unwrap_or(v_high);

        let margin = Volts::from_milli(19.0); // the paper's ±20 mV failure band
        AgingRow {
            age,
            true_vsafe: truth.get(),
            pg_stale: pg_stale.get(),
            culpeo_r_reprofiled: reprofiled.get(),
            pg_safe: pg_stale >= truth - margin,
            culpeo_r_safe: reprofiled >= truth - margin,
        }
    });
    clock.mark("ground-truth+reprofile");
    (rows, clock.finish())
}

/// Prints the aging table.
pub fn print_table(rows: &[AgingRow]) {
    println!("§IV-C ablation: aging vs V_safe validity (50 mA/10 ms pulse)");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>8} {:>10}",
        "age", "true (V)", "PG stale", "Culpeo-R", "PG ok", "R ok"
    );
    for r in rows {
        println!(
            "{:>6.2} {:>10.3} {:>10.3} {:>12.3} {:>8} {:>10}",
            r.age, r.true_vsafe, r.pg_stale, r.culpeo_r_reprofiled, r.pg_safe, r.culpeo_r_safe
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_pg_fails_at_end_of_life_reprofiled_r_does_not() {
        let rows = run();
        let fresh = &rows[0];
        assert!(fresh.pg_safe, "PG must be safe on the fresh plant");
        assert!(fresh.culpeo_r_safe);

        let eol = rows.iter().find(|r| r.age >= 1.0).unwrap();
        assert!(
            !eol.pg_safe,
            "stale PG should be unsafe at end-of-life: pg {} vs true {}",
            eol.pg_stale, eol.true_vsafe
        );
        assert!(
            eol.culpeo_r_safe,
            "re-profiled Culpeo-R must track the aged plant: {} vs true {}",
            eol.culpeo_r_reprofiled, eol.true_vsafe
        );
    }

    #[test]
    fn true_vsafe_grows_with_age() {
        let rows = run();
        for w in rows.windows(2) {
            assert!(
                w[1].true_vsafe >= w[0].true_vsafe - 0.006,
                "aging should not lower the requirement: {w:?}"
            );
        }
    }
}

//! The §IV-D harvesting-assumption ablation.
//!
//! Culpeo-R assumes harvested power is roughly constant *during* an event
//! and therefore produces `V_safe` values that bake the profiling-time
//! harvest in: profile under strong sun and the observed dips are
//! shallower (the harvester offsets part of the draw), so the estimate is
//! lower than what a cloudy afternoon requires. The paper's prescription
//! is to pair Culpeo-R with scheduler policies that re-profile when the
//! charge rate changes; this experiment measures how much that matters.

use culpeo::{runtime, PowerSystemModel};
use culpeo_device::{profile_task, Profiler, UArchProfiler};
use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_loadgen::peripheral::LoRaRadio;
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{Harvester, PowerSystem, RunConfig};
use culpeo_units::{Volts, Watts};
use serde::Serialize;

/// One harvest level's result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HarvestRow {
    /// Constant harvested power during profiling *and* execution, watts.
    pub harvest_w: f64,
    /// Culpeo-R's `V_safe` when profiled at this harvest level, volts.
    pub v_safe: f64,
    /// Dispatching at this level's own estimate completes?
    pub own_completes: bool,
    /// Dispatching at the *strong-harvest* estimate completes here?
    pub strong_estimate_completes: bool,
}

/// The harvest levels swept: strong sun down to darkness.
pub const LEVELS_MW: [f64; 4] = [20.0, 8.0, 2.0, 0.0];

fn plant(harvest_mw: f64) -> PowerSystem {
    let mut sys = PowerSystem::capybara();
    if harvest_mw > 0.0 {
        sys.set_harvester(Harvester::ConstantPower(Watts::from_milli(harvest_mw)));
    }
    sys.force_output_enabled();
    sys
}

fn load() -> LoadProfile {
    LoRaRadio::default().profile()
}

/// Profiles the LoRa task at each harvest level and cross-dispatches the
/// strong-harvest estimate everywhere.
#[must_use]
pub fn run() -> Vec<HarvestRow> {
    run_timed(Sweep::from_env()).0
}

/// [`run`] on an explicit executor, with phase telemetry. The strong-sun
/// estimate is shared by every row so it profiles first; each harvest
/// level then profiles and cross-dispatches as one independent cell.
#[must_use]
pub fn run_timed(sweep: Sweep) -> (Vec<HarvestRow>, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    let model = PowerSystemModel::capybara();

    let estimate_at = |mw: f64| -> Volts {
        let mut sys = plant(mw);
        sys.set_buffer_voltage(model.v_high());
        profile_task(
            &mut sys,
            &load(),
            &Profiler::UArch(UArchProfiler::default()),
        )
        .map(|run| runtime::compute_vsafe(&run.observation, &model).v_safe)
        .unwrap_or_else(|| model.v_high())
    };

    let strong = estimate_at(LEVELS_MW[0]);
    clock.mark("strong-estimate");
    let rows = sweep.map(&LEVELS_MW, |_, &mw| {
        let own = estimate_at(mw);
        HarvestRow {
            harvest_w: mw * 1e-3,
            v_safe: own.get(),
            own_completes: dispatch(mw, own),
            strong_estimate_completes: dispatch(mw, strong),
        }
    });
    clock.mark("profile+dispatch");
    (rows, clock.finish())
}

fn dispatch(harvest_mw: f64, v: Volts) -> bool {
    let mut sys = plant(harvest_mw);
    sys.set_buffer_voltage((v + Volts::from_milli(5.0)).min(Volts::new(2.56)));
    sys.force_output_enabled();
    sys.run_profile(&load(), RunConfig::default()).completed()
}

/// Prints the ablation table.
pub fn print_table(rows: &[HarvestRow]) {
    println!("§IV-D: Culpeo-R V_safe vs harvesting conditions (LoRa TX)");
    println!(
        "{:>12} {:>10} {:>12} {:>22}",
        "harvest", "V_safe", "own works", "strong-sun est. works"
    );
    for r in rows {
        println!(
            "{:>10.1} mW {:>10.3} {:>12} {:>22}",
            r.harvest_w * 1e3,
            r.v_safe,
            r.own_completes,
            r.strong_estimate_completes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weaker_harvest_demands_higher_vsafe() {
        let rows = run();
        for w in rows.windows(2) {
            assert!(
                w[1].v_safe >= w[0].v_safe - 0.005,
                "V_safe should not fall as harvest weakens: {w:?}"
            );
        }
        // Strong sun vs darkness differ by a scheduler-relevant margin.
        assert!(
            rows[rows.len() - 1].v_safe - rows[0].v_safe > 0.03,
            "dark {} vs sunny {}",
            rows[rows.len() - 1].v_safe,
            rows[0].v_safe
        );
    }

    #[test]
    fn own_estimates_are_safe_everywhere() {
        for r in run() {
            assert!(
                r.own_completes,
                "estimate profiled at {} W failed at its own level",
                r.harvest_w
            );
        }
    }

    #[test]
    fn stale_sunny_estimate_fails_in_the_dark() {
        let rows = run();
        let dark = rows.last().unwrap();
        assert!(
            !dark.strong_estimate_completes,
            "the strong-sun estimate must fail without harvest — this is \
             why §IV-D re-profiles when the charge rate changes"
        );
    }
}

//! Harness driver for the durable telemetry store: ingest throughput in
//! each durability mode and crash-recovery latency, the receipts behind
//! EXPERIMENTS.md's "durable telemetry" table.
//!
//! Determinism caveat: unlike the figure drivers, the *point* of this
//! artifact is wall-clock (records/s, recovery seconds), so the rows of
//! `results/store_battery.json` carry timings and are not byte-stable
//! across machines. The record counts, recovered counts, and torn-tail
//! bytes in the same rows *are* exact and machine-independent — the
//! correctness half of the report is still a fixed function of the
//! configuration.

use std::path::PathBuf;
use std::time::Instant;

use culpeo_exec::{PhaseClock, Telemetry};
use culpeo_faults::store::seeded_triples;
use culpeo_store::{recover, Durability, Store, StoreConfig, FRAME_LEN};
use serde::Serialize;

/// Sizing knobs for one battery run.
#[derive(Debug, Clone, Copy)]
pub struct StoreBatteryConfig {
    /// Records appended one-per-ack in `Durability::Fsync` mode.
    pub fsync_records: usize,
    /// Records appended via `append_batch` (one ack per batch) in
    /// `Durability::Fsync` mode.
    pub batch_records: usize,
    /// Records per `append_batch` call in the batched phase.
    pub batch_size: usize,
    /// Records appended in `Durability::Manual` mode (one fsync at the
    /// end), and the population the recovery phase then crashes into.
    pub manual_records: usize,
    /// Seed for the synthetic observation stream.
    pub seed: u64,
}

impl Default for StoreBatteryConfig {
    fn default() -> Self {
        Self {
            fsync_records: 2_000,
            batch_records: 16_000,
            batch_size: 64,
            manual_records: 200_000,
            seed: 42,
        }
    }
}

/// One ingest-mode measurement.
#[derive(Debug, Clone, Serialize)]
pub struct IngestRow {
    /// Durability mode + call shape being measured.
    pub mode: String,
    /// Records appended.
    pub records: u64,
    /// Wall-clock seconds for the whole phase (including the final
    /// fsync in manual mode — durability is part of the price).
    pub seconds: f64,
    /// `records / seconds`.
    pub records_per_s: f64,
    /// Group-commit fsync rounds the phase paid for (0 in manual mode's
    /// append loop; its single closing `sync` is counted here too).
    pub fsync_rounds: u64,
}

/// The recovery measurement: crash into a populated log, repair it.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryRow {
    /// Records durable before the simulated crash.
    pub records_before: u64,
    /// Bytes torn off the final frame by the simulated crash.
    pub torn_bytes: u64,
    /// Records recovered (must be `records_before` — the torn frame was
    /// never acked).
    pub records_recovered: u64,
    /// Segment files scanned.
    pub segments: usize,
    /// Wall-clock seconds for `culpeo_store::recover`.
    pub seconds: f64,
    /// `records_recovered / seconds`.
    pub records_per_s: f64,
}

/// The full battery artifact.
#[derive(Debug, Clone, Serialize)]
pub struct StoreBatteryReport {
    /// Seed of the synthetic observation stream.
    pub seed: u64,
    /// Per-mode ingest throughput.
    pub ingest: Vec<IngestRow>,
    /// Crash-recovery latency over the manual-mode population.
    pub recovery: RecoveryRow,
}

/// Runs the battery in a scratch directory with phase telemetry.
///
/// # Panics
///
/// Panics on any store or filesystem error — a failed measurement run
/// has no artifact to write.
#[must_use]
pub fn run_timed(config: &StoreBatteryConfig) -> (StoreBatteryReport, Telemetry) {
    let mut clock = PhaseClock::new(1);
    let mut ingest = Vec::new();

    // Phase 1: one durable ack per record.
    let dir = scratch("fsync");
    let (store, _) = Store::open(&dir, store_config(Durability::Fsync)).expect("open fsync store");
    let triples = seeded_triples(config.seed, config.fsync_records);
    let started = Instant::now();
    let mut rounds = 0u64;
    for (device, vs, vm, vf) in &triples {
        let acked = store.append(*device, *vs, *vm, *vf).expect("append");
        rounds = rounds.max(acked.fsync_rounds as u64);
    }
    ingest.push(ingest_row(
        "fsync-per-record",
        triples.len(),
        started.elapsed().as_secs_f64(),
        rounds,
    ));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    clock.mark("fsync-per-record");

    // Phase 2: durable acks amortised over batches.
    let dir = scratch("batch");
    let (store, _) = Store::open(&dir, store_config(Durability::Fsync)).expect("open batch store");
    let triples = seeded_triples(config.seed, config.batch_records);
    let started = Instant::now();
    let mut rounds = 0u64;
    for chunk in triples.chunks(config.batch_size) {
        // One device per batch call keeps the shape of a real uplink: a
        // device flushes its backlog in one request.
        let device = chunk[0].0;
        let batch: Vec<(f64, f64, f64)> = chunk.iter().map(|t| (t.1, t.2, t.3)).collect();
        let acks = store.append_batch(device, &batch).expect("append_batch");
        rounds = rounds.max(acks.last().map_or(0, |a| a.fsync_rounds as u64));
    }
    ingest.push(ingest_row(
        "fsync-batch",
        triples.len(),
        started.elapsed().as_secs_f64(),
        rounds,
    ));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    clock.mark("fsync-batch");

    // Phase 3: manual mode — ack means "in the page cache", one closing
    // fsync covers the run (the analysis-cache shape, not the ingest
    // default).
    let dir = scratch("manual");
    let (store, _) =
        Store::open(&dir, store_config(Durability::Manual)).expect("open manual store");
    let triples = seeded_triples(config.seed, config.manual_records);
    let started = Instant::now();
    for (device, vs, vm, vf) in &triples {
        store.append(*device, *vs, *vm, *vf).expect("append");
    }
    store.sync().expect("closing sync");
    ingest.push(ingest_row(
        "manual+final-sync",
        triples.len(),
        started.elapsed().as_secs_f64(),
        1,
    ));
    drop(store);
    clock.mark("manual+final-sync");

    // Phase 4: crash into the manual population mid-frame and recover.
    let torn = (FRAME_LEN as u64) / 2;
    let last = culpeo_store::segment_files(&dir)
        .expect("list segments")
        .pop()
        .expect("at least one segment");
    let len = std::fs::metadata(&last).expect("segment metadata").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&last)
        .and_then(|f| f.set_len(len + torn - FRAME_LEN as u64))
        .expect("tear the tail");
    let started = Instant::now();
    let report = recover(&dir).expect("recovery");
    let seconds = started.elapsed().as_secs_f64();
    assert_eq!(
        report.records_recovered + 1,
        config.manual_records as u64,
        "exactly the torn final frame is lost"
    );
    assert!(report.quarantined.is_empty(), "a tear is not corruption");
    let recovery = RecoveryRow {
        records_before: config.manual_records as u64,
        torn_bytes: report.truncated_bytes,
        records_recovered: report.records_recovered,
        segments: report.segments_scanned,
        seconds,
        records_per_s: throughput(report.records_recovered, seconds),
    };
    let _ = std::fs::remove_dir_all(&dir);
    clock.mark("recover");

    (
        StoreBatteryReport {
            seed: config.seed,
            ingest,
            recovery,
        },
        clock.finish(),
    )
}

/// Human-readable table for the battery report.
#[must_use]
pub fn print_table(report: &StoreBatteryReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "durable telemetry store (seed {}):", report.seed);
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>12} {:>14}",
        "ingest mode", "records", "records/s", "fsync rounds"
    );
    for row in &report.ingest {
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>12.0} {:>14}",
            row.mode, row.records, row.records_per_s, row.fsync_rounds
        );
    }
    let r = &report.recovery;
    let _ = writeln!(
        out,
        "recovery: {} of {} records in {:.3}s ({:.0} records/s, {} torn bytes truncated, {} segments)",
        r.records_recovered, r.records_before, r.seconds, r.records_per_s, r.torn_bytes, r.segments
    );
    out
}

fn ingest_row(mode: &str, records: usize, seconds: f64, fsync_rounds: u64) -> IngestRow {
    IngestRow {
        mode: mode.to_string(),
        records: records as u64,
        seconds,
        records_per_s: throughput(records as u64, seconds),
        fsync_rounds,
    }
}

fn throughput(records: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        records as f64 / seconds
    } else {
        f64::INFINITY
    }
}

/// 256 KiB segments: large enough to amortise rotation, small enough
/// that the recovery phase scans a multi-segment directory.
fn store_config(durability: Durability) -> StoreConfig {
    StoreConfig {
        segment_bytes: 256 * 1024,
        durability,
        ..StoreConfig::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("culpeo-store-battery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_battery_measures_all_modes_and_recovers_exactly() {
        let config = StoreBatteryConfig {
            fsync_records: 20,
            batch_records: 128,
            batch_size: 16,
            manual_records: 500,
            seed: 7,
        };
        let (report, telemetry) = run_timed(&config);
        assert_eq!(report.ingest.len(), 3);
        for row in &report.ingest {
            assert!(row.records_per_s > 0.0, "{}: no throughput", row.mode);
        }
        assert_eq!(report.recovery.records_before, 500);
        assert_eq!(report.recovery.records_recovered, 499);
        assert_eq!(report.recovery.torn_bytes, (FRAME_LEN as u64) / 2);
        assert!(report.recovery.segments > 0);
        assert_eq!(telemetry.phases.len(), 4);
        let table = print_table(&report);
        assert!(table.contains("fsync-batch"));
        assert!(table.contains("recovery: 499 of 500"));
    }
}

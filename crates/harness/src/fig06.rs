//! Figure 6: energy-only estimators against ground truth.
//!
//! For each synthetic load, the error is reported as the paper does:
//! `(true V_safe − predicted V_safe)` as a percentage of the operating
//! range, so **positive error means the prediction is too low and the
//! task fails**. Energy-Direct, Catnap-Slow, and Catnap-Measured are the
//! systems under test.

use culpeo::PowerSystemModel;
use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_loadgen::synthetic::fig6_loads;
use serde::Serialize;

use crate::ground_truth::{true_vsafe_batch, true_vsafe_cached};
use crate::systems::VsafeSystem;
use crate::{error_percent_of_range, reference_plant};

/// The systems Figure 6 compares.
pub const FIG6_SYSTEMS: [VsafeSystem; 3] = [
    VsafeSystem::EnergyDirect,
    VsafeSystem::CatnapSlow,
    VsafeSystem::CatnapMeasured,
];

/// One (load, system) cell of Figure 6.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig06Row {
    /// Load label (e.g. `"25mA/10ms pulse"`).
    pub load: String,
    /// Estimator label.
    pub system: String,
    /// Ground-truth `V_safe` from the brute-force search, volts.
    pub true_vsafe: f64,
    /// The estimator's prediction, volts.
    pub predicted_vsafe: f64,
    /// `(true − predicted)` as % of operating range; positive ⇒ the task
    /// fails when dispatched at the prediction.
    pub error_pct: f64,
}

/// Runs the Figure 6 comparison over the 12 synthetic loads.
#[must_use]
pub fn run() -> Vec<Fig06Row> {
    run_timed(Sweep::from_env()).0
}

/// [`run`] on an explicit executor, with phase telemetry. One sweep cell
/// per load: the ground-truth search plus all three predictions.
#[must_use]
pub fn run_timed(sweep: Sweep) -> (Vec<Fig06Row>, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    let model = PowerSystemModel::characterize(&reference_plant);
    let range = model.operating_range();
    clock.mark("characterize");
    // Warm the probe cache with one batched lock-step search (see fig10);
    // the per-load bisections below then resolve from cache.
    let _ = true_vsafe_batch("reference", &reference_plant, &fig6_loads());
    clock.mark("ground-truth-batch");
    let per_load = sweep.map_into(fig6_loads(), |_, load| {
        let Some(truth) = true_vsafe_cached("reference", &reference_plant, load) else {
            return Vec::new();
        };
        FIG6_SYSTEMS
            .iter()
            .filter_map(|&system| {
                let predicted = system.predict(load, &model, &reference_plant)?;
                Some(Fig06Row {
                    load: load.label().to_string(),
                    system: system.label().to_string(),
                    true_vsafe: truth.get(),
                    predicted_vsafe: predicted.get(),
                    error_pct: error_percent_of_range(truth - predicted, range).get(),
                })
            })
            .collect::<Vec<_>>()
    });
    clock.mark("ground-truth+predictions");
    let rows = per_load.into_iter().flatten().collect();
    (rows, clock.finish())
}

/// Prints the Figure 6 table.
pub fn print_table(rows: &[Fig06Row]) {
    println!("Figure 6: V_safe error of energy-only estimators (+ = task fails)");
    println!(
        "{:<22} {:<18} {:>10} {:>10} {:>9}",
        "load", "system", "true (V)", "pred (V)", "err (%)"
    );
    for r in rows {
        println!(
            "{:<22} {:<18} {:>10.3} {:>10.3} {:>9.1}",
            r.load, r.system, r.true_vsafe, r.predicted_vsafe, r.error_pct
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_estimators_fail_most_pulse_loads() {
        let rows = run();
        // Among the pulse+compute loads, the energy-only estimators must
        // produce substantially positive (unsafe) errors for the
        // high-current points — the paper's headline claim.
        let unsafe_pulse_cells = rows
            .iter()
            .filter(|r| r.load.contains("pulse") && r.load.contains("50mA"))
            .filter(|r| r.error_pct > 5.0)
            .count();
        assert!(
            unsafe_pulse_cells >= 2,
            "expected ≥2 badly-unsafe 50 mA pulse cells, rows: {:#?}",
            rows.iter()
                .filter(|r| r.load.contains("50mA"))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn direct_energy_is_never_conservative_for_pulses() {
        let rows = run();
        for r in rows
            .iter()
            .filter(|r| r.system == "Energy-Direct" && r.load.contains("pulse"))
        {
            assert!(
                r.error_pct > -2.0,
                "Energy-Direct should never exceed the true V_safe by much: {r:?}"
            );
        }
    }

    #[test]
    fn covers_all_loads_and_systems() {
        let rows = run();
        // 12 loads × 3 systems, modulo loads that are infeasible (none of
        // the Fig 6 set should be).
        assert_eq!(rows.len(), 36, "expected full grid");
    }
}

//! Pre-flight lint gate: the experiment drivers refuse to run on
//! diagnostics-bearing inputs.
//!
//! Every `figNN::run()` (and the ablation drivers) calls
//! [`require_clean_reference`] before touching the plant. The gate runs
//! the full `culpeo-analyze` battery over the reference configuration —
//! the Capybara spec, a sampled BLE trace, and a short audited smoke run
//! of the simulated plant with its `Violation`s promoted into the same
//! `C0xx` vocabulary — and panics with the rendered diagnostics if any
//! *error* fired. The verdict is computed once per process and cached.
//!
//! For experiment-specific inputs, [`require_clean`] applies the same
//! policy to an arbitrary [`AnalysisInput`].

use std::sync::OnceLock;

use culpeo_analyze::promote::promote;
use culpeo_analyze::{AnalysisInput, Registry, Report, SystemSpec, TraceInput};
use culpeo_loadgen::peripheral::BleRadio;
use culpeo_powersim::Auditor;
use culpeo_units::{Amps, Hertz, Seconds};

/// Runs the default lint battery over `input`.
#[must_use]
pub fn report_for(input: &AnalysisInput) -> Report {
    Registry::default_battery().run(input)
}

/// Runs the battery and panics with the rendered diagnostics if any
/// error fired. `what` names the input in the panic message.
///
/// # Panics
///
/// Panics when the battery reports at least one error-severity
/// diagnostic.
pub fn require_clean(input: &AnalysisInput, what: &str) {
    let report = report_for(input);
    assert!(
        !report.has_errors(),
        "pre-flight refused {what}: input carries error diagnostics\n{}",
        report.render_human(false)
    );
}

/// Lints the reference configuration the fig drivers consume: the
/// Capybara spec, a sampled BLE radio trace, and an audited smoke run of
/// the simulated plant (whose `Violation`s are promoted to C03x).
#[must_use]
pub fn reference_report() -> Report {
    let spec = SystemSpec::capybara();
    let trace = BleRadio::default().profile().sample(Hertz::new(125_000.0));
    let traces = vec![TraceInput::from_trace("reference ble trace", &trace)];
    let input = AnalysisInput {
        spec: &spec,
        spec_locus: "reference capybara spec",
        traces: &traces,
        plan: None,
        plan_locus: "",
    };
    let mut report = report_for(&input);

    // Dynamic leg: a short audited run of the reference plant. The
    // Auditor's physics violations join the static diagnostics so one
    // report gates both.
    let mut sys = crate::reference_plant();
    let mut audit = Auditor::new(&mut sys);
    let dt = Seconds::from_micro(100.0);
    for _ in 0..500 {
        audit.step(Amps::from_milli(5.0), dt);
    }
    report.extend(
        audit
            .finish()
            .iter()
            .map(|v| promote(v, "reference plant smoke run")),
    );
    report
}

/// Gates the experiment drivers on [`reference_report`]; the verdict is
/// computed once per process.
///
/// # Panics
///
/// Panics when the reference configuration carries error diagnostics —
/// no figure or ablation may be regenerated from inputs the linter
/// rejects.
pub fn require_clean_reference() {
    static VERDICT: OnceLock<Result<(), String>> = OnceLock::new();
    let verdict = VERDICT.get_or_init(|| {
        let report = reference_report();
        if report.has_errors() {
            Err(report.render_human(false))
        } else {
            Ok(())
        }
    });
    if let Err(rendered) = verdict {
        panic!("pre-flight refused the reference configuration:\n{rendered}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_analyze::Severity;

    #[test]
    fn reference_configuration_is_clean() {
        let report = reference_report();
        assert!(
            !report.has_errors(),
            "reference inputs must lint clean:\n{}",
            report.render_human(false)
        );
    }

    #[test]
    fn gate_accepts_reference_and_is_idempotent() {
        require_clean_reference();
        require_clean_reference();
    }

    #[test]
    fn gate_refuses_a_corrupted_spec() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        spec.esr_curve = Some(vec![(10.0, 3.1), (100.0, 4.2)]); // rises
        let input = AnalysisInput::spec_only(&spec, "corrupted spec");
        let report = report_for(&input);
        assert!(report.has_errors());
        let caught = std::panic::catch_unwind(|| require_clean(&input, "corrupted spec"));
        assert!(caught.is_err(), "gate must refuse a rising ESR curve");
    }

    /// The machine-readable report is the contract CI consumes: parse it
    /// back and check the schema fields the drivers rely on.
    #[test]
    fn json_report_round_trips_through_the_schema() {
        let report = reference_report();
        let doc = serde_json::parse_value_str(&report.render_json()).unwrap();
        assert_eq!(doc.get("version").and_then(serde::Value::as_f64), Some(1.0));
        assert_eq!(doc.get("errors").and_then(serde::Value::as_f64), Some(0.0));
        let diags = doc
            .get("diagnostics")
            .and_then(serde::Value::as_array)
            .expect("diagnostics array");
        assert_eq!(diags.len(), report.diagnostics().len());
        for (json, diag) in diags.iter().zip(report.diagnostics()) {
            assert_eq!(
                json.get("code").and_then(serde::Value::as_str),
                Some(diag.code)
            );
            let label = match diag.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            assert_eq!(
                json.get("severity").and_then(serde::Value::as_str),
                Some(label)
            );
        }
    }
}

//! Figure 3: volume versus ESR for 45 mF capacitor banks across
//! technologies.

use culpeo_capbank::{Catalog, Technology};
use culpeo_units::Farads;
use serde::Serialize;

/// One bank in the Figure 3 point cloud.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BankRow {
    /// Technology legend group.
    pub technology: String,
    /// Synthetic part number the bank stacks.
    pub part_number: String,
    /// Parts in the bank.
    pub part_count: usize,
    /// Total volume in mm³ (x-axis).
    pub volume_mm3: f64,
    /// Bank ESR in ohms (y-axis).
    pub esr_ohms: f64,
    /// Total leakage in amps (annotation).
    pub dcl_amps: f64,
}

/// Builds the full Figure 3 point cloud for 45 mF banks.
#[must_use]
pub fn run() -> Vec<BankRow> {
    crate::preflight::require_clean_reference();
    let catalog = Catalog::synthetic();
    catalog
        .bank_sweep(Farads::from_milli(45.0))
        .into_iter()
        .map(|b| BankRow {
            technology: b.technology().label().to_string(),
            part_number: b.part().part_number().to_string(),
            part_count: b.part_count(),
            volume_mm3: b.volume().get(),
            esr_ohms: b.esr().get(),
            dcl_amps: b.leakage().get(),
        })
        .collect()
}

/// Prints the per-technology design corners the paper annotates.
pub fn print_table(rows: &[BankRow]) {
    println!("Figure 3: 45 mF banks — smallest-volume design point per technology");
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>12}",
        "technology", "parts", "volume (mm³)", "ESR (Ω)", "DCL (A)"
    );
    for tech in Technology::ALL {
        if let Some(best) = rows
            .iter()
            .filter(|r| r.technology == tech.label())
            .min_by(|a, b| a.volume_mm3.total_cmp(&b.volume_mm3))
        {
            println!(
                "{:<16} {:>12} {:>14.1} {:>12.4} {:>12.3e}",
                best.technology, best.part_count, best.volume_mm3, best.esr_ohms, best.dcl_amps
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smallest(rows: &[BankRow], tech: Technology) -> &BankRow {
        rows.iter()
            .filter(|r| r.technology == tech.label())
            .min_by(|a, b| a.volume_mm3.total_cmp(&b.volume_mm3))
            .unwrap()
    }

    #[test]
    fn reproduces_the_papers_corners() {
        let rows = run();
        let sc = smallest(&rows, Technology::Supercapacitor);
        let ta = smallest(&rows, Technology::Tantalum);
        let cc = smallest(&rows, Technology::Ceramic);
        let el = smallest(&rows, Technology::Electrolytic);

        // Supercaps: smallest volume of all, few parts, nA leakage,
        // ohm-class ESR.
        assert!(sc.volume_mm3 < ta.volume_mm3);
        assert!(sc.volume_mm3 < cc.volume_mm3);
        assert!(sc.volume_mm3 < el.volume_mm3);
        assert!(sc.part_count <= 10);
        assert!(sc.dcl_amps < 1e-7);
        assert!(sc.esr_ohms > 0.1);

        // Tantalum: mA-class leakage for the densest banks.
        assert!(ta.dcl_amps > 1e-3);

        // Ceramic: thousands of parts, µΩ-class bank ESR.
        assert!(cc.part_count > 2000);
        assert!(cc.esr_ohms < 1e-4);
    }

    #[test]
    fn point_cloud_covers_all_technologies() {
        let rows = run();
        for tech in Technology::ALL {
            let n = rows.iter().filter(|r| r.technology == tech.label()).count();
            assert!(n >= 100, "{tech}: {n} points");
        }
    }

    #[test]
    fn every_bank_reaches_45mf() {
        let catalog = Catalog::synthetic();
        for bank in catalog.bank_sweep(Farads::from_milli(45.0)) {
            assert!(bank.capacitance().get() >= 45e-3 - 1e-9);
        }
    }
}

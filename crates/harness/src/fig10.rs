//! Figure 10: `V_safe` prediction error for CatNap and all three Culpeo
//! implementations over the 18 synthetic loads.
//!
//! Sign convention (the paper flips it relative to Figure 6): error is
//! `(predicted − true)` as a percentage of the operating range, so
//! **negative error is unsafe** (task fails) and the paper's correctness
//! bar is "above −2 %, ideally > 0 with < 10 % conservatism".

use culpeo::PowerSystemModel;
use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_loadgen::synthetic::fig10_loads;
use culpeo_loadgen::LoadProfile;
use serde::Serialize;

use crate::ground_truth::{true_vsafe_batch, true_vsafe_cached};
use crate::systems::VsafeSystem;
use crate::{error_percent_of_range, reference_plant};

/// The systems Figure 10 compares.
pub const FIG10_SYSTEMS: [VsafeSystem; 4] = [
    VsafeSystem::CatnapMeasured,
    VsafeSystem::CulpeoPg,
    VsafeSystem::CulpeoIsr,
    VsafeSystem::CulpeoUArch,
];

/// One (load, system) cell of Figure 10.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig10Row {
    /// Load label.
    pub load: String,
    /// System label.
    pub system: String,
    /// Ground-truth `V_safe`, volts.
    pub true_vsafe: f64,
    /// Predicted `V_safe`, volts.
    pub predicted_vsafe: f64,
    /// `(predicted − true)` as % of operating range; negative ⇒ unsafe.
    pub error_pct: f64,
}

/// Runs the Figure 10 comparison over the 18 loads × 4 systems.
#[must_use]
pub fn run() -> Vec<Fig10Row> {
    run_timed(Sweep::from_env()).0
}

/// [`run`] on an explicit executor, with phase telemetry.
#[must_use]
pub fn run_timed(sweep: Sweep) -> (Vec<Fig10Row>, Telemetry) {
    run_on(sweep, &fig10_loads())
}

/// The Figure 10 comparison over an arbitrary load subset — one sweep cell
/// per load (ground truth plus all four predictions). The determinism
/// tests run a short subset serially and in parallel and require
/// byte-identical rows.
#[must_use]
pub fn run_on(sweep: Sweep, loads: &[LoadProfile]) -> (Vec<Fig10Row>, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    let model = PowerSystemModel::characterize(&reference_plant);
    let range = model.operating_range();
    clock.mark("characterize");
    // One lock-step batched ground-truth search warms the probe cache for
    // the whole grid; the per-load bisections below then resolve from
    // cache. Verdicts are bitwise the scalar search's, so rows are
    // unchanged.
    let _ = true_vsafe_batch("reference", &reference_plant, loads);
    clock.mark("ground-truth-batch");
    let per_load = sweep.map(loads, |_, load| {
        let Some(truth) = true_vsafe_cached("reference", &reference_plant, load) else {
            return Vec::new();
        };
        FIG10_SYSTEMS
            .iter()
            .filter_map(|&system| {
                let predicted = system.predict(load, &model, &reference_plant)?;
                Some(Fig10Row {
                    load: load.label().to_string(),
                    system: system.label().to_string(),
                    true_vsafe: truth.get(),
                    predicted_vsafe: predicted.get(),
                    error_pct: error_percent_of_range(predicted - truth, range).get(),
                })
            })
            .collect::<Vec<_>>()
    });
    clock.mark("ground-truth+predictions");
    let rows = per_load.into_iter().flatten().collect();
    (rows, clock.finish())
}

/// Prints the Figure 10 table.
pub fn print_table(rows: &[Fig10Row]) {
    println!("Figure 10: V_safe prediction error (− = UNSAFE, + = conservative)");
    println!(
        "{:<22} {:<16} {:>10} {:>10} {:>9}",
        "load", "system", "true (V)", "pred (V)", "err (%)"
    );
    for r in rows {
        let marker = if r.error_pct < -2.0 { "  ✗" } else { "" };
        println!(
            "{:<22} {:<16} {:>10.3} {:>10.3} {:>9.1}{marker}",
            r.load, r.system, r.true_vsafe, r.predicted_vsafe, r.error_pct
        );
    }
}

/// Summarises safety per system: (unsafe cells, worst error, mean error).
#[must_use]
pub fn summarize(rows: &[Fig10Row]) -> Vec<(String, usize, f64, f64)> {
    FIG10_SYSTEMS
        .iter()
        .map(|s| {
            let cells: Vec<&Fig10Row> = rows.iter().filter(|r| r.system == s.label()).collect();
            let unsafe_cells = cells.iter().filter(|r| r.error_pct < -2.0).count();
            let worst = cells
                .iter()
                .map(|r| r.error_pct)
                .fold(f64::INFINITY, f64::min);
            let mean = cells.iter().map(|r| r.error_pct).sum::<f64>() / cells.len().max(1) as f64;
            (s.label().to_string(), unsafe_cells, worst, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn culpeo_r_variants_are_always_safe() {
        let rows = run();
        for r in rows
            .iter()
            .filter(|r| r.system == "Culpeo-ISR" || r.system == "Culpeo-µArch")
        {
            assert!(
                r.error_pct > -2.0,
                "{} on {} is unsafe: {:.1}% (pred {:.3} vs true {:.3})",
                r.system,
                r.load,
                r.error_pct,
                r.predicted_vsafe,
                r.true_vsafe
            );
        }
    }

    #[test]
    fn catnap_is_unsafe_on_pulse_loads() {
        let rows = run();
        let unsafe_catnap = rows
            .iter()
            .filter(|r| r.system == "Catnap-Measured" && r.load.contains("pulse"))
            .filter(|r| r.error_pct < -2.0)
            .count();
        assert!(
            unsafe_catnap >= 4,
            "CatNap should be unsafe on most pulse loads, got {unsafe_catnap}"
        );
    }

    #[test]
    fn culpeo_estimates_are_not_wildly_conservative() {
        let rows = run();
        for r in rows.iter().filter(|r| r.system.starts_with("Culpeo")) {
            assert!(
                r.error_pct < 40.0,
                "{} on {}: {:.1}% over-conservative",
                r.system,
                r.load,
                r.error_pct
            );
        }
    }

    #[test]
    fn grid_is_complete() {
        let rows = run();
        assert_eq!(rows.len(), 18 * 4);
    }
}

//! The §V-B reconfigurable-energy-storage experiment.
//!
//! Devices like Capybara and Morphy switch capacitor banks in and out at
//! runtime, trading storage capacity against recharge time. Every
//! configuration is a different power system — different effective
//! capacitance *and* different effective ESR — so a `V_safe` computed
//! under one configuration is wrong under another. Culpeo handles this by
//! tagging per-task data with a buffer-configuration identifier (§V-B);
//! this experiment shows the tagging is not bureaucracy: the same task's
//! `V_safe` differs across configurations by a scheduler-relevant margin,
//! and using the wrong configuration's value browns the device out.

use culpeo::{runtime, BufferConfigId, Culpeo, PowerSystemModel, TaskId};
use culpeo_device::{profile_task, Profiler, UArchProfiler};
use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_loadgen::peripheral::BleRadio;
use culpeo_powersim::{CapacitorBranch, PowerSystem, RunConfig};
use culpeo_units::{Amps, Farads, Ohms, Volts};
use serde::Serialize;

/// One buffer configuration's result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReconfigRow {
    /// Configuration name.
    pub config: String,
    /// Connected capacitance in farads.
    pub capacitance_f: f64,
    /// The BLE task's `V_safe` under this configuration, volts.
    pub v_safe: f64,
    /// Dispatching at *this* configuration's value completes?
    pub own_value_completes: bool,
    /// Dispatching at the *other* configuration's value completes?
    pub crossed_value_completes: bool,
}

/// A two-bank reconfigurable array: a small "fast" bank (one 7.5 mF part)
/// and a large "bulk" bank (five more parts). `small_only = true` leaves
/// only the fast bank connected.
fn array(small_only: bool) -> PowerSystem {
    let part = |v: f64| {
        CapacitorBranch::new(
            Farads::from_milli(7.5),
            Ohms::new(20.0),
            Amps::new(3.3e-9),
            Volts::new(v),
        )
    };
    let mut sys = PowerSystem::builder()
        .extra_branch(part(0.0)) // placeholder; replaced below
        .build();
    // Build the explicit 2-bank array: branch 0 = fast bank (1 part),
    // branch 1 = bulk bank (5 parts in parallel ⇒ 37.5 mF, 4 Ω).
    let bulk = CapacitorBranch::new(
        Farads::from_milli(37.5),
        Ohms::new(4.0),
        Amps::new(16.5e-9),
        Volts::new(2.56),
    );
    let fast = part(2.56);
    *sys.buffer_mut() = culpeo_powersim::BufferNetwork::new(vec![fast, bulk]);
    if small_only {
        sys.buffer_mut().set_branch_connected(1, false);
    }
    sys.force_output_enabled();
    sys
}

/// The per-configuration model a designer would register with Culpeo.
fn model_for(small_only: bool) -> PowerSystemModel {
    let (c, r) = if small_only {
        (Farads::from_milli(7.5), Ohms::new(20.0))
    } else {
        // 7.5 mF ∥ 37.5 mF with 20 Ω ∥ 4 Ω.
        (
            Farads::from_milli(45.0),
            Ohms::new(1.0 / (1.0 / 20.0 + 1.0 / 4.0)),
        )
    };
    PowerSystemModel::with_flat_esr(
        c,
        r,
        Volts::new(2.55),
        culpeo_powersim::EfficiencyCurve::tps61200_like(),
        Volts::new(1.6),
        Volts::new(2.56),
    )
}

/// Profiles the BLE task under both configurations through the Culpeo
/// API (config-tagged), then cross-dispatches.
#[must_use]
pub fn run() -> Vec<ReconfigRow> {
    run_timed(Sweep::from_env()).0
}

/// [`run`] on an explicit executor, with phase telemetry. The simulated
/// profiling runs fan out per configuration; the Culpeo bookkeeping
/// (config tagging, estimate storage) stays serial because it mutates one
/// shared runtime object, exactly as on the device. Cross-dispatch fans
/// out per configuration again.
#[must_use]
pub fn run_timed(sweep: Sweep) -> (Vec<ReconfigRow>, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    let task = TaskId(1);
    let load = BleRadio::default().profile();
    let configs = [("full-array", false), ("small-bank", true)];

    // Profile under each configuration (the expensive simulated part)…
    let runs = sweep.map(&configs, |_, &(_, small_only)| {
        let mut sys = array(small_only);
        profile_task(&mut sys, &load, &Profiler::UArch(UArchProfiler::default()))
            .expect("profiling from full charge completes")
    });
    clock.mark("profile");

    // …then tag the observations via the Culpeo API in input order.
    let mut culpeo = Culpeo::new(model_for(false));
    let mut vsafes = Vec::new();
    for (idx, (&(_, small_only), run)) in configs.iter().zip(&runs).enumerate() {
        culpeo.set_buffer_config(BufferConfigId(idx as u32), Some(model_for(small_only)));
        let est = runtime::compute_vsafe(&run.observation, culpeo.model());
        culpeo.insert_estimate(task, est);
        vsafes.push(culpeo.get_vsafe(task).expect("estimate stored"));
    }
    clock.mark("estimate");

    // Cross-dispatch: own value vs the other configuration's value.
    let cells: Vec<usize> = (0..configs.len()).collect();
    let rows = sweep.map(&cells, |_, &idx| {
        let (name, small_only) = configs[idx];
        let own = vsafes[idx];
        let other = vsafes[1 - idx];
        ReconfigRow {
            config: name.to_string(),
            capacitance_f: array(small_only).buffer().connected_capacitance().get(),
            v_safe: own.get(),
            own_value_completes: dispatch(small_only, &load, own),
            crossed_value_completes: dispatch(small_only, &load, other),
        }
    });
    clock.mark("cross-dispatch");
    (rows, clock.finish())
}

fn dispatch(small_only: bool, load: &culpeo_loadgen::LoadProfile, v: Volts) -> bool {
    let mut sys = array(small_only);
    let v = (v + Volts::from_milli(5.0)).min(Volts::new(2.56));
    sys.set_buffer_voltage(v);
    sys.force_output_enabled();
    sys.run_profile(load, RunConfig::default()).completed()
}

/// Prints the experiment table.
pub fn print_table(rows: &[ReconfigRow]) {
    println!("§V-B: per-configuration V_safe for the BLE task");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>14}",
        "config", "C (mF)", "V_safe", "own works", "crossed works"
    );
    for r in rows {
        println!(
            "{:<12} {:>10.1} {:>10.3} {:>12} {:>14}",
            r.config,
            r.capacitance_f * 1e3,
            r.v_safe,
            r.own_value_completes,
            r.crossed_value_completes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_config_vsafe_differs_substantially() {
        let rows = run();
        let full = rows.iter().find(|r| r.config == "full-array").unwrap();
        let small = rows.iter().find(|r| r.config == "small-bank").unwrap();
        // The lone 7.5 mF / 20 Ω bank needs a much higher start.
        assert!(
            small.v_safe - full.v_safe > 0.1,
            "small {} vs full {}",
            small.v_safe,
            full.v_safe
        );
    }

    #[test]
    fn own_configuration_values_are_safe() {
        for r in run() {
            assert!(r.own_value_completes, "{}: own V_safe failed", r.config);
        }
    }

    #[test]
    fn full_array_value_is_unsafe_on_the_small_bank() {
        let rows = run();
        let small = rows.iter().find(|r| r.config == "small-bank").unwrap();
        assert!(
            !small.crossed_value_completes,
            "the full-array V_safe must NOT be enough for the small bank"
        );
    }
}

//! Figure 1(b): the ESR drop and rebound on a real voltage trace.
//!
//! A pulse on the high-ESR bank produces a total drop far larger than the
//! energy-consumption drop alone; the difference — the "missed drop" — is
//! what energy-only charge management never sees.

use culpeo_loadgen::synthetic::PulseLoad;
use culpeo_powersim::{RunConfig, VoltageSample};
use culpeo_units::{Amps, Seconds, Volts};
use serde::Serialize;

use crate::reference_plant;

/// One point of the Figure 1(b) trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TracePoint {
    /// Time since the load began, in seconds.
    pub t: f64,
    /// Observable buffer voltage, in volts.
    pub v_cap: f64,
}

/// The Figure 1(b) dataset: the voltage trace plus the three annotated
/// drops.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig01 {
    /// Voltage before the load.
    pub v_before: f64,
    /// Minimum voltage during the load.
    pub v_min: f64,
    /// Voltage after the rebound settles.
    pub v_after: f64,
    /// `v_before − v_min`: everything an observer sees.
    pub total_drop: f64,
    /// `v_before − v_after`: the part explained by consumed energy.
    pub energy_drop: f64,
    /// `v_after − v_min`: the ESR drop an energy model misses.
    pub missed_drop: f64,
    /// The decimated voltage trace.
    pub trace: Vec<TracePoint>,
}

/// Runs the Figure 1(b) experiment: a 25 mA / 10 ms pulse with a compute
/// tail, from 2.2 V on the reference bank.
#[must_use]
pub fn run() -> Fig01 {
    crate::preflight::require_clean_reference();
    let mut sys = reference_plant();
    sys.set_buffer_voltage(Volts::new(2.2));
    let load = PulseLoad::new(Amps::from_milli(25.0), Seconds::from_milli(10.0)).profile();
    let out = sys.run_profile(
        &load,
        RunConfig {
            record_stride: 64,
            ..RunConfig::default()
        },
    );
    assert!(out.completed(), "figure 1b pulse must complete");
    let trace = out
        .trace
        .samples()
        .iter()
        .map(|&VoltageSample { t, v_node, .. }| TracePoint {
            t: t.get(),
            v_cap: v_node.get(),
        })
        .collect();
    Fig01 {
        v_before: out.v_start.get(),
        v_min: out.v_min.get(),
        v_after: out.v_final.get(),
        total_drop: (out.v_start - out.v_min).get(),
        energy_drop: (out.v_start - out.v_final).get(),
        missed_drop: out.v_delta().get(),
        trace,
    }
}

/// Prints the annotated drops as the paper describes them.
pub fn print_table(fig: &Fig01) {
    println!("Figure 1(b): ESR drop and rebound (25 mA/10 ms pulse + compute tail)");
    println!("  V_before     = {:.3} V", fig.v_before);
    println!("  V_min        = {:.3} V", fig.v_min);
    println!("  V_after      = {:.3} V", fig.v_after);
    println!("  total drop   = {:.3} V", fig.total_drop);
    println!(
        "  energy drop  = {:.3} V  (all an energy model accounts for)",
        fig.energy_drop
    );
    println!(
        "  missed drop  = {:.3} V  (ESR-induced, rebounds after the load)",
        fig.missed_drop
    );
    println!(
        "  ratio missed/energy = {:.2}×",
        fig.missed_drop / fig.energy_drop.max(1e-9)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missed_drop_dominates_energy_drop() {
        let fig = run();
        // The paper's headline: the ESR drop (0.35 V there) exceeds the
        // energy drop (0.25 V there). Shapes differ with parameters; we
        // require the missed drop to be substantial and comparable.
        assert!(fig.missed_drop > 0.05, "missed = {}", fig.missed_drop);
        assert!(
            fig.missed_drop > 0.5 * fig.energy_drop,
            "missed {} vs energy {}",
            fig.missed_drop,
            fig.energy_drop
        );
        // Consistency: total = energy + missed.
        assert!((fig.total_drop - fig.energy_drop - fig.missed_drop).abs() < 1e-9);
    }

    #[test]
    fn trace_shows_dip_and_rebound() {
        let fig = run();
        assert!(fig.trace.len() > 50);
        let min_in_trace = fig
            .trace
            .iter()
            .map(|p| p.v_cap)
            .fold(f64::INFINITY, f64::min);
        // The decimated trace still shows most of the dip.
        assert!(min_in_trace < fig.v_after - 0.8 * fig.missed_drop);
    }
}

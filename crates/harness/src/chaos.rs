//! Chaos-battery driver: the `culpeo-faults` roster as a reproducible
//! experiment, with the same telemetry envelope as the figure drivers.
//!
//! The battery itself lives in `culpeo_faults::chaos`; this module wraps
//! it in the harness conventions — pre-flight lint gate, [`PhaseClock`]
//! phases, a printed table — so `make`-style reproduction runs treat
//! "the stack survives its faults" as one more figure to regenerate.

use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_faults::chaos::BatteryReport;

/// The default master seed, shared with `culpeo chaos` and
/// `scripts/chaos.sh` so every surface reproduces the same battery.
pub const DEFAULT_SEED: u64 = 42;

/// Runs the battery under the harness conventions.
#[must_use]
pub fn run(seed: u64) -> BatteryReport {
    run_timed(Sweep::from_env(), seed).0
}

/// [`run`] on an explicit executor, with phase telemetry.
#[must_use]
pub fn run_timed(sweep: Sweep, seed: u64) -> (BatteryReport, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    clock.mark("preflight");
    let report = culpeo_faults::run_battery(seed, &sweep);
    clock.mark("battery");
    (report, clock.finish())
}

/// Prints the battery's deterministic table to stdout.
pub fn print_table(report: &BatteryReport) {
    print!("{}", report.render_table());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_passes_under_the_harness_envelope() {
        let (report, telemetry) = run_timed(Sweep::with_threads(2), DEFAULT_SEED);
        assert!(report.all_passed(), "{}", report.render_table());
        assert!(telemetry.phase_seconds("battery").is_some());
        let table = report.render_table();
        assert!(table.contains("PASS"));
        assert!(!table.contains("FAIL"));
    }
}

//! The §II-D decoupling-capacitance ablation.
//!
//! The standard circuit fix for load-dependent drop — parallel decoupling
//! capacitance near the load — does not solve Culpeo's problem: sustained
//! high-current loads drain the small decoupling caps within
//! milliseconds and then draw from the high-ESR bank anyway. The paper
//! measured a 33 mF supercapacitor with 400 µF–6.4 mF of decoupling under
//! a 50 mA/100 ms LoRa-class load and still saw a 200 mV ESR drop at the
//! highest (abnormally large) decoupling value.

use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{CapacitorBranch, PowerSystem, RunConfig};
use culpeo_units::{Amps, Farads, Ohms, Seconds, Volts};
use serde::Serialize;

/// One decoupling configuration's result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DecouplingRow {
    /// Decoupling capacitance in farads (0 = none).
    pub decoupling_f: f64,
    /// ESR-induced (recoverable) drop observed, volts.
    pub esr_drop_v: f64,
    /// The drop as a percentage of the 0.96 V operating range.
    pub drop_pct_of_range: f64,
}

/// The §II-D plant: a 33 mF supercapacitor (higher per-bank ESR than the
/// 45 mF six-part bank) with optional low-ESR decoupling.
fn plant(decoupling: Option<Farads>) -> PowerSystem {
    let mut builder = PowerSystem::builder().bank(Farads::from_milli(33.0), Ohms::new(4.5));
    if let Some(c) = decoupling {
        // Ceramic/tantalum decoupling: low ESR, placed at the rail.
        builder = builder.extra_branch(CapacitorBranch::ideal(c, Ohms::new(0.02), Volts::ZERO));
    }
    let mut sys = builder.build();
    sys.set_buffer_voltage(Volts::new(2.45));
    sys.force_output_enabled();
    sys
}

/// The sustained LoRa-class load of the ablation.
fn load() -> LoadProfile {
    LoadProfile::constant("lora", Amps::from_milli(50.0), Seconds::from_milli(100.0))
}

/// Sweeps decoupling capacitance from none to the paper's abnormally high
/// 6.4 mF and reports the surviving ESR drop.
#[must_use]
pub fn run() -> Vec<DecouplingRow> {
    run_timed(Sweep::from_env()).0
}

/// [`run`] on an explicit executor, with phase telemetry. Each decoupling
/// configuration measures on its own plant — one sweep cell each.
#[must_use]
pub fn run_timed(sweep: Sweep) -> (Vec<DecouplingRow>, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    let configs: [Option<f64>; 6] = [
        None,
        Some(400e-6),
        Some(800e-6),
        Some(1.6e-3),
        Some(3.2e-3),
        Some(6.4e-3),
    ];
    let rows = sweep.map(&configs, |_, &cfg| {
        let mut sys = plant(cfg.map(Farads::new));
        let out = sys.run_profile(&load(), RunConfig::default());
        assert!(
            out.completed(),
            "decoupling measurement must not brown out (cfg {cfg:?})"
        );
        let drop = out.v_delta();
        DecouplingRow {
            decoupling_f: cfg.unwrap_or(0.0),
            esr_drop_v: drop.get(),
            drop_pct_of_range: drop.get() / 0.96 * 100.0,
        }
    });
    clock.mark("measure");
    (rows, clock.finish())
}

/// Prints the ablation table.
pub fn print_table(rows: &[DecouplingRow]) {
    println!("§II-D ablation: decoupling capacitance vs surviving ESR drop");
    println!(
        "{:>16} {:>14} {:>16}",
        "decoupling (F)", "ESR drop (V)", "% of op. range"
    );
    for r in rows {
        println!(
            "{:>16.4e} {:>14.3} {:>16.1}",
            r.decoupling_f, r.esr_drop_v, r.drop_pct_of_range
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoupling_helps_but_does_not_fix() {
        let rows = run();
        let none = rows[0];
        let most = rows[rows.len() - 1];
        // Decoupling reduces the drop…
        assert!(most.esr_drop_v < none.esr_drop_v);
        // …but even 6.4 mF leaves a drop in the 10–30 % of range band the
        // paper reports (they saw ~20 %).
        assert!(
            most.drop_pct_of_range > 8.0,
            "6.4 mF decoupling left only {:.1}% drop",
            most.drop_pct_of_range
        );
    }

    #[test]
    fn drop_is_monotone_in_decoupling() {
        let rows = run();
        for w in rows.windows(2) {
            assert!(
                w[1].esr_drop_v <= w[0].esr_drop_v + 1e-6,
                "more decoupling must not worsen the drop: {w:?}"
            );
        }
    }

    #[test]
    fn undecoupled_drop_is_substantial() {
        let rows = run();
        // 50 mA through ~4.5 Ω of effective ESR (plus booster inflation):
        // hundreds of millivolts.
        assert!(rows[0].esr_drop_v > 0.25, "drop = {}", rows[0].esr_drop_v);
    }
}

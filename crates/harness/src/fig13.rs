//! Figure 13: event capture versus interarrival rate.
//!
//! PS and RR run at three event rates — slow (6 s / 60 s), achievable
//! (4.5 s / 45 s), and too fast (3 s / 30 s). Culpeo's capture should be
//! high once the rate is achievable; CatNap, which drains the buffer too
//! far between events, shows little or *inverted* benefit from slowing
//! events down.

use culpeo_exec::{PhaseClock, Sweep, Telemetry};
use culpeo_sched::{apps, run_trial, AppSpec, ChargePolicy};
use culpeo_units::Seconds;
use serde::Serialize;

/// One (app, rate, policy) bar of Figure 13.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig13Row {
    /// Application ("PS" or "RR").
    pub app: String,
    /// Rate label: "slow", "achievable", or "too-fast".
    pub rate: String,
    /// Policy label.
    pub policy: String,
    /// Events generated.
    pub generated: u32,
    /// Events captured.
    pub captured: u32,
    /// Capture rate in percent.
    pub capture_pct: f64,
}

/// The paper's rate scalings relative to the achievable setting: slow =
/// 4/3× the interarrival, too fast = 2/3×.
pub const RATE_POINTS: [(&str, f64); 3] = [
    ("slow", 4.0 / 3.0),
    ("achievable", 1.0),
    ("too-fast", 2.0 / 3.0),
];

/// Runs Figure 13 at the paper's scale.
#[must_use]
pub fn run() -> Vec<Fig13Row> {
    run_with(Seconds::new(300.0), 3)
}

/// Parameterised variant (shorter runs for tests).
#[must_use]
pub fn run_with(duration: Seconds, trials: u32) -> Vec<Fig13Row> {
    run_timed(Sweep::from_env(), duration, trials).0
}

/// [`run_with`] on an explicit executor, with phase telemetry. Every
/// seeded (app × rate × policy × trial) tuple is one sweep cell;
/// aggregation over the input-ordered results keeps rows thread-count
/// independent.
#[must_use]
pub fn run_timed(sweep: Sweep, duration: Seconds, trials: u32) -> (Vec<Fig13Row>, Telemetry) {
    crate::preflight::require_clean_reference();
    let mut clock = PhaseClock::new(sweep.threads());
    let candidates: [(&str, AppSpec, &str); 2] = [
        ("PS", apps::periodic_sensing(), "PS"),
        ("RR", apps::responsive_reporting(), "report"),
    ];
    // (app label, scaled spec, class, rate label) per grid point.
    let mut configs = Vec::new();
    for (app_label, base, class) in &candidates {
        for (rate_label, factor) in RATE_POINTS {
            configs.push((
                *app_label,
                base.with_rate_scaled(factor),
                *class,
                rate_label,
            ));
        }
    }
    let mut cells = Vec::new();
    for ci in 0..configs.len() {
        for policy in [ChargePolicy::Catnap, ChargePolicy::Culpeo] {
            for k in 0..trials {
                cells.push((ci, policy, k));
            }
        }
    }
    let results = sweep.map(&cells, |_, &(ci, policy, k)| {
        run_trial(&configs[ci].1, policy, duration, 9000 + u64::from(k))
    });
    clock.mark("trials");

    let mut rows = Vec::new();
    for (ci, (app_label, _, class, rate_label)) in configs.iter().enumerate() {
        for policy in [ChargePolicy::Catnap, ChargePolicy::Culpeo] {
            let mut generated = 0;
            let mut captured = 0;
            for ((cell_ci, cell_policy, _), r) in cells.iter().zip(&results) {
                if *cell_ci != ci || *cell_policy != policy {
                    continue;
                }
                let s = r.class(class);
                generated += s.generated;
                captured += s.captured;
            }
            rows.push(Fig13Row {
                app: (*app_label).to_string(),
                rate: (*rate_label).to_string(),
                policy: policy.label().to_string(),
                generated,
                captured,
                capture_pct: if generated == 0 {
                    100.0
                } else {
                    f64::from(captured) / f64::from(generated) * 100.0
                },
            });
        }
    }
    clock.mark("aggregate");
    (rows, clock.finish())
}

/// Prints the Figure 13 table.
pub fn print_table(rows: &[Fig13Row]) {
    println!("Figure 13: events captured (%) vs event rate");
    println!(
        "{:<6} {:<12} {:<8} {:>10} {:>10} {:>10}",
        "app", "rate", "policy", "generated", "captured", "capture %"
    );
    for r in rows {
        println!(
            "{:<6} {:<12} {:<8} {:>10} {:>10} {:>10.1}",
            r.app, r.rate, r.policy, r.generated, r.captured, r.capture_pct
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<Fig13Row> {
        run_with(Seconds::new(120.0), 1)
    }

    fn rate_of(rows: &[Fig13Row], app: &str, rate: &str, policy: &str) -> f64 {
        rows.iter()
            .find(|r| r.app == app && r.rate == rate && r.policy == policy)
            .unwrap()
            .capture_pct
    }

    #[test]
    fn culpeo_is_high_at_achievable_and_slow_rates() {
        let rows = quick();
        for app in ["PS", "RR"] {
            for rate in ["slow", "achievable"] {
                let pct = rate_of(&rows, app, rate, "Culpeo");
                assert!(pct > 75.0, "{app}@{rate}: culpeo captured only {pct:.0}%");
            }
        }
    }

    #[test]
    fn culpeo_beats_catnap_at_achievable_rates() {
        let rows = quick();
        for app in ["PS", "RR"] {
            let cul = rate_of(&rows, app, "achievable", "Culpeo");
            let cat = rate_of(&rows, app, "achievable", "Catnap");
            assert!(cul >= cat, "{app}: culpeo {cul:.0}% < catnap {cat:.0}%");
        }
    }

    #[test]
    fn catnap_gains_little_from_slowing_down() {
        // The paper's counterintuitive observation: more time between
        // events lets CatNap drain the buffer further, so slowing down
        // does not rescue it the way it should.
        let rows = quick();
        let slow = rate_of(&rows, "RR", "slow", "Catnap");
        let cul_slow = rate_of(&rows, "RR", "slow", "Culpeo");
        assert!(
            cul_slow - slow > 20.0,
            "even slowed down, catnap ({slow:.0}%) should trail culpeo ({cul_slow:.0}%)"
        );
    }

    #[test]
    fn full_grid() {
        let rows = quick();
        assert_eq!(rows.len(), 2 * 3 * 2);
    }
}

//! Robustness of Culpeo-PG against measurement noise.
//!
//! Real current probes add Gaussian noise and single-sample glitches; the
//! §IV-B pipeline (median filtering inside the pulse-width detector,
//! integration over many samples) should keep `V_safe` estimates stable.
//! An estimator whose output moved tens of millivolts under probe noise
//! would be useless for threshold-setting.

use culpeo::{pg, PowerSystemModel};
use culpeo_loadgen::synthetic::{PulseLoad, UniformLoad};
use culpeo_loadgen::{noise, CurrentTrace};
use culpeo_units::{Amps, Hertz, Seconds, Volts};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn model() -> PowerSystemModel {
    PowerSystemModel::capybara()
}

fn clean_trace(i_ma: f64, w_ms: f64) -> CurrentTrace {
    UniformLoad::new(Amps::from_milli(i_ma), Seconds::from_milli(w_ms))
        .profile()
        .sample(Hertz::new(125_000.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Gaussian probe noise (up to 200 µA σ) moves V_safe by at most a
    /// few millivolts.
    #[test]
    fn gaussian_noise_barely_moves_vsafe(
        i_ma in 5.0..50.0f64,
        w_ms in 1.0..50.0f64,
        sigma_ua in 10.0..200.0f64,
        seed in 0u64..1000,
    ) {
        let m = model();
        let clean = clean_trace(i_ma, w_ms);
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy = noise::gaussian(&clean, Amps::from_micro(sigma_ua), &mut rng);
        let v_clean = pg::compute_vsafe(&clean, &m).v_safe;
        let v_noisy = pg::compute_vsafe(&noisy, &m).v_safe;
        prop_assert!(
            v_noisy.approx_eq(v_clean, 0.005),
            "clean {} vs noisy {} (σ = {} µA)", v_clean, v_noisy, sigma_ua
        );
    }

    /// Isolated full-scale instrumentation glitches cannot hijack the
    /// estimate: the §II-D median filter removes them before the walk.
    /// (Two *adjacent* over-range samples are a real pulse and rightly
    /// raise V_safe, so the glitches here are placed apart.)
    #[test]
    fn glitches_do_not_hijack_vsafe(
        i_ma in 5.0..40.0f64,
        w_ms in 5.0..50.0f64,
        glitches in 1usize..5,
        offset in 0usize..30,
    ) {
        let m = model();
        let clean = clean_trace(i_ma, w_ms);
        let mut samples = clean.samples().to_vec();
        let stride = samples.len() / (glitches + 1);
        for g in 1..=glitches {
            let idx = (g * stride + offset).min(samples.len() - 1);
            samples[idx] = Amps::from_milli(100.0);
        }
        let spiked = CurrentTrace::new("spiked", clean.dt(), samples);
        let v_clean = pg::compute_vsafe(&clean, &m).v_safe;
        let v_spiked = pg::compute_vsafe(&spiked, &m).v_safe;
        prop_assert!(
            v_spiked.approx_eq(v_clean, 0.010),
            "clean {} vs spiked {}", v_clean, v_spiked
        );
    }

    /// Resampling a trace to half or double the rate changes nothing
    /// material: V_safe is a property of the load, not the probe's clock.
    #[test]
    fn vsafe_is_sample_rate_invariant(
        i_ma in 5.0..50.0f64,
        w_ms in 2.0..50.0f64,
        rate_khz in 20.0..250.0f64,
    ) {
        let m = model();
        let reference = clean_trace(i_ma, w_ms);
        let resampled = reference.resample(Hertz::new(rate_khz * 1e3));
        let v_ref = pg::compute_vsafe(&reference, &m).v_safe;
        let v_res = pg::compute_vsafe(&resampled, &m).v_safe;
        prop_assert!(
            v_res.approx_eq(v_ref, 0.008),
            "125 kHz {} vs {} kHz {}", v_ref, rate_khz, v_res
        );
    }
}

/// Deterministic companion: the Figure 6/10 pulse workload survives a
/// realistic probe-noise level without its estimate drifting across the
/// safety boundary.
#[test]
fn pulse_estimate_stable_under_standard_noise() {
    let m = model();
    let clean = PulseLoad::new(Amps::from_milli(25.0), Seconds::from_milli(10.0))
        .profile()
        .sample(Hertz::new(125_000.0));
    let v_clean = pg::compute_vsafe(&clean, &m).v_safe;
    let mut worst = Volts::ZERO;
    for seed in 0..20 {
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy = noise::gaussian(&clean, Amps::from_micro(100.0), &mut rng);
        let v = pg::compute_vsafe(&noisy, &m).v_safe;
        worst = worst.max((v - v_clean).abs());
    }
    assert!(worst.get() < 0.003, "worst drift {worst}");
}

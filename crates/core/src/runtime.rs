//! **Culpeo-R** — the runtime `V_safe` estimator (§IV-D).
//!
//! On a deployed device there is no current probe and no memory for full
//! traces. Culpeo-R therefore estimates `V_safe` from just three voltage
//! observations per task execution — the starting voltage, the minimum
//! during execution, and the final voltage after the post-task rebound —
//! plus the compile-time power-system model.
//!
//! The estimator splits the requirement in two and recombines:
//!
//! 1. **ESR part.** The observed recoverable drop `V_δ = V_final − V_min`
//!    is scaled to its worst case at the power-off threshold via the
//!    converter relation `V_out·I_out = V_cap·I_in·η(V_cap)`
//!    (Equations 1a–1c): the same load pulls a *deeper* dip when the
//!    buffer sits lower, because both the divider voltage and the booster
//!    efficiency are worse there.
//! 2. **Energy part.** Assuming the energy delivered to the load is the
//!    same wherever the task runs, the observed discharge from `V_start`
//!    to `V_final` is mapped onto a discharge *ending* at `V_off`
//!    (Equations 2a–2c), approximated with endpoint efficiencies to stay
//!    cheap on an MCU (Equation 3).

use culpeo_units::{Joules, Volts};

use crate::{PowerSystemModel, VsafeEstimate};

/// The three per-task voltage observations Culpeo-R works from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskObservation {
    /// Buffer voltage when the task started.
    pub v_start: Volts,
    /// Minimum buffer voltage observed while the task ran.
    pub v_min: Volts,
    /// Buffer voltage after the task ended and the ESR drop rebounded.
    pub v_final: Volts,
}

impl TaskObservation {
    /// Creates an observation.
    ///
    /// # Panics
    ///
    /// Panics unless `v_min ≤ v_start` and `v_min ≤ v_final` (the minimum
    /// is, by construction, the smallest of the three) and all values are
    /// finite.
    #[must_use]
    pub fn new(v_start: Volts, v_min: Volts, v_final: Volts) -> Self {
        assert!(
            v_start.is_finite() && v_min.is_finite() && v_final.is_finite(),
            "observations must be finite"
        );
        assert!(
            v_min <= v_start && v_min <= v_final,
            "v_min must not exceed v_start or v_final"
        );
        Self {
            v_start,
            v_min,
            v_final,
        }
    }

    /// The observed recoverable (ESR) drop, `V_δ = V_final − V_min`
    /// (Figure 8a).
    #[must_use]
    pub fn v_delta_observed(&self) -> Volts {
        self.v_final - self.v_min
    }
}

/// Scales the observed ESR drop to its worst case at `V_off`
/// (Equation 1c):
/// `V_δ_safe = V_δ · (V_min·η(V_min)) / (V_off·η(V_off))`.
#[must_use]
pub fn worst_case_v_delta(obs: &TaskObservation, model: &PowerSystemModel) -> Volts {
    let v_off = model.v_off();
    let num = obs.v_min.get() * model.efficiency_at(obs.v_min);
    let den = v_off.get() * model.efficiency_at(v_off);
    obs.v_delta_observed() * (num / den)
}

/// The energy-only component of `V_safe` (Equation 3):
/// `V_safe_E² = η(V_start)/η(V_off) · (V_start² − V_final²) + V_off²`.
///
/// The squared-voltage difference is clamped at zero: a discharging task
/// cannot add energy, so a measured `V_final` above `V_start` is ADC
/// quantization error and must not *reduce* the estimate below `V_off`.
#[must_use]
pub fn energy_vsafe(obs: &TaskObservation, model: &PowerSystemModel) -> Volts {
    let scale = model.efficiency_at(obs.v_start) / model.efficiency_at(model.v_off());
    let consumed = (obs.v_start.squared() - obs.v_final.squared()).max(0.0);
    Volts::from_squared(scale * consumed + model.v_off().squared())
}

/// Computes the full Culpeo-R estimate:
/// `V_safe = V_safe_E + V_δ_safe`.
#[must_use]
pub fn compute_vsafe(obs: &TaskObservation, model: &PowerSystemModel) -> VsafeEstimate {
    let v_delta = worst_case_v_delta(obs, model);
    let v_e = energy_vsafe(obs, model);
    let buffer_energy = Joules::new(
        0.5 * model.capacitance().get() * (v_e.squared() - model.v_off().squared()).max(0.0),
    );
    VsafeEstimate {
        v_safe: v_e + v_delta,
        v_delta,
        buffer_energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerSystemModel {
        PowerSystemModel::capybara()
    }

    fn obs(start: f64, min: f64, fin: f64) -> TaskObservation {
        TaskObservation::new(Volts::new(start), Volts::new(min), Volts::new(fin))
    }

    #[test]
    fn no_drop_no_requirement_beyond_v_off() {
        // A task that consumed nothing and dipped nothing.
        let o = obs(2.3, 2.3, 2.3);
        let est = compute_vsafe(&o, &model());
        assert!(est.v_safe.approx_eq(model().v_off(), 1e-9));
        assert_eq!(est.v_delta, Volts::ZERO);
    }

    #[test]
    fn pure_energy_drop_maps_to_quadrature() {
        // 2.3 → 2.2 with no ESR dip: V_safe² ≈ scale·(2.3²−2.2²) + 1.6².
        let o = obs(2.3, 2.2, 2.2);
        let m = model();
        let est = compute_vsafe(&o, &m);
        let scale = m.efficiency_at(Volts::new(2.3)) / m.efficiency_at(Volts::new(1.6));
        let expected = (scale * (2.3f64.powi(2) - 2.2f64.powi(2)) + 1.6f64.powi(2)).sqrt();
        assert!(est.v_safe.approx_eq(Volts::new(expected), 1e-9));
    }

    #[test]
    fn esr_drop_scales_up_toward_v_off() {
        // The same observed dip demands a larger margin at V_off because
        // voltage and efficiency are both lower there.
        let o = obs(2.3, 2.18, 2.29);
        let m = model();
        let wc = worst_case_v_delta(&o, &m);
        assert!(wc > o.v_delta_observed());
    }

    #[test]
    fn matches_hand_calculation_for_25ma_pulse() {
        // Observation computed analytically for a 25 mA/10 ms pulse from
        // 2.3 V on the Capybara plant (see pg.rs hand numbers).
        let o = obs(2.3, 2.179, 2.2927);
        let est = compute_vsafe(&o, &model());
        assert!(
            est.v_safe.get() > 1.72 && est.v_safe.get() < 1.84,
            "V_safe = {}",
            est.v_safe
        );
    }

    #[test]
    fn deeper_dip_larger_vsafe() {
        let m = model();
        let shallow = compute_vsafe(&obs(2.3, 2.25, 2.29), &m);
        let deep = compute_vsafe(&obs(2.3, 2.05, 2.29), &m);
        assert!(deep.v_safe > shallow.v_safe);
        assert!(deep.v_delta > shallow.v_delta);
    }

    #[test]
    fn more_energy_larger_vsafe() {
        let m = model();
        let light = compute_vsafe(&obs(2.3, 2.2, 2.28), &m);
        let heavy = compute_vsafe(&obs(2.3, 2.1, 2.15), &m);
        assert!(heavy.v_safe > light.v_safe);
        assert!(heavy.buffer_energy > light.buffer_energy);
    }

    #[test]
    fn profiling_voltage_invariance() {
        // The point of Culpeo-R's math: profiling the same task at
        // different starting voltages should produce similar V_safe.
        // Construct two observations of the same physical task (equal
        // delivered energy, ESR dip scaled by the converter relation).
        let m = model();
        let hi = obs(2.45, 2.339, 2.4432);
        // At 2.1 V the same task dips deeper and ends proportionally.
        let e_scale = m.efficiency_at(Volts::new(2.45)) / m.efficiency_at(Volts::new(2.1));
        let v_final_lo = (2.1f64.powi(2) - e_scale * (2.45f64.powi(2) - 2.4432f64.powi(2))).sqrt();
        let dip_scale =
            (2.339 * m.efficiency_at(Volts::new(2.339))) / (2.1 * m.efficiency_at(Volts::new(2.1)));
        let dip_lo = (2.4432 - 2.339) * dip_scale;
        let lo = obs(2.1, v_final_lo - dip_lo, v_final_lo);
        let est_hi = compute_vsafe(&hi, &m);
        let est_lo = compute_vsafe(&lo, &m);
        assert!(
            est_hi.v_safe.approx_eq(est_lo.v_safe, 0.02),
            "hi: {}, lo: {}",
            est_hi.v_safe,
            est_lo.v_safe
        );
    }

    #[test]
    #[should_panic(expected = "v_min must not exceed")]
    fn rejects_inconsistent_observation() {
        let _ = obs(2.0, 2.3, 2.1);
    }
}

//! **Culpeo-PG** — the compile-time, profile-guided `V_safe` analysis
//! (§IV-C, Algorithm 1).
//!
//! Culpeo-PG ingests a task's measured current trace and the
//! [`PowerSystemModel`], then walks the trace *backwards*, maintaining the
//! safe voltage for the remaining suffix: at every step the voltage must
//! cover (a) the energy the step consumes and (b) a penalty guaranteeing
//! the step's ESR drop cannot push the node below `V_off`.
//!
//! Working backwards is what makes the penalty composable: a step needs a
//! penalty only when the *following* steps' requirement is not already high
//! enough to absorb its ESR dip (the "rebound repays the penalty" insight
//! of §IV-A).

use culpeo_loadgen::{CurrentTrace, LoadProfile};
use culpeo_units::{Hertz, Joules, Ohms, Volts};

use crate::{PowerSystemModel, VsafeEstimate};

/// Computes `V_safe` for a task from its current trace (Algorithm 1).
///
/// The ESR operating point is chosen from the model's measured curve at
/// the trace's dominant pulse frequency, exactly as §IV-B prescribes.
///
/// An empty or all-zero trace yields `V_safe = V_off` (a task that draws
/// nothing can start anywhere software can run).
#[must_use]
pub fn compute_vsafe(trace: &CurrentTrace, model: &PowerSystemModel) -> VsafeEstimate {
    let f = trace
        .dominant_frequency()
        .unwrap_or_else(|| fallback_frequency(trace));
    compute_vsafe_with_esr(trace, model, model.esr_at(f))
}

/// Algorithm 1 with an explicitly chosen ESR operating point — used by the
/// aging ablation and ESR-sensitivity studies.
#[must_use]
pub fn compute_vsafe_with_esr(
    trace: &CurrentTrace,
    model: &PowerSystemModel,
    esr: Ohms,
) -> VsafeEstimate {
    let c = model.capacitance().get();
    let v_off = model.v_off();
    let v_out = model.v_out().get();
    let dt = trace.dt().get();
    let r = esr.get();
    // Algorithm 1 line 8 evaluates the booster efficiency at V_off — the
    // worst case — when computing the current out of the capacitor.
    let eta_off = model.efficiency_at(v_off);

    // Denoise before walking: single-sample glitches are served by the
    // decoupling capacitors (§II-D), so honouring them with a full DC ESR
    // penalty would hijack V_safe; the same filter already guards the
    // pulse-width detector.
    let filtered = trace.median_filtered();

    // V[i+1] accumulator: the safe voltage for the suffix after step i.
    // Base case: after the final step the voltage need only be at V_off.
    let mut v_suffix = v_off;
    let mut worst_v_delta = Volts::ZERO;
    let mut buffer_energy = 0.0;

    for &i_load in filtered.samples().iter().rev() {
        let i = i_load.get();
        if i <= 0.0 {
            continue; // an idle step imposes no requirement
        }
        // Estimate the buffer voltage during this step: the suffix
        // requirement is the best (conservative, low) estimate available
        // while walking backwards.
        let v_cap = v_suffix.max(v_off);
        // Current out of the capacitor (line 8) and its ESR drop (line 9).
        // The penalty must guarantee the *terminal* voltage never dips
        // below V_off, and at the critical moment the terminal sits at
        // exactly V_off — so the worst-case current divides by V_off with
        // the V_off efficiency (matching Culpeo-R's Equation 1b). Dividing
        // by the evolving V_cap instead silently weakens the floor for
        // interior steps once suffix energy has accumulated.
        let i_in = i * v_out / (eta_off * v_off.get());
        // Energy drawn from the buffer in this step (line 6). The booster
        // operates at the *terminal* voltage — the internal estimate minus
        // this step's ESR drop — where its efficiency is worse; EstVcap
        // (line 7) exists precisely because "as V_cap decreases, the
        // booster draws more current". The capacitor's own I²R dissipation
        // is added on top, a refinement that matters for long discharges.
        let v_term = (v_cap.get() - i * v_out * r / (eta_off * v_cap.get())).max(v_off.get());
        let eta = model.efficiency_at(Volts::new(v_term));
        let i_in_energy = i * v_out / (eta * v_term);
        let e = i * v_out * dt / eta + i_in_energy * i_in_energy * r * dt;
        buffer_energy += e;
        let v_delta = Volts::new(i_in * r);
        worst_v_delta = worst_v_delta.max(v_delta);
        // Voltage penalty (line 10): either the next step's requirement
        // already absorbs this step's dip, or we must raise it.
        let v_penalty = (v_off + v_delta).max(v_suffix);
        // New safe voltage (line 11): energy in quadrature with penalty.
        v_suffix = Volts::from_squared(2.0 * e / c + v_penalty.squared());
    }

    VsafeEstimate {
        v_safe: v_suffix,
        v_delta: worst_v_delta,
        buffer_energy: Joules::new(buffer_energy),
    }
}

/// Convenience: profile an analytic load at the paper's 125 kHz rate and
/// run Algorithm 1 on it.
#[must_use]
pub fn compute_vsafe_for_profile(profile: &LoadProfile, model: &PowerSystemModel) -> VsafeEstimate {
    compute_vsafe(
        &profile.sample(Hertz::new(culpeo_loadgen::PG_SAMPLE_RATE_HZ)),
        model,
    )
}

/// Frequency to use when no dominant pulse exists: the whole trace as one
/// "pulse", floored at 1 Hz.
fn fallback_frequency(trace: &CurrentTrace) -> Hertz {
    let d = trace.duration().get();
    if d > 0.0 {
        Hertz::new((1.0 / d).max(1.0))
    } else {
        Hertz::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_loadgen::synthetic::{PulseLoad, UniformLoad};
    use culpeo_units::{Amps, Seconds};

    fn model() -> PowerSystemModel {
        PowerSystemModel::capybara()
    }

    fn ma(v: f64) -> Amps {
        Amps::from_milli(v)
    }

    fn ms(v: f64) -> Seconds {
        Seconds::from_milli(v)
    }

    #[test]
    fn empty_trace_needs_only_v_off() {
        let trace = CurrentTrace::new("idle", ms(1.0), vec![Amps::ZERO; 10]);
        let est = compute_vsafe(&trace, &model());
        assert_eq!(est.v_safe, model().v_off());
        assert_eq!(est.v_delta, Volts::ZERO);
    }

    #[test]
    fn pulse_vsafe_covers_esr_drop() {
        let load = UniformLoad::new(ma(25.0), ms(10.0)).profile();
        let est = compute_vsafe_for_profile(&load, &model());
        // Hand calculation: I_in ≈ 25 mA·2.55/(0.78·1.6) ≈ 51 mA ⇒
        // V_δ ≈ 0.17 V ⇒ V_safe ≈ 1.78 V.
        assert!(
            est.v_safe.get() > 1.74 && est.v_safe.get() < 1.84,
            "{est:?}"
        );
        assert!(est.v_delta.get() > 0.12 && est.v_delta.get() < 0.22);
    }

    #[test]
    fn vsafe_monotone_in_current() {
        let m = model();
        let lo = compute_vsafe_for_profile(&UniformLoad::new(ma(5.0), ms(10.0)).profile(), &m);
        let hi = compute_vsafe_for_profile(&UniformLoad::new(ma(50.0), ms(10.0)).profile(), &m);
        assert!(hi.v_safe > lo.v_safe);
        assert!(hi.v_delta > lo.v_delta);
    }

    #[test]
    fn vsafe_monotone_in_duration() {
        let m = model();
        let short = compute_vsafe_for_profile(&UniformLoad::new(ma(25.0), ms(1.0)).profile(), &m);
        let long = compute_vsafe_for_profile(&UniformLoad::new(ma(25.0), ms(100.0)).profile(), &m);
        assert!(long.v_safe > short.v_safe);
    }

    #[test]
    fn vsafe_monotone_in_esr() {
        let m = model();
        let load = UniformLoad::new(ma(25.0), ms(10.0))
            .profile()
            .sample(Hertz::new(125_000.0));
        let lo = compute_vsafe_with_esr(&load, &m, Ohms::new(1.0));
        let hi = compute_vsafe_with_esr(&load, &m, Ohms::new(6.6));
        assert!(hi.v_safe > lo.v_safe);
    }

    #[test]
    fn small_tail_is_absorbed_by_pulse_penalty() {
        // For a hard pulse, the 100 ms/1.5 mA compute tail is *free*: the
        // pulse's penalty headroom rebounds after the pulse, repaying the
        // tail's small requirement (§IV-A's penalty-repayment insight).
        let m = model();
        let bare = compute_vsafe_for_profile(&UniformLoad::new(ma(25.0), ms(10.0)).profile(), &m);
        let tailed = compute_vsafe_for_profile(&PulseLoad::new(ma(25.0), ms(10.0)).profile(), &m);
        assert!(tailed.v_safe.approx_eq(bare.v_safe, 0.01));
        // The worst ESR drop still comes from the 25 mA pulse.
        assert!(tailed.v_delta.approx_eq(bare.v_delta, 0.05));
    }

    #[test]
    fn large_tail_raises_vsafe_beyond_pulse_alone() {
        // When the tail consumes enough energy that its own requirement
        // exceeds the pulse's rebound level, it is no longer free.
        let m = model();
        let bare = compute_vsafe_for_profile(&UniformLoad::new(ma(5.0), ms(10.0)).profile(), &m);
        let long_tail = LoadProfile::builder("pulse+big-tail")
            .hold(ma(5.0), ms(10.0))
            .hold(ma(1.5), Seconds::new(3.0))
            .build();
        let tailed = compute_vsafe_for_profile(&long_tail, &m);
        assert!(
            tailed.v_safe.get() - bare.v_safe.get() > 0.05,
            "tailed {} vs bare {}",
            tailed.v_safe,
            bare.v_safe
        );
    }

    #[test]
    fn rebound_repays_penalty_for_trailing_pulse() {
        // A pulse at the *end* of a long low tail requires less than the
        // naive sum: the backwards walk only penalises the pulse once.
        let m = model();
        let pulse_first = LoadProfile::builder("pf")
            .hold(ma(50.0), ms(10.0))
            .hold(ma(1.5), ms(100.0))
            .build();
        let pulse_last = LoadProfile::builder("pl")
            .hold(ma(1.5), ms(100.0))
            .hold(ma(50.0), ms(10.0))
            .build();
        let first = compute_vsafe_for_profile(&pulse_first, &m);
        let last = compute_vsafe_for_profile(&pulse_last, &m);
        // Both must cover the pulse's ESR drop; the orderings differ only
        // in how energy stacks under the penalty. Running the pulse first
        // lets the drop overlap the (high) starting voltage, so its
        // requirement is no greater than pulse-last.
        assert!(first.v_safe <= last.v_safe + Volts::from_milli(5.0));
    }

    #[test]
    fn buffer_energy_accounts_efficiency() {
        let m = model();
        let load = UniformLoad::new(ma(10.0), ms(100.0)).profile();
        let est = compute_vsafe_for_profile(&load, &m);
        let e_out = load.output_energy(m.v_out());
        // Buffer energy must exceed delivered energy by the booster loss.
        assert!(est.buffer_energy.get() > e_out.get());
        assert!(est.buffer_energy.get() < e_out.get() / 0.7);
    }

    #[test]
    fn vsafe_never_exceeds_reasonable_bounds_for_table_iii() {
        let m = model();
        for load in culpeo_loadgen::synthetic::fig10_loads() {
            let est = compute_vsafe_for_profile(&load, &m);
            assert!(est.v_safe >= m.v_off(), "{}", load.label());
            assert!(
                est.v_safe.get() < 3.0,
                "{}: V_safe = {} is absurd",
                load.label(),
                est.v_safe
            );
        }
    }
}

//! The Culpeo API surface of Table I: the calls a scheduler or intermittent
//! runtime uses to profile tasks and retrieve `V_safe` / `V_δ` values.
//!
//! The API is deliberately narrow (§V): **profile** a running task
//! (`profile_start` / `profile_end` / `rebound_end`), **calculate**
//! (`compute_vsafe`), and **access** (`get_vsafe` / `get_vdrop`). Voltage
//! readings are injected by whichever sampling layer is in use — the
//! interrupt-driven ADC profiler or the Culpeo-µArch peripheral in
//! `culpeo-device`, or the compile-time Culpeo-PG analysis via
//! [`Culpeo::insert_estimate`].
//!
//! Per §V-B, all per-task data is additionally tagged with a *buffer
//! configuration* identifier so devices with reconfigurable energy storage
//! keep separate tables per configuration.

use std::collections::HashMap;

use culpeo_units::Volts;

use crate::runtime::{self, TaskObservation};
use crate::{PowerSystemModel, VsafeEstimate};

/// Identifies a software task in Culpeo's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

/// Identifies an energy-buffer configuration (§V-B reconfigurable banks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BufferConfigId(pub u32);

/// A completed profiling record for one task execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskProfile {
    /// Voltage when profiling started.
    pub v_start: Volts,
    /// Minimum voltage observed during the task.
    pub v_min: Volts,
    /// Final voltage after the rebound (updated by `rebound_end`).
    pub v_final: Volts,
}

/// A profile currently being collected.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ActiveProfile {
    v_start: Volts,
    v_min: Volts,
}

/// The Culpeo runtime object: profile tables, estimate tables, and the
/// power-system model needed to turn observations into `V_safe`.
#[derive(Debug, Clone)]
pub struct Culpeo {
    model: PowerSystemModel,
    config: BufferConfigId,
    active: Option<ActiveProfile>,
    profiles: HashMap<(TaskId, BufferConfigId), TaskProfile>,
    estimates: HashMap<(TaskId, BufferConfigId), VsafeEstimate>,
}

impl Culpeo {
    /// Creates the runtime with a power-system model and the default
    /// buffer configuration.
    #[must_use]
    pub fn new(model: PowerSystemModel) -> Self {
        Self {
            model,
            config: BufferConfigId::default(),
            active: None,
            profiles: HashMap::new(),
            estimates: HashMap::new(),
        }
    }

    /// The power-system model in use.
    #[must_use]
    pub fn model(&self) -> &PowerSystemModel {
        &self.model
    }

    /// Switches the active buffer configuration; subsequent profiling and
    /// queries are tagged with it. Also updates the model's capacitance if
    /// a different one is provided.
    pub fn set_buffer_config(&mut self, config: BufferConfigId, model: Option<PowerSystemModel>) {
        self.config = config;
        if let Some(m) = model {
            self.model = m;
        }
    }

    /// The active buffer configuration.
    #[must_use]
    pub fn buffer_config(&self) -> BufferConfigId {
        self.config
    }

    /// `profile_start()`: begins collecting a profile. `v_now` is the
    /// voltage read at the start (by whatever ADC the deployment has).
    ///
    /// Starting a new profile while one is active discards the active one
    /// — on the real system this corresponds to a scheduler abandoning a
    /// profiling attempt.
    pub fn profile_start(&mut self, v_now: Volts) {
        self.active = Some(ActiveProfile {
            v_start: v_now,
            v_min: v_now,
        });
    }

    /// Feeds one mid-task voltage observation into the active profile
    /// (called by the ISR or µArch sampling layer). No-op when no profile
    /// is active.
    pub fn observe(&mut self, v: Volts) {
        if let Some(active) = &mut self.active {
            active.v_min = active.v_min.min(v);
        }
    }

    /// `profile_end(id)`: stops profiling and stores the record under
    /// `id` (and the active buffer configuration). `v_now` is the voltage
    /// at completion; it seeds `v_final` until [`Culpeo::rebound_end`]
    /// observes the true post-rebound value.
    ///
    /// Returns `false` (and does nothing) if no profile was active.
    pub fn profile_end(&mut self, id: TaskId, v_now: Volts) -> bool {
        let Some(active) = self.active.take() else {
            return false;
        };
        let v_min = active.v_min.min(v_now);
        self.profiles.insert(
            (id, self.config),
            TaskProfile {
                v_start: active.v_start,
                v_min,
                v_final: v_min.max(v_now),
            },
        );
        true
    }

    /// `rebound_end(id)`: records the settled post-rebound voltage for a
    /// previously profiled task. Returns `false` if the task has no
    /// profile under the active configuration.
    pub fn rebound_end(&mut self, id: TaskId, v_final: Volts) -> bool {
        let Some(profile) = self.profiles.get_mut(&(id, self.config)) else {
            return false;
        };
        profile.v_final = profile.v_min.max(v_final);
        true
    }

    /// `compute_vsafe(id)`: runs the Culpeo-R calculation on the stored
    /// profile and caches the result. Per §V-B this is a **no-op** when
    /// the task's profile-table entry is unpopulated.
    pub fn compute_vsafe(&mut self, id: TaskId) {
        let Some(profile) = self.profiles.get(&(id, self.config)) else {
            return;
        };
        let obs = TaskObservation::new(profile.v_start, profile.v_min, profile.v_final);
        let est = runtime::compute_vsafe(&obs, &self.model);
        self.estimates.insert((id, self.config), est);
    }

    /// Installs an externally computed estimate (e.g. a Culpeo-PG value a
    /// programmer compiled into the binary).
    pub fn insert_estimate(&mut self, id: TaskId, estimate: VsafeEstimate) {
        self.estimates.insert((id, self.config), estimate);
    }

    /// `get_vsafe(id)`: the task's computed `V_safe`, if any.
    #[must_use]
    pub fn get_vsafe(&self, id: TaskId) -> Option<Volts> {
        self.estimates.get(&(id, self.config)).map(|e| e.v_safe)
    }

    /// `get_vdrop(id)`: the task's computed `V_δ`, if any.
    #[must_use]
    pub fn get_vdrop(&self, id: TaskId) -> Option<Volts> {
        self.estimates.get(&(id, self.config)).map(|e| e.v_delta)
    }

    /// The full estimate record, if any.
    #[must_use]
    pub fn get_estimate(&self, id: TaskId) -> Option<VsafeEstimate> {
        self.estimates.get(&(id, self.config)).copied()
    }

    /// The stored profile for a task, if any.
    #[must_use]
    pub fn get_profile(&self, id: TaskId) -> Option<TaskProfile> {
        self.profiles.get(&(id, self.config)).copied()
    }

    /// Paper-faithful defaulting variant of `get_vsafe`: returns `V_high`
    /// when no valid value exists (§V-B), so an unprofiled task is only
    /// ever dispatched from a full buffer.
    #[must_use]
    pub fn get_vsafe_or_default(&self, id: TaskId) -> Volts {
        self.get_vsafe(id).unwrap_or_else(|| self.model.v_high())
    }

    /// Paper-faithful defaulting variant of `get_vdrop`: returns −1 V (an
    /// impossible drop) when no valid value exists (§V-B).
    #[must_use]
    pub fn get_vdrop_or_default(&self, id: TaskId) -> Volts {
        self.get_vdrop(id).unwrap_or(Volts::new(-1.0))
    }

    /// Clears all profiles and estimates for the active configuration —
    /// used when re-profiling after a harvesting-condition change (§V-B)
    /// or capacitor aging.
    pub fn invalidate_config(&mut self) {
        let cfg = self.config;
        self.profiles.retain(|&(_, c), _| c != cfg);
        self.estimates.retain(|&(_, c), _| c != cfg);
    }

    /// True if a profile is currently being collected.
    #[must_use]
    pub fn profiling(&self) -> bool {
        self.active.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn culpeo() -> Culpeo {
        Culpeo::new(PowerSystemModel::capybara())
    }

    const T1: TaskId = TaskId(1);

    #[test]
    fn full_profile_cycle() {
        let mut c = culpeo();
        c.profile_start(Volts::new(2.4));
        assert!(c.profiling());
        c.observe(Volts::new(2.25));
        c.observe(Volts::new(2.18));
        c.observe(Volts::new(2.30));
        assert!(c.profile_end(T1, Volts::new(2.30)));
        assert!(!c.profiling());
        assert!(c.rebound_end(T1, Volts::new(2.37)));
        let p = c.get_profile(T1).unwrap();
        assert_eq!(p.v_start, Volts::new(2.4));
        assert_eq!(p.v_min, Volts::new(2.18));
        assert_eq!(p.v_final, Volts::new(2.37));

        c.compute_vsafe(T1);
        let v = c.get_vsafe(T1).unwrap();
        assert!(v > c.model().v_off());
        assert!(c.get_vdrop(T1).unwrap().get() > 0.0);
    }

    #[test]
    fn compute_vsafe_is_noop_without_profile() {
        let mut c = culpeo();
        c.compute_vsafe(T1);
        assert!(c.get_vsafe(T1).is_none());
    }

    #[test]
    fn defaults_match_paper() {
        let c = culpeo();
        assert_eq!(c.get_vsafe_or_default(T1), c.model().v_high());
        assert_eq!(c.get_vdrop_or_default(T1), Volts::new(-1.0));
    }

    #[test]
    fn profile_end_without_start_is_rejected() {
        let mut c = culpeo();
        assert!(!c.profile_end(T1, Volts::new(2.0)));
        assert!(!c.rebound_end(T1, Volts::new(2.1)));
    }

    #[test]
    fn buffer_configs_are_isolated() {
        let mut c = culpeo();
        c.profile_start(Volts::new(2.4));
        c.observe(Volts::new(2.2));
        c.profile_end(T1, Volts::new(2.3));
        c.rebound_end(T1, Volts::new(2.35));
        c.compute_vsafe(T1);
        assert!(c.get_vsafe(T1).is_some());

        // Switch configuration: the same task is unprofiled there.
        c.set_buffer_config(BufferConfigId(1), None);
        assert!(c.get_vsafe(T1).is_none());
        assert!(c.get_profile(T1).is_none());

        // Switch back: data still present.
        c.set_buffer_config(BufferConfigId(0), None);
        assert!(c.get_vsafe(T1).is_some());
    }

    #[test]
    fn restarting_profile_discards_previous() {
        let mut c = culpeo();
        c.profile_start(Volts::new(2.4));
        c.observe(Volts::new(1.9));
        c.profile_start(Volts::new(2.3)); // abandon + restart
        c.profile_end(T1, Volts::new(2.25));
        let p = c.get_profile(T1).unwrap();
        assert_eq!(p.v_start, Volts::new(2.3));
        // The 1.9 V observation from the abandoned attempt is gone.
        assert_eq!(p.v_min, Volts::new(2.25));
    }

    #[test]
    fn invalidate_clears_only_active_config() {
        let mut c = culpeo();
        c.profile_start(Volts::new(2.4));
        c.profile_end(T1, Volts::new(2.3));
        c.compute_vsafe(T1);

        c.set_buffer_config(BufferConfigId(1), None);
        c.profile_start(Volts::new(2.2));
        c.profile_end(T1, Volts::new(2.1));
        c.compute_vsafe(T1);

        c.invalidate_config();
        assert!(c.get_vsafe(T1).is_none());
        c.set_buffer_config(BufferConfigId(0), None);
        assert!(c.get_vsafe(T1).is_some());
    }

    #[test]
    fn insert_estimate_feeds_get() {
        let mut c = culpeo();
        let est = VsafeEstimate {
            v_safe: Volts::new(2.0),
            v_delta: Volts::new(0.2),
            buffer_energy: culpeo_units::Joules::new(1e-3),
        };
        c.insert_estimate(T1, est);
        assert_eq!(c.get_vsafe(T1), Some(Volts::new(2.0)));
        assert_eq!(c.get_vdrop(T1), Some(Volts::new(0.2)));
        assert_eq!(c.get_estimate(T1), Some(est));
    }

    #[test]
    fn profile_end_clamps_final_above_min() {
        let mut c = culpeo();
        c.profile_start(Volts::new(2.4));
        // End reading lower than anything observed: v_min tracks it.
        c.profile_end(T1, Volts::new(2.1));
        let p = c.get_profile(T1).unwrap();
        assert_eq!(p.v_min, Volts::new(2.1));
        assert!(p.v_final >= p.v_min);
    }
}

//! Termination checking with `V_safe` (§VIII, §IX).
//!
//! Intermittent programs make forward progress only if every atomic task
//! *can* complete when started from a full buffer. Prior termination
//! checkers bound completion probability from energy models alone; the
//! paper points out they "can incorrectly conclude a task likely
//! terminates when ESR drops will actually pull the voltage beneath the
//! power-off threshold", and prescribes checking each task's ESR-aware
//! `V_safe` against what the device can actually supply.
//!
//! This module packages that check: classify every task of a program
//! against a power-system model, flag the non-terminating ones, and — for
//! divisible tasks — compute how finely a task must be split for each
//! piece to fit.

use culpeo_loadgen::LoadProfile;
use culpeo_units::{Seconds, Volts};

use crate::{pg, PowerSystemModel, VsafeEstimate};

/// How a task relates to the device's voltage budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TerminationVerdict {
    /// `V_safe` fits under `V_high` with the given margin to spare: the
    /// task terminates whenever dispatched at or above `V_safe`.
    Terminates {
        /// `V_high − V_safe`: the slack a scheduler can spend.
        headroom: Volts,
    },
    /// `V_safe` fits, but within the measurement band (the paper's
    /// "V_safe to 20 mV below" fails-sometimes zone scaled to the top of
    /// the range): completion is likely but not assured.
    Marginal {
        /// `V_high − V_safe`, smaller than the required margin.
        headroom: Volts,
    },
    /// `V_safe` exceeds `V_high`: even a full buffer cannot start this
    /// task safely. The device will power-cycle on it forever — the
    /// non-termination the paper warns about.
    NonTerminating {
        /// `V_safe − V_high`: how far out of reach the task is.
        deficit: Volts,
    },
}

impl TerminationVerdict {
    /// True for [`TerminationVerdict::Terminates`].
    #[must_use]
    pub fn terminates(&self) -> bool {
        matches!(self, TerminationVerdict::Terminates { .. })
    }
}

/// The result of checking one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskCheck {
    /// The task's label (from its load profile).
    pub task: String,
    /// The Culpeo-PG estimate the verdict rests on.
    pub estimate: VsafeEstimate,
    /// The verdict.
    pub verdict: TerminationVerdict,
}

/// Margin that separates [`TerminationVerdict::Terminates`] from
/// [`TerminationVerdict::Marginal`]: the paper's 20 mV
/// fails-sometimes band.
pub const MARGIN: Volts = Volts::new(0.020);

/// Checks one task's termination against the model.
#[must_use]
pub fn check_task(load: &LoadProfile, model: &PowerSystemModel) -> TaskCheck {
    let estimate = pg::compute_vsafe_for_profile(load, model);
    let headroom = model.v_high() - estimate.v_safe;
    let verdict = if headroom >= MARGIN {
        TerminationVerdict::Terminates { headroom }
    } else if headroom.get() >= 0.0 {
        TerminationVerdict::Marginal { headroom }
    } else {
        TerminationVerdict::NonTerminating { deficit: -headroom }
    };
    TaskCheck {
        task: load.label().to_string(),
        estimate,
        verdict,
    }
}

/// Checks a whole program (a set of atomic tasks).
#[must_use]
pub fn check_program(tasks: &[LoadProfile], model: &PowerSystemModel) -> Vec<TaskCheck> {
    tasks.iter().map(|t| check_task(t, model)).collect()
}

/// For a time-divisible task (pure computation is; a radio packet is
/// not), finds the smallest number of equal-duration pieces such that
/// every piece terminates with full margin.
///
/// Returns `None` if even pieces of `max_splits` parts do not fit — the
/// load's *current* is the problem, and no amount of time-slicing
/// removes an ESR drop.
#[must_use]
pub fn required_splits(
    load: &LoadProfile,
    model: &PowerSystemModel,
    max_splits: u32,
) -> Option<u32> {
    assert!(max_splits >= 1, "need at least one piece");
    for n in 1..=max_splits {
        let piece_duration = Seconds::new(load.duration().get() / f64::from(n));
        // The worst piece of an equal split is bounded by a piece drawing
        // the task's peak current for the piece duration.
        let worst_piece = LoadProfile::constant(
            format!("{}/{}", load.label(), n),
            load.peak(),
            piece_duration,
        );
        if check_task(&worst_piece, model).verdict.terminates() {
            return Some(n);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_loadgen::peripheral::{BleRadio, LoRaRadio};
    use culpeo_units::{Amps, Farads, Ohms};

    fn model() -> PowerSystemModel {
        PowerSystemModel::capybara()
    }

    /// A small, high-ESR system where heavy tasks stop terminating.
    fn tiny_system() -> PowerSystemModel {
        PowerSystemModel::with_flat_esr(
            Farads::from_milli(10.0),
            Ohms::new(15.0),
            Volts::new(2.55),
            culpeo_powersim::EfficiencyCurve::tps61200_like(),
            Volts::new(1.6),
            Volts::new(2.56),
        )
    }

    #[test]
    fn ble_terminates_on_capybara() {
        let check = check_task(&BleRadio::default().profile(), &model());
        assert!(check.verdict.terminates(), "{check:?}");
    }

    #[test]
    fn lora_does_not_terminate_on_a_tiny_high_esr_buffer() {
        let check = check_task(&LoRaRadio::default().profile(), &tiny_system());
        match check.verdict {
            TerminationVerdict::NonTerminating { deficit } => {
                assert!(deficit.get() > 0.0);
            }
            other => panic!("expected non-termination, got {other:?}"),
        }
    }

    #[test]
    fn verdict_is_monotone_in_load() {
        // A task either terminates or needs splitting; scaling the load up
        // can only worsen the verdict.
        let m = tiny_system();
        let base = LoadProfile::constant("c", Amps::from_milli(5.0), Seconds::from_milli(400.0));
        let heavy = base.scaled(4.0);
        let base_check = check_task(&base, &m);
        let heavy_check = check_task(&heavy, &m);
        assert!(heavy_check.estimate.v_safe > base_check.estimate.v_safe);
    }

    #[test]
    fn compute_task_splits_until_it_fits() {
        // A long pure-compute task that cannot run in one shot on the tiny
        // system but fits once divided.
        let m = tiny_system();
        let long_compute =
            LoadProfile::constant("dnn-layer", Amps::from_milli(5.0), Seconds::new(3.0));
        assert!(!check_task(&long_compute, &m).verdict.terminates());
        let n = required_splits(&long_compute, &m, 64).expect("should fit when split");
        assert!(n > 1, "needs actual splitting");
        // And the reported split really fits.
        let piece = LoadProfile::constant(
            "piece",
            long_compute.peak(),
            Seconds::new(long_compute.duration().get() / f64::from(n)),
        );
        assert!(check_task(&piece, &m).verdict.terminates());
    }

    #[test]
    fn splitting_cannot_fix_a_current_problem() {
        // The LoRa radio's ESR drop exceeds the tiny system's headroom no
        // matter how short the pieces get.
        let m = tiny_system();
        assert_eq!(
            required_splits(&LoRaRadio::default().profile(), &m, 1024),
            None
        );
    }

    #[test]
    fn check_program_covers_all_tasks() {
        let checks = check_program(
            &[
                BleRadio::default().profile(),
                LoRaRadio::default().profile(),
            ],
            &model(),
        );
        assert_eq!(checks.len(), 2);
        assert_eq!(checks[0].task, "ble-tx");
    }

    #[test]
    fn marginal_band_is_respected() {
        // Construct a task whose V_safe lands just under V_high.
        let m = model();
        // Binary-search a pulse duration whose V_safe ≈ V_high − 10 mV.
        let mut lo = 0.01;
        let mut hi = 20.0;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let load = LoadProfile::constant("probe", Amps::from_milli(20.0), Seconds::new(mid));
            if pg::compute_vsafe_for_profile(&load, &m).v_safe
                < m.v_high() - Volts::from_milli(10.0)
            {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let load = LoadProfile::constant("probe", Amps::from_milli(20.0), Seconds::new(lo));
        let check = check_task(&load, &m);
        assert!(
            matches!(
                check.verdict,
                TerminationVerdict::Marginal { .. } | TerminationVerdict::Terminates { .. }
            ),
            "{check:?}"
        );
    }
}

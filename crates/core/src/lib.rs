//! **Culpeo**: an ESR-aware charge-management interface for
//! energy-harvesting systems.
//!
//! This crate is a from-scratch reproduction of the primary contribution of
//! *"An Architectural Charge Management Interface for Energy-Harvesting
//! Systems"* (MICRO 2022): computing `V_safe`, the minimum energy-buffer
//! voltage at which a software task can start and run to completion without
//! browning out — accounting for the *recoverable* voltage drop that the
//! buffer capacitor's equivalent series resistance (ESR) superimposes on
//! the drop due to actually consumed energy.
//!
//! The crate provides:
//!
//! * [`PowerSystemModel`] — what Culpeo knows about the power system
//!   (§IV-B): datasheet capacitance, a measured ESR-vs-frequency curve,
//!   and the output booster's linear efficiency model;
//! * [`pg`] — **Culpeo-PG**, the compile-time, profile-guided analysis
//!   (Algorithm 1) that walks a task's measured current trace backwards
//!   through the model;
//! * [`runtime`] — **Culpeo-R**, the on-device estimator that needs only
//!   three voltage observations per task (Equations 1a–1c, 2a–2c, 3);
//! * [`compose`] — `V_safe` for *sequences* of tasks (`V_safe_multi`,
//!   §IV-A), with the per-task `penalty` term;
//! * [`Culpeo`] — the Table I API surface
//!   (`profile_start` / `profile_end` / `rebound_end` / `compute_vsafe` /
//!   `get_vsafe` / `get_vdrop`) that schedulers program against;
//! * [`baseline`] — the energy-only estimators the paper shows failing
//!   (direct-energy, end-to-end voltage, and CatNap's fast/slow voltage
//!   sampling).
//!
//! # Quick start
//!
//! ```
//! use culpeo::{pg, PowerSystemModel};
//! use culpeo_loadgen::peripheral::BleRadio;
//! use culpeo_powersim::PowerSystem;
//! use culpeo_units::Hertz;
//!
//! // Characterise the (simulated) power system once, offline…
//! let model = PowerSystemModel::characterize(&PowerSystem::capybara);
//! // …profile the task's current draw…
//! let trace = BleRadio::default().profile().sample(Hertz::new(125_000.0));
//! // …and compute the ESR-aware safe starting voltage.
//! let estimate = pg::compute_vsafe(&trace, &model);
//! assert!(estimate.v_safe > model.v_off());
//! assert!(estimate.v_safe < model.v_high());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod compose;
pub mod design;
pub mod pg;
pub mod runtime;
pub mod termination;

mod api;
mod model;

pub use api::{BufferConfigId, Culpeo, TaskId, TaskProfile};
pub use model::PowerSystemModel;

use culpeo_units::{Joules, Volts};

/// A computed safe-starting-voltage estimate for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VsafeEstimate {
    /// The minimum buffer voltage at which the task can start and complete
    /// without the node dipping below `V_off`.
    pub v_safe: Volts,
    /// The task's worst-case ESR-induced (recoverable) drop, `V_δ` —
    /// needed to compose this task into sequences (§IV-A).
    pub v_delta: Volts,
    /// Energy the task draws from the buffer (output energy inflated by
    /// booster loss), the `V(E)` ingredient of `V_safe_multi`.
    pub buffer_energy: Joules,
}

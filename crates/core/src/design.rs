//! Energy-buffer design exploration with `V_safe` in the loop.
//!
//! §III: "if a task's `V_safe` value is higher than what the energy buffer
//! can provide, the programmer knows they must correct the task division…
//! the programmer can also use `V_safe` as a guide to configure the energy
//! buffer." This module operationalises that guidance: sweep candidate
//! buffer designs, compute every task's `V_safe` under each, and report
//! which designs support the whole application with how much headroom.
//!
//! Buffer design is a real trade-off, not a "bigger is better" knob:
//! capacitance adds volume and recharge time, and within a capacitor
//! family lower ESR costs parallelism (more parts). The feasibility
//! frontier this module computes is the quantitative version of Figure 3's
//! qualitative corner-picking.

use culpeo_loadgen::LoadProfile;
use culpeo_powersim::EfficiencyCurve;
use culpeo_units::{Farads, Ohms, Volts};

use crate::{pg, PowerSystemModel};

/// One candidate energy-buffer design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferDesign {
    /// Total bank capacitance.
    pub capacitance: Farads,
    /// Effective bank ESR.
    pub esr: Ohms,
}

/// The evaluation of one design against a task set.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignEvaluation {
    /// The design under evaluation.
    pub design: BufferDesign,
    /// The largest per-task `V_safe` across the application.
    pub worst_vsafe: Volts,
    /// The task demanding it.
    pub binding_task: String,
    /// `V_high − worst_vsafe`: scheduling slack. Negative ⇒ infeasible.
    pub headroom: Volts,
}

impl DesignEvaluation {
    /// True when every task fits under `V_high` with margin.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.headroom >= crate::termination::MARGIN
    }
}

/// Evaluates one buffer design against an application's task set, using
/// the given booster/monitor parameters.
///
/// # Panics
///
/// Panics if `tasks` is empty — an application with no tasks has no
/// binding requirement to report.
#[must_use]
pub fn evaluate_design(
    design: BufferDesign,
    tasks: &[LoadProfile],
    booster: &EfficiencyCurve,
    v_out: Volts,
    v_off: Volts,
    v_high: Volts,
) -> DesignEvaluation {
    assert!(!tasks.is_empty(), "need at least one task");
    let model = PowerSystemModel::with_flat_esr(
        design.capacitance,
        design.esr,
        v_out,
        *booster,
        v_off,
        v_high,
    );
    let mut worst_vsafe = Volts::ZERO;
    let mut binding_task = String::new();
    for task in tasks {
        let est = pg::compute_vsafe_for_profile(task, &model);
        if est.v_safe > worst_vsafe {
            worst_vsafe = est.v_safe;
            binding_task = task.label().to_string();
        }
    }
    DesignEvaluation {
        design,
        worst_vsafe,
        binding_task,
        headroom: v_high - worst_vsafe,
    }
}

/// Evaluates a whole grid of designs (Capybara-style booster/monitor
/// parameters), returning evaluations in the input order.
#[must_use]
pub fn sweep_designs(designs: &[BufferDesign], tasks: &[LoadProfile]) -> Vec<DesignEvaluation> {
    designs
        .iter()
        .map(|&d| {
            evaluate_design(
                d,
                tasks,
                &EfficiencyCurve::tps61200_like(),
                Volts::new(2.55),
                Volts::new(1.6),
                Volts::new(2.56),
            )
        })
        .collect()
}

/// Finds the smallest capacitance (by bisection over `[lo, hi]`) that
/// makes the task set feasible, under a supercapacitor-family scaling law
/// `ESR = esr_times_farads / C` (constant R·C within a family — stacking
/// more identical parts divides R as it multiplies C).
///
/// Returns `None` if even `hi` is infeasible.
///
/// # Panics
///
/// Panics if the bounds are not ordered and positive.
#[must_use]
pub fn minimum_capacitance(
    tasks: &[LoadProfile],
    esr_times_farads: f64,
    lo: Farads,
    hi: Farads,
) -> Option<Farads> {
    assert!(
        lo.get() > 0.0 && lo.get() < hi.get(),
        "bounds must satisfy 0 < lo < hi"
    );
    assert!(esr_times_farads > 0.0, "R·C constant must be positive");
    let design = |c: Farads| BufferDesign {
        capacitance: c,
        esr: Ohms::new(esr_times_farads / c.get()),
    };
    let feasible = |c: Farads| sweep_designs(&[design(c)], tasks)[0].feasible();

    if !feasible(hi) {
        return None;
    }
    if feasible(lo) {
        return Some(lo);
    }
    let mut lo = lo;
    let mut hi = hi;
    // Bisection to 1 % relative tolerance — buffer parts come in coarse
    // denominations anyway.
    while (hi.get() - lo.get()) > 0.01 * hi.get() {
        let mid = Farads::new(0.5 * (lo.get() + hi.get()));
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_loadgen::peripheral::{BleRadio, GestureSensor, LoRaRadio};

    fn app_tasks() -> Vec<LoadProfile> {
        vec![
            GestureSensor::default().profile(),
            BleRadio::default().profile(),
        ]
    }

    fn mf(v: f64) -> Farads {
        Farads::from_milli(v)
    }

    #[test]
    fn capybara_design_is_feasible_for_the_ble_app() {
        let eval = sweep_designs(
            &[BufferDesign {
                capacitance: mf(45.0),
                esr: Ohms::new(3.3),
            }],
            &app_tasks(),
        )
        .pop()
        .unwrap();
        assert!(eval.feasible(), "{eval:?}");
        assert!(eval.headroom.get() > 0.5);
    }

    #[test]
    fn binding_task_is_the_demanding_one() {
        let mut tasks = app_tasks();
        tasks.push(LoRaRadio::default().profile());
        let eval = sweep_designs(
            &[BufferDesign {
                capacitance: mf(45.0),
                esr: Ohms::new(3.3),
            }],
            &tasks,
        )
        .pop()
        .unwrap();
        assert_eq!(eval.binding_task, "lora-tx");
    }

    #[test]
    fn headroom_grows_with_capacitance_at_fixed_rc() {
        // Within a part family (R·C fixed), more parts ⇒ more C and less
        // R ⇒ strictly more headroom.
        let tasks = app_tasks();
        let rc = 0.15; // Ω·F, the supercap family constant
        let designs = [7.5, 15.0, 30.0, 45.0].map(|c_mf| {
            let c = mf(c_mf);
            BufferDesign {
                capacitance: c,
                esr: Ohms::new(rc / c.get()),
            }
        });
        let evals = sweep_designs(&designs, &tasks);
        for w in evals.windows(2) {
            assert!(w[1].headroom > w[0].headroom, "headroom must grow: {w:?}");
        }
    }

    #[test]
    fn minimum_capacitance_is_tight() {
        let tasks = vec![LoRaRadio::default().profile()];
        let c_min = minimum_capacitance(&tasks, 0.15, mf(1.0), mf(100.0))
            .expect("the LoRa app fits somewhere below 100 mF");
        // The found point is feasible…
        let at = |c: Farads| {
            sweep_designs(
                &[BufferDesign {
                    capacitance: c,
                    esr: Ohms::new(0.15 / c.get()),
                }],
                &tasks,
            )
            .pop()
            .unwrap()
        };
        assert!(at(c_min).feasible());
        // …and 10 % below it is not.
        assert!(!at(Farads::new(c_min.get() * 0.9)).feasible());
    }

    #[test]
    fn impossible_app_returns_none() {
        // A brutal sustained load with a terrible R·C family constant.
        let tasks = vec![LoadProfile::constant(
            "furnace",
            culpeo_units::Amps::new(0.5),
            culpeo_units::Seconds::new(5.0),
        )];
        assert_eq!(minimum_capacitance(&tasks, 10.0, mf(1.0), mf(50.0)), None);
    }

    #[test]
    #[should_panic(expected = "need at least one task")]
    fn empty_task_set_rejected() {
        let _ = sweep_designs(
            &[BufferDesign {
                capacitance: mf(45.0),
                esr: Ohms::new(3.3),
            }],
            &[],
        );
    }
}

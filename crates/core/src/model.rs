//! Culpeo's model of the target power system (§IV-B).

use culpeo_powersim::{
    measure_esr_curve, standard_probe_frequencies, EfficiencyCurve, EsrCurve, PowerSystem,
};
use culpeo_units::{Amps, Farads, Hertz, Ohms, Volts};

/// Everything Culpeo knows about the device's power system.
///
/// Per §IV-B this is deliberately *less* than the plant's full physics:
///
/// * the energy buffer is an ideal capacitor (datasheet `C`) in series
///   with a resistor chosen from a measured ESR-vs-frequency curve;
/// * the output booster is a linear efficiency `η(V) = m·V + b` at fixed
///   `V_out`;
/// * the input booster is assumed *off* (Culpeo-PG's worst case) or
///   constant (Culpeo-R);
/// * `V_off` and `V_high` come from the voltage-monitor design.
///
/// The gap between this model and the simulated plant is exactly the gap
/// the paper's accuracy experiments (Figures 10 and 11) measure.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSystemModel {
    capacitance: Farads,
    esr: EsrCurve,
    v_out: Volts,
    efficiency: EfficiencyCurve,
    v_off: Volts,
    v_high: Volts,
}

impl PowerSystemModel {
    /// Creates a model from designer-supplied parameters.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance or `v_out` is not strictly positive, or
    /// the monitor thresholds are not ordered `0 < v_off < v_high`.
    #[must_use]
    pub fn new(
        capacitance: Farads,
        esr: EsrCurve,
        v_out: Volts,
        efficiency: EfficiencyCurve,
        v_off: Volts,
        v_high: Volts,
    ) -> Self {
        assert!(capacitance.get() > 0.0, "capacitance must be positive");
        assert!(v_out.get() > 0.0, "output voltage must be positive");
        assert!(
            Volts::ZERO < v_off && v_off < v_high,
            "thresholds must satisfy 0 < V_off < V_high"
        );
        Self {
            capacitance,
            esr,
            v_out,
            efficiency,
            v_off,
            v_high,
        }
    }

    /// Characterises a power system the way a designer would: datasheet
    /// values for capacitance, booster, and monitor, plus a *measured*
    /// ESR-vs-frequency curve obtained by pulsing the actual power system
    /// (§IV-B: "datasheet ESR values are too inaccurate").
    ///
    /// The capacitance is taken at 95 % of the plant's true value: §IV-B
    /// notes the datasheet `C` "is generally conservative" — vendors quote
    /// a guaranteed minimum below the typical measured value — and that
    /// conservatism is part of why model-based `V_safe` estimates stay on
    /// the safe side.
    ///
    /// `make_system` must produce fresh, identical instances of the plant;
    /// the measurement discharges and pulses several of them.
    #[must_use]
    pub fn characterize(make_system: &(dyn Fn() -> PowerSystem + Sync)) -> Self {
        let reference = make_system();
        let esr = measure_esr_curve(
            make_system,
            Amps::from_milli(25.0),
            &standard_probe_frequencies(),
        );
        Self::new(
            reference.buffer().total_capacitance() * 0.95,
            esr,
            reference.booster().v_out(),
            *reference.booster().efficiency(),
            reference.monitor().v_off(),
            reference.monitor().v_high(),
        )
    }

    /// A model with a flat (frequency-independent) ESR — what a designer
    /// would write down from a single datasheet number.
    #[must_use]
    pub fn with_flat_esr(
        capacitance: Farads,
        esr: Ohms,
        v_out: Volts,
        efficiency: EfficiencyCurve,
        v_off: Volts,
        v_high: Volts,
    ) -> Self {
        Self::new(
            capacitance,
            EsrCurve::flat(esr),
            v_out,
            efficiency,
            v_off,
            v_high,
        )
    }

    /// The Capybara reference model used throughout the paper's
    /// evaluation, with the true bank ESR written in as a flat curve.
    #[must_use]
    pub fn capybara() -> Self {
        Self::with_flat_esr(
            Farads::from_milli(45.0),
            Ohms::new(3.3),
            Volts::new(2.55),
            EfficiencyCurve::tps61200_like(),
            Volts::new(1.6),
            Volts::new(2.56),
        )
    }

    /// Datasheet capacitance of the energy buffer.
    #[must_use]
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// The measured ESR curve.
    #[must_use]
    pub fn esr_curve(&self) -> &EsrCurve {
        &self.esr
    }

    /// The ESR value Culpeo-PG selects for a workload whose dominant pulse
    /// has frequency `f` (§IV-B: "the width of the largest current
    /// pulse").
    #[must_use]
    pub fn esr_at(&self, f: Hertz) -> Ohms {
        self.esr.at(f)
    }

    /// The regulated output voltage.
    #[must_use]
    pub fn v_out(&self) -> Volts {
        self.v_out
    }

    /// Booster efficiency at buffer voltage `v`.
    #[must_use]
    pub fn efficiency_at(&self, v: Volts) -> f64 {
        self.efficiency.at(v)
    }

    /// The booster efficiency line.
    #[must_use]
    pub fn efficiency(&self) -> &EfficiencyCurve {
        &self.efficiency
    }

    /// The monitor's power-off threshold.
    #[must_use]
    pub fn v_off(&self) -> Volts {
        self.v_off
    }

    /// The monitor's recharge target / maximum buffer voltage.
    #[must_use]
    pub fn v_high(&self) -> Volts {
        self.v_high
    }

    /// The software operating range `V_high − V_off`, the denominator of
    /// the paper's error percentages.
    #[must_use]
    pub fn operating_range(&self) -> Volts {
        self.v_high - self.v_off
    }

    /// Returns a copy with the capacitance replaced (reconfigurable-buffer
    /// support, §V-B).
    #[must_use]
    pub fn with_capacitance(&self, c: Farads) -> Self {
        let mut m = self.clone();
        assert!(c.get() > 0.0, "capacitance must be positive");
        m.capacitance = c;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capybara_model_parameters() {
        let m = PowerSystemModel::capybara();
        assert!(m.capacitance().approx_eq(Farads::from_milli(45.0), 1e-12));
        assert!(m.operating_range().approx_eq(Volts::new(0.96), 1e-12));
        assert_eq!(m.esr_at(Hertz::new(100.0)), Ohms::new(3.3));
    }

    #[test]
    fn characterize_recovers_plant_parameters() {
        let m = PowerSystemModel::characterize(&PowerSystem::capybara);
        // Datasheet capacitance: 95 % of the plant's true 45 mF.
        assert!(m.capacitance().approx_eq(Farads::from_milli(42.75), 1e-9));
        assert_eq!(m.v_out(), Volts::new(2.55));
        assert_eq!(m.v_off(), Volts::new(1.6));
        // Measured ESR near the true 3.3 Ω across the probe band.
        let r = m.esr_at(Hertz::new(100.0));
        assert!(r.approx_eq(Ohms::new(3.3), 0.3), "measured {r}");
    }

    #[test]
    fn efficiency_follows_booster_line() {
        let m = PowerSystemModel::capybara();
        assert!((m.efficiency_at(Volts::new(1.6)) - 0.78).abs() < 1e-9);
        assert!((m.efficiency_at(Volts::new(2.5)) - 0.87).abs() < 1e-9);
    }

    #[test]
    fn with_capacitance_swaps_only_c() {
        let m = PowerSystemModel::capybara().with_capacitance(Farads::from_milli(15.0));
        assert!(m.capacitance().approx_eq(Farads::from_milli(15.0), 1e-12));
        assert_eq!(m.v_off(), Volts::new(1.6));
    }

    #[test]
    #[should_panic(expected = "0 < V_off < V_high")]
    fn rejects_bad_thresholds() {
        let _ = PowerSystemModel::with_flat_esr(
            Farads::from_milli(45.0),
            Ohms::new(3.3),
            Volts::new(2.55),
            EfficiencyCurve::tps61200_like(),
            Volts::new(2.6),
            Volts::new(2.56),
        );
    }
}

//! The energy-only baselines Culpeo is evaluated against (§II-D, §VI-A).
//!
//! Every baseline shares the same flaw: it decides when a task may start
//! from *energy* alone, implicitly assuming that a buffer holding enough
//! energy also holds enough voltage. The ESR drop breaks that assumption,
//! and Figures 6, 10, and 11 quantify by how much. Three estimator
//! families are modelled:
//!
//! * **Energy-Direct** — knows the task's true delivered energy (from a
//!   current probe) and converts it to a starting voltage through
//!   `E = ½C·(V² − V_off²)`;
//! * **Energy-V** — approximates energy end-to-end from fully rebounded
//!   start/final voltages (tracks Energy-Direct closely);
//! * **CatNap** — the published scheduler's approach: voltage sampled
//!   shortly *after* task completion. How soon matters: sampling before
//!   the rebound finishes accidentally charges part of the ESR drop to
//!   the energy account ("Catnap-Measured"), a 2 ms delay lets some of
//!   it rebound away ("Catnap-Slow").

use culpeo_loadgen::CurrentTrace;
use culpeo_units::{Joules, Seconds, Volts};

use crate::PowerSystemModel;

/// The voltage that holds `buffer_energy` of usable charge above `V_off`:
/// `V = √(V_off² + 2E/C)` — the core energy-to-voltage conversion every
/// baseline relies on.
///
/// # Panics
///
/// Panics if the energy is negative.
#[must_use]
pub fn vsafe_from_buffer_energy(buffer_energy: Joules, model: &PowerSystemModel) -> Volts {
    assert!(buffer_energy.get() >= 0.0, "energy cannot be negative");
    Volts::from_squared(
        model.v_off().squared() + 2.0 * buffer_energy.get() / model.capacitance().get(),
    )
}

/// **Energy-Direct**: predicts `V_safe` from the task's measured output
/// energy, inflated by the booster efficiency at the bottom of the range.
/// It knows the energy *exactly* and still fails, because no amount of
/// energy accuracy captures the ESR drop.
#[must_use]
pub fn energy_direct(trace: &CurrentTrace, model: &PowerSystemModel) -> Volts {
    let e_out = trace.output_energy(model.v_out());
    let e_buffer = Joules::new(e_out.get() / model.efficiency_at(model.v_off()));
    vsafe_from_buffer_energy(e_buffer, model)
}

/// **Energy-V / CatNap**: predicts `V_safe` from a pair of voltage
/// readings around a profiled execution:
/// `V_safe = √(V_off² + V_start² − V_end²)`.
///
/// What `v_end` *is* determines the estimator: the fully rebounded final
/// voltage gives Energy-V; a reading taken milliseconds after completion
/// gives the CatNap variants.
///
/// # Panics
///
/// Panics if `v_end > v_start` (an execution cannot add energy here).
#[must_use]
pub fn vsafe_from_voltage_pair(v_start: Volts, v_end: Volts, model: &PowerSystemModel) -> Volts {
    assert!(
        v_end <= v_start,
        "end voltage cannot exceed start voltage for a discharging task"
    );
    Volts::from_squared(model.v_off().squared() + v_start.squared() - v_end.squared())
}

/// A CatNap-style estimator configuration: how long after task completion
/// the "end" voltage is sampled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatnapEstimator {
    /// Delay between task completion and the voltage measurement.
    pub measurement_delay: Seconds,
}

impl CatnapEstimator {
    /// The published CatNap implementation: measures essentially
    /// immediately, before any rebound ("Catnap-Measured").
    #[must_use]
    pub fn published() -> Self {
        Self {
            measurement_delay: Seconds::ZERO,
        }
    }

    /// CatNap with a 2 ms measurement delay ("Catnap-Slow").
    #[must_use]
    pub fn slow() -> Self {
        Self {
            measurement_delay: Seconds::from_milli(2.0),
        }
    }

    /// Predicts `V_safe` from the profiling measurements this estimator
    /// would have taken: the start voltage and the (possibly
    /// partially-rebounded) voltage `measurement_delay` after completion.
    #[must_use]
    pub fn vsafe(&self, v_start: Volts, v_at_delay: Volts, model: &PowerSystemModel) -> Volts {
        vsafe_from_voltage_pair(v_start, v_at_delay, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_loadgen::synthetic::UniformLoad;
    use culpeo_units::{Amps, Hertz};

    fn model() -> PowerSystemModel {
        PowerSystemModel::capybara()
    }

    #[test]
    fn energy_to_voltage_roundtrip() {
        let m = model();
        // ½·45 mF·(2.0² − 1.6²) of energy sits between 2.0 V and V_off.
        let e = Joules::new(0.5 * 0.045 * (4.0 - 2.56));
        let v = vsafe_from_buffer_energy(e, &m);
        assert!(v.approx_eq(Volts::new(2.0), 1e-9));
    }

    #[test]
    fn zero_energy_means_v_off() {
        assert_eq!(
            vsafe_from_buffer_energy(Joules::ZERO, &model()),
            model().v_off()
        );
    }

    #[test]
    fn energy_direct_underestimates_vs_pg_for_high_current() {
        // Energy-Direct vs Culpeo-PG on a hard pulse: Energy-Direct must
        // come out lower (it misses the ESR drop entirely).
        let m = model();
        let load = UniformLoad::new(Amps::from_milli(50.0), Seconds::from_milli(10.0)).profile();
        let trace = load.sample(Hertz::new(125_000.0));
        let direct = energy_direct(&trace, &m);
        let pg = crate::pg::compute_vsafe(&trace, &m);
        assert!(
            pg.v_safe.get() - direct.get() > 0.1,
            "PG {} vs direct {}",
            pg.v_safe,
            direct
        );
    }

    #[test]
    fn voltage_pair_estimator_math() {
        let m = model();
        let v = vsafe_from_voltage_pair(Volts::new(2.4), Volts::new(2.3), &m);
        let expected = (1.6f64.powi(2) + 2.4f64.powi(2) - 2.3f64.powi(2)).sqrt();
        assert!(v.approx_eq(Volts::new(expected), 1e-12));
    }

    #[test]
    fn earlier_measurement_is_more_conservative() {
        // The sooner CatNap samples after the task, the lower the voltage
        // it sees (rebound incomplete) and the higher its estimate: the
        // §II-D accidental conservatism.
        let m = model();
        let v_start = Volts::new(2.4);
        let v_pre_rebound = Volts::new(2.15); // right at completion
        let v_partial = Volts::new(2.25); // 2 ms later
        let measured = CatnapEstimator::published().vsafe(v_start, v_pre_rebound, &m);
        let slow = CatnapEstimator::slow().vsafe(v_start, v_partial, &m);
        assert!(measured > slow);
    }

    #[test]
    #[should_panic(expected = "end voltage cannot exceed")]
    fn rejects_charging_pair() {
        let _ = vsafe_from_voltage_pair(Volts::new(2.0), Volts::new(2.1), &model());
    }
}

//! `V_safe` for task *sequences* — `V_safe_multi` and the penalty term
//! (§IV-A).
//!
//! A scheduler often needs to know whether a whole sequence of tasks can
//! run on one discharge ("sense, then encrypt, then send"). Starting the
//! sequence at `V_safe_multi` guarantees every task in it completes.
//!
//! The key subtlety is that ESR drops are *recoverable*: task `i`'s dip
//! rebounds once its load ends, so it only forces extra headroom when the
//! following tasks' requirement `V_safe_{i+1}` is not already high enough
//! to absorb it. That conditional extra headroom is the `penalty` term:
//!
//! ```text
//! penalty_i = max(V_off + V_δ_i − V_safe_{i+1}, 0)
//! ```
//!
//! Two composition rules are provided:
//!
//! * [`vsafe_multi`] — the quadrature form Algorithm 1 actually uses
//!   (energies add in `V²` space, matching `E = ½CV²`); this is the
//!   accurate rule;
//! * [`vsafe_multi_linear`] — the paper's §IV-A expository form, where
//!   per-task voltage headrooms add linearly; it is more conservative and
//!   retained for comparison and for its simpler correctness argument.

use culpeo_units::{Farads, Joules, Volts};

use crate::VsafeEstimate;

/// What composition needs to know about one task in a sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRequirement {
    /// Energy the task draws from the buffer (booster losses included).
    pub buffer_energy: Joules,
    /// The task's worst-case ESR drop at `V_off`.
    pub v_delta: Volts,
}

impl TaskRequirement {
    /// Extracts the composition ingredients from a per-task estimate.
    #[must_use]
    pub fn from_estimate(est: &VsafeEstimate) -> Self {
        Self {
            buffer_energy: est.buffer_energy,
            v_delta: est.v_delta,
        }
    }
}

/// The §IV-A penalty for a task with ESR drop `v_delta` followed by a
/// suffix requiring `v_safe_next`:
/// `max(V_off + V_δ − V_safe_next, 0)`.
#[must_use]
pub fn penalty(v_off: Volts, v_delta: Volts, v_safe_next: Volts) -> Volts {
    Volts::new((v_off + v_delta - v_safe_next).get().max(0.0))
}

/// `V_safe_multi` in the accurate quadrature form.
///
/// Walking the sequence backwards (base case: the voltage after the last
/// task need only be `V_off`):
///
/// ```text
/// V_penalty_i = max(V_off + V_δ_i, V_{i+1})
/// V_i         = √(2·E_i/C + V_penalty_i²)
/// ```
///
/// # Panics
///
/// Panics if `c` is not strictly positive or any task's energy is
/// negative.
#[must_use]
pub fn vsafe_multi(tasks: &[TaskRequirement], c: Farads, v_off: Volts) -> Volts {
    assert!(c.get() > 0.0, "capacitance must be positive");
    let mut v_suffix = v_off;
    for t in tasks.iter().rev() {
        assert!(
            t.buffer_energy.get() >= 0.0,
            "task energy cannot be negative"
        );
        let v_penalty = (v_off + t.v_delta).max(v_suffix);
        v_suffix = Volts::from_squared(2.0 * t.buffer_energy.get() / c.get() + v_penalty.squared());
    }
    v_suffix
}

/// `V_safe_multi` in the paper's linear expository form:
/// `Σ V(E_i) + Σ penalty_i + V_off`, where `V(E_i)` is the voltage
/// headroom covering task `i`'s energy at the bottom of the range.
///
/// Always at least as large as [`vsafe_multi`] for the same inputs (linear
/// addition of voltage headroom over-provisions relative to quadrature),
/// so it shares the safety guarantee.
///
/// # Panics
///
/// Panics if `c` is not strictly positive or any task's energy is
/// negative.
#[must_use]
pub fn vsafe_multi_linear(tasks: &[TaskRequirement], c: Farads, v_off: Volts) -> Volts {
    assert!(c.get() > 0.0, "capacitance must be positive");
    let mut v_suffix = v_off;
    for t in tasks.iter().rev() {
        assert!(
            t.buffer_energy.get() >= 0.0,
            "task energy cannot be negative"
        );
        // V(E): headroom above V_off holding this task's energy.
        let v_e =
            Volts::from_squared(v_off.squared() + 2.0 * t.buffer_energy.get() / c.get()) - v_off;
        let p = penalty(v_off, t.v_delta, v_suffix);
        v_suffix = v_e + p + v_suffix;
    }
    v_suffix
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: Farads = Farads::new(45e-3);
    const V_OFF: Volts = Volts::new(1.6);

    fn task(e_mj: f64, v_delta: f64) -> TaskRequirement {
        TaskRequirement {
            buffer_energy: Joules::new(e_mj * 1e-3),
            v_delta: Volts::new(v_delta),
        }
    }

    #[test]
    fn empty_sequence_is_v_off() {
        assert_eq!(vsafe_multi(&[], C, V_OFF), V_OFF);
        assert_eq!(vsafe_multi_linear(&[], C, V_OFF), V_OFF);
    }

    #[test]
    fn single_task_matches_algorithm1_form() {
        let t = task(1.0, 0.15);
        let v = vsafe_multi(&[t], C, V_OFF);
        let expected = (2.0 * 1e-3 / 45e-3 + (1.6f64 + 0.15).powi(2)).sqrt();
        assert!(v.approx_eq(Volts::new(expected), 1e-12));
    }

    #[test]
    fn penalty_is_zero_when_suffix_absorbs_drop() {
        // The next task needs 2.0 V; a 0.3 V dip from 2.0 V stays above
        // V_off = 1.6 V, so no extra headroom is required.
        assert_eq!(
            penalty(V_OFF, Volts::new(0.3), Volts::new(2.0)),
            Volts::ZERO
        );
        // But a 0.5 V dip would cross it.
        assert!(penalty(V_OFF, Volts::new(0.5), Volts::new(2.0)).approx_eq(Volts::new(0.1), 1e-12));
    }

    #[test]
    fn rebound_repays_penalty_in_sequences() {
        // big-dip task followed by demanding task vs the reverse: when the
        // big dip comes first, the suffix requirement is already high, so
        // the dip's penalty is absorbed.
        let dip = task(0.1, 0.4);
        let hungry = task(5.0, 0.05);
        let dip_first = vsafe_multi(&[dip, hungry], C, V_OFF);
        let dip_last = vsafe_multi(&[hungry, dip], C, V_OFF);
        assert!(dip_first <= dip_last);
    }

    #[test]
    fn sequence_needs_at_least_max_individual() {
        let a = task(1.0, 0.2);
        let b = task(2.0, 0.1);
        let seq = vsafe_multi(&[a, b], C, V_OFF);
        let va = vsafe_multi(&[a], C, V_OFF);
        let vb = vsafe_multi(&[b], C, V_OFF);
        assert!(seq >= va.max(vb));
    }

    #[test]
    fn linear_form_is_at_least_quadrature() {
        let seq = [task(1.0, 0.2), task(0.5, 0.05), task(2.0, 0.3)];
        let q = vsafe_multi(&seq, C, V_OFF);
        let l = vsafe_multi_linear(&seq, C, V_OFF);
        assert!(
            l >= q - Volts::from_micro(1.0),
            "linear {l} < quadrature {q}"
        );
    }

    #[test]
    fn adding_a_task_never_lowers_the_requirement() {
        let base = [task(1.0, 0.1), task(0.5, 0.2)];
        let more = [task(1.0, 0.1), task(0.5, 0.2), task(0.3, 0.05)];
        assert!(vsafe_multi(&more, C, V_OFF) >= vsafe_multi(&base, C, V_OFF));
    }

    #[test]
    fn zero_energy_zero_drop_tasks_are_free() {
        let seq = [task(0.0, 0.0), task(1.0, 0.1), task(0.0, 0.0)];
        let with = vsafe_multi(&seq, C, V_OFF);
        let without = vsafe_multi(&[task(1.0, 0.1)], C, V_OFF);
        assert!(with.approx_eq(without, 1e-12));
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn rejects_zero_capacitance() {
        let _ = vsafe_multi(&[task(1.0, 0.1)], Farads::ZERO, V_OFF);
    }
}

//! The schedule explorer: bounded-depth DFS over thread interleavings.
//!
//! Stateless model checking: every execution re-runs the closure from
//! scratch under a *forced prefix* of scheduling choices, then lets a
//! deterministic policy finish the schedule. After each execution the
//! explorer backtracks to the deepest choice point with an untried
//! alternative and re-runs with that alternative appended to the
//! prefix. Three prunings keep the tree tractable:
//!
//! * **preemption bounding** — switching away from a thread that is
//!   still eligible costs one preemption; schedules beyond the budget
//!   are not explored. Empirically almost all concurrency bugs manifest
//!   within two preemptions (CHESS); the bound is a CLI knob.
//! * **sleep sets** — after fully exploring choice `t` at a node, `t`
//!   is added to the node's sleep set and inherited by siblings through
//!   any step it commutes with, so two independent operations are not
//!   explored in both orders. Independence is judged from pending-op
//!   signatures (different objects, or both reads).
//! * **a step limit** — a livelock guard; exceeding it fails the
//!   execution rather than hanging the checker.
//!
//! The choice *order* at each node is rotated by a splitmix64 stream
//! seeded from [`Options::seed`] — two explorations with different
//! seeds walk the tree in different orders (and may prune differently),
//! but must reach identical verdicts; `scripts/race.sh` pins exactly
//! that.

use crate::model::{in_model_thread, thread_shell};
use crate::rt::{Decision, Runtime, Sig, Tid};
use std::sync::Once;

/// Exploration bounds and seed.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Maximum preemptive context switches per execution.
    pub preemptions: u32,
    /// Hard cap on executions (completed + pruned); hitting it reports
    /// `capped` honestly rather than silently claiming exhaustiveness.
    pub max_interleavings: u64,
    /// Per-execution step bound (livelock guard).
    pub max_steps: usize,
    /// Rotates candidate order at every depth (exploration-order seed).
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            preemptions: 2,
            max_interleavings: 50_000,
            max_steps: 5_000,
            seed: 0xC01D_CAFE,
        }
    }
}

/// A failing schedule, rendered for humans and JSON alike.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// `panic`, `deadlock`, `race`, or `step-limit`.
    pub kind: String,
    /// One-line description (for races: both tagged access sites).
    pub message: String,
    /// The full interleaving that manifests the failure, one line per
    /// granted operation.
    pub trace: Vec<String>,
}

/// What an exploration established.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Completed executions (each a distinct interleaving).
    pub interleavings: u64,
    /// Executions cut short by sleep-set or preemption-bound pruning.
    pub pruned: u64,
    /// The DFS exhausted every schedule within its bounds.
    pub complete: bool,
    /// The `max_interleavings` cap stopped the search.
    pub capped: bool,
    /// The first failing schedule found, if any.
    pub failure: Option<Counterexample>,
}

impl Exploration {
    /// No failure found (which, with `complete`, is a proof up to the
    /// explored bounds).
    #[must_use]
    pub fn holds(&self) -> bool {
        self.failure.is_none()
    }
}

/// One choice point on the DFS stack.
struct Node {
    /// Ready threads in tid order with their pending-op signatures and
    /// eligibility, exactly as the runtime reported them.
    info: Vec<(Tid, Sig, bool)>,
    /// The thread granted the previous step (preemption accounting).
    was_running: Option<Tid>,
    /// Preemptions spent on the path *up to* this node.
    pre_used: u32,
    /// Sleep set: threads whose subtrees are covered elsewhere.
    sleep: Vec<(Tid, Sig)>,
    /// Fully explored choices at this node.
    done: Vec<Tid>,
    /// The choice the current path takes.
    chosen: Tid,
}

impl Node {
    fn sig_of(&self, tid: Tid) -> Sig {
        self.info
            .iter()
            .find(|&&(t, _, _)| t == tid)
            .map(|&(_, s, _)| s)
            .expect("chosen thread is in the node's info")
    }

    fn eligible(&self, tid: Tid) -> bool {
        self.info.iter().any(|&(t, _, e)| t == tid && e)
    }

    /// The preemption cost of choosing `tid` here: 1 iff the previous
    /// step's thread is still eligible and passed over.
    fn cost(&self, tid: Tid) -> u32 {
        match self.was_running {
            Some(r) if r != tid && self.eligible(r) => 1,
            _ => 0,
        }
    }

    /// Candidate choices in seeded rotation order: eligible, not
    /// sleeping, not already explored, within the preemption budget.
    fn candidates(&self, depth: usize, opts: &Options) -> Vec<Tid> {
        let eligible: Vec<Tid> = self
            .info
            .iter()
            .filter(|&&(_, _, e)| e)
            .map(|&(t, _, _)| t)
            .collect();
        let n = eligible.len();
        let rot = (culpeo_units::seed::sub_seed(opts.seed, depth as u64) as usize) % n.max(1);
        (0..n)
            .map(|i| eligible[(i + rot) % n])
            .filter(|&t| !self.sleep.iter().any(|&(s, _)| s == t))
            .filter(|&t| !self.done.contains(&t))
            .filter(|&t| self.pre_used + self.cost(t) <= opts.preemptions)
            .collect()
    }

    /// The sleep set a child born of this node's `chosen` inherits:
    /// members of `sleep ∪ done` whose pending op commutes with the
    /// executed one.
    fn child_sleep(&self) -> Vec<(Tid, Sig)> {
        let exec_sig = self.sig_of(self.chosen);
        self.sleep
            .iter()
            .copied()
            .chain(self.done.iter().map(|&t| (t, self.sig_of(t))))
            .filter(|&(t, s)| t != self.chosen && s.independent(exec_sig))
            .collect()
    }
}

enum RunEnd {
    /// The closure ran to completion under this schedule.
    Completed,
    /// Every remaining choice at the frontier was sleeping or over
    /// budget: the subtree is covered elsewhere (or out of bounds).
    Pruned,
    /// The runtime recorded a failure.
    Failed(Counterexample),
}

/// Explores `f` under `opts`, returning what the bounded search
/// established. `f` is re-run once per schedule; it must confine all
/// inter-thread communication to the model types (anything else is
/// invisible to the scheduler and unsound to prune).
pub fn explore<F>(opts: &Options, f: F) -> Exploration
where
    F: Fn() + Send + Sync,
{
    let mut stack: Vec<Node> = Vec::new();
    let mut prefix_len = 0usize;
    let mut interleavings = 0u64;
    let mut pruned = 0u64;

    loop {
        let end = run_once(opts, &f, &mut stack, prefix_len);
        match end {
            RunEnd::Completed => interleavings += 1,
            RunEnd::Pruned => pruned += 1,
            RunEnd::Failed(counterexample) => {
                return Exploration {
                    interleavings: interleavings + 1,
                    pruned,
                    complete: false,
                    capped: false,
                    failure: Some(counterexample),
                };
            }
        }
        if interleavings + pruned >= opts.max_interleavings {
            return Exploration {
                interleavings,
                pruned,
                complete: false,
                capped: true,
                failure: None,
            };
        }
        // Backtrack: deepest node with an untried, in-budget choice.
        loop {
            if stack.is_empty() {
                return Exploration {
                    interleavings,
                    pruned,
                    complete: true,
                    capped: false,
                    failure: None,
                };
            }
            let depth = stack.len() - 1;
            let node = &mut stack[depth];
            // The just-explored branch is done before looking for a
            // sibling, so it can never be re-chosen.
            node.done.push(node.chosen);
            match node.candidates(depth, opts).into_iter().next() {
                Some(next) => {
                    node.chosen = next;
                    prefix_len = depth + 1;
                    break;
                }
                None => {
                    stack.pop();
                }
            }
        }
    }
}

/// Runs one controlled execution: replays `stack[..prefix_len]`, then
/// extends the path with the deterministic default policy, pushing
/// fresh nodes as it goes.
fn run_once<F>(opts: &Options, f: &F, stack: &mut Vec<Node>, prefix_len: usize) -> RunEnd
where
    F: Fn() + Send + Sync,
{
    // Nodes beyond the replay prefix belong to the previous execution.
    stack.truncate(prefix_len);

    let rt = Runtime::new();
    rt.register_main();

    std::thread::scope(|scope| {
        let main_rt = rt.clone();
        scope.spawn(move || thread_shell(main_rt, 0, f));

        let mut depth = 0usize;
        loop {
            match rt.wait_decision() {
                Decision::Complete => return RunEnd::Completed,
                Decision::Failed => {
                    let failure = rt.failure().expect("Failed implies a recorded failure");
                    let (kind, message) = rt.render_failure(&failure);
                    let counterexample = Counterexample {
                        kind,
                        message,
                        trace: rt.render_trace(),
                    };
                    rt.abandon();
                    return RunEnd::Failed(counterexample);
                }
                Decision::Choose(info) => {
                    if rt.step_count() >= opts.max_steps {
                        rt.record_step_limit(opts.max_steps);
                        continue; // next wait_decision reports Failed
                    }
                    let chosen = if depth < prefix_len {
                        let node = &stack[depth];
                        assert_eq!(
                            node.info, info,
                            "model execution diverged on replay: the closure must be \
                             deterministic apart from scheduling"
                        );
                        node.chosen
                    } else {
                        let (was_running, pre_used, sleep) = match stack.last() {
                            None => (None, 0, Vec::new()),
                            Some(parent) => (
                                Some(parent.chosen),
                                parent.pre_used + parent.cost(parent.chosen),
                                parent.child_sleep(),
                            ),
                        };
                        let node = Node {
                            info,
                            was_running,
                            pre_used,
                            sleep,
                            done: Vec::new(),
                            chosen: 0,
                        };
                        match node.candidates(depth, opts).into_iter().next() {
                            None => {
                                // All remaining choices are covered
                                // elsewhere or out of budget.
                                rt.abandon();
                                return RunEnd::Pruned;
                            }
                            Some(first) => {
                                let mut node = node;
                                node.chosen = first;
                                let chosen = node.chosen;
                                stack.push(node);
                                chosen
                            }
                        }
                    };
                    rt.grant(chosen);
                    depth += 1;
                }
            }
        }
    })
}

static SILENCER: Once = Once::new();

/// Installs (once, process-wide) a panic hook that swallows panics
/// raised on model threads — expected panics (poison scenarios, mutant
/// refutations, abandoned executions) would otherwise spray thousands
/// of backtraces. Panics anywhere else fall through to the previous
/// hook.
pub(crate) fn install_panic_silencer() {
    SILENCER.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if in_model_thread() {
                return;
            }
            previous(info);
        }));
    });
}

//! The model instantiation of the [`culpeo_exec::shim`] vocabulary:
//! drop-in `AtomicUsize`/`AtomicBool`/`AtomicU64`, `Mutex`, `Condvar`,
//! `sync_channel`, `spawn`/`JoinHandle`, plus [`RaceCell`] for plain
//! shared data under race detection.
//!
//! Every type holds an object id in the current execution's
//! `crate::rt::Runtime` (a private module) and funnels each operation
//! through `Runtime::yield_op`, which is what turns ordinary-looking protocol
//! code into a fully schedulable, clock-tracked execution. The types
//! can only be constructed *inside* a closure driven by
//! [`crate::explore::explore`]; construction anywhere else panics with
//! a pointed message.
//!
//! Observational equivalence with `std::sync` is part of the contract
//! (the shim equivalence proptests pin it): `lock` returns the same
//! `LockResult` shape, guards poison on panicky drops, `try_send`
//! reports `Full`/`Disconnected` with the payload, `recv` keeps
//! draining after the last sender drops, and panics out of a spawned
//! closure surface as `Err` from `join`.

use crate::rt::{ObjId, ObjKind, Op, Outcome, Runtime, Tid, TrySendVerdict};
use culpeo_exec::shim::{
    AtomicBoolShim, AtomicU64Shim, AtomicUsizeShim, CondvarShim, MutexShim, ReceiverShim,
    SenderShim,
};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{RecvError, SendError, TrySendError};
use std::sync::{Arc, LockResult, Mutex as StdMutex, PoisonError};

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) rt: Arc<Runtime>,
    pub(crate) tid: Tid,
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

pub(crate) fn in_model_thread() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn ctx() -> Ctx {
    CTX.with(|c| {
        c.borrow().clone().expect(
            "culpeo-race model sync primitives can only be used inside a closure \
             driven by culpeo_race::explore()",
        )
    })
}

fn op(o: Op, site: &'static Location<'static>) -> Outcome {
    let Ctx { rt, tid } = ctx();
    rt.yield_op(tid, o, site)
}

fn value_of(out: Outcome) -> u64 {
    match out {
        Outcome::Value(v) => v,
        // Dummy outcome while unwinding an abandoned execution.
        _ => 0,
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

/// Model `std::sync::atomic::AtomicUsize`.
#[derive(Debug)]
pub struct AtomicUsize {
    obj: ObjId,
}

impl AtomicUsizeShim for AtomicUsize {
    fn new(v: usize) -> Self {
        let obj = ctx().rt.alloc_object(ObjKind::AtomicUsize, v as u64, 0);
        Self { obj }
    }
    #[track_caller]
    fn load(&self, order: Ordering) -> usize {
        value_of(op(
            Op::AtomicLoad {
                obj: self.obj,
                order,
            },
            Location::caller(),
        )) as usize
    }
    #[track_caller]
    fn store(&self, v: usize, order: Ordering) {
        op(
            Op::AtomicStore {
                obj: self.obj,
                value: v as u64,
                order,
            },
            Location::caller(),
        );
    }
    #[track_caller]
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        value_of(op(
            Op::AtomicFetchAdd {
                obj: self.obj,
                delta: v as u64,
                order,
            },
            Location::caller(),
        )) as usize
    }
    #[track_caller]
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        match op(
            Op::AtomicCas {
                obj: self.obj,
                current: current as u64,
                new: new as u64,
                success,
                failure,
            },
            Location::caller(),
        ) {
            Outcome::Cas(Ok(v)) => Ok(v as usize),
            Outcome::Cas(Err(v)) => Err(v as usize),
            _ => Ok(current),
        }
    }
}

/// Model `std::sync::atomic::AtomicBool`.
#[derive(Debug)]
pub struct AtomicBool {
    obj: ObjId,
}

impl AtomicBoolShim for AtomicBool {
    fn new(v: bool) -> Self {
        let obj = ctx().rt.alloc_object(ObjKind::AtomicBool, u64::from(v), 0);
        Self { obj }
    }
    #[track_caller]
    fn load(&self, order: Ordering) -> bool {
        value_of(op(
            Op::AtomicLoad {
                obj: self.obj,
                order,
            },
            Location::caller(),
        )) != 0
    }
    #[track_caller]
    fn store(&self, v: bool, order: Ordering) {
        op(
            Op::AtomicStore {
                obj: self.obj,
                value: u64::from(v),
                order,
            },
            Location::caller(),
        );
    }
    #[track_caller]
    fn swap(&self, v: bool, order: Ordering) -> bool {
        value_of(op(
            Op::AtomicSwap {
                obj: self.obj,
                value: u64::from(v),
                order,
            },
            Location::caller(),
        )) != 0
    }
}

/// Model `std::sync::atomic::AtomicU64`.
#[derive(Debug)]
pub struct AtomicU64 {
    obj: ObjId,
}

impl AtomicU64Shim for AtomicU64 {
    fn new(v: u64) -> Self {
        let obj = ctx().rt.alloc_object(ObjKind::AtomicU64, v, 0);
        Self { obj }
    }
    #[track_caller]
    fn load(&self, order: Ordering) -> u64 {
        value_of(op(
            Op::AtomicLoad {
                obj: self.obj,
                order,
            },
            Location::caller(),
        ))
    }
    #[track_caller]
    fn store(&self, v: u64, order: Ordering) {
        op(
            Op::AtomicStore {
                obj: self.obj,
                value: v,
                order,
            },
            Location::caller(),
        );
    }
    #[track_caller]
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        value_of(op(
            Op::AtomicFetchAdd {
                obj: self.obj,
                delta: v,
                order,
            },
            Location::caller(),
        ))
    }
}

// ---------------------------------------------------------------------
// Mutex + Condvar
// ---------------------------------------------------------------------

/// Model `std::sync::Mutex<T>`. The payload lives in an uncontended
/// std mutex — logical ownership (who may touch it, and when) is
/// enforced entirely by the scheduler.
#[derive(Debug)]
pub struct Mutex<T> {
    obj: ObjId,
    data: StdMutex<T>,
}

/// The RAII guard of a model [`Mutex`]; its drop is the unlock yield
/// point, and a drop during a panic poisons, exactly like std.
pub struct MutexGuard<'a, T: Send> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Condvar wait dismantles the guard without announcing an unlock
    /// (the `CvWait` op covers the release).
    announce: bool,
}

impl<T: Send> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: Send> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: Send> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            if self.announce {
                op(
                    Op::MutexUnlock {
                        obj: self.lock.obj,
                        poison: std::thread::panicking(),
                    },
                    Location::caller(),
                );
            }
            // Only dropped after the logical unlock: no other thread
            // runs between the grant above and this drop.
            drop(inner);
        }
    }
}

impl<T: Send> MutexShim<T> for Mutex<T> {
    type Guard<'a>
        = MutexGuard<'a, T>
    where
        T: 'a;

    fn new(value: T) -> Self {
        let obj = ctx().rt.alloc_object(ObjKind::Mutex, 0, 0);
        Self {
            obj,
            data: StdMutex::new(value),
        }
    }

    #[track_caller]
    fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let out = op(Op::MutexLock { obj: self.obj }, Location::caller());
        let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        let guard = MutexGuard {
            lock: self,
            inner: Some(inner),
            announce: true,
        };
        match out {
            Outcome::Lock { poisoned: true } => Err(PoisonError::new(guard)),
            _ => Ok(guard),
        }
    }

    fn clear_poison(&self) {
        ctx().rt.set_poison(self.obj, false);
    }

    fn is_poisoned(&self) -> bool {
        ctx().rt.is_poisoned(self.obj)
    }
}

/// Model `std::sync::Condvar` (the lite wait/notify surface of
/// [`CondvarShim`]).
#[derive(Debug)]
pub struct Condvar {
    obj: ObjId,
}

impl<T: Send> CondvarShim<T, Mutex<T>> for Condvar {
    fn new() -> Self {
        let obj = ctx().rt.alloc_object(ObjKind::Condvar, 0, 0);
        Self { obj }
    }

    #[track_caller]
    fn wait<'a>(&self, mut guard: MutexGuard<'a, T>, mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
        let site = Location::caller();
        // Dismantle the guard silently: the CvWait op is the release.
        guard.announce = false;
        let inner = guard.inner.take();
        drop(inner);
        drop(guard);
        op(
            Op::CvWait {
                cv: self.obj,
                mutex: mutex.obj,
            },
            site,
        );
        op(
            Op::CvReacquire {
                cv: self.obj,
                mutex: mutex.obj,
            },
            site,
        );
        let inner = mutex.data.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            lock: mutex,
            inner: Some(inner),
            announce: true,
        }
    }

    #[track_caller]
    fn notify_one(&self) {
        op(
            Op::CvNotify {
                cv: self.obj,
                all: false,
            },
            Location::caller(),
        );
    }

    #[track_caller]
    fn notify_all(&self) {
        op(
            Op::CvNotify {
                cv: self.obj,
                all: true,
            },
            Location::caller(),
        );
    }
}

// ---------------------------------------------------------------------
// Bounded channel
// ---------------------------------------------------------------------

/// Model `std::sync::mpsc::sync_channel`: a bounded queue whose typed
/// payloads ride beside the runtime's logical occupancy + per-message
/// clock bookkeeping.
pub fn sync_channel<T: Send>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let obj = ctx().rt.alloc_object(ObjKind::Channel, 0, cap);
    let queue = Arc::new(StdMutex::new(VecDeque::new()));
    (
        Sender {
            obj,
            queue: queue.clone(),
        },
        Receiver { obj, queue },
    )
}

/// Model `std::sync::mpsc::SyncSender<T>`.
#[derive(Debug)]
pub struct Sender<T> {
    obj: ObjId,
    queue: Arc<StdMutex<VecDeque<T>>>,
}

impl<T: Send> Clone for Sender<T> {
    #[track_caller]
    fn clone(&self) -> Self {
        op(Op::SenderClone { obj: self.obj }, Location::caller());
        Self {
            obj: self.obj,
            queue: self.queue.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        op(Op::SenderDrop { obj: self.obj }, Location::caller());
    }
}

impl<T: Send> SenderShim<T> for Sender<T> {
    #[track_caller]
    fn send(&self, value: T) -> Result<(), SendError<T>> {
        match op(Op::ChanSend { obj: self.obj }, Location::caller()) {
            Outcome::Send { disconnected: true } => Err(SendError(value)),
            _ => {
                self.queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push_back(value);
                Ok(())
            }
        }
    }

    #[track_caller]
    fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        match op(Op::ChanTrySend { obj: self.obj }, Location::caller()) {
            Outcome::TrySend(TrySendVerdict::Full) => Err(TrySendError::Full(value)),
            Outcome::TrySend(TrySendVerdict::Disconnected) => {
                Err(TrySendError::Disconnected(value))
            }
            _ => {
                self.queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push_back(value);
                Ok(())
            }
        }
    }
}

/// Model `std::sync::mpsc::Receiver<T>`.
#[derive(Debug)]
pub struct Receiver<T> {
    obj: ObjId,
    queue: Arc<StdMutex<VecDeque<T>>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        op(Op::ReceiverDrop { obj: self.obj }, Location::caller());
    }
}

impl<T: Send> ReceiverShim<T> for Receiver<T> {
    #[track_caller]
    fn recv(&self) -> Result<T, RecvError> {
        match op(Op::ChanRecv { obj: self.obj }, Location::caller()) {
            Outcome::Recv { ok: true } => Ok(self
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
                .expect("logical occupancy said non-empty")),
            _ => Err(RecvError),
        }
    }
}

// ---------------------------------------------------------------------
// RaceCell: plain shared data under the vector-clock detector
// ---------------------------------------------------------------------

/// Plain shared data with **no synchronization of its own** — the
/// model-world equivalent of an `UnsafeCell` the protocol believes is
/// protected by surrounding synchronization. Every `get`/`set` is
/// checked against the previous conflicting access via vector clocks;
/// an unsynchronized pair fails the execution as a race, reporting both
/// `#[track_caller]` sites.
#[derive(Debug)]
pub struct RaceCell<T: Copy + Send> {
    obj: ObjId,
    data: StdMutex<T>,
}

impl<T: Copy + Send> RaceCell<T> {
    /// A cell holding `v`, owned by the current execution.
    pub fn new(v: T) -> Self {
        let obj = ctx().rt.alloc_object(ObjKind::Cell, 0, 0);
        Self {
            obj,
            data: StdMutex::new(v),
        }
    }

    /// Reads the value (a checked access).
    #[track_caller]
    pub fn get(&self) -> T {
        op(Op::CellRead { obj: self.obj }, Location::caller());
        *self.data.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Writes the value (a checked access).
    #[track_caller]
    pub fn set(&self, v: T) {
        op(Op::CellWrite { obj: self.obj }, Location::caller());
        *self.data.lock().unwrap_or_else(PoisonError::into_inner) = v;
    }
}

// ---------------------------------------------------------------------
// spawn / join
// ---------------------------------------------------------------------

/// Model `std::thread::JoinHandle<T>`.
pub struct JoinHandle<T> {
    tid: Tid,
    result: Arc<StdMutex<Option<T>>>,
    real: Option<std::thread::JoinHandle<()>>,
}

impl<T: Send> JoinHandle<T> {
    /// Model `std::thread::JoinHandle::join`: blocks (schedulably)
    /// until the target finishes; `Err` if its closure panicked.
    #[track_caller]
    pub fn join(mut self) -> std::thread::Result<T> {
        let out = op(Op::Join { target: self.tid }, Location::caller());
        if let Some(real) = self.real.take() {
            // The logical join already happened; the OS thread exits
            // promptly. Reap it so executions leak nothing.
            let _ = real.join();
        }
        match out {
            Outcome::Join { panicked: true } => Err(Box::new("model thread panicked".to_string())),
            _ => Ok(self
                .result
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("a finished, unpanicked thread stored its result")),
        }
    }
}

/// Spawns a named model thread. The name appears in traces and race
/// reports; scheduling is entirely up to the explorer.
#[track_caller]
pub fn spawn<T, F>(name: &str, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let Ctx { rt, tid } = ctx();
    let out = rt.yield_op(
        tid,
        Op::Spawn {
            name: name.to_string(),
        },
        Location::caller(),
    );
    let child = match out {
        Outcome::Spawned(child) => child,
        _ => unreachable!("spawn is never reached while unwinding"),
    };
    let result = Arc::new(StdMutex::new(None));
    let slot = result.clone();
    let child_rt = rt.clone();
    let real = std::thread::spawn(move || {
        thread_shell(child_rt, child, move || {
            let value = f();
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
        });
    });
    JoinHandle {
        tid: child,
        result,
        real: Some(real),
    }
}

/// The body every model OS thread runs: install the context, announce
/// the first yield, run user code under `catch_unwind`, and report how
/// it ended. Used for the execution's main thread and every
/// [`spawn`]ed thread.
pub(crate) fn thread_shell(rt: Arc<Runtime>, tid: Tid, body: impl FnOnce()) {
    crate::explore::install_panic_silencer();
    set_ctx(Some(Ctx {
        rt: rt.clone(),
        tid,
    }));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.yield_op(tid, Op::Start, Location::caller());
        body();
    }));
    match result {
        Ok(()) => rt.finish(tid, None),
        Err(payload) if payload.downcast_ref::<crate::rt::Abandoned>().is_some() => {
            rt.finish_abandoned(tid);
        }
        Err(payload) => rt.finish(tid, Some(panic_message(&payload))),
    }
    set_ctx(None);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

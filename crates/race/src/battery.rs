//! The race battery: five protocol invariants proved by exhaustive
//! bounded exploration, and five seeded mutants the checker must
//! refute.
//!
//! Each *model* instantiates the **real protocol code** —
//! [`culpeo_exec::protocol`] and [`culpeo_served::protocol`], the exact
//! functions the production `Sweep::map` and daemon run — with the
//! model types from [`crate::model`], shrunk to the smallest
//! configuration that still exhibits every qualitative behavior
//! (contended claims, a full queue, a shutdown race, a poisoned lock).
//! The explorer then enumerates every schedule up to the preemption
//! bound; "holds" means no schedule panicked, deadlocked, or raced.
//!
//! Each *mutant* breaks the protocol the way a plausible refactor
//! would — splitting a `fetch_add` into load + store, reading results
//! before the join barrier, gating the drain loop on the shutdown flag,
//! forgetting the wake after flagging shutdown, `unwrap`ing a poisoned
//! lock — and is **caught** only if the checker produces a
//! counterexample of the expected kind with a concrete interleaving
//! trace. A mutation gate is what separates "the checker found nothing"
//! from "the checker can find things, and found nothing".

use crate::explore::{explore, Counterexample, Options};
use crate::model;
use culpeo_exec::protocol as exec_protocol;
use culpeo_exec::shard as exec_shard;
use culpeo_exec::shim::{AtomicBoolShim, AtomicU64Shim, AtomicUsizeShim, CondvarShim, MutexShim};
use culpeo_served::protocol as served_protocol;
use culpeo_served::protocol::Enqueue;
use culpeo_store::commit as store_commit;
use culpeo_store::commit::CommitState;
use serde::Serialize;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Battery-wide knobs (CLI-exposed).
#[derive(Clone, Copy, Debug)]
pub struct BatteryConfig {
    /// Preemption bound for every exploration.
    pub preemptions: u32,
    /// Exploration-order seed (verdicts must not depend on it).
    pub seed: u64,
    /// Per-exploration execution cap.
    pub max_interleavings: u64,
}

impl Default for BatteryConfig {
    fn default() -> Self {
        Self {
            // One more than the explorer's default: the battery is a
            // proof artifact, so it buys extra schedule coverage
            // (~19k interleavings, still single-digit seconds).
            preemptions: 3,
            seed: 0xC01D_CAFE,
            max_interleavings: 50_000,
        }
    }
}

/// A counterexample, JSON-shaped.
#[derive(Debug, Clone, Serialize)]
pub struct CounterexampleReport {
    /// `panic`, `deadlock`, `race`, or `step-limit`.
    pub kind: String,
    /// One-line description (races carry both tagged access sites).
    pub message: String,
    /// The failing interleaving, one line per granted operation.
    pub trace: Vec<String>,
}

impl CounterexampleReport {
    fn from(c: Counterexample) -> Self {
        Self {
            kind: c.kind,
            message: c.message,
            trace: c.trace,
        }
    }
}

/// One protocol invariant's exploration verdict.
#[derive(Debug, Clone, Serialize)]
pub struct ModelReport {
    /// Model name (stable identifier, used by scripts).
    pub name: String,
    /// The invariant in words.
    pub invariant: String,
    /// Model threads, main included.
    pub threads: usize,
    /// Completed executions (distinct interleavings).
    pub interleavings: u64,
    /// Executions cut short by sleep-set / preemption-bound pruning.
    pub pruned: u64,
    /// The search exhausted its bounded schedule space.
    pub complete: bool,
    /// The execution cap stopped the search early.
    pub capped: bool,
    /// No explored schedule violated the invariant.
    pub holds: bool,
    /// The violating schedule, if one was found.
    pub counterexample: Option<CounterexampleReport>,
}

/// One mutant's refutation verdict.
#[derive(Debug, Clone, Serialize)]
pub struct MutantReport {
    /// Mutant name (stable identifier).
    pub name: String,
    /// What the mutant breaks, in words.
    pub breaks: String,
    /// The failure kind the checker is required to produce.
    pub expected: String,
    /// The failure kind it produced (empty if none).
    pub observed: String,
    /// Executions explored before the counterexample (or until bounds).
    pub interleavings: u64,
    /// The checker refuted the mutant with the expected failure kind.
    pub caught: bool,
    /// The refuting interleaving.
    pub trace: Vec<String>,
}

/// The whole battery's verdict: what `results/race_battery.json` holds
/// and what the `culpeo race` exit code reports.
#[derive(Debug, Clone, Serialize)]
pub struct BatteryReport {
    /// Versioned envelope, like every results/ artifact.
    pub schema_version: u32,
    /// Exploration-order seed the battery ran under.
    pub seed: u64,
    /// Preemption bound the battery ran under.
    pub preemptions: u32,
    /// Sum of interleavings across all models and mutants.
    pub total_interleavings: u64,
    /// Every invariant, in roster order.
    pub models: Vec<ModelReport>,
    /// Every mutant, in roster order.
    pub mutants: Vec<MutantReport>,
    /// Every invariant holds over its explored space.
    pub all_proved: bool,
    /// Every mutant was refuted with the expected failure kind.
    pub all_refuted: bool,
}

impl BatteryReport {
    /// The `culpeo race` exit-code contract: all invariants hold AND
    /// all mutants are caught.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.all_proved && self.all_refuted
    }
}

// ---------------------------------------------------------------------
// Invariant models — the real protocol functions under model types.
// ---------------------------------------------------------------------

/// Sweep claim protocol: two workers racing one cursor must claim every
/// cell exactly once between them.
fn exec_claim_unique() {
    const CELLS: usize = 4;
    let cursor = Arc::new(<model::AtomicUsize as AtomicUsizeShim>::new(0));
    let mut handles = Vec::new();
    for w in 0..2 {
        let cursor = Arc::clone(&cursor);
        handles.push(model::spawn(&format!("worker-{w}"), move || {
            let mut claimed = Vec::new();
            while let Some(idx) = exec_protocol::claim_next(&*cursor, CELLS) {
                claimed.push(idx);
            }
            claimed
        }));
    }
    let mut all: Vec<usize> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("workers do not panic"))
        .collect();
    all.sort_unstable();
    assert_eq!(
        all,
        (0..CELLS).collect::<Vec<_>>(),
        "claim protocol must hand out each cell exactly once"
    );
}

/// Sweep scatter protocol: whatever order workers claim and finish in,
/// scattered results land in input order.
fn exec_scatter_order() {
    const CELLS: usize = 3;
    let cursor = Arc::new(<model::AtomicUsize as AtomicUsizeShim>::new(0));
    let mut handles = Vec::new();
    for w in 0..2 {
        let cursor = Arc::clone(&cursor);
        handles.push(model::spawn(&format!("worker-{w}"), move || {
            let mut local = Vec::new();
            while let Some(idx) = exec_protocol::claim_next(&*cursor, CELLS) {
                local.push((idx, idx * 10));
            }
            local
        }));
    }
    let mut slots: Vec<Option<usize>> = vec![None; CELLS];
    for h in handles {
        exec_protocol::scatter(&mut slots, h.join().expect("workers do not panic"));
    }
    let out: Vec<usize> = slots
        .into_iter()
        .map(|s| s.expect("every cell produced a result"))
        .collect();
    assert_eq!(out, vec![0, 10, 20], "results must land in input order");
}

/// Daemon drain: every connection the acceptor queued is processed by
/// the worker, in order, no matter how a concurrent shutdown lands.
fn served_drain_no_loss() {
    const CONNS: usize = 3;
    let (tx, rx) = model::sync_channel::<usize>(2);
    let shutting = Arc::new(<model::AtomicBool as AtomicBoolShim>::new(false));
    let rx = Arc::new(<model::Mutex<model::Receiver<usize>> as MutexShim<_>>::new(
        rx,
    ));

    let acceptor = {
        let shutting = Arc::clone(&shutting);
        model::spawn("acceptor", move || {
            let mut queued = Vec::new();
            for conn in 0..CONNS {
                match served_protocol::offer(&*shutting, &tx, conn) {
                    Enqueue::Queued => queued.push(conn),
                    Enqueue::Busy(_) | Enqueue::Draining(_) | Enqueue::Disconnected(_) => {}
                }
            }
            drop(tx); // hangup: the drain trigger
            queued
        })
    };
    let worker = {
        let rx = Arc::clone(&rx);
        model::spawn("worker", move || {
            let mut processed = Vec::new();
            while let Some(job) = served_protocol::next_job(&*rx) {
                processed.push(job);
            }
            processed
        })
    };
    let requester = {
        let shutting = Arc::clone(&shutting);
        model::spawn("shutdown", move || {
            served_protocol::begin_shutdown(&*shutting)
        })
    };

    let queued = acceptor.join().expect("acceptor does not panic");
    let processed = worker.join().expect("worker does not panic");
    requester.join().expect("requester does not panic");
    assert_eq!(
        processed, queued,
        "drain must process every queued connection, in order"
    );
}

/// Shutdown handshake: of two concurrent shutdown requesters exactly
/// one wins the flag and owes the parked acceptor its wake; the
/// acceptor always terminates.
fn served_shutdown_handshake() {
    shutdown_handshake(true);
}

fn shutdown_handshake(winner_wakes: bool) {
    let (tx, rx) = model::sync_channel::<u8>(1);
    let shutting = Arc::new(<model::AtomicBool as AtomicBoolShim>::new(false));

    let acceptor = {
        let shutting = Arc::clone(&shutting);
        model::spawn("acceptor", move || loop {
            // A parked accept(): only a connection (the wake) unblocks
            // it — the main thread keeps a sender alive throughout.
            let _wake = culpeo_exec::shim::ReceiverShim::recv(&rx);
            if shutting.load(Ordering::SeqCst) {
                break;
            }
        })
    };

    let mut requesters = Vec::new();
    for i in 0..2 {
        let shutting = Arc::clone(&shutting);
        let tx = tx.clone();
        requesters.push(model::spawn(&format!("shutdown-{i}"), move || {
            if served_protocol::begin_shutdown(&*shutting) {
                if winner_wakes {
                    culpeo_exec::shim::SenderShim::send(&tx, 0).expect("acceptor is alive");
                }
                true
            } else {
                false
            }
        }));
    }

    let winners = requesters
        .into_iter()
        .map(|r| r.join().expect("requesters do not panic"))
        .filter(|&won| won)
        .count();
    acceptor.join().expect("acceptor does not panic");
    drop(tx);
    assert_eq!(winners, 1, "exactly one requester wins the wake obligation");
}

/// Cache-lock poisoning: a handler panicking mid-update poisons the
/// lock; every later locker recovers through `recovering_lock` and the
/// cache ends empty (the recovery invariant), never panicking.
fn served_poison_recovery() {
    poison_recovery(true);
}

fn poison_recovery(recover: bool) {
    let cache = Arc::new(<model::Mutex<Vec<u32>> as MutexShim<Vec<u32>>>::new(vec![
        1,
    ]));

    let crasher = {
        let cache = Arc::clone(&cache);
        model::spawn("crasher", move || {
            // A handler that dies mid-cache-update: the half-applied
            // push stays behind under a poisoned lock.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut guard = match cache.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                guard.push(2);
                panic!("handler died mid-update");
            }));
        })
    };
    let survivor = {
        let cache = Arc::clone(&cache);
        model::spawn("survivor", move || {
            if recover {
                let guard = served_protocol::recovering_lock(&*cache, Vec::clear);
                guard.len()
            } else {
                // The mutant: trust the lock blindly.
                let guard = cache.lock().expect("lock is never poisoned (wrong!)");
                guard.len()
            }
        })
    };

    crasher.join().expect("crasher contains its panic");
    let _ = survivor
        .join()
        .expect("survivor must outlive a poisoned lock");
    // Whoever locked after the crash recovered; by now the cache is
    // invariant-safe (empty) and unpoisoned on every schedule.
    let guard = served_protocol::recovering_lock(&*cache, Vec::clear);
    assert!(guard.is_empty(), "recovery must restore the safe state");
    drop(guard);
    assert!(!cache.is_poisoned(), "recovery must clear the poison");
}

/// Reactor completion dispatch: workers hand finished responses through
/// `publish_completion` (push under the lock, then a coalescing wake
/// flag, then at most one eventfd wake); the parked reactor drains with
/// `drain_completions` (re-arm the flag *first*, then take the queue).
/// No completion is ever stranded and the reactor always terminates, no
/// matter how wakes coalesce.
fn served_completion_wake() {
    completion_wake(true);
}

fn completion_wake(rearm_before_take: bool) {
    const PUBLISHERS: usize = 2;
    let completions = Arc::new(<model::Mutex<Vec<usize>> as MutexShim<Vec<usize>>>::new(
        Vec::new(),
    ));
    let wake = Arc::new(<model::AtomicBool as AtomicBoolShim>::new(false));
    // The channel stands in for the eventfd: recv() is the reactor
    // parked in epoll_wait, a send is the wake. Main holds a sender so
    // an un-woken reactor parks forever instead of seeing a hangup —
    // exactly like the real poller, which has no timeout in the model.
    let (tx, rx) = model::sync_channel::<u8>(PUBLISHERS);

    let mut publishers = Vec::new();
    for p in 0..PUBLISHERS {
        let completions = Arc::clone(&completions);
        let wake = Arc::clone(&wake);
        let tx = tx.clone();
        publishers.push(model::spawn(&format!("worker-{p}"), move || {
            if served_protocol::publish_completion(&*completions, &*wake, p) {
                // Best-effort, like the eventfd write: the reactor may
                // already have drained everything and gone away.
                let _ = culpeo_exec::shim::SenderShim::send(&tx, 0);
            }
        }));
    }

    let reactor = {
        let completions = Arc::clone(&completions);
        let wake = Arc::clone(&wake);
        model::spawn("reactor", move || {
            let mut drained = Vec::new();
            loop {
                let got = if rearm_before_take {
                    served_protocol::drain_completions(&*completions, &*wake)
                } else {
                    // The mutant: take the queue first, re-arm after. A
                    // publish landing in between sees the flag still set,
                    // owes no wake, and its completion strands forever.
                    let taken = completions
                        .lock()
                        .map(|mut q| std::mem::take(&mut *q))
                        .unwrap_or_default();
                    wake.store(false, Ordering::SeqCst);
                    taken
                };
                drained.extend(got);
                if drained.len() == PUBLISHERS {
                    break;
                }
                let _ = culpeo_exec::shim::ReceiverShim::recv(&rx);
            }
            drained
        })
    };

    for p in publishers {
        p.join().expect("workers do not panic");
    }
    let mut drained = reactor.join().expect("reactor does not panic");
    drained.sort_unstable();
    assert_eq!(
        drained,
        (0..PUBLISHERS).collect::<Vec<_>>(),
        "every published completion must be drained exactly once"
    );
    drop(tx);
}

/// Shard hand-off: two schedulers racing one generation-tagged claim
/// word must advance every shard exactly once, produce exactly one last
/// finisher (who owes the round publication), and leave stale-
/// generation claims impossible once the next round opens.
fn exec_shard_handoff() {
    shard_handoff(true);
}

fn shard_handoff(atomic_finish: bool) {
    const SHARDS: usize = 3;
    let state = Arc::new(<model::AtomicUsize as AtomicUsizeShim>::new(
        exec_shard::round_word(0),
    ));
    let done = Arc::new(<model::AtomicUsize as AtomicUsizeShim>::new(0));

    let mut schedulers = Vec::new();
    for w in 0..2 {
        let state = Arc::clone(&state);
        let done = Arc::clone(&done);
        schedulers.push(model::spawn(&format!("scheduler-{w}"), move || {
            let mut claimed = Vec::new();
            let mut published = 0usize;
            while let Some(shard) = exec_shard::claim_shard(&*state, 0, SHARDS) {
                claimed.push(shard);
                let last = if atomic_finish {
                    exec_shard::finish_shard(&*done, SHARDS)
                } else {
                    // The mutant: the finish counter's RMW split into a
                    // load and a store — finishes can be lost (no
                    // publisher: the fleet wedges at the round barrier)
                    // or double-counted (two publishers).
                    let d = done.load(Ordering::SeqCst);
                    done.store(d + 1, Ordering::SeqCst);
                    d + 1 == SHARDS
                };
                if last {
                    exec_shard::open_round(&*state, 1);
                    published += 1;
                }
            }
            (claimed, published)
        }));
    }

    let mut all = Vec::new();
    let mut publishers = 0;
    for s in schedulers {
        let (claimed, published) = s.join().expect("schedulers do not panic");
        all.extend(claimed);
        publishers += published;
    }
    all.sort_unstable();
    assert_eq!(
        all,
        (0..SHARDS).collect::<Vec<_>>(),
        "each shard must be advanced exactly once per round"
    );
    assert_eq!(
        publishers, 1,
        "exactly one scheduler owes the round publication"
    );
    assert_eq!(
        exec_shard::word_gen(state.load(Ordering::SeqCst)),
        1,
        "the publication must open the next generation"
    );
    assert!(
        exec_shard::claim_shard(&*state, 0, SHARDS).is_none(),
        "stale-generation claims must fail once the round turned"
    );
}

/// Store group commit: two writers racing the real
/// [`culpeo_store::commit::commit_durable`] — whichever becomes the
/// fsync leader and however wakes coalesce, no writer's append call may
/// return (ack) before an fsync covering its record has completed. The
/// `synced` word is the disk: only the sync closure advances it, so
/// `synced >= seq` on return *is* the durability invariant.
fn store_group_commit() {
    group_commit(true);
}

fn group_commit(ack_after_sync: bool) {
    const WRITERS: usize = 2;
    let state = Arc::new(<model::Mutex<CommitState> as MutexShim<CommitState>>::new(
        CommitState::default(),
    ));
    let cv = Arc::new(<model::Condvar as CondvarShim<
        CommitState,
        model::Mutex<CommitState>,
    >>::new());
    let durable = Arc::new(<model::AtomicU64 as AtomicU64Shim>::new(0));
    let appended = Arc::new(<model::AtomicU64 as AtomicU64Shim>::new(0));
    // The model's disk: the high-water mark an actually-completed fsync
    // covers. Only the sync closure may advance it.
    let synced = Arc::new(<model::AtomicU64 as AtomicU64Shim>::new(0));

    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let (state, cv, durable, appended, synced) = (
            Arc::clone(&state),
            Arc::clone(&cv),
            Arc::clone(&durable),
            Arc::clone(&appended),
            Arc::clone(&synced),
        );
        writers.push(model::spawn(&format!("writer-{w}"), move || {
            let seq = appended.fetch_add(1, Ordering::SeqCst) + 1;
            if ack_after_sync {
                store_commit::commit_durable(&*state, &*cv, &*durable, seq, || {
                    let upto = appended.load(Ordering::SeqCst);
                    synced.store(upto, Ordering::SeqCst); // the fsync lands
                    Ok::<u64, ()>(upto)
                })
                .expect("sync cannot fail in this model");
            } else {
                // The mutant: the leader publishes `durable` (the ack
                // gate) *before* running the fsync — the tempting
                // "optimistic ack" refactor. A writer observing the
                // early publication returns with its record still in
                // the page cache.
                loop {
                    if durable.load(Ordering::SeqCst) >= seq {
                        break;
                    }
                    let mut g = match state.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    if durable.load(Ordering::SeqCst) >= seq {
                        break;
                    }
                    if g.leader_active {
                        drop(cv.wait(g, &*state));
                        continue;
                    }
                    g.leader_active = true;
                    drop(g);
                    let upto = appended.load(Ordering::SeqCst);
                    durable.store(upto, Ordering::SeqCst); // ack first…
                    synced.store(upto, Ordering::SeqCst); // …fsync later
                    let mut g = match state.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    g.leader_active = false;
                    <model::Condvar as CondvarShim<CommitState, model::Mutex<CommitState>>>::notify_all(&cv);
                    drop(g);
                }
            }
            // The ack's meaning: the record is on stable storage.
            assert!(
                synced.load(Ordering::SeqCst) >= seq,
                "acked before the covering fsync completed"
            );
        }));
    }
    for w in writers {
        w.join().expect("writers do not panic");
    }
    assert_eq!(
        durable.load(Ordering::SeqCst),
        WRITERS as u64,
        "every append ends durable"
    );
}

// ---------------------------------------------------------------------
// Mutants — protocol breakages the checker must refute.
// ---------------------------------------------------------------------

/// The group-commit leader publishing the durable mark before its fsync
/// runs: a concurrent writer acks a record the disk has not seen.
fn mutant_commit_ack_first() {
    group_commit(false);
}

/// The completion drain with take-then-re-arm order: a publish landing
/// between the take and the re-arm owes no wake, strands its
/// completion, and parks the reactor forever.
fn mutant_drain_take_first() {
    completion_wake(false);
}

/// The shard finish counter's RMW split into load + store: the round's
/// publication obligation can vanish (fleet wedge) or double.
fn mutant_finish_split() {
    shard_handoff(false);
}

/// The claim RMW split into a load and a store: two workers can both
/// read the same cursor value and claim the same cell.
fn mutant_claim_split() {
    const CELLS: usize = 2;
    fn broken_claim(cursor: &model::AtomicUsize, len: usize) -> Option<usize> {
        let idx = cursor.load(Ordering::Relaxed);
        cursor.store(idx + 1, Ordering::Relaxed);
        (idx < len).then_some(idx)
    }
    let cursor = Arc::new(<model::AtomicUsize as AtomicUsizeShim>::new(0));
    let mut handles = Vec::new();
    for w in 0..2 {
        let cursor = Arc::clone(&cursor);
        handles.push(model::spawn(&format!("worker-{w}"), move || {
            let mut claimed = Vec::new();
            while let Some(idx) = broken_claim(&cursor, CELLS) {
                claimed.push(idx);
            }
            claimed
        }));
    }
    let mut all: Vec<usize> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("workers do not panic"))
        .collect();
    all.sort_unstable();
    assert_eq!(
        all,
        (0..CELLS).collect::<Vec<_>>(),
        "claim protocol must hand out each cell exactly once"
    );
}

/// Results read before the join barrier: the parent's reads are
/// unsynchronized against worker writes — a genuine data race the
/// vector clocks must flag with both access sites.
fn mutant_scatter_unjoined() {
    const CELLS: usize = 2;
    let cursor = Arc::new(<model::AtomicUsize as AtomicUsizeShim>::new(0));
    let slots: Arc<Vec<model::RaceCell<usize>>> = Arc::new(
        (0..CELLS)
            .map(|_| model::RaceCell::new(usize::MAX))
            .collect(),
    );
    let mut handles = Vec::new();
    for w in 0..2 {
        let cursor = Arc::clone(&cursor);
        let slots = Arc::clone(&slots);
        handles.push(model::spawn(&format!("worker-{w}"), move || {
            while let Some(idx) = exec_protocol::claim_next(&*cursor, CELLS) {
                slots[idx].set(idx * 10);
            }
        }));
    }
    // The mutation: harvest results without joining first.
    let early: Vec<usize> = (0..CELLS).map(|i| slots[i].get()).collect();
    drop(early);
    for h in handles {
        h.join().expect("workers do not panic");
    }
}

/// The drain loop gated on the shutdown flag: queued connections are
/// abandoned the moment the flag flips.
fn mutant_drain_flag_gated() {
    const CONNS: usize = 3;
    let (tx, rx) = model::sync_channel::<usize>(2);
    let shutting = Arc::new(<model::AtomicBool as AtomicBoolShim>::new(false));
    let rx = Arc::new(<model::Mutex<model::Receiver<usize>> as MutexShim<_>>::new(
        rx,
    ));

    let acceptor = {
        let shutting = Arc::clone(&shutting);
        model::spawn("acceptor", move || {
            let mut queued = Vec::new();
            for conn in 0..CONNS {
                match served_protocol::offer(&*shutting, &tx, conn) {
                    Enqueue::Queued => queued.push(conn),
                    Enqueue::Busy(_) | Enqueue::Draining(_) | Enqueue::Disconnected(_) => {}
                }
            }
            drop(tx);
            queued
        })
    };
    let worker = {
        let shutting = Arc::clone(&shutting);
        let rx = Arc::clone(&rx);
        model::spawn("worker", move || {
            let mut processed = Vec::new();
            // The mutation: stop draining as soon as shutdown is
            // flagged, instead of draining until hangup.
            while !shutting.load(Ordering::SeqCst) {
                match served_protocol::next_job(&*rx) {
                    Some(job) => processed.push(job),
                    None => break,
                }
            }
            processed
        })
    };
    let requester = {
        let shutting = Arc::clone(&shutting);
        model::spawn("shutdown", move || {
            served_protocol::begin_shutdown(&*shutting)
        })
    };

    let queued = acceptor.join().expect("acceptor does not panic");
    let processed = worker.join().expect("worker does not panic");
    requester.join().expect("requester does not panic");
    assert_eq!(
        processed, queued,
        "drain must process every queued connection, in order"
    );
}

/// Shutdown flagged but the wake forgotten: the acceptor stays parked
/// in accept() forever — a deadlock the explorer must exhibit.
fn mutant_shutdown_no_wake() {
    shutdown_handshake(false);
}

/// A worker `unwrap`ing the cache lock: the first schedule where the
/// crasher poisons it first kills the worker.
fn mutant_poison_unwrap() {
    poison_recovery(false);
}

// ---------------------------------------------------------------------
// The roster and the runner.
// ---------------------------------------------------------------------

struct ModelSpec {
    name: &'static str,
    invariant: &'static str,
    threads: usize,
    run: fn(),
}

struct MutantSpec {
    name: &'static str,
    breaks: &'static str,
    expected: &'static str,
    run: fn(),
}

const MODELS: &[ModelSpec] = &[
    ModelSpec {
        name: "exec-claim-unique",
        invariant: "no cell is claimed twice; none is skipped",
        threads: 3,
        run: exec_claim_unique,
    },
    ModelSpec {
        name: "exec-scatter-order",
        invariant: "scattered results equal input order",
        threads: 3,
        run: exec_scatter_order,
    },
    ModelSpec {
        name: "served-drain-no-loss",
        invariant: "drain processes every queued connection, in order",
        threads: 4,
        run: served_drain_no_loss,
    },
    ModelSpec {
        name: "served-shutdown-handshake",
        invariant: "one wake obligation; the acceptor always terminates",
        threads: 4,
        run: served_shutdown_handshake,
    },
    ModelSpec {
        name: "served-poison-recovery",
        invariant: "a poisoned cache lock is always recovered, never fatal",
        threads: 3,
        run: served_poison_recovery,
    },
    ModelSpec {
        name: "served-completion-wake",
        invariant: "no completion strands; coalesced wakes still drain all",
        threads: 4,
        run: served_completion_wake,
    },
    ModelSpec {
        name: "exec-shard-handoff",
        invariant: "each shard advanced once; one publisher turns the round",
        threads: 3,
        run: exec_shard_handoff,
    },
    ModelSpec {
        name: "store-group-commit",
        invariant: "no append acks before an fsync covering it completes",
        threads: 3,
        run: store_group_commit,
    },
];

const MUTANTS: &[MutantSpec] = &[
    MutantSpec {
        name: "claim-split-rmw",
        breaks: "fetch_add split into load + store",
        expected: "panic",
        run: mutant_claim_split,
    },
    MutantSpec {
        name: "scatter-before-join",
        breaks: "results harvested before the join barrier",
        expected: "race",
        run: mutant_scatter_unjoined,
    },
    MutantSpec {
        name: "drain-flag-gated",
        breaks: "drain loop exits on the shutdown flag, not hangup",
        expected: "panic",
        run: mutant_drain_flag_gated,
    },
    MutantSpec {
        name: "shutdown-no-wake",
        breaks: "shutdown flagged but the acceptor wake forgotten",
        expected: "deadlock",
        run: mutant_shutdown_no_wake,
    },
    MutantSpec {
        name: "poison-unwrap",
        breaks: "worker unwraps the cache lock instead of recovering",
        expected: "panic",
        run: mutant_poison_unwrap,
    },
    MutantSpec {
        name: "drain-take-first",
        breaks: "completion drain takes the queue before re-arming the wake flag",
        expected: "deadlock",
        run: mutant_drain_take_first,
    },
    MutantSpec {
        name: "finish-split-rmw",
        breaks: "shard finish counter split into load + store",
        expected: "panic",
        run: mutant_finish_split,
    },
    MutantSpec {
        name: "commit-ack-first",
        breaks: "group-commit leader publishes durability before the fsync",
        expected: "panic",
        run: mutant_commit_ack_first,
    },
];

fn options(config: &BatteryConfig) -> Options {
    Options {
        preemptions: config.preemptions,
        max_interleavings: config.max_interleavings,
        max_steps: 5_000,
        seed: config.seed,
    }
}

/// Runs one named model (exposed for the harness's per-model timing).
///
/// # Panics
///
/// Panics if `name` is not in the roster.
pub fn run_model(name: &str, config: &BatteryConfig) -> ModelReport {
    let spec = MODELS
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("unknown model {name:?}"));
    let ex = explore(&options(config), spec.run);
    ModelReport {
        name: spec.name.to_string(),
        invariant: spec.invariant.to_string(),
        threads: spec.threads,
        interleavings: ex.interleavings,
        pruned: ex.pruned,
        complete: ex.complete,
        capped: ex.capped,
        holds: ex.holds(),
        counterexample: ex.failure.map(CounterexampleReport::from),
    }
}

/// Runs one named mutant (exposed for the harness's per-mutant timing).
///
/// # Panics
///
/// Panics if `name` is not in the roster.
pub fn run_mutant(name: &str, config: &BatteryConfig) -> MutantReport {
    let spec = MUTANTS
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("unknown mutant {name:?}"));
    let ex = explore(&options(config), spec.run);
    let observed = ex
        .failure
        .as_ref()
        .map(|f| f.kind.clone())
        .unwrap_or_default();
    let caught = observed == spec.expected;
    MutantReport {
        name: spec.name.to_string(),
        breaks: spec.breaks.to_string(),
        expected: spec.expected.to_string(),
        observed,
        interleavings: ex.interleavings,
        caught,
        trace: ex.failure.map(|f| f.trace).unwrap_or_default(),
    }
}

/// Every model name, roster order (for drivers that time each one).
#[must_use]
pub fn model_names() -> Vec<&'static str> {
    MODELS.iter().map(|m| m.name).collect()
}

/// Every mutant name, roster order.
#[must_use]
pub fn mutant_names() -> Vec<&'static str> {
    MUTANTS.iter().map(|m| m.name).collect()
}

/// Runs the full battery: every invariant, every mutant.
#[must_use]
pub fn run(config: &BatteryConfig) -> BatteryReport {
    let models: Vec<ModelReport> = MODELS.iter().map(|m| run_model(m.name, config)).collect();
    let mutants: Vec<MutantReport> = MUTANTS.iter().map(|m| run_mutant(m.name, config)).collect();
    let total_interleavings = models.iter().map(|m| m.interleavings).sum::<u64>()
        + mutants.iter().map(|m| m.interleavings).sum::<u64>();
    let all_proved = models.iter().all(|m| m.holds);
    let all_refuted = mutants.iter().all(|m| m.caught);
    BatteryReport {
        schema_version: 2,
        seed: config.seed,
        preemptions: config.preemptions,
        total_interleavings,
        models,
        mutants,
        all_proved,
        all_refuted,
    }
}

/// Renders the battery verdict as the human table `culpeo race` prints.
#[must_use]
pub fn render_table(report: &BatteryReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "race battery: preemption bound {}, seed {:#x}\n\n",
        report.preemptions, report.seed
    ));
    out.push_str(&format!(
        "{:<28} {:>7} {:>13} {:>8} {:>9}  verdict\n",
        "model", "threads", "interleavings", "pruned", "complete"
    ));
    for m in &report.models {
        out.push_str(&format!(
            "{:<28} {:>7} {:>13} {:>8} {:>9}  {}\n",
            m.name,
            m.threads,
            m.interleavings,
            m.pruned,
            if m.complete {
                "yes"
            } else if m.capped {
                "capped"
            } else {
                "no"
            },
            if m.holds { "HOLDS" } else { "VIOLATED" }
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<28} {:>9} {:>9} {:>13}  verdict\n",
        "mutant", "expected", "observed", "interleavings"
    ));
    for m in &report.mutants {
        out.push_str(&format!(
            "{:<28} {:>9} {:>9} {:>13}  {}\n",
            m.name,
            m.expected,
            if m.observed.is_empty() {
                "-"
            } else {
                &m.observed
            },
            m.interleavings,
            if m.caught { "CAUGHT" } else { "MISSED" }
        ));
    }
    for m in &report.models {
        if let Some(cx) = &m.counterexample {
            out.push_str(&format!(
                "\ncounterexample for {} ({}):\n  {}\n",
                m.name, cx.kind, cx.message
            ));
            for line in &cx.trace {
                out.push_str(&format!("  {line}\n"));
            }
        }
    }
    out.push_str(&format!(
        "\n{} interleavings explored; invariants {}; mutation gate {}\n",
        report.total_interleavings,
        if report.all_proved {
            "all hold"
        } else {
            "VIOLATED"
        },
        if report.all_refuted {
            "all refuted"
        } else {
            "INCOMPLETE"
        },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> BatteryConfig {
        BatteryConfig {
            preemptions: 2,
            seed,
            max_interleavings: 20_000,
        }
    }

    #[test]
    fn claim_unique_holds() {
        let r = run_model("exec-claim-unique", &quick(7));
        assert!(r.holds, "{:?}", r.counterexample);
        assert!(r.interleavings > 10, "exploration actually branched");
    }

    #[test]
    fn poison_recovery_holds() {
        let r = run_model("served-poison-recovery", &quick(7));
        assert!(r.holds, "{:?}", r.counterexample);
    }

    #[test]
    fn split_rmw_is_refuted_with_a_trace() {
        let r = run_mutant("claim-split-rmw", &quick(7));
        assert!(r.caught, "expected {} got {}", r.expected, r.observed);
        assert!(!r.trace.is_empty(), "a refutation carries its schedule");
    }

    #[test]
    fn unjoined_scatter_is_a_race_with_both_sites() {
        let r = run_mutant("scatter-before-join", &quick(7));
        assert!(r.caught, "expected {} got {}", r.expected, r.observed);
    }

    #[test]
    fn missing_wake_deadlocks() {
        let r = run_mutant("shutdown-no-wake", &quick(7));
        assert!(r.caught, "expected {} got {}", r.expected, r.observed);
    }

    #[test]
    fn completion_wake_holds() {
        let r = run_model("served-completion-wake", &quick(7));
        assert!(r.holds, "{:?}", r.counterexample);
        assert!(r.interleavings > 10, "exploration actually branched");
    }

    #[test]
    fn shard_handoff_holds() {
        let r = run_model("exec-shard-handoff", &quick(7));
        assert!(r.holds, "{:?}", r.counterexample);
        assert!(r.interleavings > 10, "exploration actually branched");
    }

    #[test]
    fn take_first_drain_deadlocks() {
        let r = run_mutant("drain-take-first", &quick(7));
        assert!(r.caught, "expected {} got {}", r.expected, r.observed);
        assert!(!r.trace.is_empty(), "a refutation carries its schedule");
    }

    #[test]
    fn split_finish_counter_is_refuted() {
        let r = run_mutant("finish-split-rmw", &quick(7));
        assert!(r.caught, "expected {} got {}", r.expected, r.observed);
    }

    #[test]
    fn group_commit_holds() {
        let r = run_model("store-group-commit", &quick(7));
        assert!(r.holds, "{:?}", r.counterexample);
        assert!(r.interleavings > 10, "exploration actually branched");
    }

    #[test]
    fn ack_before_fsync_is_refuted() {
        let r = run_mutant("commit-ack-first", &quick(7));
        assert!(r.caught, "expected {} got {}", r.expected, r.observed);
        assert!(!r.trace.is_empty(), "a refutation carries its schedule");
    }
}

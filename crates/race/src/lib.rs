//! `culpeo-race`: a deterministic interleaving model checker and
//! vector-clock race detector for the workspace's concurrency
//! protocols.
//!
//! The sweep executor (`culpeo-exec`) and the serving daemon
//! (`culpeo-served`) stake correctness guarantees on a handful of small
//! concurrency protocols: the atomic-cursor claim, the input-order
//! scatter, the bounded accept queue, the drain-on-hangup, the shutdown
//! handshake, the poison-recovering cache lock. Ordinary tests sample a
//! few lucky schedules of those protocols; this crate *enumerates*
//! schedules, loom-style, with no external dependencies:
//!
//! * [`model`] — drop-in `Atomic*`/`Mutex`/`Condvar`/`sync_channel`/
//!   `spawn` types implementing the [`culpeo_exec::shim`] traits. The
//!   production instantiation of those traits *is* the plain
//!   `std::sync` types (zero cost by construction); the model
//!   instantiation routes every operation through a cooperative
//!   scheduler.
//! * [`explore`] — bounded-depth DFS over thread interleavings with a
//!   preemption bound (CHESS-style) and sleep-set pruning
//!   (Godefroid-style), re-running the closure once per schedule.
//!   Vector clocks track the happens-before relation exactly through
//!   mutexes, channels, spawn/join and acquire/release atomics;
//!   [`model::RaceCell`] accesses that conflict without ordering are
//!   reported as races with both `#[track_caller]` access sites.
//! * [`battery`] — five protocol invariants proved over the real
//!   protocol source ([`culpeo_exec::protocol`],
//!   [`culpeo_served::protocol`]), plus five mutants (split RMW,
//!   missing join barrier, flag-gated drain, missing wake, poison
//!   unwrap) the checker must refute with a concrete interleaving
//!   trace. `culpeo race` runs it; `scripts/race.sh` gates on it.
//!
//! Determinism contract: identical `(seed, preemptions)` yield a
//! byte-identical battery report; different seeds may walk (and prune)
//! the schedule tree in a different order but must reach identical
//! verdicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
mod explore;
pub mod model;
mod rt;

pub use explore::{explore, Counterexample, Exploration, Options};

//! The cooperative execution runtime: one *controlled execution* of a
//! closure whose threads synchronize only through the model types in
//! [`crate::model`].
//!
//! The mechanism is token passing over real OS threads. Every model
//! operation (atomic access, lock, channel send, spawn, join, …) is a
//! *yield point*: the thread announces the operation it wants to
//! perform and parks; the explorer — running on the driving thread —
//! waits until every thread is parked (quiescence), picks exactly one
//! announced operation whose precondition holds (a free mutex, a
//! non-full channel, …), applies its effect to the shared logical
//! state, and wakes that one thread. Only one model thread is ever
//! runnable, so an execution is fully determined by the sequence of
//! choices — which is what lets [`crate::explore`] enumerate schedules.
//!
//! Alongside the logical state the runtime maintains **vector clocks**:
//! one per thread, one per synchronization object, one per in-flight
//! channel message. Lock/unlock, send/recv, spawn/join and
//! acquire/release atomics transfer clocks exactly as the
//! happens-before relation dictates (`Relaxed` transfers nothing).
//! [`crate::model::RaceCell`] — plain shared data with *no* atomicity
//! of its own — checks every access against the previous conflicting
//! access ([`FastTrack`]-style epochs) and reports an unsynchronized
//! pair as a race, tagged with the `#[track_caller]` source location of
//! both sides.
//!
//! One deliberate approximation: an acquire load joins the object's
//! *accumulated* release clock rather than the clock of the particular
//! store it read, which over-synchronizes (can under-report races
//! routed through atomics). Mutex, channel and join edges are exact.
//!
//! [`FastTrack`]: https://dl.acm.org/doi/10.1145/1543135.1542490

use std::collections::VecDeque;
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

/// A model thread id: index into the runtime's thread table. Thread 0
/// is always the execution's main thread.
pub(crate) type Tid = usize;
/// A model object id: index into the runtime's object table.
pub(crate) type ObjId = usize;

/// A vector clock over model threads. Component `t` counts the yield
/// points thread `t` has executed; `a ≤ b` pointwise iff the state `a`
/// summarizes happened-before the state `b` summarizes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) fn get(&self, tid: Tid) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub(crate) fn tick(&mut self, tid: Tid) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// One recorded access to a [`crate::model::RaceCell`]: who, at what
/// point of their clock, from which protocol source line.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Access {
    pub(crate) tid: Tid,
    pub(crate) at: u32,
    pub(crate) write: bool,
    pub(crate) site: &'static Location<'static>,
}

/// An announced operation: everything the explorer needs to decide
/// eligibility, judge independence, apply the effect, and render a
/// trace line.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// A thread's very first yield, before any user code.
    Start,
    AtomicLoad {
        obj: ObjId,
        order: Ordering,
    },
    AtomicStore {
        obj: ObjId,
        value: u64,
        order: Ordering,
    },
    AtomicFetchAdd {
        obj: ObjId,
        delta: u64,
        order: Ordering,
    },
    AtomicSwap {
        obj: ObjId,
        value: u64,
        order: Ordering,
    },
    AtomicCas {
        obj: ObjId,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    },
    MutexLock {
        obj: ObjId,
    },
    MutexUnlock {
        obj: ObjId,
        poison: bool,
    },
    /// Condvar wait, phase 1: atomically release the mutex and join the
    /// waiter queue. Always eligible.
    CvWait {
        cv: ObjId,
        mutex: ObjId,
    },
    /// Condvar wait, phase 2: eligible once notified *and* the mutex is
    /// free; re-acquires.
    CvReacquire {
        cv: ObjId,
        mutex: ObjId,
    },
    CvNotify {
        cv: ObjId,
        all: bool,
    },
    ChanSend {
        obj: ObjId,
    },
    ChanTrySend {
        obj: ObjId,
    },
    ChanRecv {
        obj: ObjId,
    },
    SenderClone {
        obj: ObjId,
    },
    SenderDrop {
        obj: ObjId,
    },
    ReceiverDrop {
        obj: ObjId,
    },
    CellRead {
        obj: ObjId,
    },
    CellWrite {
        obj: ObjId,
    },
    Spawn {
        name: String,
    },
    Join {
        target: Tid,
    },
}

/// What an operation's effect hands back to the announcing thread.
#[derive(Clone, Debug)]
pub(crate) enum Outcome {
    Unit,
    Value(u64),
    Cas(Result<u64, u64>),
    Lock {
        poisoned: bool,
    },
    /// `Ok`, or the receiver is gone.
    Send {
        disconnected: bool,
    },
    TrySend(TrySendVerdict),
    /// `ok` → the typed payload is waiting in the channel's queue.
    Recv {
        ok: bool,
    },
    Join {
        panicked: bool,
    },
    Spawned(Tid),
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum TrySendVerdict {
    Ok,
    Full,
    Disconnected,
}

/// Why an execution stopped early.
#[derive(Clone, Debug)]
pub(crate) enum FailureKind {
    /// A panic escaped a model thread's user code.
    Panic { tid: Tid, message: String },
    /// Threads remain but none has an eligible operation.
    Deadlock { blocked: Vec<Tid> },
    /// Two unsynchronized conflicting accesses to one `RaceCell`.
    Race {
        obj: ObjId,
        earlier: Access,
        later: Access,
    },
    /// The execution exceeded the step bound (livelock guard).
    StepLimit { limit: usize },
}

/// What kind of synchronization object an [`ObjId`] names (labels).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ObjKind {
    AtomicUsize,
    AtomicBool,
    AtomicU64,
    Mutex,
    Condvar,
    Channel,
    Cell,
}

impl ObjKind {
    fn label(self) -> &'static str {
        match self {
            ObjKind::AtomicUsize => "atomic-usize",
            ObjKind::AtomicBool => "atomic-bool",
            ObjKind::AtomicU64 => "atomic-u64",
            ObjKind::Mutex => "mutex",
            ObjKind::Condvar => "condvar",
            ObjKind::Channel => "channel",
            ObjKind::Cell => "cell",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Registered but has not reached its first yield yet.
    Spawning,
    /// Parked with an announced operation, awaiting a grant.
    Ready,
    /// Holds the token: between a grant and its next yield.
    Running,
    Finished,
    Panicked,
}

struct ThreadState {
    name: String,
    status: Status,
    clock: VClock,
    pending: Option<(Op, &'static Location<'static>)>,
    outcome: Option<Outcome>,
    /// Set by a condvar notify; consumed by `CvReacquire` eligibility.
    notified: bool,
}

#[derive(Default)]
struct ObjectState {
    kind: Option<ObjKind>,
    clock: VClock,
    value: u64,
    owner: Option<Tid>,
    poisoned: bool,
    cv_queue: VecDeque<Tid>,
    cap: usize,
    len: usize,
    senders: usize,
    receiver_alive: bool,
    msg_clocks: VecDeque<VClock>,
    last_write: Option<Access>,
    reads: Vec<Access>,
}

struct State {
    threads: Vec<ThreadState>,
    objects: Vec<ObjectState>,
    trace: Vec<(Tid, Op, &'static Location<'static>)>,
    failure: Option<FailureKind>,
    abandoned: bool,
}

/// The signature of a pending operation, for the explorer's
/// independence judgement (sleep-set pruning). Two operations commute
/// iff they touch different objects or are both pure reads of the same
/// object; anything `Global` (spawn, join, start) is conservatively
/// dependent with everything, which forfeits pruning but never
/// soundness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Sig {
    Read(ObjId),
    Write(ObjId),
    Global,
}

impl Sig {
    pub(crate) fn independent(self, other: Sig) -> bool {
        match (self, other) {
            (Sig::Global, _) | (_, Sig::Global) => false,
            // Two reads commute regardless of object.
            (Sig::Read(_), Sig::Read(_)) => true,
            (Sig::Read(a), Sig::Write(b))
            | (Sig::Write(a), Sig::Read(b))
            | (Sig::Write(a), Sig::Write(b)) => a != b,
        }
    }
}

fn sig_of(op: &Op) -> Sig {
    match op {
        Op::AtomicLoad { obj, .. } | Op::CellRead { obj } => Sig::Read(*obj),
        Op::AtomicStore { obj, .. }
        | Op::AtomicFetchAdd { obj, .. }
        | Op::AtomicSwap { obj, .. }
        | Op::AtomicCas { obj, .. }
        | Op::MutexLock { obj }
        | Op::MutexUnlock { obj, .. }
        | Op::ChanSend { obj }
        | Op::ChanTrySend { obj }
        | Op::ChanRecv { obj }
        | Op::SenderClone { obj }
        | Op::SenderDrop { obj }
        | Op::ReceiverDrop { obj }
        | Op::CellWrite { obj } => Sig::Write(*obj),
        Op::CvWait { cv, .. } | Op::CvReacquire { cv, .. } | Op::CvNotify { cv, .. } => {
            Sig::Write(*cv)
        }
        Op::Start | Op::Spawn { .. } | Op::Join { .. } => Sig::Global,
    }
}

fn acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// The panic payload used to unwind threads of an abandoned execution.
pub(crate) struct Abandoned;

/// What the explorer sees when the system next goes quiescent.
pub(crate) enum Decision {
    /// Every thread finished; the execution completed normally.
    Complete,
    /// A failure was recorded (panic, deadlock, race, step limit).
    Failed,
    /// Parked threads await a choice: `(tid, signature, eligible)` for
    /// every `Ready` thread, in tid order.
    Choose(Vec<(Tid, Sig, bool)>),
}

/// The shared runtime for one controlled execution.
pub(crate) struct Runtime {
    state: Mutex<State>,
    cv: Condvar,
}

impl Runtime {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(State {
                threads: Vec::new(),
                objects: Vec::new(),
                trace: Vec::new(),
                failure: None,
                abandoned: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Registers a thread (used directly only for the execution's main
    /// thread; spawned threads register through [`Op::Spawn`]).
    pub(crate) fn register_main(&self) -> Tid {
        let mut st = self.state.lock().unwrap();
        assert!(st.threads.is_empty(), "main must be the first thread");
        let mut clock = VClock::default();
        clock.tick(0);
        st.threads.push(ThreadState {
            name: "main".to_string(),
            status: Status::Spawning,
            clock,
            pending: None,
            outcome: None,
            notified: false,
        });
        0
    }

    /// Allocates a synchronization object. Not a yield point: allocation
    /// order is already determined by the schedule, and none of the
    /// modelled protocols create objects concurrently.
    pub(crate) fn alloc_object(&self, kind: ObjKind, value: u64, cap: usize) -> ObjId {
        let mut st = self.state.lock().unwrap();
        let id = st.objects.len();
        st.objects.push(ObjectState {
            kind: Some(kind),
            value,
            cap,
            senders: 1,
            receiver_alive: true,
            ..ObjectState::default()
        });
        id
    }

    pub(crate) fn set_poison(&self, obj: ObjId, poisoned: bool) {
        self.state.lock().unwrap().objects[obj].poisoned = poisoned;
    }

    pub(crate) fn is_poisoned(&self, obj: ObjId) -> bool {
        self.state.lock().unwrap().objects[obj].poisoned
    }

    /// Announces `op` at `site`, parks until granted, and returns the
    /// effect's outcome. The one entry point every model type funnels
    /// through.
    pub(crate) fn yield_op(&self, tid: Tid, op: Op, site: &'static Location<'static>) -> Outcome {
        let mut st = self.state.lock().unwrap();
        if st.abandoned {
            drop(st);
            return Self::bail_abandoned();
        }
        {
            let t = &mut st.threads[tid];
            debug_assert!(
                matches!(t.status, Status::Running | Status::Spawning),
                "a parked thread cannot announce"
            );
            t.pending = Some((op, site));
            t.status = Status::Ready;
        }
        self.cv.notify_all();
        loop {
            st = self.cv.wait(st).unwrap();
            if st.abandoned {
                drop(st);
                return Self::bail_abandoned();
            }
            if st.threads[tid].status == Status::Running {
                break;
            }
        }
        st.threads[tid]
            .outcome
            .take()
            .expect("a grant stores an outcome before waking the thread")
    }

    /// Unwinds out of an abandoned execution — unless this thread is
    /// already unwinding, in which case drop-glue yields must not
    /// double-panic and a dummy outcome is returned instead.
    fn bail_abandoned() -> Outcome {
        if std::thread::panicking() {
            Outcome::Unit
        } else {
            std::panic::panic_any(Abandoned);
        }
    }

    /// Marks `tid` finished (`panic_message: Some` records the
    /// execution's failure, first failure wins).
    pub(crate) fn finish(&self, tid: Tid, panic_message: Option<String>) {
        let mut st = self.state.lock().unwrap();
        match panic_message {
            None => st.threads[tid].status = Status::Finished,
            Some(message) => {
                st.threads[tid].status = Status::Panicked;
                if st.failure.is_none() && !st.abandoned {
                    st.failure = Some(FailureKind::Panic { tid, message });
                }
            }
        }
        self.cv.notify_all();
    }

    /// Marks a thread that exited via [`Abandoned`] as finished so the
    /// bookkeeping stays consistent while the execution is torn down.
    pub(crate) fn finish_abandoned(&self, tid: Tid) {
        let mut st = self.state.lock().unwrap();
        st.threads[tid].status = Status::Finished;
        self.cv.notify_all();
    }

    /// Blocks until the system is quiescent (no thread holds the token)
    /// and reports what the explorer can do. Records a deadlock failure
    /// itself if live threads exist but none is eligible.
    pub(crate) fn wait_decision(&self) -> Decision {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.failure.is_some() {
                return Decision::Failed;
            }
            let busy = st
                .threads
                .iter()
                .any(|t| matches!(t.status, Status::Running | Status::Spawning));
            if !busy {
                let ready: Vec<Tid> = (0..st.threads.len())
                    .filter(|&t| st.threads[t].status == Status::Ready)
                    .collect();
                if ready.is_empty() {
                    return Decision::Complete;
                }
                let info: Vec<(Tid, Sig, bool)> = ready
                    .iter()
                    .map(|&t| {
                        let (op, _) = st.threads[t]
                            .pending
                            .as_ref()
                            .expect("ready threads have a pending op");
                        (t, sig_of(op), Self::eligible(&st, t, op))
                    })
                    .collect();
                if !info.iter().any(|&(_, _, e)| e) {
                    let blocked = ready.clone();
                    st.failure = Some(FailureKind::Deadlock { blocked });
                    return Decision::Failed;
                }
                return Decision::Choose(info);
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn eligible(st: &State, tid: Tid, op: &Op) -> bool {
        match op {
            Op::MutexLock { obj } => st.objects[*obj].owner.is_none(),
            Op::CvReacquire { mutex, .. } => {
                st.threads[tid].notified && st.objects[*mutex].owner.is_none()
            }
            Op::ChanSend { obj } => {
                let o = &st.objects[*obj];
                o.len < o.cap || !o.receiver_alive
            }
            Op::ChanRecv { obj } => {
                let o = &st.objects[*obj];
                o.len > 0 || o.senders == 0
            }
            Op::Join { target } => matches!(
                st.threads[*target].status,
                Status::Finished | Status::Panicked
            ),
            _ => true,
        }
    }

    /// Grants the token to `tid`: applies its pending operation's
    /// effect under the state lock, records the trace step, stores the
    /// outcome, and wakes the thread. The caller must have observed
    /// `tid` eligible in the current quiescent state.
    pub(crate) fn grant(&self, tid: Tid) {
        let mut st = self.state.lock().unwrap();
        let (op, site) = st.threads[tid]
            .pending
            .take()
            .expect("granting a thread with no pending op");
        st.trace.push((tid, op.clone(), site));
        let outcome = Self::apply(&mut st, tid, &op, site);
        let t = &mut st.threads[tid];
        t.outcome = Some(outcome);
        t.status = Status::Running;
        self.cv.notify_all();
    }

    /// Applies `op`'s effect: logical state transition plus the exact
    /// vector-clock transfers the happens-before relation dictates.
    fn apply(st: &mut State, tid: Tid, op: &Op, site: &'static Location<'static>) -> Outcome {
        st.threads[tid].clock.tick(tid);
        match op {
            Op::Start => Outcome::Unit,
            Op::AtomicLoad { obj, order } => {
                if acquires(*order) {
                    let oc = st.objects[*obj].clock.clone();
                    st.threads[tid].clock.join(&oc);
                }
                Outcome::Value(st.objects[*obj].value)
            }
            Op::AtomicStore { obj, value, order } => {
                if releases(*order) {
                    let tc = st.threads[tid].clock.clone();
                    st.objects[*obj].clock.join(&tc);
                }
                st.objects[*obj].value = *value;
                Outcome::Unit
            }
            Op::AtomicFetchAdd { obj, delta, order } => {
                Self::rmw_clocks(st, tid, *obj, *order);
                let prev = st.objects[*obj].value;
                st.objects[*obj].value = prev.wrapping_add(*delta);
                Outcome::Value(prev)
            }
            Op::AtomicSwap { obj, value, order } => {
                Self::rmw_clocks(st, tid, *obj, *order);
                let prev = st.objects[*obj].value;
                st.objects[*obj].value = *value;
                Outcome::Value(prev)
            }
            Op::AtomicCas {
                obj,
                current,
                new,
                success,
                failure,
            } => {
                let prev = st.objects[*obj].value;
                if prev == *current {
                    Self::rmw_clocks(st, tid, *obj, *success);
                    st.objects[*obj].value = *new;
                    Outcome::Cas(Ok(prev))
                } else {
                    if acquires(*failure) {
                        let oc = st.objects[*obj].clock.clone();
                        st.threads[tid].clock.join(&oc);
                    }
                    Outcome::Cas(Err(prev))
                }
            }
            Op::MutexLock { obj } => {
                debug_assert!(st.objects[*obj].owner.is_none());
                st.objects[*obj].owner = Some(tid);
                let oc = st.objects[*obj].clock.clone();
                st.threads[tid].clock.join(&oc);
                Outcome::Lock {
                    poisoned: st.objects[*obj].poisoned,
                }
            }
            Op::MutexUnlock { obj, poison } => {
                let tc = st.threads[tid].clock.clone();
                let o = &mut st.objects[*obj];
                debug_assert_eq!(o.owner, Some(tid), "unlock by non-owner");
                o.clock.join(&tc);
                o.owner = None;
                if *poison {
                    o.poisoned = true;
                }
                Outcome::Unit
            }
            Op::CvWait { cv, mutex } => {
                let tc = st.threads[tid].clock.clone();
                let m = &mut st.objects[*mutex];
                debug_assert_eq!(m.owner, Some(tid), "wait without holding the mutex");
                m.clock.join(&tc);
                m.owner = None;
                st.objects[*cv].cv_queue.push_back(tid);
                st.threads[tid].notified = false;
                Outcome::Unit
            }
            Op::CvReacquire { cv, mutex } => {
                debug_assert!(st.threads[tid].notified);
                debug_assert!(st.objects[*mutex].owner.is_none());
                st.objects[*mutex].owner = Some(tid);
                let mc = st.objects[*mutex].clock.clone();
                let cc = st.objects[*cv].clock.clone();
                let t = &mut st.threads[tid];
                t.clock.join(&mc);
                t.clock.join(&cc);
                t.notified = false;
                Outcome::Unit
            }
            Op::CvNotify { cv, all } => {
                let tc = st.threads[tid].clock.clone();
                st.objects[*cv].clock.join(&tc);
                let woken: Vec<Tid> = if *all {
                    st.objects[*cv].cv_queue.drain(..).collect()
                } else {
                    st.objects[*cv].cv_queue.pop_front().into_iter().collect()
                };
                for w in woken {
                    st.threads[w].notified = true;
                }
                Outcome::Unit
            }
            Op::ChanSend { obj } => {
                let tc = st.threads[tid].clock.clone();
                let o = &mut st.objects[*obj];
                if !o.receiver_alive {
                    return Outcome::Send { disconnected: true };
                }
                debug_assert!(o.len < o.cap, "granted send on a full channel");
                o.len += 1;
                o.msg_clocks.push_back(tc);
                Outcome::Send {
                    disconnected: false,
                }
            }
            Op::ChanTrySend { obj } => {
                let tc = st.threads[tid].clock.clone();
                let o = &mut st.objects[*obj];
                if !o.receiver_alive {
                    Outcome::TrySend(TrySendVerdict::Disconnected)
                } else if o.len == o.cap {
                    Outcome::TrySend(TrySendVerdict::Full)
                } else {
                    o.len += 1;
                    o.msg_clocks.push_back(tc);
                    Outcome::TrySend(TrySendVerdict::Ok)
                }
            }
            Op::ChanRecv { obj } => {
                let o = &mut st.objects[*obj];
                if o.len > 0 {
                    o.len -= 1;
                    let mc = o.msg_clocks.pop_front().expect("len > 0 implies a clock");
                    st.threads[tid].clock.join(&mc);
                    Outcome::Recv { ok: true }
                } else {
                    debug_assert_eq!(o.senders, 0, "granted recv on an empty, live channel");
                    Outcome::Recv { ok: false }
                }
            }
            Op::SenderClone { obj } => {
                st.objects[*obj].senders += 1;
                Outcome::Unit
            }
            Op::SenderDrop { obj } => {
                st.objects[*obj].senders -= 1;
                Outcome::Unit
            }
            Op::ReceiverDrop { obj } => {
                st.objects[*obj].receiver_alive = false;
                Outcome::Unit
            }
            Op::CellRead { obj } => {
                let me = Access {
                    tid,
                    at: st.threads[tid].clock.get(tid),
                    write: false,
                    site,
                };
                if let Some(w) = st.objects[*obj].last_write {
                    if Self::unordered(st, tid, &w) && st.failure.is_none() {
                        st.failure = Some(FailureKind::Race {
                            obj: *obj,
                            earlier: w,
                            later: me,
                        });
                    }
                }
                st.objects[*obj].reads.push(me);
                Outcome::Unit
            }
            Op::CellWrite { obj } => {
                let me = Access {
                    tid,
                    at: st.threads[tid].clock.get(tid),
                    write: true,
                    site,
                };
                let priors: Vec<Access> = st.objects[*obj]
                    .last_write
                    .iter()
                    .chain(st.objects[*obj].reads.iter())
                    .copied()
                    .collect();
                for prior in priors {
                    if Self::unordered(st, tid, &prior) && st.failure.is_none() {
                        st.failure = Some(FailureKind::Race {
                            obj: *obj,
                            earlier: prior,
                            later: me,
                        });
                    }
                }
                let o = &mut st.objects[*obj];
                o.last_write = Some(me);
                o.reads.clear();
                Outcome::Unit
            }
            Op::Spawn { name } => {
                let child = st.threads.len();
                let mut clock = st.threads[tid].clock.clone();
                clock.tick(child);
                st.threads.push(ThreadState {
                    name: name.clone(),
                    status: Status::Spawning,
                    clock,
                    pending: None,
                    outcome: None,
                    notified: false,
                });
                Outcome::Spawned(child)
            }
            Op::Join { target } => {
                let panicked = st.threads[*target].status == Status::Panicked;
                let target_clock = st.threads[*target].clock.clone();
                st.threads[tid].clock.join(&target_clock);
                Outcome::Join { panicked }
            }
        }
    }

    fn rmw_clocks(st: &mut State, tid: Tid, obj: ObjId, order: Ordering) {
        if acquires(order) {
            let oc = st.objects[obj].clock.clone();
            st.threads[tid].clock.join(&oc);
        }
        if releases(order) {
            let tc = st.threads[tid].clock.clone();
            st.objects[obj].clock.join(&tc);
        }
    }

    /// Whether `prior` is *not* ordered before the current operation of
    /// `tid` — i.e. the two accesses race (conflict is the caller's
    /// concern).
    fn unordered(st: &State, tid: Tid, prior: &Access) -> bool {
        prior.tid != tid && st.threads[tid].clock.get(prior.tid) < prior.at
    }

    /// Records the step-limit failure (livelock guard).
    pub(crate) fn record_step_limit(&self, limit: usize) {
        let mut st = self.state.lock().unwrap();
        if st.failure.is_none() {
            st.failure = Some(FailureKind::StepLimit { limit });
        }
    }

    /// Abandons the execution: every parked thread unwinds via
    /// [`Abandoned`] at its next wake. Blocks until all threads have
    /// exited the execution.
    pub(crate) fn abandon(&self) {
        let mut st = self.state.lock().unwrap();
        st.abandoned = true;
        for t in &mut st.threads {
            if matches!(t.status, Status::Ready | Status::Running | Status::Spawning) {
                // Wake parked threads; Running/Spawning ones will see
                // the flag at their next yield.
                t.outcome = Some(Outcome::Unit);
            }
        }
        self.cv.notify_all();
        while st
            .threads
            .iter()
            .any(|t| !matches!(t.status, Status::Finished | Status::Panicked))
        {
            st = self.cv.wait(st).unwrap();
        }
    }

    pub(crate) fn step_count(&self) -> usize {
        self.state.lock().unwrap().trace.len()
    }

    pub(crate) fn failure(&self) -> Option<FailureKind> {
        self.state.lock().unwrap().failure.clone()
    }

    /// Renders the execution trace as human-readable schedule lines.
    pub(crate) fn render_trace(&self) -> Vec<String> {
        let st = self.state.lock().unwrap();
        st.trace
            .iter()
            .enumerate()
            .map(|(i, (tid, op, site))| {
                format!(
                    "{i:3}  t{tid}({}) {} @ {}:{}",
                    st.threads[*tid].name,
                    Self::render_op(&st, op),
                    site.file(),
                    site.line()
                )
            })
            .collect()
    }

    /// Renders a failure as `(kind, message)` for reporting.
    pub(crate) fn render_failure(&self, failure: &FailureKind) -> (String, String) {
        let st = self.state.lock().unwrap();
        match failure {
            FailureKind::Panic { tid, message } => (
                "panic".to_string(),
                format!("t{tid}({}) panicked: {message}", st.threads[*tid].name),
            ),
            FailureKind::Deadlock { blocked } => {
                let who: Vec<String> = blocked
                    .iter()
                    .map(|&t| {
                        let pending = st.threads[t]
                            .pending
                            .as_ref()
                            .map(|(op, site)| {
                                format!(
                                    "{} @ {}:{}",
                                    Self::render_op(&st, op),
                                    site.file(),
                                    site.line()
                                )
                            })
                            .unwrap_or_else(|| "?".to_string());
                        format!("t{t}({}) blocked on {pending}", st.threads[t].name)
                    })
                    .collect();
                ("deadlock".to_string(), who.join("; "))
            }
            FailureKind::Race { obj, earlier, later } => (
                "race".to_string(),
                format!(
                    "unsynchronized conflicting accesses on {}: {} by t{}({}) at {}:{} vs {} by t{}({}) at {}:{}",
                    Self::obj_label(&st, *obj),
                    if earlier.write { "write" } else { "read" },
                    earlier.tid,
                    st.threads[earlier.tid].name,
                    earlier.site.file(),
                    earlier.site.line(),
                    if later.write { "write" } else { "read" },
                    later.tid,
                    st.threads[later.tid].name,
                    later.site.file(),
                    later.site.line(),
                ),
            ),
            FailureKind::StepLimit { limit } => (
                "step-limit".to_string(),
                format!("execution exceeded {limit} steps (livelock guard)"),
            ),
        }
    }

    fn obj_label(st: &State, obj: ObjId) -> String {
        let kind = st.objects[obj].kind.map(ObjKind::label).unwrap_or("obj");
        format!("{kind}#{obj}")
    }

    fn render_op(st: &State, op: &Op) -> String {
        match op {
            Op::Start => "start".to_string(),
            Op::AtomicLoad { obj, .. } => format!("load {}", Self::obj_label(st, *obj)),
            Op::AtomicStore { obj, value, .. } => {
                format!("store {} <- {value}", Self::obj_label(st, *obj))
            }
            Op::AtomicFetchAdd { obj, delta, .. } => {
                format!("fetch-add {} += {delta}", Self::obj_label(st, *obj))
            }
            Op::AtomicSwap { obj, value, .. } => {
                format!("swap {} <- {value}", Self::obj_label(st, *obj))
            }
            Op::AtomicCas {
                obj, current, new, ..
            } => {
                format!("cas {} {current}->{new}", Self::obj_label(st, *obj))
            }
            Op::MutexLock { obj } => format!("lock {}", Self::obj_label(st, *obj)),
            Op::MutexUnlock { obj, poison } => format!(
                "unlock{} {}",
                if *poison { "+poison" } else { "" },
                Self::obj_label(st, *obj)
            ),
            Op::CvWait { cv, .. } => format!("cv-wait {}", Self::obj_label(st, *cv)),
            Op::CvReacquire { cv, .. } => {
                format!("cv-reacquire {}", Self::obj_label(st, *cv))
            }
            Op::CvNotify { cv, all } => format!(
                "notify-{} {}",
                if *all { "all" } else { "one" },
                Self::obj_label(st, *cv)
            ),
            Op::ChanSend { obj } => format!("send {}", Self::obj_label(st, *obj)),
            Op::ChanTrySend { obj } => format!("try-send {}", Self::obj_label(st, *obj)),
            Op::ChanRecv { obj } => format!("recv {}", Self::obj_label(st, *obj)),
            Op::SenderClone { obj } => format!("sender-clone {}", Self::obj_label(st, *obj)),
            Op::SenderDrop { obj } => format!("sender-drop {}", Self::obj_label(st, *obj)),
            Op::ReceiverDrop { obj } => {
                format!("receiver-drop {}", Self::obj_label(st, *obj))
            }
            Op::CellRead { obj } => format!("read {}", Self::obj_label(st, *obj)),
            Op::CellWrite { obj } => format!("write {}", Self::obj_label(st, *obj)),
            Op::Spawn { name } => format!("spawn \"{name}\""),
            Op::Join { target } => {
                format!("join t{target}({})", st.threads[*target].name)
            }
        }
    }
}

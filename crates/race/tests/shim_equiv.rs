//! Observational equivalence of the two shim instantiations.
//!
//! The whole architecture rests on one claim: protocol code written
//! against the `culpeo_exec::shim` traits behaves identically whether
//! instantiated with `std::sync` (production) or with the model types
//! (checking). This property test runs the *same* random operation
//! sequence through a generic interpreter twice — once on the std
//! types, once on the model types inside a single-thread
//! `culpeo_race::explore` — and requires bit-identical observation
//! logs: every loaded value, every CAS verdict, every `try_send`
//! outcome, every poison flag, every caught panic.
//!
//! Single-threaded, the model schedule space is exactly one
//! interleaving, so "the model agrees with std on every sequential
//! history" is fully decidable here; the multi-threaded histories are
//! the battery's job.

#![forbid(unsafe_code)]

use culpeo_exec::shim::{AtomicBoolShim, AtomicUsizeShim, MutexShim, ReceiverShim, SenderShim};
use culpeo_race::{model, Options};
use culpeo_units::seed::splitmix64;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::TrySendError;
use std::sync::{Arc, PoisonError};

/// One interpreter step. Everything is non-blocking single-threaded:
/// `Recv` is only generated when the shadow queue is non-empty, so
/// neither instantiation ever parks.
#[derive(Clone, Debug)]
enum Step {
    Load,
    Store(usize),
    FetchAdd(usize),
    Cas { current: usize, new: usize },
    BoolSwap(bool),
    LockAdd(u64),
    LockPanic,
    LockRecover,
    TrySend(u64),
    Recv,
}

/// Channel capacity for both instantiations (and the shadow model).
const CAP: usize = 2;

/// Derives a step sequence from a splitmix64 stream, tracking queue
/// occupancy so `Recv` is never generated against an empty queue.
fn steps_from_seed(seed: u64, len: usize) -> Vec<Step> {
    let mut state = seed;
    let mut occupancy = 0usize;
    (0..len)
        .map(|_| {
            let r = splitmix64(&mut state);
            match r % 10 {
                0 => Step::Load,
                1 => Step::Store(usize::try_from((r >> 8) % 100).unwrap()),
                2 => Step::FetchAdd(usize::try_from((r >> 8) % 7).unwrap()),
                3 => Step::Cas {
                    current: usize::try_from((r >> 8) % 4).unwrap(),
                    new: usize::try_from((r >> 16) % 100).unwrap(),
                },
                4 => Step::BoolSwap(r & 0x100 != 0),
                5 => Step::LockAdd((r >> 8) % 1000),
                6 => Step::LockPanic,
                7 => Step::LockRecover,
                8 => {
                    occupancy = (occupancy + 1).min(CAP);
                    Step::TrySend(r >> 8)
                }
                _ if occupancy > 0 => {
                    occupancy -= 1;
                    Step::Recv
                }
                _ => Step::Load,
            }
        })
        .collect()
}

/// Runs `steps` against one shim instantiation, logging every
/// observable outcome. The channel halves are passed in because the
/// shim traits (deliberately) have no constructor for pairs.
fn interpret<A, B, M, S, R>(steps: &[Step], tx: S, rx: R) -> Vec<u64>
where
    A: AtomicUsizeShim,
    B: AtomicBoolShim,
    M: MutexShim<u64>,
    S: SenderShim<u64>,
    R: ReceiverShim<u64>,
{
    let atomic = A::new(0);
    let flag = B::new(false);
    let cache = M::new(0);
    let mut log = Vec::new();
    for step in steps {
        match step {
            Step::Load => log.push(atomic.load(Ordering::SeqCst) as u64),
            Step::Store(v) => atomic.store(*v, Ordering::SeqCst),
            Step::FetchAdd(v) => log.push(atomic.fetch_add(*v, Ordering::SeqCst) as u64),
            Step::Cas { current, new } => {
                match atomic.compare_exchange(*current, *new, Ordering::SeqCst, Ordering::SeqCst) {
                    Ok(prev) => log.extend([1, prev as u64]),
                    Err(prev) => log.extend([0, prev as u64]),
                }
            }
            Step::BoolSwap(v) => log.push(u64::from(flag.swap(*v, Ordering::SeqCst))),
            Step::LockAdd(v) => {
                let mut guard = cache.lock().unwrap_or_else(PoisonError::into_inner);
                *guard += v;
                log.push(*guard);
            }
            Step::LockPanic => {
                log.push(u64::from(cache.is_poisoned()));
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut guard = cache.lock().unwrap_or_else(PoisonError::into_inner);
                    *guard += 1;
                    panic!("deliberate mid-update death");
                }));
                log.push(u64::from(outcome.is_err()));
                log.push(u64::from(cache.is_poisoned()));
            }
            Step::LockRecover => {
                log.push(u64::from(cache.is_poisoned()));
                let guard = match cache.lock() {
                    Ok(guard) => {
                        log.push(100);
                        guard
                    }
                    Err(poisoned) => {
                        cache.clear_poison();
                        log.push(200);
                        poisoned.into_inner()
                    }
                };
                log.push(*guard);
                drop(guard);
                log.push(u64::from(cache.is_poisoned()));
            }
            Step::TrySend(v) => match tx.try_send(*v) {
                Ok(()) => log.push(1),
                Err(TrySendError::Full(lost)) => log.extend([2, lost]),
                Err(TrySendError::Disconnected(lost)) => log.extend([3, lost]),
            },
            Step::Recv => log.push(rx.recv().expect("Recv is only generated non-empty")),
        }
    }
    // Hangup drain: after the sender drops, queued values then `Err`.
    drop(tx);
    while let Ok(v) = rx.recv() {
        log.push(v);
    }
    log.push(u64::MAX);
    log
}

/// The std run, directly on this thread.
fn run_std(steps: &[Step]) -> Vec<u64> {
    let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(CAP);
    interpret::<
        std::sync::atomic::AtomicUsize,
        std::sync::atomic::AtomicBool,
        std::sync::Mutex<u64>,
        _,
        _,
    >(steps, tx, rx)
}

/// The model run, inside a single-thread exploration.
fn run_model(steps: &[Step]) -> Vec<u64> {
    let out = Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let steps = steps.to_vec();
    let ex = culpeo_race::explore(&Options::default(), move || {
        let (tx, rx) = model::sync_channel::<u64>(CAP);
        let log = interpret::<model::AtomicUsize, model::AtomicBool, model::Mutex<u64>, _, _>(
            &steps, tx, rx,
        );
        *sink.lock().unwrap() = log;
    });
    assert!(
        ex.holds(),
        "a sequential history can never fail: {:?}",
        ex.failure
    );
    assert_eq!(
        ex.interleavings, 1,
        "one thread has exactly one interleaving"
    );
    let log = out.lock().unwrap().clone();
    assert!(!log.is_empty(), "the closure ran and logged");
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The load-bearing property: both instantiations of the same
    /// operation sequence produce identical observation logs.
    #[test]
    fn model_shim_is_observationally_std(seed in 0u64..1024, len in 1usize..40) {
        let steps = steps_from_seed(seed, len);
        prop_assert_eq!(run_std(&steps), run_model(&steps));
    }
}

/// A directed non-random case hitting every op kind at least once,
/// poison recovery included — immune to generator drift.
#[test]
fn directed_sequence_agrees() {
    let steps = vec![
        Step::Store(3),
        Step::Load,
        Step::FetchAdd(2),
        Step::Cas { current: 5, new: 9 },
        Step::Cas { current: 5, new: 9 },
        Step::BoolSwap(true),
        Step::LockAdd(41),
        Step::LockPanic,
        Step::LockRecover,
        Step::LockAdd(1),
        Step::TrySend(7),
        Step::TrySend(8),
        Step::TrySend(9),
        Step::Recv,
        Step::TrySend(10),
    ];
    assert_eq!(run_std(&steps), run_model(&steps));
}
